#!/bin/sh
# Toggle the workspace between registry deps (for the committed tree) and
# the offline .devstubs path deps (for local builds without network).
# Usage: .devstubs/swap.sh on|off
set -eu
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
M="$ROOT/Cargo.toml"
case "${1:-}" in
  on)
    sed -i \
      -e 's#^rand = "0.8"$#rand = { path = ".devstubs/rand" }#' \
      -e 's#^proptest = "1"$#proptest = { path = ".devstubs/proptest" }#' \
      -e 's#^criterion = "0.5"$#criterion = { path = ".devstubs/criterion" }#' \
      -e 's#^parking_lot = "0.12"$#parking_lot = { path = ".devstubs/parking_lot" }#' \
      -e 's#^crossbeam = "0.8"$#crossbeam = { path = ".devstubs/crossbeam" }#' \
      -e 's#^serde = { version = "1", features = \["derive", "rc"\] }$#serde = { path = ".devstubs/serde", features = ["derive", "rc"] }#' \
      "$M"
    ;;
  off)
    sed -i \
      -e 's#^rand = { path = ".devstubs/rand" }$#rand = "0.8"#' \
      -e 's#^proptest = { path = ".devstubs/proptest" }$#proptest = "1"#' \
      -e 's#^criterion = { path = ".devstubs/criterion" }$#criterion = "0.5"#' \
      -e 's#^parking_lot = { path = ".devstubs/parking_lot" }$#parking_lot = "0.12"#' \
      -e 's#^crossbeam = { path = ".devstubs/crossbeam" }$#crossbeam = "0.8"#' \
      -e 's#^serde = { path = ".devstubs/serde", features = \["derive", "rc"\] }$#serde = { version = "1", features = ["derive", "rc"] }#' \
      "$M"
    rm -f "$ROOT/Cargo.lock"
    ;;
  *)
    echo "usage: $0 on|off" >&2
    exit 2
    ;;
esac
grep -n "rand\|serde\|proptest\|criterion\|parking_lot\|crossbeam" "$M" | head -8
