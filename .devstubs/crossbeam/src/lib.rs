//! Offline stand-in for `crossbeam` — just `channel::{bounded, unbounded}`
//! MPMC channels built on Mutex + Condvar, with crossbeam's API shape.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::Duration;

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        cap: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        Full(T),
        Disconnected(T),
    }

    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        new_chan(Some(cap))
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_chan(None)
    }

    fn new_chan<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cap,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap().senders += 1;
            Sender {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                self.chan.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap().receivers += 1;
            Receiver {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                self.chan.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.chan.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = self.chan.cap.is_some_and(|c| st.queue.len() >= c.max(1));
                if !full {
                    st.queue.push_back(value);
                    self.chan.not_empty.notify_one();
                    return Ok(());
                }
                st = self.chan.not_full.wait(st).unwrap();
            }
        }

        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut st = self.chan.state.lock().unwrap();
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if self.chan.cap.is_some_and(|c| st.queue.len() >= c.max(1)) {
                return Err(TrySendError::Full(value));
            }
            st.queue.push_back(value);
            self.chan.not_empty.notify_one();
            Ok(())
        }

        pub fn is_empty(&self) -> bool {
            self.chan.state.lock().unwrap().queue.is_empty()
        }

        pub fn len(&self) -> usize {
            self.chan.state.lock().unwrap().queue.len()
        }

        pub fn capacity(&self) -> Option<usize> {
            self.chan.cap
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.chan.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.chan.not_empty.wait(st).unwrap();
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.chan.state.lock().unwrap();
            match st.queue.pop_front() {
                Some(v) => {
                    self.chan.not_full.notify_one();
                    Ok(v)
                }
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut st = self.chan.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.chan.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .chan
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .unwrap();
                st = guard;
            }
        }

        pub fn is_empty(&self) -> bool {
            self.chan.state.lock().unwrap().queue.is_empty()
        }

        pub fn len(&self) -> usize {
            self.chan.state.lock().unwrap().queue.len()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn bounded_blocks_and_disconnects() {
            let (tx, rx) = bounded::<u32>(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
            assert_eq!(rx.recv(), Ok(1));
            drop(tx);
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn cross_thread() {
            let (tx, rx) = bounded::<u64>(8);
            let h = std::thread::spawn(move || {
                let mut sum = 0;
                while let Ok(v) = rx.recv() {
                    sum += v;
                }
                sum
            });
            for i in 0..1000 {
                tx.send(i).unwrap();
            }
            drop(tx);
            assert_eq!(h.join().unwrap(), 499_500);
        }
    }
}
