//! Offline stand-in for `criterion`: same API surface, measures with a
//! fixed warm-up + timed iterations and prints mean per-iteration time,
//! so relative comparisons (e.g. serial vs pooled) are still meaningful.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }

    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId(format!("{param}"))
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up.
        for _ in 0..3 {
            black_box(f());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut b = Bencher {
            iters: self.sample_size.max(1),
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
        let mut line = format!(
            "{}/{id}: {:>12.3} µs/iter ({} iters)",
            self.name,
            per_iter * 1e6,
            b.iters
        );
        if let Some(Throughput::Elements(n)) = self.throughput {
            let eps = n as f64 / per_iter;
            line.push_str(&format!("  {:>12.0} elem/s", eps));
        }
        println!("{line}");
        self.criterion
            .results
            .push((format!("{}/{id}", self.name), per_iter));
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        self.run(format!("{id}"), f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(format!("{id}"), |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}
}

#[derive(Default)]
pub struct Criterion {
    /// (label, seconds-per-iteration) of every benchmark run so far.
    pub results: Vec<(String, f64)>,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        let name = format!("{name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let name = format!("{id}");
        let mut group = self.benchmark_group(name.clone());
        group.run(name, f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
