//! Offline stand-in for `parking_lot` over `std::sync`, ignoring poison.

use std::sync;

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // parking_lot waits through `&mut guard`; std's wait consumes the
        // guard and hands it back. Bridge the two by moving the guard out
        // and writing std's returned guard straight back in.
        //
        // SAFETY: `ptr::read` duplicates the guard; the original slot is
        // dead until `ptr::write` repopulates it. Between the two, the
        // only code that runs is std's `wait`, whose error branch still
        // returns the guard (poison is ignored like everywhere in this
        // stub), so exactly one live guard exists on every path and the
        // slot is always rewritten before `wait` returns.
        unsafe {
            let taken = std::ptr::read(guard);
            let back = match self.0.wait(taken) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            std::ptr::write(guard, back);
        }
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}
