//! Offline stand-in for `parking_lot` over `std::sync`, ignoring poison.

use std::sync;

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }

    pub fn wait<T: ?Sized>(&self, _guard: &mut MutexGuard<'_, T>) {
        // std's API consumes the guard; emulate in place via raw replace.
        // Safe pattern: we cannot move out of &mut, so use the blocking
        // wait on a temporary by swapping through Option is not possible
        // here — instead this stub only supports wait via `wait_while`
        // style usage below.
        unimplemented!("stub Condvar::wait with &mut guard is unsupported; use std Condvar")
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}
