//! Offline stand-in for `serde`: the derive macros expand to nothing and
//! the traits are markers, which is sufficient because nothing in this
//! workspace serializes at runtime.

pub use serde_derive::{Deserialize, Serialize};

pub trait SerializeTrait {}
pub trait DeserializeTrait<'de> {}
