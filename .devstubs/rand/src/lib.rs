//! Offline stand-in for `rand 0.8` — faithful reimplementation of the
//! subset this workspace uses: `StdRng` (ChaCha12), `SeedableRng::
//! seed_from_u64` (PCG32 expansion), `Rng::{gen, gen_range, gen_bool}`
//! with rand 0.8's exact sampling algorithms, so sequences match the
//! real crate bit-for-bit.

pub mod rngs {
    pub use crate::chacha::StdRng;
}

mod chacha {
    /// ChaCha12-based `StdRng`, buffered 4 blocks (64 words) at a time
    /// like `rand_chacha`'s `BlockRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        key: [u32; 8],
        counter: u64,
        buf: [u32; 64],
        index: usize,
    }

    const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

    #[inline(always)]
    fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(16);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(12);
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(8);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(7);
    }

    fn block12(key: &[u32; 8], counter: u64, out: &mut [u32]) {
        let mut s: [u32; 16] = [0; 16];
        s[..4].copy_from_slice(&CONSTANTS);
        s[4..12].copy_from_slice(key);
        s[12] = counter as u32;
        s[13] = (counter >> 32) as u32;
        s[14] = 0;
        s[15] = 0;
        let init = s;
        for _ in 0..6 {
            quarter(&mut s, 0, 4, 8, 12);
            quarter(&mut s, 1, 5, 9, 13);
            quarter(&mut s, 2, 6, 10, 14);
            quarter(&mut s, 3, 7, 11, 15);
            quarter(&mut s, 0, 5, 10, 15);
            quarter(&mut s, 1, 6, 11, 12);
            quarter(&mut s, 2, 7, 8, 13);
            quarter(&mut s, 3, 4, 9, 14);
        }
        for i in 0..16 {
            out[i] = s[i].wrapping_add(init[i]);
        }
    }

    impl StdRng {
        fn refill(&mut self) {
            for b in 0..4 {
                let (lo, hi) = (b * 16, b * 16 + 16);
                block12(&self.key, self.counter, &mut self.buf[lo..hi]);
                self.counter = self.counter.wrapping_add(1);
            }
        }
    }

    impl crate::SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut key = [0u32; 8];
            for (i, chunk) in seed.chunks(4).enumerate() {
                key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
            }
            StdRng {
                key,
                counter: 0,
                buf: [0; 64],
                index: 64, // force refill on first use
            }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            if self.index >= 64 {
                self.refill();
                self.index = 0;
            }
            let v = self.buf[self.index];
            self.index += 1;
            v
        }

        // Mirrors rand_core's BlockRng::next_u64, including the
        // block-straddling case at index == len-1.
        fn next_u64(&mut self) -> u64 {
            let index = self.index;
            if index < 63 {
                self.index += 2;
                (u64::from(self.buf[index + 1]) << 32) | u64::from(self.buf[index])
            } else if index >= 64 {
                self.refill();
                self.index = 2;
                (u64::from(self.buf[1]) << 32) | u64::from(self.buf[0])
            } else {
                let x = u64::from(self.buf[63]);
                self.refill();
                self.index = 1;
                (u64::from(self.buf[0]) << 32) | x
            }
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(4) {
                let v = self.next_u32().to_le_bytes();
                chunk.copy_from_slice(&v[..chunk.len()]);
            }
        }
    }
}

pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// rand_core 0.6's PCG32-based seed expansion, bit-exact.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }

    fn from_entropy() -> Self {
        Self::seed_from_u64(0x1571_17a7_e571)
    }
}

/// Types samplable from the "Standard" distribution (subset).
pub trait StandardSample {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand 0.8 Standard for f64: 53-bit multiply.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for i32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl StandardSample for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand 0.8: Standard for bool reads one u32 high bit? It uses
        // `rng.gen::<u8>() < 0x80`? Not used by this workspace; any
        // unbiased coin is fine here.
        rng.next_u32() & 1 == 1
    }
}

/// Ranges usable with `Rng::gen_range` (subset).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($ty:ty => $uty:ty | $wide:ty),* $(,)?) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let range = self.end.wrapping_sub(self.start) as $uty;
                // rand 0.8 UniformInt::sample_single: widening multiply
                // with bitshift-computed zone.
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = <$uty as StandardSample>::sample_standard(rng);
                    let prod = (v as $wide) * (range as $wide);
                    let hi = (prod >> (<$uty>::BITS)) as $uty;
                    let lo = prod as $uty;
                    if lo <= zone {
                        return self.start.wrapping_add(hi as $ty);
                    }
                }
            }
        }
        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let range = (end.wrapping_sub(start) as $uty).wrapping_add(1);
                if range == 0 {
                    // Full integer domain.
                    return <$uty as StandardSample>::sample_standard(rng) as $ty;
                }
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = <$uty as StandardSample>::sample_standard(rng);
                    let prod = (v as $wide) * (range as $wide);
                    let hi = (prod >> (<$uty>::BITS)) as $uty;
                    let lo = prod as $uty;
                    if lo <= zone {
                        return start.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    )*};
}

int_range_impls! {
    u32 => u32 | u64,
    u64 => u64 | u128,
    usize => usize | u128,
    i32 => u32 | u64,
    i64 => u64 | u128,
}

macro_rules! float_range_impls {
    ($($ty:ty => $uty:ty, $discard:expr, $one_exp:expr),* $(,)?) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let mut scale = self.end - self.start;
                loop {
                    // Value in [1, 2): random mantissa, exponent 0.
                    let bits = <$uty as StandardSample>::sample_standard(rng);
                    let value1_2 = <$ty>::from_bits((bits >> $discard) | $one_exp);
                    let value0_1 = value1_2 - 1.0;
                    let res = value0_1 * scale + self.start;
                    if res < self.end {
                        return res;
                    }
                    scale = <$ty>::from_bits(scale.to_bits() - 1);
                }
            }
        }
        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                // rand 0.8 Uniform::new_inclusive for floats.
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "cannot sample empty range");
                let max_rand: $ty = 1.0 - <$ty>::EPSILON / 2.0;
                let mut scale = (high - low) / max_rand;
                while scale * max_rand + low > high {
                    scale = <$ty>::from_bits(scale.to_bits() - 1);
                }
                let bits = <$uty as StandardSample>::sample_standard(rng);
                let value1_2 = <$ty>::from_bits((bits >> $discard) | $one_exp);
                let value0_1 = value1_2 - 1.0;
                value0_1 * scale + low
            }
        }
    )*};
}

float_range_impls! {
    f64 => u64, 12, 0x3FF0_0000_0000_0000u64,
    f32 => u32, 9, 0x3F80_0000u32,
}

pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// rand 0.8 Bernoulli: 64-bit fixed-point compare.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        if p == 1.0 {
            return true;
        }
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        let p_int = (p * SCALE) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 7539 §2.3.2 test vector, adapted: our block12 runs 6 double
    // rounds; with 10 double rounds it must reproduce ChaCha20. We verify
    // the quarter-round wiring via the RFC's standalone QR vector.
    #[test]
    fn quarter_round_rfc7539() {
        let mut s = [0u32; 16];
        s[0] = 0x11111111;
        s[1] = 0x01020304;
        s[2] = 0x9b8d6f43;
        s[3] = 0x01234567;
        super::chacha_test::quarter_pub(&mut s, 0, 1, 2, 3);
        assert_eq!(s[0], 0xea2a92f4);
        assert_eq!(s[1], 0xcb1cf8ce);
        assert_eq!(s[2], 0x4581472e);
        assert_eq!(s[3], 0x5881c4bb);
    }

    #[test]
    fn seed_expansion_is_deterministic() {
        use rngs::StdRng;
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let va: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(va[0], c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        use rngs::StdRng;
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u32 = r.gen_range(5..17);
            assert!((5..17).contains(&x));
            let y: f64 = r.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&y));
            let z: usize = r.gen_range(3..=3);
            assert_eq!(z, 3);
        }
    }
}

#[cfg(test)]
mod chacha_test {
    pub fn quarter_pub(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(16);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(12);
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(8);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(7);
    }
}
