//! Offline stand-in for `proptest`: runnable random testing with the same
//! macro/combinator surface this workspace uses (no shrinking). Sampling
//! is uniform rather than edge-biased, so coverage differs from the real
//! crate, but properties are genuinely exercised.

pub mod test_runner {
    /// SplitMix64 — good enough to drive strategies.
    pub struct TestRng {
        state: u64,
        initial: u64,
    }

    impl TestRng {
        pub fn from_env() -> Self {
            let seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or_else(|| {
                    use std::time::{SystemTime, UNIX_EPOCH};
                    let t = SystemTime::now()
                        .duration_since(UNIX_EPOCH)
                        .unwrap_or_default();
                    t.as_nanos() as u64 ^ (std::process::id() as u64) << 32
                });
            TestRng {
                state: seed,
                initial: seed,
            }
        }

        pub fn initial_seed(&self) -> u64 {
            self.initial
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in [0, n) (n > 0).
        pub fn below(&mut self, n: u64) -> u64 {
            // Widening-multiply bound; bias is negligible for test sizes.
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    pub trait Strategy {
        type Value;

        fn sample_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    // Strategies compose by reference too (parity with real proptest's
    // `&S: Strategy`): not needed by this workspace, omitted.

    trait DynStrategy<V> {
        fn sample_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.sample_value(rng)
        }
    }

    pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn sample_value(&self, rng: &mut TestRng) -> V {
            self.0.sample_dyn(rng)
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample_value(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample_value(rng)).sample_value(rng)
        }
    }

    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Union<V> {
        pub options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample_value(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].sample_value(rng)
        }
    }

    macro_rules! int_strategies {
        ($($ty:ty),*) => {$(
            impl Strategy for core::ops::Range<$ty> {
                type Value = $ty;
                fn sample_value(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    // Mimic real proptest's bias toward range endpoints.
                    match rng.below(8) {
                        0 => self.start,
                        1 => self.start.wrapping_add((span - 1) as $ty),
                        _ => self.start.wrapping_add(rng.below(span) as $ty),
                    }
                }
            }
            impl Strategy for core::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn sample_value(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $ty;
                    }
                    lo.wrapping_add(rng.below(span + 1) as $ty)
                }
            }
        )*};
    }

    int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_strategies {
        ($($ty:ty),*) => {$(
            impl Strategy for core::ops::Range<$ty> {
                type Value = $ty;
                fn sample_value(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    // Mimic real proptest's bias toward range endpoints.
                    if rng.below(8) == 0 {
                        return self.start;
                    }
                    let span = self.end - self.start;
                    let v = self.start + rng.unit_f64() as $ty * span;
                    if v < self.end { v } else { self.start }
                }
            }
        )*};
    }

    float_strategies!(f32, f64);

    macro_rules! tuple_strategies {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// `&str` as a regex-ish string strategy. Supports the tiny subset
    /// used here: literals, `[a-z0-9_]`-style classes, quantifiers
    /// `{m,n}` / `{n}` / `+` / `*` / `?`.
    impl Strategy for &'static str {
        type Value = String;
        fn sample_value(&self, rng: &mut TestRng) -> String {
            sample_pattern(self, rng)
        }
    }

    fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // Parse one atom: a char class or a literal character.
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .expect("unclosed [ in pattern")
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        for c in lo..=hi {
                            set.push(char::from_u32(c).unwrap());
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            // Parse an optional quantifier.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unclosed { in pattern")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse::<usize>().expect("bad {m,n}"),
                        b.trim().parse::<usize>().expect("bad {m,n}"),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().expect("bad {n}");
                        (n, n)
                    }
                }
            } else if i < chars.len() && (chars[i] == '+' || chars[i] == '*' || chars[i] == '?') {
                let q = chars[i];
                i += 1;
                match q {
                    '+' => (1, 8),
                    '*' => (0, 8),
                    _ => (0, 1),
                }
            } else {
                (1, 1)
            };
            let n = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..n {
                let k = rng.below(alphabet.len() as u64) as usize;
                out.push(alphabet[k]);
            }
        }
        out
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample_value(rng)).collect()
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct Any;

    #[allow(non_upper_case_globals)]
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union {
            options: vec![$($crate::strategy::Strategy::boxed($strat)),+],
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_env();
            let seed = rng.initial_seed();
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample_value(&($strat), &mut rng);)+
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| { $body }));
                if let Err(e) = result {
                    eprintln!(
                        "[proptest-stub] {} failed at case {case}; rerun with PROPTEST_SEED={seed}",
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(e);
                }
            }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}
