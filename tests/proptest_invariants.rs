//! Property-based invariants (proptest) across the workspace's core data
//! structures: exactness of the executor against brute force, estimator
//! bounds, window semantics, geometry algebra, and learner robustness.

use estimators::{build_estimator, EstimatorConfig, EstimatorKind};
use exactdb::{ExactExecutor, SpatialIndexKind};
use geostream::{
    Duration, GeoTextObject, KeywordId, ObjectId, Point, RcDvq, Rect, SlidingWindow, Timestamp,
};
use hoeffding::{AttributeSpec, HoeffdingTree, HoeffdingTreeConfig, Schema, Value};
use proptest::prelude::*;

const DOMAIN: Rect = Rect {
    min_x: 0.0,
    min_y: 0.0,
    max_x: 100.0,
    max_y: 100.0,
};

fn arb_point() -> impl Strategy<Value = Point> {
    (0.0..100.0f64, 0.0..100.0f64).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (0.0..90.0f64, 0.0..90.0f64, 0.5..40.0f64, 0.5..40.0f64)
        .prop_map(|(x, y, w, h)| Rect::new(x, y, (x + w).min(100.0), (y + h).min(100.0)))
}

fn arb_object(id: u64) -> impl Strategy<Value = GeoTextObject> {
    (arb_point(), proptest::collection::vec(0u32..30, 0..4)).prop_map(move |(loc, kws)| {
        GeoTextObject::new(
            ObjectId(id),
            loc,
            kws.into_iter().map(KeywordId).collect(),
            Timestamp(id),
        )
    })
}

fn arb_objects(n: usize) -> impl Strategy<Value = Vec<GeoTextObject>> {
    proptest::collection::vec(arb_point(), n..=n).prop_flat_map(|pts| {
        let kws = proptest::collection::vec(proptest::collection::vec(0u32..30, 0..4), pts.len());
        (Just(pts), kws).prop_map(|(pts, kws)| {
            pts.into_iter()
                .zip(kws)
                .enumerate()
                .map(|(i, (loc, kw))| {
                    GeoTextObject::new(
                        ObjectId(i as u64),
                        loc,
                        kw.into_iter().map(KeywordId).collect(),
                        Timestamp(i as u64),
                    )
                })
                .collect()
        })
    })
}

fn arb_query() -> impl Strategy<Value = RcDvq> {
    prop_oneof![
        arb_rect().prop_map(RcDvq::spatial),
        proptest::collection::vec(0u32..30, 1..4)
            .prop_map(|k| RcDvq::keyword(k.into_iter().map(KeywordId).collect())),
        (arb_rect(), proptest::collection::vec(0u32..30, 1..4))
            .prop_map(|(r, k)| { RcDvq::hybrid(r, k.into_iter().map(KeywordId).collect()) }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn executor_matches_brute_force(objects in arb_objects(120), query in arb_query()) {
        let mut grid = ExactExecutor::new(DOMAIN, SpatialIndexKind::Grid);
        let mut quad = ExactExecutor::new(DOMAIN, SpatialIndexKind::Quadtree);
        let mut rtree = ExactExecutor::new(DOMAIN, SpatialIndexKind::RTree);
        for o in &objects {
            grid.insert(o);
            quad.insert(o);
            rtree.insert(o);
        }
        let brute = objects.iter().filter(|o| query.matches(o)).count() as u64;
        prop_assert_eq!(grid.execute(&query), brute);
        prop_assert_eq!(quad.execute(&query), brute);
        prop_assert_eq!(rtree.execute(&query), brute);
    }

    #[test]
    fn rtree_invariants_survive_arbitrary_churn(
        objects in arb_objects(150),
        drop in proptest::collection::vec(proptest::bool::ANY, 150)
    ) {
        let mut store = exactdb::ObjectStore::new();
        let mut t = exactdb::rtree::RTreeIndex::new();
        for o in &objects {
            let slot = store.insert(o.clone());
            t.insert(slot, &store);
        }
        for (o, d) in objects.iter().zip(&drop) {
            if *d {
                let (slot, _) = store.remove(o.oid).expect("object was inserted");
                prop_assert!(t.remove(slot, &store));
            }
        }
        t.check_invariants(&store);
        let live = objects.iter().zip(&drop).filter(|(_, d)| !**d).count();
        prop_assert_eq!(t.len(), live);
    }

    #[test]
    fn estimators_stay_bounded(objects in arb_objects(150), query in arb_query()) {
        let config = EstimatorConfig {
            domain: DOMAIN,
            reservoir_capacity: 64, // force real sampling
            ..EstimatorConfig::default()
        };
        for kind in EstimatorKind::ALL {
            let mut est = build_estimator(kind, &config);
            for o in &objects {
                est.insert(o);
            }
            let e = est.estimate(&query);
            prop_assert!(e.is_finite() && e >= 0.0, "{}: estimate {}", kind, e);
            // No estimator may exceed the window population by more than
            // 1% numerical slack (H4096's keyword fallback answers the
            // whole population; nothing should answer more).
            prop_assert!(
                e <= objects.len() as f64 * 1.01 + 1.0,
                "{}: estimate {} exceeds population {}",
                kind, e, objects.len()
            );
        }
    }

    #[test]
    fn full_capacity_sampler_is_exact(objects in arb_objects(100), query in arb_query()) {
        // Reservoir bigger than the stream ⇒ the sample IS the window.
        let config = EstimatorConfig {
            domain: DOMAIN,
            reservoir_capacity: 1_000,
            ..EstimatorConfig::default()
        };
        let brute = objects.iter().filter(|o| query.matches(o)).count() as f64;
        for kind in [EstimatorKind::Rsl, EstimatorKind::Rsh] {
            let mut est = build_estimator(kind, &config);
            for o in &objects {
                est.insert(o);
            }
            let e = est.estimate(&query);
            prop_assert!((e - brute).abs() < 1e-6, "{}: {} vs {}", kind, e, brute);
        }
    }

    #[test]
    fn removal_is_inverse_of_insertion(objects in arb_objects(80)) {
        let config = EstimatorConfig {
            domain: DOMAIN,
            reservoir_capacity: 1_000,
            ..EstimatorConfig::default()
        };
        let whole = RcDvq::spatial(DOMAIN);
        for kind in [
            EstimatorKind::H4096,
            EstimatorKind::Rsl,
            EstimatorKind::Rsh,
            EstimatorKind::Aasp,
        ] {
            let mut est = build_estimator(kind, &config);
            for o in &objects {
                est.insert(o);
            }
            for o in &objects {
                est.remove(o);
            }
            prop_assert_eq!(est.population(), 0);
            let residue = est.estimate(&whole);
            prop_assert!(residue.abs() < 1e-6, "{}: residue {}", kind, residue);
        }
    }

    #[test]
    fn window_holds_exactly_the_recent_span(gaps in proptest::collection::vec(0u64..50, 1..200)) {
        let span = Duration(200);
        let mut w = SlidingWindow::new(span);
        let mut evicted = Vec::new();
        let mut t = 0u64;
        for (i, gap) in gaps.iter().enumerate() {
            t += gap;
            w.insert(
                GeoTextObject::new(ObjectId(i as u64), Point::new(0.0, 0.0), vec![], Timestamp(t)),
                &mut evicted,
            );
        }
        let horizon = w.horizon();
        // Everything in the window is within the span; everything evicted
        // is strictly older.
        for o in w.iter() {
            prop_assert!(o.timestamp >= horizon);
        }
        for o in &evicted {
            prop_assert!(o.timestamp < horizon);
        }
        prop_assert_eq!(w.len() + evicted.len(), gaps.len());
    }

    #[test]
    fn rect_intersection_is_commutative_and_contained(a in arb_rect(), b in arb_rect()) {
        let ab = a.intersection(&b);
        let ba = b.intersection(&a);
        prop_assert_eq!(ab, ba);
        if let Some(i) = ab {
            prop_assert!(a.contains_rect(&i));
            prop_assert!(b.contains_rect(&i));
            prop_assert!(i.area() <= a.area().min(b.area()) + 1e-9);
        }
    }

    #[test]
    fn rect_coverage_is_a_fraction(a in arb_rect(), b in arb_rect()) {
        let c = a.coverage_by(&b);
        prop_assert!((0.0..=1.0).contains(&c));
        // Self-coverage is total.
        prop_assert!((a.coverage_by(&a) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn quadrants_partition_points(r in arb_rect(), fx in 0.0..1.0f64, fy in 0.0..1.0f64) {
        // Generate the point inside the rect directly (a random point
        // almost never lands in a random rect).
        let p = Point::new(
            r.min_x + fx * r.width(),
            r.min_y + fy * r.height(),
        );
        let q = r.quadrant_of(&p);
        let quads = r.quadrants();
        prop_assert!(quads[q].contains(&p));
        // The point is in exactly one half-open quadrant; the chosen one
        // must be consistent with the split.
        let c = r.center();
        prop_assert_eq!(q, (usize::from(p.y >= c.y)) * 2 + usize::from(p.x >= c.x));
    }

    #[test]
    fn hoeffding_tree_is_total_on_valid_instances(
        records in proptest::collection::vec((0u32..3, 0.0..1.0f64, 0u32..2), 1..300)
    ) {
        let schema = Schema::new(
            vec![
                AttributeSpec::categorical("c", 3),
                AttributeSpec::numeric("x"),
            ],
            2,
        );
        let mut tree = HoeffdingTree::new(schema, HoeffdingTreeConfig {
            grace_period: 20,
            ..HoeffdingTreeConfig::default()
        });
        for (c, x, label) in &records {
            tree.train(&vec![Value::Cat(*c), Value::Num(*x)], *label);
        }
        // Predictions never panic and stay in the class range.
        for (c, x, _) in records.iter().take(20) {
            let p = tree.predict(&vec![Value::Cat(*c), Value::Num(*x)]);
            prop_assert!(p < 2);
        }
        prop_assert_eq!(tree.instances_seen(), records.len() as u64);
    }

    #[test]
    fn object_dedup_and_matching(obj in arb_object(7), kw in 0u32..30) {
        // Keyword lists are sorted/deduped, and matching agrees with a
        // linear scan.
        let sorted: Vec<_> = obj.keywords.to_vec();
        let mut resorted = sorted.clone();
        resorted.sort_unstable();
        resorted.dedup();
        prop_assert_eq!(&sorted, &resorted);
        let needle = KeywordId(kw);
        prop_assert_eq!(obj.has_keyword(needle), obj.keywords.contains(&needle));
    }
}
