//! Sharded scatter-gather equivalence: a [`ShardedLatest`] must be an
//! implementation detail, never a semantics change.
//!
//! Three contracts are proven against one deterministic stream (no
//! external RNG, identical on every run), with the accuracy/latency
//! trade-off pinned to accuracy only (α = 0) so wall-clock noise cannot
//! leak into adaptor decisions:
//!
//! 1. **shards = 1 is bit-equal to unsharded.** Every decision-bearing
//!    field of every [`QueryOutcome`] — estimate bits, actual, accuracy
//!    bits, estimator, phase, switched, served_by — matches a plain
//!    [`Latest`] fed the identical batches, for all six estimator kinds
//!    crossed with both router policies.
//! 2. **shards > 1 preserves ground truth and window alignment.** Exact
//!    merged counts equal the unsharded count, and the summed per-shard
//!    window occupancy equals the unsharded occupancy after every batch —
//!    including batches concentrated on one spatial strip, where the
//!    batched eviction clock (`AdvanceTo`) is the only thing keeping the
//!    idle shards' horizons aligned.
//! 3. **Routing is sound.** For any object and any query that matches
//!    it, the query's fan-out set contains the object's owning shard
//!    (property-tested over both policies and shard counts).

use estimators::{EstimatorConfig, EstimatorKind};
use geostream::{Duration, GeoTextObject, KeywordId, ObjectId, Point, RcDvq, Rect, Timestamp};
use latest_core::{
    Latest, LatestConfig, QueryOptions, RouterPolicy, ShardConfig, ShardRouter, ShardedLatest,
};
use proptest::prelude::*;

const DOMAIN: Rect = Rect {
    min_x: 0.0,
    min_y: 0.0,
    max_x: 100.0,
    max_y: 100.0,
};

/// Deterministic LCG (no external RNG, identical on every run).
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6_364_136_223_846_793_005)
        .wrapping_add(1);
    *state >> 11
}

/// An object somewhere in the domain; 16-word vocabulary so keyword
/// queries hit often enough to exercise the merge path.
fn make_obj(id: u64, r: u64, t: Timestamp) -> GeoTextObject {
    let n_kws = 1 + r % 3;
    let kws: Vec<KeywordId> = (0..n_kws)
        .map(|k| KeywordId(((r >> 9) + k) as u32 % 16))
        .collect();
    GeoTextObject::new(
        ObjectId(id),
        Point::new((r % 1_000) as f64 / 10.0, ((r >> 17) % 1_000) as f64 / 10.0),
        kws,
        t,
    )
}

/// An object pinned to the left spatial strip: under a spatial-tile
/// router most shards receive nothing from it, so only the batched
/// eviction clock keeps their windows moving.
fn make_left_obj(id: u64, r: u64, t: Timestamp) -> GeoTextObject {
    let mut obj = make_obj(id, r, t);
    obj.loc.x = (r % 100) as f64 / 10.0; // [0, 10): first of 4 strips
    obj
}

fn probe(r: u64) -> RcDvq {
    let x = (r % 60) as f64;
    let y = ((r >> 13) % 60) as f64;
    let rect = Rect::new(x, y, x + 25.0, y + 30.0);
    match r % 3 {
        0 => RcDvq::spatial(rect),
        1 => RcDvq::keyword(vec![KeywordId(r as u32 % 16)]),
        _ => RcDvq::hybrid(rect, vec![KeywordId((r >> 5) as u32 % 16)]),
    }
}

fn config(kind: EstimatorKind, shards: usize, router: RouterPolicy) -> LatestConfig {
    LatestConfig::builder()
        .window_span(Duration::from_secs(2))
        .warmup(Duration::from_secs(2))
        .pretrain_queries(16)
        .accuracy_window(8)
        .min_switch_spacing(8)
        // Rewards depend on accuracy alone: measured latencies differ
        // between the replays but must not change any decision.
        .alpha(0.0)
        .shadow_metrics(false)
        .default_estimator(kind)
        .estimator_config(EstimatorConfig {
            domain: DOMAIN,
            reservoir_capacity: 512,
            ..EstimatorConfig::default()
        })
        .shard(ShardConfig {
            shards,
            queue_capacity: 4_096,
            router,
        })
        .build()
        .expect("test parameters are in range")
}

/// Feeds the identical deterministic stream to a one-shard engine and a
/// plain [`Latest`] and demands bit-equal outcomes at every step, from
/// warm-up through pre-training into the incremental phase.
fn assert_one_shard_bit_equal(kind: EstimatorKind, router: RouterPolicy) {
    let sharded = ShardedLatest::new(config(kind, 1, router)).expect("one shard spawns");
    let mut solo = Latest::new(config(kind, 1, router));
    let mut rng = 0x5eed_0001 ^ (kind.index() as u64) << 8;
    let mut clock = Timestamp::ZERO;
    let mut next_id = 0u64;
    for round in 0..48u32 {
        let batch: Vec<GeoTextObject> = (0..48)
            .map(|_| {
                let r = lcg(&mut rng);
                clock = clock.after(Duration::from_millis(r % 5));
                next_id += 1;
                make_obj(next_id, r, clock)
            })
            .collect();
        sharded.ingest_batch(&batch).expect("shard is live");
        solo.ingest_batch(&batch);
        let queries: Vec<RcDvq> = (0..6).map(|_| probe(lcg(&mut rng))).collect();
        let sharded_outs = sharded
            .query_batch(&queries, QueryOptions::at(clock))
            .expect("shard is live");
        let solo_outs = solo.query_batch(&queries, QueryOptions::at(clock));
        assert_eq!(sharded_outs.len(), solo_outs.len());
        for (i, (a, b)) in sharded_outs.iter().zip(&solo_outs).enumerate() {
            let ctx = format!("{}/{} round {round} query {i}", kind.name(), router.name());
            assert_eq!(
                a.estimate.to_bits(),
                b.estimate.to_bits(),
                "estimate: {ctx}"
            );
            assert_eq!(a.actual, b.actual, "actual: {ctx}");
            assert_eq!(
                a.accuracy.to_bits(),
                b.accuracy.to_bits(),
                "accuracy: {ctx}"
            );
            assert_eq!(a.estimator, b.estimator, "estimator: {ctx}");
            assert_eq!(a.phase, b.phase, "phase: {ctx}");
            assert_eq!(a.switched, b.switched, "switched: {ctx}");
            assert_eq!(a.served_by, b.served_by, "served_by: {ctx}");
        }
    }
    // The accumulated learning state matches too: the shard worked
    // through the identical phase schedule and window churn.
    let snap = sharded.metrics_snapshot().expect("shard is live");
    assert_eq!(snap.phase, solo.phase(), "{}", kind.name());
    assert_eq!(
        snap.window.occupancy,
        solo.window_len() as u64,
        "{}: final occupancy drifted",
        kind.name()
    );
    assert_eq!(sharded.clock(), clock);
    assert!(sharded.shutdown() > 0);
}

#[test]
fn one_shard_is_bit_equal_to_unsharded_under_hash_routing() {
    for kind in EstimatorKind::ALL {
        assert_one_shard_bit_equal(kind, RouterPolicy::HashOid);
    }
}

#[test]
fn one_shard_is_bit_equal_to_unsharded_under_spatial_routing() {
    for kind in EstimatorKind::ALL {
        assert_one_shard_bit_equal(kind, RouterPolicy::SpatialTile);
    }
}

/// Multi-shard engines must report the same exact counts and the same
/// total window occupancy as an unsharded instance at every step —
/// including rounds where all arrivals land on one spatial strip and the
/// other shards advance by eviction clock alone.
fn assert_sharded_ground_truth(shards: usize, router: RouterPolicy) {
    let sharded =
        ShardedLatest::new(config(EstimatorKind::Rsh, shards, router)).expect("shards spawn");
    let mut solo = Latest::new(config(EstimatorKind::Rsh, shards, router));
    let mut rng = 0xc0ffee ^ shards as u64;
    let mut clock = Timestamp::ZERO;
    let mut next_id = 0u64;
    for round in 0..40u32 {
        // Every fourth round concentrates arrivals on the leftmost strip
        // (and occasionally jumps the clock) so idle shards must evict
        // purely off the batched `AdvanceTo`.
        let concentrated = round % 4 == 3;
        let batch: Vec<GeoTextObject> = (0..48)
            .map(|_| {
                let r = lcg(&mut rng);
                let step = if concentrated { 12 } else { r % 5 };
                clock = clock.after(Duration::from_millis(step));
                next_id += 1;
                if concentrated {
                    make_left_obj(next_id, r, clock)
                } else {
                    make_obj(next_id, r, clock)
                }
            })
            .collect();
        sharded.ingest_batch(&batch).expect("shards are live");
        solo.ingest_batch(&batch);

        let queries: Vec<RcDvq> = (0..4).map(|_| probe(lcg(&mut rng))).collect();
        let exact = QueryOptions::at(clock).exact(true);
        let merged = sharded
            .query_batch(&queries, exact)
            .expect("shards are live");
        let truth = solo.query_batch(&queries, exact);
        for (i, (m, t)) in merged.iter().zip(&truth).enumerate() {
            assert_eq!(
                m.actual,
                t.actual,
                "{} shards / {}: round {round} query {i} merged exact count",
                shards,
                router.name()
            );
        }

        // Eviction-clock alignment: total live objects across every
        // shard equals the unsharded window at the same horizon.
        let snap = sharded.metrics_snapshot().expect("shards are live");
        assert_eq!(
            snap.window.occupancy,
            solo.window_len() as u64,
            "{} shards / {}: round {round} occupancy drifted",
            shards,
            router.name()
        );
        assert_eq!(
            snap.window.ingested - snap.window.evicted,
            snap.window.occupancy,
            "{} shards / {}: round {round} flow conservation",
            shards,
            router.name()
        );
    }
    assert_eq!(sharded.shutdown(), next_id);
}

#[test]
fn multi_shard_exact_counts_and_occupancy_match_unsharded() {
    for shards in [2usize, 4] {
        assert_sharded_ground_truth(shards, RouterPolicy::HashOid);
        assert_sharded_ground_truth(shards, RouterPolicy::SpatialTile);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Scatter-gather soundness: whenever a query matches an object, the
    /// query's fan-out set contains the shard that owns the object — for
    /// both policies and every shard count. Losing this property silently
    /// undercounts; the merge layer can never recover it.
    #[test]
    fn matching_objects_are_always_inside_the_query_fanout(
        shards in 1usize..9,
        x in 0.0f64..100.0,
        y in 0.0f64..100.0,
        kw in 0u32..16,
        qx in 0.0f64..75.0,
        qy in 0.0f64..70.0,
        oid in 0u64..1_000_000,
    ) {
        let obj = GeoTextObject::new(
            ObjectId(oid),
            Point::new(x, y),
            vec![KeywordId(kw)],
            Timestamp(1),
        );
        let rect = Rect::new(qx, qy, qx + 25.0, qy + 30.0);
        let queries = [
            RcDvq::spatial(rect),
            RcDvq::keyword(vec![KeywordId(kw)]),
            RcDvq::hybrid(rect, vec![KeywordId(kw)]),
        ];
        for policy in [RouterPolicy::HashOid, RouterPolicy::SpatialTile] {
            let router = ShardRouter::new(policy, shards, DOMAIN);
            let owner = router.route_object(&obj);
            prop_assert!(owner < shards, "{}: owner out of range", policy.name());
            for q in &queries {
                let fanout = router.route_query(q);
                prop_assert!(!fanout.is_empty(), "{}: empty fan-out", policy.name());
                prop_assert!(
                    fanout.windows(2).all(|w| w[0] < w[1]),
                    "{}: fan-out not strictly ascending", policy.name()
                );
                prop_assert!(
                    fanout.iter().all(|&s| s < shards),
                    "{}: fan-out out of range", policy.name()
                );
                if q.matches(&obj) {
                    prop_assert!(
                        fanout.contains(&owner),
                        "{}: shard {owner} owns a matching object but is \
                         outside the fan-out {fanout:?} of {q:?}",
                        policy.name()
                    );
                }
            }
        }
    }
}
