//! Batch-ingestion equivalence: for every `EstimatorKind`, driving the
//! estimator through `insert_batch`/`remove_batch` must leave it
//! estimate-equivalent to feeding the same objects one at a time. This is
//! the contract the estimator pool and the pipeline's batched consumer
//! rely on; it must hold for arbitrary batch partitionings, including the
//! RNG-consumption order of the randomized sketches.

use estimators::{build_estimator, EstimatorConfig, EstimatorKind};
use geostream::{GeoTextObject, KeywordId, ObjectId, Point, RcDvq, Rect, Timestamp};
use proptest::prelude::*;

const DOMAIN: Rect = Rect {
    min_x: 0.0,
    min_y: 0.0,
    max_x: 100.0,
    max_y: 100.0,
};

fn config() -> EstimatorConfig {
    EstimatorConfig {
        domain: DOMAIN,
        // Smaller than the object count, so the reservoir samplers leave
        // their RNG-free fill phase and the equivalence covers the
        // steady-state sampling path too.
        reservoir_capacity: 48,
        ..EstimatorConfig::default()
    }
}

fn arb_objects(n: usize) -> impl Strategy<Value = Vec<GeoTextObject>> {
    let one = (
        0.0..100.0f64,
        0.0..100.0f64,
        proptest::collection::vec(0u32..30, 0..4),
    );
    proptest::collection::vec(one, n..=n).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (x, y, kws))| {
                GeoTextObject::new(
                    ObjectId(i as u64),
                    Point::new(x, y),
                    kws.into_iter().map(KeywordId).collect(),
                    Timestamp(i as u64),
                )
            })
            .collect()
    })
}

/// Splits `objs` into consecutive chunks whose sizes cycle through
/// `sizes`, so a single proptest vector exercises many partitionings.
fn chunked<'a>(objs: &'a [GeoTextObject], sizes: &[usize]) -> Vec<&'a [GeoTextObject]> {
    let mut chunks = Vec::new();
    let mut at = 0;
    let mut i = 0;
    while at < objs.len() {
        let take = sizes[i % sizes.len()].clamp(1, objs.len() - at);
        chunks.push(&objs[at..at + take]);
        at += take;
        i += 1;
    }
    chunks
}

fn probe_queries() -> Vec<RcDvq> {
    vec![
        RcDvq::spatial(DOMAIN),
        RcDvq::spatial(Rect::new(10.0, 10.0, 55.0, 60.0)),
        RcDvq::keyword(vec![KeywordId(3)]),
        RcDvq::keyword(vec![KeywordId(7), KeywordId(21)]),
        RcDvq::hybrid(Rect::new(25.0, 0.0, 90.0, 45.0), vec![KeywordId(12)]),
    ]
}

fn assert_estimate_equivalent(
    kind: EstimatorKind,
    singles: &dyn estimators::SelectivityEstimator,
    batched: &dyn estimators::SelectivityEstimator,
) {
    assert_eq!(
        singles.population(),
        batched.population(),
        "{kind}: populations diverged"
    );
    for q in probe_queries() {
        let (a, b) = (singles.estimate(&q), batched.estimate(&q));
        assert!(
            (a - b).abs() <= 1e-9 * a.abs().max(1.0),
            "{kind}: estimates diverged on {q:?}: {a} vs {b}"
        );
    }
}

proptest! {
    // FFN/SPN construction dominates the runtime; keep the case count
    // modest — every case already covers all six kinds.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn insert_batch_matches_one_at_a_time(
        objects in arb_objects(140),
        sizes in proptest::collection::vec(1usize..24, 1..6),
    ) {
        for kind in EstimatorKind::ALL {
            let mut singles = build_estimator(kind, &config());
            let mut batched = build_estimator(kind, &config());
            for o in &objects {
                singles.insert(o);
            }
            for chunk in chunked(&objects, &sizes) {
                batched.insert_batch(chunk);
            }
            assert_estimate_equivalent(kind, singles.as_ref(), batched.as_ref());
        }
    }

    #[test]
    fn remove_batch_matches_one_at_a_time(
        objects in arb_objects(120),
        sizes in proptest::collection::vec(1usize..24, 1..6),
        drop_half in proptest::bool::ANY,
    ) {
        let cut = if drop_half { objects.len() / 2 } else { objects.len() };
        for kind in EstimatorKind::ALL {
            let mut singles = build_estimator(kind, &config());
            let mut batched = build_estimator(kind, &config());
            // Identical builds (same seed, same order) …
            singles.insert_batch(&objects);
            batched.insert_batch(&objects);
            // … then remove the prefix singly on one and batched on the
            // other.
            for o in &objects[..cut] {
                singles.remove(o);
            }
            for chunk in chunked(&objects[..cut], &sizes) {
                batched.remove_batch(chunk);
            }
            assert_estimate_equivalent(kind, singles.as_ref(), batched.as_ref());
        }
    }
}
