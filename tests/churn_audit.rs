//! Cross-crate churn harness for the deep invariant auditors
//! (`--features debug-invariants`).
//!
//! One deterministic stream drives every stateful structure in the stack
//! at once — the sliding window, the full six-estimator pool, and an
//! exact executor per spatial backend — and the auditors sweep all of
//! them at fixed intervals. The stream is shaped to hit the accounting
//! edge cases the auditors exist for: swap-remove slot recycling in the
//! sample stores, lazy posting tombstones crossing the 25% compaction
//! threshold mid-removal, and estimator populations drifting past their
//! sample capacities.
//!
//! The harness asserts nothing about estimate quality; it asserts the
//! *bookkeeping* stays exactly consistent under sustained churn.

use estimators::store::SampleStore;
use estimators::EstimatorConfig;
use estimators::EstimatorKind;
use exactdb::{ExactExecutor, SpatialIndexKind};
use geostream::{
    Duration, GeoTextObject, KeywordId, ObjectId, Point, RcDvq, Rect, SlidingWindow, Timestamp,
};
use latest_core::{
    EstimatorPool, LatestConfig, QueryOptions, RouterPolicy, ShardConfig, ShardedLatest,
};

const DOMAIN: Rect = Rect {
    min_x: 0.0,
    min_y: 0.0,
    max_x: 100.0,
    max_y: 100.0,
};

/// Deterministic LCG (no external RNG, identical on every run).
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6_364_136_223_846_793_005)
        .wrapping_add(1);
    *state >> 11
}

fn make_obj(id: u64, r: u64, t: Timestamp) -> GeoTextObject {
    // Few distinct keywords (16) over thousands of live objects: posting
    // lists grow long and shared, so eviction churn repeatedly trips the
    // 25% tombstone compaction threshold.
    let n_kws = r % 4;
    let kws: Vec<KeywordId> = (0..n_kws)
        .map(|k| KeywordId(((r >> 9) + k) as u32 % 16))
        .collect();
    GeoTextObject::new(
        ObjectId(id),
        Point::new((r % 1_000) as f64 / 10.0, ((r >> 17) % 1_000) as f64 / 10.0),
        kws,
        t,
    )
}

fn probes(r: u64) -> RcDvq {
    let x = (r % 60) as f64;
    let y = ((r >> 13) % 60) as f64;
    let rect = Rect::new(x, y, x + 25.0, y + 30.0);
    match r % 3 {
        0 => RcDvq::spatial(rect),
        1 => RcDvq::keyword(vec![KeywordId(r as u32 % 16)]),
        _ => RcDvq::hybrid(rect, vec![KeywordId((r >> 5) as u32 % 16)]),
    }
}

/// 12k stream events churn the window, the full estimator pool, and all
/// three exact backends together; every structure must stay audit-clean
/// at every sweep, and the cross-structure populations must agree.
#[test]
fn full_stack_stays_audit_clean_under_churn() {
    // Small reservoirs: the samplers leave their fill phase early, so
    // steady-state replacement (swap-remove recycling) dominates.
    let config = EstimatorConfig {
        domain: DOMAIN,
        reservoir_capacity: 256,
        ..EstimatorConfig::default()
    };
    let mut window = SlidingWindow::new(Duration::from_millis(2_000));
    let mut pool = EstimatorPool::full(&config, 2);
    let mut execs: Vec<ExactExecutor> = [
        SpatialIndexKind::Grid,
        SpatialIndexKind::Quadtree,
        SpatialIndexKind::RTree,
    ]
    .into_iter()
    .map(|k| ExactExecutor::new(DOMAIN, k))
    .collect();

    let mut rng = 0x1a7e57u64;
    let mut clock = Timestamp::ZERO;
    let mut evicted = Vec::new();
    for i in 0..12_000u64 {
        let r = lcg(&mut rng);
        clock = clock.after(Duration::from_millis(r % 3));
        let obj = make_obj(i, r, clock);
        evicted.clear();
        window.insert(obj.clone(), &mut evicted);
        for e in &mut execs {
            e.insert(&obj);
            for gone in &evicted {
                assert!(
                    e.remove_by_oid(gone.oid),
                    "evicted {:?} not indexed",
                    gone.oid
                );
            }
        }
        let arrived = [obj];
        pool.apply_batch(&arrived, &evicted);

        // Periodic measurement rounds keep the query-feedback paths
        // (observe_query, path-mix counters) inside the churn loop.
        if i % 101 == 0 {
            let q = probes(r);
            let truth = execs[0].execute(&q);
            for e in &execs[1..] {
                assert_eq!(e.execute(&q), truth, "backends disagree on {q:?}");
            }
            pool.measure(&q, truth);
        }

        if i % 500 == 0 || i == 11_999 {
            window.audit().unwrap_or_else(|e| panic!("step {i}: {e}"));
            pool.audit().unwrap_or_else(|e| panic!("step {i}: {e}"));
            for e in &execs {
                e.audit()
                    .unwrap_or_else(|err| panic!("step {i} {:?}: {err}", e.kind()));
                assert_eq!(
                    e.len(),
                    window.len(),
                    "step {i}: {:?} population drifted from the window",
                    e.kind()
                );
            }
        }
    }
    assert!(
        execs.iter().all(|e| e.compactions() > 0),
        "stream never tripped posting compaction — churn too weak to audit it"
    );
}

/// Targeted slot-recycling torture for the shared [`SampleStore`]: the
/// store oscillates around a small size so nearly every slot is a
/// swap-remove recycled one, keywords come from a 16-word vocabulary so
/// the shared posting lists cross the compaction threshold many times,
/// and removals and in-place replacements interleave mid-stream so
/// compaction fires *during* the remove path (the `dead-counter` /
/// `posting-coverage` edge), not only between batches.
#[test]
fn sample_store_recycling_and_midstream_compaction_stay_audit_clean() {
    let mut s = SampleStore::new(true);
    let mut rng = 0xdecafu64;
    let mut live: Vec<ObjectId> = Vec::new();
    for i in 0..6_000u64 {
        let r = lcg(&mut rng);
        // Heavily removal-biased once warm: the store oscillates around a
        // small size, so nearly every slot is a recycled one.
        if live.len() > 32 && r % 5 < 2 {
            let victim = live.swap_remove((r % live.len() as u64) as usize);
            assert!(s.remove(victim).is_some());
        } else if !live.is_empty() && r % 7 == 0 {
            // In-place replacement: the old object's postings die while
            // the slot stays occupied by the new one.
            let slot = (r % s.len() as u64) as u32;
            let old = s.oids()[slot as usize];
            s.replace(slot, &make_obj(1_000_000 + i, r | 1, Timestamp(i)));
            let at = live.iter().position(|&o| o == old).unwrap();
            live[at] = ObjectId(1_000_000 + i);
        } else {
            s.push(&make_obj(i, r | 1, Timestamp(i)));
            live.push(ObjectId(i));
        }
        if i % 199 == 0 {
            s.audit().unwrap_or_else(|e| panic!("step {i}: {e}"));
        }
    }
    s.audit().expect("final audit");
    assert_eq!(s.len(), live.len());
}

/// Sharded-engine churn: a [`ShardedLatest`] under sustained batched
/// ingest, scatter-gather queries, and window turnover must keep its
/// cross-shard invariants — every live object on the shard the router
/// maps it to, no object on two shards, and per-shard flow counters
/// summing to the global occupancy — for both router policies.
#[test]
fn sharded_engine_stays_audit_clean_under_churn() {
    for policy in [RouterPolicy::HashOid, RouterPolicy::SpatialTile] {
        let config = LatestConfig::builder()
            .window_span(Duration::from_millis(2_000))
            .warmup(Duration::from_millis(2_000))
            .pretrain_queries(16)
            .alpha(0.0)
            .default_estimator(EstimatorKind::Rsh)
            .estimator_config(EstimatorConfig {
                domain: DOMAIN,
                reservoir_capacity: 256,
                ..EstimatorConfig::default()
            })
            .shard(ShardConfig {
                shards: 3,
                queue_capacity: 1_024,
                router: policy,
            })
            .build()
            .expect("test parameters are in range");
        let engine = ShardedLatest::new(config).expect("shards spawn");
        let mut rng = 0x5a4d_0a0du64 ^ policy as u64;
        let mut clock = Timestamp::ZERO;
        let mut next_id = 0u64;
        for round in 0..60u32 {
            let batch: Vec<GeoTextObject> = (0..64)
                .map(|_| {
                    let r = lcg(&mut rng);
                    clock = clock.after(Duration::from_millis(r % 4));
                    next_id += 1;
                    make_obj(next_id, r, clock)
                })
                .collect();
            engine.ingest_batch(&batch).expect("shards are live");
            // Keep the scatter-gather path inside the churn loop.
            let q = probes(lcg(&mut rng));
            let _ = engine
                .query(&q, QueryOptions::at(clock))
                .expect("shards are live");
            if round % 10 == 9 {
                engine
                    .audit()
                    .unwrap_or_else(|e| panic!("{} round {round}: {e}", policy.name()));
            }
        }
        assert_eq!(engine.shutdown(), next_id);
    }
}
