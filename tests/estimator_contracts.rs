//! Cross-crate estimator contracts: every estimator, driven through
//! realistic window churn, must honor the `SelectivityEstimator` interface
//! and stay within sane bounds of the exact executor's ground truth.

use estimators::{build_estimator, EstimatorConfig, EstimatorKind};
use exactdb::{ExactExecutor, SpatialIndexKind};
use geostream::synth::DatasetSpec;
use geostream::{GeoTextObject, KeywordId, Point, RcDvq, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

fn config(dataset: &DatasetSpec) -> EstimatorConfig {
    EstimatorConfig {
        domain: dataset.domain,
        reservoir_capacity: 2_000,
        ..EstimatorConfig::default()
    }
}

/// Streams `n` objects through a bounded FIFO window, keeping estimator
/// and executor synchronized, and returns them plus the executor.
fn churn(
    kind: EstimatorKind,
    n: usize,
    window: usize,
) -> (Box<dyn estimators::SelectivityEstimator>, ExactExecutor) {
    let dataset = DatasetSpec::twitter();
    let mut est = build_estimator(kind, &config(&dataset));
    let mut exact = ExactExecutor::new(dataset.domain, SpatialIndexKind::Grid);
    let mut gen = dataset.generator();
    let mut live: VecDeque<GeoTextObject> = VecDeque::new();
    for _ in 0..n {
        let obj = gen.next_object();
        est.insert(&obj);
        exact.insert(&obj);
        live.push_back(obj);
        if live.len() > window {
            let gone = live.pop_front().expect("non-empty");
            est.remove(&gone);
            exact.remove(&gone);
        }
    }
    (est, exact)
}

fn sample_queries(rng: &mut StdRng, domain: &Rect, n: usize) -> Vec<RcDvq> {
    (0..n)
        .map(|i| {
            let cx = rng.gen_range(domain.min_x..domain.max_x);
            let cy = rng.gen_range(domain.min_y..domain.max_y);
            let half = rng.gen_range(1.0..4.0);
            let rect = Rect::centered_clamped(Point::new(cx, cy), half, half, domain);
            match i % 3 {
                0 => RcDvq::spatial(rect),
                1 => RcDvq::keyword(vec![KeywordId(rng.gen_range(0..50))]),
                _ => RcDvq::hybrid(rect, vec![KeywordId(rng.gen_range(0..50))]),
            }
        })
        .collect()
}

#[test]
fn population_tracks_window_for_every_estimator() {
    for kind in EstimatorKind::ALL {
        let (est, exact) = churn(kind, 5_000, 3_000);
        assert_eq!(
            est.population(),
            exact.len() as u64,
            "{kind}: population diverged from window"
        );
    }
}

#[test]
fn estimates_are_finite_and_non_negative() {
    let dataset = DatasetSpec::twitter();
    let mut rng = StdRng::seed_from_u64(11);
    let queries = sample_queries(&mut rng, &dataset.domain, 60);
    for kind in EstimatorKind::ALL {
        let (est, _) = churn(kind, 4_000, 2_500);
        for q in &queries {
            let e = est.estimate(q);
            assert!(
                e.is_finite() && e >= 0.0,
                "{kind}: bad estimate {e} for {q:?}"
            );
        }
    }
}

#[test]
fn structure_estimators_beat_trivial_baselines() {
    // For the four structure estimators, the mean accuracy over mixed
    // queries must beat the "always answer zero" strawman.
    let dataset = DatasetSpec::twitter();
    let mut rng = StdRng::seed_from_u64(13);
    let queries = sample_queries(&mut rng, &dataset.domain, 90);
    for kind in [EstimatorKind::Rsl, EstimatorKind::Rsh, EstimatorKind::Aasp] {
        let (est, exact) = churn(kind, 6_000, 4_000);
        let (mut est_acc, mut zero_acc) = (0.0, 0.0);
        for q in &queries {
            let actual = exact.execute(q);
            est_acc += latest_core::estimation_accuracy(est.estimate(q), actual);
            zero_acc += latest_core::estimation_accuracy(0.0, actual);
        }
        assert!(
            est_acc > zero_acc,
            "{kind}: worse than answering zero ({est_acc:.1} vs {zero_acc:.1})"
        );
    }
}

#[test]
fn samplers_are_near_exact_on_broad_queries() {
    // A query matching thousands of objects has negligible sampling error.
    for kind in [EstimatorKind::Rsl, EstimatorKind::Rsh] {
        let (est, exact) = churn(kind, 5_000, 4_000);
        let q = RcDvq::spatial(DatasetSpec::twitter().domain);
        let actual = exact.execute(&q) as f64;
        let e = est.estimate(&q);
        assert!(
            (e - actual).abs() / actual < 0.05,
            "{kind}: whole-domain estimate off: {e} vs {actual}"
        );
    }
}

#[test]
fn histogram_is_exact_on_whole_domain() {
    let (est, exact) = churn(EstimatorKind::H4096, 5_000, 4_000);
    let q = RcDvq::spatial(DatasetSpec::twitter().domain);
    assert_eq!(est.estimate(&q).round() as u64, exact.execute(&q));
}

#[test]
fn clear_resets_every_estimator() {
    let dataset = DatasetSpec::twitter();
    for kind in EstimatorKind::ALL {
        let (mut est, _) = churn(kind, 2_000, 1_500);
        est.clear();
        assert_eq!(est.population(), 0, "{kind}: population after clear");
        let q = RcDvq::spatial(dataset.domain);
        assert_eq!(est.estimate(&q), 0.0, "{kind}: estimate after clear");
    }
}

#[test]
fn memory_accounting_is_plausible() {
    for kind in EstimatorKind::ALL {
        let (est_small, _) = churn(kind, 500, 400);
        let (est_big, _) = churn(kind, 6_000, 4_000);
        let (small, big) = (est_small.memory_bytes(), est_big.memory_bytes());
        assert!(small > 0 && big > 0, "{kind}: zero memory reported");
        assert!(
            big >= small,
            "{kind}: memory shrank with more data ({small} -> {big})"
        );
    }
}

#[test]
fn exact_backends_agree_under_churn() {
    let dataset = DatasetSpec::checkin();
    let mut grid = ExactExecutor::new(dataset.domain, SpatialIndexKind::Grid);
    let mut quad = ExactExecutor::new(dataset.domain, SpatialIndexKind::Quadtree);
    let mut gen = dataset.generator();
    let mut live: VecDeque<GeoTextObject> = VecDeque::new();
    for _ in 0..4_000 {
        let obj = gen.next_object();
        grid.insert(&obj);
        quad.insert(&obj);
        live.push_back(obj);
        if live.len() > 2_500 {
            let gone = live.pop_front().expect("non-empty");
            grid.remove(&gone);
            quad.remove(&gone);
        }
    }
    let mut rng = StdRng::seed_from_u64(17);
    for q in sample_queries(&mut rng, &dataset.domain, 60) {
        assert_eq!(
            grid.execute(&q),
            quad.execute(&q),
            "backends disagree on {q:?}"
        );
    }
    assert_eq!(grid.len(), quad.len());
}
