//! End-to-end integration: the full LATEST pipeline over synthetic
//! streams, spanning every crate in the workspace.

use estimators::{EstimatorConfig, EstimatorKind};
use geostream::synth::DatasetSpec;
use geostream::{Duration, KeywordId, Point, RcDvq, Rect};
use latest_core::{Latest, LatestConfig, PhaseTag, QueryOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn test_config(dataset: &DatasetSpec) -> LatestConfig {
    LatestConfig {
        window_span: Duration::from_secs(45),
        warmup: Duration::from_secs(45),
        pretrain_queries: 30,
        accuracy_window: 12,
        min_switch_spacing: 12,
        estimator_config: EstimatorConfig {
            domain: dataset.domain,
            reservoir_capacity: 1_500,
            ..EstimatorConfig::default()
        },
        ..LatestConfig::default()
    }
}

#[test]
fn full_lifecycle_reaches_incremental_phase() {
    let dataset = DatasetSpec::twitter();
    let mut latest = Latest::new(test_config(&dataset));
    let mut gen = dataset.generator();
    assert_eq!(latest.phase(), PhaseTag::WarmUp);
    while latest.phase() == PhaseTag::WarmUp {
        latest.ingest(gen.next_object());
    }
    assert_eq!(latest.phase(), PhaseTag::PreTraining);
    assert!(
        latest.window_len() > 1_000,
        "window too small after warm-up"
    );
    let mut rng = StdRng::seed_from_u64(1);
    for i in 0..40u32 {
        for _ in 0..10 {
            latest.ingest(gen.next_object());
        }
        let q = if i % 2 == 0 {
            RcDvq::spatial(Rect::centered_clamped(
                Point::new(
                    rng.gen_range(dataset.domain.min_x..dataset.domain.max_x),
                    rng.gen_range(dataset.domain.min_y..dataset.domain.max_y),
                ),
                2.0,
                2.0,
                &dataset.domain,
            ))
        } else {
            RcDvq::keyword(vec![KeywordId(rng.gen_range(0..40))])
        };
        let out = latest.query(&q, QueryOptions::at(gen.clock()));
        assert!(out.estimate >= 0.0);
        assert!(out.latency_ms >= 0.0);
        assert!((0.0..=1.0).contains(&out.accuracy));
    }
    assert_eq!(latest.phase(), PhaseTag::Incremental);
    assert!(latest.tree_stats().instances_seen >= 40);
    // Pre-training wipes all but the default estimator.
    assert_eq!(latest.active_kind(), EstimatorKind::Rsh);
}

#[test]
fn keyword_flood_forces_histogram_abandonment() {
    // Start on the keyword-blind histogram and flood with keyword queries:
    // the adaptor must abandon it (the core claim of the paper).
    let dataset = DatasetSpec::twitter();
    let mut config = test_config(&dataset);
    config.default_estimator = EstimatorKind::H4096;
    let mut latest = Latest::new(config);
    let mut gen = dataset.generator();
    while latest.phase() == PhaseTag::WarmUp {
        latest.ingest(gen.next_object());
    }
    let mut rng = StdRng::seed_from_u64(2);
    for _ in 0..150u32 {
        for _ in 0..10 {
            latest.ingest(gen.next_object());
        }
        let q = RcDvq::keyword(vec![KeywordId(rng.gen_range(0..30))]);
        let _ = latest.query(&q, QueryOptions::at(gen.clock()));
        if latest.phase() == PhaseTag::Incremental && latest.active_kind() != EstimatorKind::H4096 {
            break;
        }
    }
    assert_ne!(latest.active_kind(), EstimatorKind::H4096);
    let log = latest.log();
    assert!(!log.switches.is_empty());
    // The switch event must be internally consistent.
    let sw = log.switches[0];
    assert_eq!(sw.from, EstimatorKind::H4096);
    assert_ne!(sw.to, EstimatorKind::H4096);
    assert!(sw.trigger_average < 0.9);
}

#[test]
fn estimates_track_ground_truth_on_stable_workload() {
    let dataset = DatasetSpec::ebird();
    let mut latest = Latest::new(test_config(&dataset));
    let mut gen = dataset.generator();
    while latest.phase() == PhaseTag::WarmUp {
        latest.ingest(gen.next_object());
    }
    // Wide spatial queries over observation clusters: the sampler should
    // stay close to the executor's exact counts.
    let hotspots: Vec<Point> = dataset
        .spatial_model()
        .hotspots()
        .iter()
        .take(8)
        .map(|h| h.center)
        .collect();
    let mut accuracies = Vec::new();
    for i in 0..80usize {
        for _ in 0..10 {
            latest.ingest(gen.next_object());
        }
        let c = hotspots[i % hotspots.len()];
        let q = RcDvq::spatial(Rect::centered_clamped(c, 1.5, 1.5, &dataset.domain));
        let out = latest.query(&q, QueryOptions::at(gen.clock()));
        if out.phase == PhaseTag::Incremental {
            accuracies.push(out.accuracy);
        }
    }
    let mean: f64 = accuracies.iter().sum::<f64>() / accuracies.len() as f64;
    assert!(mean > 0.7, "stable-workload accuracy too low: {mean}");
}

#[test]
fn log_is_complete_and_ordered() {
    let dataset = DatasetSpec::checkin();
    let mut latest = Latest::new(test_config(&dataset));
    let mut gen = dataset.generator();
    while latest.phase() == PhaseTag::WarmUp {
        latest.ingest(gen.next_object());
    }
    let mut rng = StdRng::seed_from_u64(3);
    let total = 60;
    for _ in 0..total {
        for _ in 0..5 {
            latest.ingest(gen.next_object());
        }
        let q = RcDvq::keyword(vec![KeywordId(rng.gen_range(0..100))]);
        let _ = latest.query(&q, QueryOptions::at(gen.clock()));
    }
    let log = latest.log();
    assert_eq!(log.queries.len(), total);
    // Sequence numbers are dense and stream times non-decreasing.
    for (i, rec) in log.queries.iter().enumerate() {
        assert_eq!(rec.seq, i as u64);
        if i > 0 {
            assert!(rec.at >= log.queries[i - 1].at);
        }
        assert_eq!(rec.query_type, geostream::QueryType::Keyword);
    }
    // Switches (if any) reference real query positions.
    for sw in &log.switches {
        assert!((sw.at_seq as usize) < total);
        assert_ne!(sw.from, sw.to);
    }
}

#[test]
fn window_executor_and_estimators_stay_in_sync() {
    let dataset = DatasetSpec::twitter();
    let mut config = test_config(&dataset);
    config.window_span = Duration::from_secs(10);
    config.warmup = Duration::from_secs(10);
    let mut latest = Latest::new(config);
    let mut gen = dataset.generator();
    for _ in 0..8_000 {
        latest.ingest(gen.next_object());
    }
    // The window must have evicted most of the 8k objects; the unbounded
    // query over the whole domain must agree with the window size.
    assert!(latest.window_len() < 8_000);
    let q = RcDvq::spatial(dataset.domain);
    let out = latest.query(&q, QueryOptions::at(gen.clock()));
    assert_eq!(out.actual as usize, latest.window_len());
}
