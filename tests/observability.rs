//! End-to-end observability: the metrics registry and lifecycle event
//! stream must agree exactly with the system log across a deterministic
//! switch storm, and an end-of-run snapshot must carry non-trivial data
//! for every subsystem.

use estimators::{EstimatorConfig, EstimatorKind};
use geostream::synth::DatasetSpec;
use geostream::{Duration, KeywordId, Point, RcDvq, Rect};
use latest_core::{EstimatorRole, Latest, LatestConfig, LifecycleEvent, PhaseTag, QueryOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn storm_config(dataset: &DatasetSpec) -> LatestConfig {
    LatestConfig {
        window_span: Duration::from_secs(45),
        warmup: Duration::from_secs(45),
        pretrain_queries: 20,
        accuracy_window: 8,
        min_switch_spacing: 8,
        default_estimator: EstimatorKind::H4096,
        estimator_config: EstimatorConfig {
            domain: dataset.domain,
            reservoir_capacity: 1_500,
            ..EstimatorConfig::default()
        },
        ..LatestConfig::default()
    }
}

fn keyword_query(rng: &mut StdRng) -> RcDvq {
    RcDvq::keyword(vec![KeywordId(rng.gen_range(0..50))])
}

fn spatial_query(rng: &mut StdRng, domain: &Rect) -> RcDvq {
    RcDvq::spatial(Rect::centered_clamped(
        Point::new(
            rng.gen_range(domain.min_x..domain.max_x),
            rng.gen_range(domain.min_y..domain.max_y),
        ),
        2.0,
        1.5,
        domain,
    ))
}

/// Drives a keyword flood against a keyword-blind default estimator so
/// the adaptor keeps switching, and checks after every query that the
/// observability layer agrees with the system log: one
/// `EstimatorSwitched` event per logged switch (same order, same
/// fields), the accuracy monitor reset on each switch, and the
/// prefill-start/discard/switch accounting identity.
#[test]
fn switch_storm_events_match_system_log() {
    let dataset = DatasetSpec::twitter();
    let mut latest = Latest::new(storm_config(&dataset));
    let mut gen = dataset.generator();
    while latest.phase() == PhaseTag::WarmUp {
        latest.ingest(gen.next_object());
    }
    let mut rng = StdRng::seed_from_u64(4);
    // Pre-train on keyword queries so rewards already favor samplers.
    for _ in 0..20 {
        latest.ingest(gen.next_object());
        let q = keyword_query(&mut rng);
        let _ = latest.query(&q, QueryOptions::at(gen.clock()));
    }
    assert_eq!(latest.phase(), PhaseTag::Incremental);
    assert_eq!(latest.active_kind(), EstimatorKind::H4096);

    // Alternate hostile blocks: keyword floods (bad for histograms) and
    // narrow spatial bursts, so accuracy keeps collapsing after each
    // switch and the adaptor fires more than once.
    let mut switches_seen = 0usize;
    for i in 0..400usize {
        for _ in 0..2 {
            latest.ingest(gen.next_object());
        }
        let q = if (i / 40) % 2 == 0 {
            keyword_query(&mut rng)
        } else {
            spatial_query(&mut rng, &dataset.domain)
        };
        let _ = latest.query(&q, QueryOptions::at(gen.clock()));

        let logged = latest.log().switches.len();
        if logged > switches_seen {
            switches_seen = logged;
            // The monitor must restart from empty after every switch (the
            // switching query's own observation lands before the reset).
            let snap = latest.metrics_snapshot();
            assert_eq!(
                snap.adaptor.monitor_len, 0,
                "accuracy monitor not reset after switch {logged}"
            );
            assert_eq!(snap.adaptor.queries_since_switch, 0);
        }
    }
    assert!(
        switches_seen >= 2,
        "hostile workload produced only {switches_seen} switches — not a storm"
    );

    let snap = latest.metrics_snapshot();
    let log = latest.log();

    // Every logged switch has exactly one EstimatorSwitched event, in
    // order, with identical fields.
    assert_eq!(snap.adaptor.switches, log.switches.len() as u64);
    let events = snap.switch_events();
    assert_eq!(events.len(), log.switches.len());
    for (ev, sw) in events.iter().zip(&log.switches) {
        match ev {
            LifecycleEvent::EstimatorSwitched {
                seq,
                at,
                from,
                to,
                trigger_average,
            } => {
                assert_eq!(*seq, sw.at_seq);
                assert_eq!(*at, sw.at);
                assert_eq!(*from, sw.from);
                assert_eq!(*to, sw.to);
                assert_eq!(trigger_average.to_bits(), sw.trigger_average.to_bits());
            }
            other => panic!("switch_events returned {other:?}"),
        }
    }

    // Prefill accounting: registry counters mirror the log, and every
    // prefill either switched in, was discarded, or is still pending.
    assert_eq!(snap.adaptor.prefill_starts, log.prefill_starts.len() as u64);
    assert_eq!(
        snap.adaptor.prefill_discards,
        log.prefill_discards.len() as u64
    );
    let pending = snap
        .estimators
        .iter()
        .filter(|e| e.role == EstimatorRole::Prefilling)
        .count() as u64;
    assert!(pending <= 1, "at most one estimator may be prefilling");
    assert_eq!(
        snap.adaptor.prefill_starts,
        snap.adaptor.switches + snap.adaptor.prefill_discards + pending,
        "prefill starts must equal switches + discards + pending"
    );

    // The event stream was sized for the run: nothing was dropped, so the
    // orderings above are complete, not a suffix.
    assert_eq!(snap.events_dropped, 0);
}

/// Acceptance: an end-of-run snapshot is non-trivial for every subsystem
/// and consistent with the independently queryable system state.
#[test]
fn snapshot_covers_every_subsystem() {
    let dataset = DatasetSpec::twitter();
    let config = LatestConfig {
        window_span: Duration::from_secs(45),
        warmup: Duration::from_secs(45),
        pretrain_queries: 30,
        accuracy_window: 12,
        min_switch_spacing: 12,
        estimator_config: EstimatorConfig {
            domain: dataset.domain,
            reservoir_capacity: 1_500,
            ..EstimatorConfig::default()
        },
        ..LatestConfig::default()
    };
    let mut latest = Latest::new(config);
    let mut gen = dataset.generator();
    while latest.phase() == PhaseTag::WarmUp {
        latest.ingest(gen.next_object());
    }
    let mut rng = StdRng::seed_from_u64(7);
    for i in 0..80usize {
        for _ in 0..10 {
            latest.ingest(gen.next_object());
        }
        let q = match i % 3 {
            0 => spatial_query(&mut rng, &dataset.domain),
            1 => keyword_query(&mut rng),
            _ => RcDvq::hybrid(
                Rect::centered_clamped(
                    Point::new(
                        rng.gen_range(dataset.domain.min_x..dataset.domain.max_x),
                        rng.gen_range(dataset.domain.min_y..dataset.domain.max_y),
                    ),
                    2.0,
                    1.5,
                    &dataset.domain,
                ),
                vec![KeywordId(rng.gen_range(0..40))],
            ),
        };
        let _ = latest.query(&q, QueryOptions::at(gen.clock()));
    }
    assert_eq!(latest.phase(), PhaseTag::Incremental);

    let snap = latest.metrics_snapshot();

    // Phase machine: all three phases entered, in lifetime order.
    assert_eq!(
        snap.phase_events(),
        [
            PhaseTag::WarmUp,
            PhaseTag::PreTraining,
            PhaseTag::Incremental
        ]
    );
    assert_eq!(snap.phase, PhaseTag::Incremental);

    // Query accounting adds up and matches the log.
    assert_eq!(snap.queries_total, 80);
    assert_eq!(
        snap.queries_by_phase.iter().sum::<u64>(),
        snap.queries_total
    );
    assert_eq!(snap.queries_total, latest.log().queries.len() as u64);

    // Window: everything ingested is either resident or evicted.
    assert!(snap.window.ingested > 0);
    assert_eq!(snap.window.occupancy, latest.window_len() as u64);
    assert_eq!(
        snap.window.occupancy + snap.window.evicted,
        snap.window.ingested
    );

    // Pool ran during pre-training.
    assert!(snap.pool.rounds > 0);
    assert!(snap.pool.batch_sizes.count > 0);

    // Executor path mix in the snapshot equals the executor's own counters.
    let mix = latest.executor_path_mix();
    assert_eq!(snap.executor.spatial, mix.spatial);
    assert_eq!(snap.executor.inverted, mix.inverted);
    assert_eq!(
        snap.executor.spatial + snap.executor.inverted,
        snap.queries_total,
        "every query takes exactly one access path"
    );

    // Per-kind estimate latency histograms are all populated (shadow
    // metrics keep every kind measured) and exactly one kind is active.
    for e in &snap.estimators {
        assert!(
            e.latency_us.count > 0,
            "no latency samples for {}",
            e.kind.name()
        );
        assert!(e.memory_bytes > 0, "no memory gauge for {}", e.kind.name());
    }
    let active: Vec<EstimatorKind> = snap
        .estimators
        .iter()
        .filter(|e| e.role == EstimatorRole::Active)
        .map(|e| e.kind)
        .collect();
    assert_eq!(active, [latest.active_kind()]);

    // The JSON rendering is structurally sound (CI runs it through
    // `python3 -m json.tool`; this guards the cheap invariants here).
    let json = snap.to_json();
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
    for key in [
        "\"phase\"",
        "\"queries\"",
        "\"window\"",
        "\"adaptor\"",
        "\"pool\"",
        "\"executor\"",
        "\"estimators\"",
        "\"events\"",
    ] {
        assert!(json.contains(key), "snapshot JSON lacks {key}");
    }
}
