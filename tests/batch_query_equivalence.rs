//! Batched execution equivalence: `Latest::query_batch` must be
//! indistinguishable — bit-for-bit on every decision-bearing field — from
//! issuing the same queries one at a time in order, for every estimator
//! kind crossed with every exact backend. With the accuracy/latency
//! trade-off pinned to accuracy only (α = 0), wall-clock noise cannot
//! leak into rewards, so the two replays must agree exactly.
//!
//! Also proves the selectivity-cache contract: any window content change
//! — an insert or an eviction sweep — invalidates every previously cached
//! signature (a stale hit is impossible), while an unchanged window keeps
//! serving pure cache reads.

use estimators::{EstimatorConfig, EstimatorKind};
use exactdb::SpatialIndexKind;
use geostream::synth::DatasetSpec;
use geostream::{Duration, KeywordId, Point, RcDvq, Rect, Timestamp};
use latest_core::{Latest, LatestConfig, PhaseTag, QueryOptions, ServedBy};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn build_latest(kind: EstimatorKind, index: SpatialIndexKind) -> Latest {
    let dataset = DatasetSpec::twitter();
    let config = LatestConfig::builder()
        .window_span(Duration::from_secs(40))
        .warmup(Duration::from_secs(40))
        .pretrain_queries(24)
        .accuracy_window(12)
        .min_switch_spacing(12)
        // Rewards depend on accuracy alone: measured latencies differ
        // between the two replays but must not change any decision.
        .alpha(0.0)
        .shadow_metrics(false)
        .default_estimator(kind)
        .index_kind(index)
        .estimator_config(EstimatorConfig {
            domain: dataset.domain,
            reservoir_capacity: 800,
            ..EstimatorConfig::default()
        })
        .build()
        .expect("test parameters are in range");
    Latest::new(config)
}

fn mixed_query(rng: &mut StdRng, domain: &Rect) -> RcDvq {
    let cx = rng.gen_range(domain.min_x..domain.max_x);
    let cy = rng.gen_range(domain.min_y..domain.max_y);
    let rect = Rect::centered_clamped(Point::new(cx, cy), 3.0, 2.5, domain);
    match rng.gen_range(0..3) {
        0 => RcDvq::spatial(rect),
        1 => RcDvq::keyword(vec![KeywordId(rng.gen_range(0..40))]),
        _ => RcDvq::hybrid(rect, vec![KeywordId(rng.gen_range(0..40))]),
    }
}

/// Replays the identical seeded stream through a batched instance and a
/// one-at-a-time instance and demands bit-equal outcomes at every step,
/// from warm-up through pre-training into the incremental phase.
fn assert_batch_matches_single(kind: EstimatorKind, index: SpatialIndexKind) {
    let dataset = DatasetSpec::twitter();
    let mut batched = build_latest(kind, index);
    let mut single = build_latest(kind, index);
    let mut gen_b = dataset.generator();
    let mut gen_s = dataset.generator();
    while batched.phase() == PhaseTag::WarmUp {
        batched.ingest(gen_b.next_object());
        single.ingest(gen_s.next_object());
    }
    let mut rng = StdRng::seed_from_u64(0xBA7C4 + kind.index() as u64);
    for round in 0..8u32 {
        for _ in 0..40 {
            batched.ingest(gen_b.next_object());
            single.ingest(gen_s.next_object());
        }
        let mut batch: Vec<RcDvq> = (0..8)
            .map(|_| mixed_query(&mut rng, &dataset.domain))
            .collect();
        // In-batch duplicates must collapse onto cache hits identically
        // in both replays.
        batch.push(batch[1].clone());
        batch.push(batch[4].clone());
        let at = gen_b.clock();
        let batch_outs = batched.query_batch(&batch, QueryOptions::at(at));
        let single_outs: Vec<_> = batch
            .iter()
            .map(|q| single.query(q, QueryOptions::at(at)))
            .collect();
        for (i, (b, s)) in batch_outs.iter().zip(&single_outs).enumerate() {
            let ctx = format!("{}/{} round {round} query {i}", kind.name(), index.name());
            assert_eq!(
                b.estimate.to_bits(),
                s.estimate.to_bits(),
                "estimate: {ctx}"
            );
            assert_eq!(b.actual, s.actual, "actual: {ctx}");
            assert_eq!(
                b.accuracy.to_bits(),
                s.accuracy.to_bits(),
                "accuracy: {ctx}"
            );
            assert_eq!(b.estimator, s.estimator, "estimator: {ctx}");
            assert_eq!(b.phase, s.phase, "phase: {ctx}");
            assert_eq!(b.switched, s.switched, "switched: {ctx}");
            assert_eq!(b.served_by, s.served_by, "served_by: {ctx}");
        }
        assert_eq!(batch_outs[8].served_by, ServedBy::Cache);
        assert_eq!(batch_outs[9].served_by, ServedBy::Cache);
    }
    // The learning state the two replays accumulated is the same too.
    assert_eq!(batched.phase(), single.phase());
    assert_eq!(batched.active_kind(), single.active_kind());
    assert_eq!(batched.log().queries.len(), single.log().queries.len());
    assert_eq!(batched.log().switches.len(), single.log().switches.len());
    for (b, s) in batched.log().queries.iter().zip(&single.log().queries) {
        assert_eq!(b.estimate.to_bits(), s.estimate.to_bits());
        assert_eq!(b.actual, s.actual);
        assert_eq!(b.estimator, s.estimator);
    }
}

#[test]
fn batch_matches_single_for_every_kind_on_grid() {
    for kind in EstimatorKind::ALL {
        assert_batch_matches_single(kind, SpatialIndexKind::Grid);
    }
}

#[test]
fn batch_matches_single_for_every_kind_on_quadtree() {
    for kind in EstimatorKind::ALL {
        assert_batch_matches_single(kind, SpatialIndexKind::Quadtree);
    }
}

#[test]
fn batch_matches_single_for_every_kind_on_rtree() {
    for kind in EstimatorKind::ALL {
        assert_batch_matches_single(kind, SpatialIndexKind::RTree);
    }
}

/// Drives a system past warm-up with a deterministic stream and returns
/// it together with its generator.
fn warmed() -> (Latest, geostream::synth::ObjectGenerator) {
    let mut latest = build_latest(EstimatorKind::Rsh, SpatialIndexKind::Grid);
    let mut gen = DatasetSpec::twitter().generator();
    while latest.phase() == PhaseTag::WarmUp {
        latest.ingest(gen.next_object());
    }
    (latest, gen)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Inserting any number of objects invalidates every prior signature:
    /// the repeat that would have been a cache hit runs the full path.
    #[test]
    fn any_insert_invalidates_cached_signatures(extra in 1usize..48) {
        let (mut latest, mut gen) = warmed();
        let q = RcDvq::keyword(vec![KeywordId(5)]);
        let first = latest.query(&q, QueryOptions::at(gen.clock()));
        prop_assert!(first.served_by != ServedBy::Cache);
        // Control: unchanged window serves the repeat from the cache.
        let repeat = latest.query(&q, QueryOptions::at(gen.clock()));
        prop_assert_eq!(repeat.served_by, ServedBy::Cache);
        for _ in 0..extra {
            latest.ingest(gen.next_object());
        }
        let after = latest.query(&q, QueryOptions::at(gen.clock()));
        prop_assert!(after.served_by != ServedBy::Cache);
    }

    /// An eviction sweep — advancing past the window span with no new
    /// arrivals — likewise invalidates every prior signature.
    #[test]
    fn any_eviction_sweep_invalidates_cached_signatures(extra_ms in 1_000u64..80_000) {
        let (mut latest, gen) = warmed();
        let q = RcDvq::keyword(vec![KeywordId(5)]);
        let at = gen.clock();
        let _ = latest.query(&q, QueryOptions::at(at));
        prop_assert_eq!(
            latest.query(&q, QueryOptions::at(at)).served_by,
            ServedBy::Cache
        );
        prop_assert!(latest.window_len() > 0);
        // Jump past the 40 s span: everything in the window is evicted.
        let later = Timestamp(at.0 + 40_000 + extra_ms);
        let after = latest.query(&q, QueryOptions::at(later));
        prop_assert!(after.served_by != ServedBy::Cache);
        prop_assert_eq!(after.actual, 0);
        prop_assert!(latest.cache().invalidations() >= 1);
    }
}
