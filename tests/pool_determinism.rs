//! Pool determinism: fanning estimator maintenance across worker threads
//! must not change what LATEST computes. With the accuracy/latency
//! trade-off pinned to accuracy only (α = 0, so wall-clock noise cannot
//! leak into rewards), a serial instance and a 4-worker instance fed the
//! identical seeded stream must produce identical `QueryOutcome`s —
//! latency aside, which is a measurement, not a decision.

use estimators::EstimatorConfig;
use geostream::synth::DatasetSpec;
use geostream::{Duration, KeywordId, Point, RcDvq, Rect};
use latest_core::{Latest, LatestConfig, PhaseTag, QueryOptions, QueryOutcome};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn build_latest(pool_workers: usize) -> Latest {
    let dataset = DatasetSpec::twitter();
    let config = LatestConfig::builder()
        .window_span(Duration::from_secs(40))
        .warmup(Duration::from_secs(40))
        .pretrain_queries(30)
        .accuracy_window(12)
        .min_switch_spacing(12)
        // Rewards depend on accuracy alone: thread scheduling may change
        // measured latencies but must not change any decision.
        .alpha(0.0)
        .shadow_metrics(true)
        .pool_workers(pool_workers)
        .estimator_config(EstimatorConfig {
            domain: dataset.domain,
            reservoir_capacity: 1_200,
            ..EstimatorConfig::default()
        })
        .build()
        .expect("test parameters are in range");
    Latest::new(config)
}

/// Replays the same seeded stream + query mix and collects every outcome.
fn run(pool_workers: usize) -> (Vec<QueryOutcome>, Latest) {
    let dataset = DatasetSpec::twitter();
    let mut latest = build_latest(pool_workers);
    let mut gen = dataset.generator();
    while latest.phase() == PhaseTag::WarmUp {
        latest.ingest(gen.next_object());
    }
    let mut rng = StdRng::seed_from_u64(0xD1CE);
    let mut outcomes = Vec::new();
    for i in 0..120u32 {
        let batch: Vec<_> = (0..8).map(|_| gen.next_object()).collect();
        latest.ingest_batch(&batch);
        let q = match i % 3 {
            0 => RcDvq::spatial(Rect::centered_clamped(
                Point::new(
                    rng.gen_range(dataset.domain.min_x..dataset.domain.max_x),
                    rng.gen_range(dataset.domain.min_y..dataset.domain.max_y),
                ),
                2.5,
                2.0,
                &dataset.domain,
            )),
            1 => RcDvq::keyword(vec![KeywordId(rng.gen_range(0..40))]),
            _ => RcDvq::hybrid(
                Rect::centered_clamped(
                    Point::new(
                        rng.gen_range(dataset.domain.min_x..dataset.domain.max_x),
                        rng.gen_range(dataset.domain.min_y..dataset.domain.max_y),
                    ),
                    3.0,
                    3.0,
                    &dataset.domain,
                ),
                vec![KeywordId(rng.gen_range(0..40))],
            ),
        };
        outcomes.push(latest.query(&q, QueryOptions::at(gen.clock())));
    }
    (outcomes, latest)
}

#[test]
fn parallel_pool_replays_the_serial_outcomes() {
    let (serial, serial_latest) = run(1);
    let (pooled, pooled_latest) = run(4);
    assert_eq!(serial.len(), pooled.len());
    for (i, (s, p)) in serial.iter().zip(&pooled).enumerate() {
        assert_eq!(
            s.estimate.to_bits(),
            p.estimate.to_bits(),
            "query {i}: estimate"
        );
        assert_eq!(s.actual, p.actual, "query {i}: actual");
        assert_eq!(
            s.accuracy.to_bits(),
            p.accuracy.to_bits(),
            "query {i}: accuracy"
        );
        assert_eq!(s.estimator, p.estimator, "query {i}: serving estimator");
        assert_eq!(s.phase, p.phase, "query {i}: phase");
        assert_eq!(s.switched, p.switched, "query {i}: switch decision");
    }
    // The runs end in the same place, with the same switch history.
    assert_eq!(serial_latest.phase(), PhaseTag::Incremental);
    assert_eq!(serial_latest.active_kind(), pooled_latest.active_kind());
    let (sl, pl) = (serial_latest.log(), pooled_latest.log());
    assert_eq!(sl.switches.len(), pl.switches.len());
    for (a, b) in sl.switches.iter().zip(&pl.switches) {
        assert_eq!((a.at_seq, a.from, a.to), (b.at_seq, b.from, b.to));
    }
    // Shadow metrics were live for both runs and agree estimator-by-
    // estimator (modulo measured latency).
    let last_s = sl.queries.last().expect("queries logged");
    let last_p = pl.queries.last().expect("queries logged");
    assert_eq!(last_s.shadow.len(), 6);
    for (a, b) in last_s.shadow.iter().zip(&last_p.shadow) {
        assert_eq!(a.estimator, b.estimator);
        assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
        assert_eq!(a.accuracy.to_bits(), b.accuracy.to_bits());
    }
}

#[test]
fn oversized_worker_counts_are_clamped_not_fatal() {
    // More workers than estimators must behave like one-per-estimator.
    let (serial, _) = run(1);
    let (pooled, _) = run(64);
    for (s, p) in serial.iter().zip(&pooled) {
        assert_eq!(s.estimate.to_bits(), p.estimate.to_bits());
        assert_eq!(s.switched, p.switched);
    }
}
