//! Hot-path microbenchmarks of the exact executor — the "system logs"
//! substrate every window insert/evict and pre-training query hits.
//!
//! Two axes, per spatial backend:
//!
//! * **ingest churn** — a sliding-window replay (insert + evict once the
//!   window is full), the cost Table I charges to index maintenance;
//! * **count latency** — exact RC-DVQ execution per query type, including
//!   multi-keyword and hybrid shapes where posting-list handling and
//!   access-path choice dominate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exactdb::{ExactExecutor, SpatialIndexKind};
use geostream::synth::DatasetSpec;
use geostream::{GeoTextObject, KeywordId, RcDvq, Rect};

/// Live window size during the churn replay.
const WINDOW: usize = 20_000;
/// Total objects replayed (so `STREAM - WINDOW` evictions happen).
const STREAM: usize = 30_000;

const BACKENDS: [SpatialIndexKind; 3] = [
    SpatialIndexKind::Grid,
    SpatialIndexKind::Quadtree,
    SpatialIndexKind::RTree,
];

fn stream_objects() -> Vec<GeoTextObject> {
    DatasetSpec::twitter().generator().take(STREAM).collect()
}

/// The query shapes measured per backend: label + query.
fn query_set(dataset: &DatasetSpec) -> Vec<(&'static str, RcDvq)> {
    let center = dataset.spatial_model().hotspots()[0].center;
    let rect = Rect::centered_clamped(center, 2.0, 1.5, &dataset.domain);
    let small = Rect::centered_clamped(center, 0.4, 0.3, &dataset.domain);
    vec![
        ("spatial", RcDvq::spatial(rect)),
        ("keyword1", RcDvq::keyword(vec![KeywordId(3)])),
        (
            "keyword3",
            RcDvq::keyword(vec![KeywordId(3), KeywordId(11), KeywordId(19)]),
        ),
        ("hybrid1", RcDvq::hybrid(rect, vec![KeywordId(3)])),
        (
            "hybrid3",
            RcDvq::hybrid(rect, vec![KeywordId(3), KeywordId(11), KeywordId(19)]),
        ),
        (
            "hybrid_small",
            RcDvq::hybrid(small, vec![KeywordId(3), KeywordId(11), KeywordId(19)]),
        ),
    ]
}

fn bench_ingest(c: &mut Criterion) {
    let dataset = DatasetSpec::twitter();
    let objects = stream_objects();
    let mut group = c.benchmark_group("exactdb_ingest");
    group.sample_size(10);
    for kind in BACKENDS {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let mut ex = ExactExecutor::new(dataset.domain, kind);
                    for (i, o) in objects.iter().enumerate() {
                        ex.insert(o);
                        if i >= WINDOW {
                            ex.remove(&objects[i - WINDOW]);
                        }
                    }
                    ex.len()
                });
            },
        );
    }
    group.finish();
}

fn bench_counts(c: &mut Criterion) {
    let dataset = DatasetSpec::twitter();
    let objects = stream_objects();
    let queries = query_set(&dataset);
    for kind in BACKENDS {
        let mut ex = ExactExecutor::new(dataset.domain, kind);
        for o in &objects {
            ex.insert(o);
        }
        let mut group = c.benchmark_group(format!("exactdb_count_{}", kind.name()));
        group.sample_size(300);
        for (label, q) in &queries {
            group.bench_with_input(BenchmarkId::from_parameter(label), q, |b, q| {
                b.iter(|| std::hint::black_box(ex.execute(q)));
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_ingest, bench_counts);
criterion_main!(benches);
