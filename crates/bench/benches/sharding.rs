//! Criterion macro-benchmark: scatter-gather serving through
//! [`ShardedLatest`] against the unsharded [`Latest`] baseline on the
//! same mixed stream, isolating what sharding buys (parallel exact
//! scans, parallel estimator upkeep) and what it costs (one channel hop
//! per batch, the gather barrier per query).

use criterion::{criterion_group, criterion_main, Criterion};
use estimators::{EstimatorConfig, EstimatorKind};
use geostream::synth::DatasetSpec;
use geostream::{Duration, KeywordId, Point, RcDvq, Rect};
use latest_core::{
    AblationConfig, Latest, LatestConfig, QueryOptions, RouterPolicy, ShardConfig, ShardedLatest,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const INGEST_BATCH: usize = 256;
const QUERY_BATCH: usize = 16;

fn config(dataset: &DatasetSpec, shards: usize) -> LatestConfig {
    LatestConfig::builder()
        .window_span(Duration::from_secs(30))
        .warmup(Duration::from_secs(10))
        .pretrain_queries(12)
        .default_estimator(EstimatorKind::Rsh)
        .ablation(AblationConfig {
            switching: false,
            ..AblationConfig::default()
        })
        .estimator_config(EstimatorConfig {
            domain: dataset.domain,
            reservoir_capacity: 2_048,
            ..EstimatorConfig::default()
        })
        .shard(ShardConfig {
            shards,
            queue_capacity: 8_192,
            router: RouterPolicy::HashOid,
        })
        .build()
        .expect("bench parameters are in range")
}

fn mixed_query(rng: &mut StdRng, domain: &Rect) -> RcDvq {
    let cx = rng.gen_range(domain.min_x..domain.max_x);
    let cy = rng.gen_range(domain.min_y..domain.max_y);
    let rect = Rect::centered_clamped(Point::new(cx, cy), 3.0, 2.5, domain);
    match rng.gen_range(0..3) {
        0 => RcDvq::spatial(rect),
        1 => RcDvq::keyword(vec![KeywordId(rng.gen_range(0..40))]),
        _ => RcDvq::hybrid(rect, vec![KeywordId(rng.gen_range(0..40))]),
    }
}

fn bench_sharded_serving(c: &mut Criterion) {
    let dataset = DatasetSpec::twitter();
    let mut group = c.benchmark_group("latest_sharding");
    group.sample_size(10);

    for shards in [1usize, 2, 4] {
        let engine = ShardedLatest::new(config(&dataset, shards)).expect("shards spawn");
        let mut gen = dataset.generator();
        // Prime past warm-up so the measured loop is steady-state.
        while gen.clock().0 < 12_000 {
            let batch: Vec<_> = (0..INGEST_BATCH).map(|_| gen.next_object()).collect();
            engine.ingest_batch(&batch).expect("shards are live");
        }
        let mut rng = StdRng::seed_from_u64(0x5A4D);
        group.bench_function(format!("ingest_256_x{shards}"), |b| {
            b.iter(|| {
                let batch: Vec<_> = (0..INGEST_BATCH).map(|_| gen.next_object()).collect();
                engine.ingest_batch(&batch).expect("shards are live");
                engine.flush().expect("shards are live");
            });
        });
        group.bench_function(format!("query_16_x{shards}"), |b| {
            b.iter(|| {
                let batch: Vec<_> = (0..QUERY_BATCH)
                    .map(|_| mixed_query(&mut rng, &dataset.domain))
                    .collect();
                let outs = engine
                    .query_batch(&batch, QueryOptions::at(gen.clock()))
                    .expect("shards are live");
                std::hint::black_box(outs.len())
            });
        });
        engine.shutdown();
    }

    // The unsharded control on the same stream shape.
    let mut latest = Latest::new(config(&dataset, 1));
    let mut gen = dataset.generator();
    while gen.clock().0 < 12_000 {
        let batch: Vec<_> = (0..INGEST_BATCH).map(|_| gen.next_object()).collect();
        latest.ingest_batch(&batch);
    }
    let mut rng = StdRng::seed_from_u64(0x5A4D);
    group.bench_function("ingest_256_unsharded", |b| {
        b.iter(|| {
            let batch: Vec<_> = (0..INGEST_BATCH).map(|_| gen.next_object()).collect();
            latest.ingest_batch(&batch);
        });
    });
    group.bench_function("query_16_unsharded", |b| {
        b.iter(|| {
            let batch: Vec<_> = (0..QUERY_BATCH)
                .map(|_| mixed_query(&mut rng, &dataset.domain))
                .collect();
            let outs = latest.query_batch(&batch, QueryOptions::at(gen.clock()));
            std::hint::black_box(outs.len())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_sharded_serving);
criterion_main!(benches);
