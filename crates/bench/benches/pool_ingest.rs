//! Criterion benchmark: serial vs pooled shadow-mode ingest.
//!
//! Shadow-metrics mode keeps all six estimators consistent with the
//! window, which is the worst-case maintenance load LATEST supports. This
//! benchmark drives identical object batches through an incremental-phase
//! instance with the estimator pool in serial mode (`pool_workers = 1`)
//! and fanned across four workers, so the speedup of the pool fan-out is
//! measured on the real ingest path, not asserted.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use estimators::EstimatorConfig;
use geostream::synth::{DatasetSpec, ObjectGenerator};
use geostream::{Duration, KeywordId, RcDvq, Rect};
use latest_core::{Latest, LatestConfig, PhaseTag, QueryOptions};

/// Objects per ingest batch: large enough that per-estimator batch work
/// dwarfs the scoped-thread spawn cost.
const BATCH: usize = 512;

fn ready_latest(pool_workers: usize) -> (Latest, ObjectGenerator) {
    let dataset = DatasetSpec::twitter();
    let config = LatestConfig::builder()
        .window_span(Duration::from_secs(45))
        .warmup(Duration::from_secs(45))
        .pretrain_queries(40)
        .shadow_metrics(true)
        .pool_workers(pool_workers)
        .estimator_config(EstimatorConfig {
            domain: dataset.domain,
            reservoir_capacity: 50_000,
            ..EstimatorConfig::default()
        })
        .build()
        .expect("bench parameters are in range");
    let mut latest = Latest::new(config);
    let mut gen = dataset.generator();
    while latest.phase() == PhaseTag::WarmUp {
        latest.ingest(gen.next_object());
    }
    let center = dataset.spatial_model().hotspots()[0].center;
    let area = Rect::centered_clamped(center, 2.0, 1.5, &dataset.domain);
    let mut n = 0u32;
    while latest.phase() == PhaseTag::PreTraining {
        latest.ingest(gen.next_object());
        let q = match n % 3 {
            0 => RcDvq::spatial(area),
            1 => RcDvq::keyword(vec![KeywordId(n % 40)]),
            _ => RcDvq::hybrid(area, vec![KeywordId(n % 40)]),
        };
        let _ = latest.query(&q, QueryOptions::at(gen.clock()));
        n += 1;
    }
    assert_eq!(latest.phase(), PhaseTag::Incremental);
    (latest, gen)
}

fn bench_shadow_ingest(c: &mut Criterion) {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if hw < 2 {
        eprintln!(
            "note: this host exposes {hw} core(s); the pool clamps its fan-out to the \
             hardware, so the pooled arm runs serially here. Run on a multi-core host \
             to measure the speedup."
        );
    }
    let mut group = c.benchmark_group("shadow_ingest");
    group.sample_size(30);
    group.throughput(Throughput::Elements(BATCH as u64));
    for workers in [1usize, 4] {
        let (mut latest, mut gen) = ready_latest(workers);
        let label = if workers <= 1 { "serial" } else { "pooled" };
        group.bench_with_input(
            BenchmarkId::new(label, format!("{workers}w x {BATCH}")),
            &workers,
            |b, _| {
                b.iter(|| {
                    let batch: Vec<_> = (0..BATCH).map(|_| gen.next_object()).collect();
                    latest.ingest_batch(&batch);
                    latest.window_len()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_shadow_ingest);
criterion_main!(benches);
