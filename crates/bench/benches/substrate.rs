//! Criterion microbenchmarks of the substrates: window churn, exact-index
//! query cost (Table I's index columns), the Hoeffding tree, and the
//! synthetic generator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use estimators::EstimatorKind;
use exactdb::{ExactExecutor, SpatialIndexKind};
use geostream::synth::DatasetSpec;
use geostream::{Duration, GeoTextObject, KeywordId, Point, RcDvq, Rect, SlidingWindow};
use hoeffding::{HoeffdingTree, HoeffdingTreeConfig};
use latest_core::QueryProfile;

fn bench_window_churn(c: &mut Criterion) {
    let dataset = DatasetSpec::twitter();
    let objects: Vec<GeoTextObject> = dataset.generator().take(20_000).collect();
    c.bench_function("window_churn_20k", |b| {
        b.iter(|| {
            let mut w = SlidingWindow::new(Duration::from_secs(10));
            let mut evicted = Vec::new();
            for o in &objects {
                evicted.clear();
                w.insert(o.clone(), &mut evicted);
            }
            w.len()
        });
    });
}

fn bench_exact_indexes(c: &mut Criterion) {
    let dataset = DatasetSpec::twitter();
    let objects: Vec<GeoTextObject> = dataset.generator().take(30_000).collect();
    let center = dataset.spatial_model().hotspots()[0].center;
    let queries = [
        RcDvq::spatial(Rect::centered_clamped(center, 2.0, 1.5, &dataset.domain)),
        RcDvq::keyword(vec![KeywordId(3)]),
        RcDvq::hybrid(
            Rect::centered_clamped(center, 2.0, 1.5, &dataset.domain),
            vec![KeywordId(3)],
        ),
    ];
    for kind in [SpatialIndexKind::Grid, SpatialIndexKind::Quadtree] {
        let mut ex = ExactExecutor::new(dataset.domain, kind);
        for o in &objects {
            ex.insert(o);
        }
        let mut group = c.benchmark_group(format!("exact_{}", kind.name()));
        for (label, q) in ["spatial", "keyword", "hybrid"].iter().zip(&queries) {
            group.bench_with_input(BenchmarkId::from_parameter(label), q, |b, q| {
                b.iter(|| std::hint::black_box(ex.execute(q)));
            });
        }
        group.finish();
    }
}

fn bench_hoeffding(c: &mut Criterion) {
    let schema = latest_core::features::model_schema();
    let domain = Rect::new(-125.0, 25.0, -66.0, 49.0);
    let queries: Vec<RcDvq> = (0..256u32)
        .map(|i| match i % 3 {
            0 => RcDvq::spatial(Rect::centered_clamped(
                Point::new(-100.0, 40.0),
                1.0 + (i % 7) as f64,
                1.0,
                &domain,
            )),
            1 => RcDvq::keyword(vec![KeywordId(i % 50)]),
            _ => RcDvq::hybrid(
                Rect::centered_clamped(Point::new(-90.0, 35.0), 2.0, 2.0, &domain),
                vec![KeywordId(i % 50)],
            ),
        })
        .collect();
    let instances: Vec<_> = queries
        .iter()
        .map(|q| QueryProfile::of(q, &domain).instance(EstimatorKind::Rsh))
        .collect();

    c.bench_function("hoeffding_train", |b| {
        let mut tree = HoeffdingTree::new(schema.clone(), HoeffdingTreeConfig::default());
        let mut i = 0usize;
        b.iter(|| {
            tree.train(&instances[i % instances.len()], (i % 6) as u32);
            i += 1;
        });
    });

    let mut trained = HoeffdingTree::new(schema, HoeffdingTreeConfig::default());
    for (i, inst) in instances.iter().cycle().take(20_000).enumerate() {
        trained.train(inst, (i % 6) as u32);
    }
    c.bench_function("hoeffding_predict", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let p = trained.predict(&instances[i % instances.len()]);
            i += 1;
            std::hint::black_box(p)
        });
    });
}

fn bench_generator(c: &mut Criterion) {
    c.bench_function("synth_generate_10k", |b| {
        b.iter(|| {
            let mut gen = DatasetSpec::twitter().generator();
            let mut last = 0u64;
            for _ in 0..10_000 {
                last = gen.next_object().oid.0;
            }
            last
        });
    });
}

criterion_group!(
    benches,
    bench_window_churn,
    bench_exact_indexes,
    bench_hoeffding,
    bench_generator
);
criterion_main!(benches);
