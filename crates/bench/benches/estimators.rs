//! Criterion microbenchmarks of the six estimators: insert throughput and
//! estimate latency per query type. These are the micro-costs behind
//! Table I and the latency panels of Figures 3–13.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use estimators::{build_estimator, BoxedEstimator, EstimatorConfig, EstimatorKind};
use geostream::synth::DatasetSpec;
use geostream::{GeoTextObject, KeywordId, Point, RcDvq, Rect};

fn config(dataset: &DatasetSpec) -> EstimatorConfig {
    EstimatorConfig {
        domain: dataset.domain,
        reservoir_capacity: 2_400,
        ..EstimatorConfig::default()
    }
}

fn filled(kind: EstimatorKind, objects: &[GeoTextObject], cfg: &EstimatorConfig) -> BoxedEstimator {
    let mut est = build_estimator(kind, cfg);
    for o in objects {
        est.insert(o);
    }
    est
}

fn workload(dataset: &DatasetSpec) -> (Vec<GeoTextObject>, Vec<RcDvq>, Vec<RcDvq>, Vec<RcDvq>) {
    let objects: Vec<GeoTextObject> = dataset.generator().take(30_000).collect();
    let hotspots: Vec<Point> = dataset
        .spatial_model()
        .hotspots()
        .iter()
        .map(|h| h.center)
        .collect();
    let spatial: Vec<RcDvq> = hotspots
        .iter()
        .take(16)
        .map(|c| RcDvq::spatial(Rect::centered_clamped(*c, 2.0, 1.5, &dataset.domain)))
        .collect();
    let keyword: Vec<RcDvq> = (0..16u32)
        .map(|i| RcDvq::keyword(vec![KeywordId(i)]))
        .collect();
    let hybrid: Vec<RcDvq> = hotspots
        .iter()
        .take(16)
        .enumerate()
        .map(|(i, c)| {
            RcDvq::hybrid(
                Rect::centered_clamped(*c, 2.0, 1.5, &dataset.domain),
                vec![KeywordId(i as u32)],
            )
        })
        .collect();
    (objects, spatial, keyword, hybrid)
}

fn bench_inserts(c: &mut Criterion) {
    let dataset = DatasetSpec::twitter();
    let cfg = config(&dataset);
    let objects: Vec<GeoTextObject> = dataset.generator().take(10_000).collect();
    let mut group = c.benchmark_group("estimator_insert_10k");
    group.sample_size(10);
    for kind in EstimatorKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, &kind| {
            b.iter(|| {
                let mut est = build_estimator(kind, &cfg);
                for o in &objects {
                    est.insert(o);
                }
                est.population()
            });
        });
    }
    group.finish();
}

fn bench_estimates(c: &mut Criterion) {
    let dataset = DatasetSpec::twitter();
    let cfg = config(&dataset);
    let (objects, spatial, keyword, hybrid) = workload(&dataset);
    for (label, queries) in [
        ("spatial", &spatial),
        ("keyword", &keyword),
        ("hybrid", &hybrid),
    ] {
        let mut group = c.benchmark_group(format!("estimate_{label}"));
        for kind in EstimatorKind::ALL {
            let est = filled(kind, &objects, &cfg);
            group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, _| {
                let mut i = 0usize;
                b.iter(|| {
                    let q = &queries[i % queries.len()];
                    i += 1;
                    std::hint::black_box(est.estimate(q))
                });
            });
        }
        group.finish();
    }
}

fn bench_memory_budget_sweep(c: &mut Criterion) {
    // The Fig. 13 microcost: estimate latency as the budget grows.
    let dataset = DatasetSpec::twitter();
    let (objects, spatial, _, _) = workload(&dataset);
    let mut group = c.benchmark_group("estimate_spatial_by_budget_AASP");
    for budget in [0.5f64, 1.0, 2.0, 4.0] {
        let cfg = EstimatorConfig {
            memory_budget: budget,
            ..config(&dataset)
        };
        let est = filled(EstimatorKind::Aasp, &objects, &cfg);
        group.bench_with_input(BenchmarkId::from_parameter(budget), &budget, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let q = &spatial[i % spatial.len()];
                i += 1;
                std::hint::black_box(est.estimate(q))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_inserts,
    bench_estimates,
    bench_memory_budget_sweep
);
criterion_main!(benches);
