//! Criterion macro-benchmark: the LATEST end-to-end query path (estimate
//! plus exact execution plus the feedback loop), which is what every
//! figure's wall-clock rests on.

use criterion::{criterion_group, criterion_main, Criterion};
use estimators::EstimatorConfig;
use geostream::synth::DatasetSpec;
use geostream::{Duration, KeywordId, RcDvq, Rect};
use latest_core::{Latest, LatestConfig, PhaseTag, QueryOptions};

fn ready_latest() -> (Latest, geostream::synth::ObjectGenerator) {
    let dataset = DatasetSpec::twitter();
    let config = LatestConfig::builder()
        .window_span(Duration::from_secs(45))
        .warmup(Duration::from_secs(45))
        .pretrain_queries(60)
        .estimator_config(EstimatorConfig {
            domain: dataset.domain,
            reservoir_capacity: 2_400,
            ..EstimatorConfig::default()
        })
        .build()
        .expect("bench parameters are in range");
    let mut latest = Latest::new(config);
    let mut gen = dataset.generator();
    while latest.phase() == PhaseTag::WarmUp {
        latest.ingest(gen.next_object());
    }
    let center = dataset.spatial_model().hotspots()[0].center;
    let area = Rect::centered_clamped(center, 2.0, 1.5, &dataset.domain);
    let mut n = 0u32;
    while latest.phase() == PhaseTag::PreTraining {
        latest.ingest(gen.next_object());
        let q = match n % 3 {
            0 => RcDvq::spatial(area),
            1 => RcDvq::keyword(vec![KeywordId(n % 40)]),
            _ => RcDvq::hybrid(area, vec![KeywordId(n % 40)]),
        };
        let _ = latest.query(&q, QueryOptions::at(gen.clock()));
        n += 1;
    }
    (latest, gen)
}

fn bench_query_path(c: &mut Criterion) {
    let (mut latest, mut gen) = ready_latest();
    let dataset = DatasetSpec::twitter();
    let center = dataset.spatial_model().hotspots()[1].center;
    let area = Rect::centered_clamped(center, 2.0, 1.5, &dataset.domain);
    let mut group = c.benchmark_group("latest_query_path");
    group.sample_size(30);
    let mut i = 0u32;
    group.bench_function("incremental_query", |b| {
        b.iter(|| {
            latest.ingest(gen.next_object());
            let q = match i % 3 {
                0 => RcDvq::spatial(area),
                1 => RcDvq::keyword(vec![KeywordId(i % 40)]),
                _ => RcDvq::hybrid(area, vec![KeywordId(i % 40)]),
            };
            i += 1;
            let out = latest.query(&q, QueryOptions::at(gen.clock()));
            std::hint::black_box(out.estimate)
        });
    });
    group.finish();
}

fn bench_ingest_path(c: &mut Criterion) {
    let (mut latest, mut gen) = ready_latest();
    let mut group = c.benchmark_group("latest_ingest_path");
    group.sample_size(30);
    group.bench_function("ingest_object", |b| {
        b.iter(|| {
            latest.ingest(gen.next_object());
            latest.window_len()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_query_path, bench_ingest_path);
criterion_main!(benches);
