//! Criterion macro-benchmark: the batched query path against the
//! one-at-a-time path on the same hot-heavy mix, isolating what
//! [`Latest::query_batch`] buys — in-batch cache hits, one grouped
//! executor pass, and multi-query estimate kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use estimators::EstimatorConfig;
use geostream::synth::DatasetSpec;
use geostream::{Duration, KeywordId, RcDvq, Rect};
use latest_core::{Latest, LatestConfig, PhaseTag, QueryOptions};

const BATCH: usize = 64;
const HOT_SET: u32 = 8;

fn ready_latest() -> (Latest, geostream::synth::ObjectGenerator) {
    let dataset = DatasetSpec::twitter();
    let config = LatestConfig::builder()
        .window_span(Duration::from_secs(45))
        .warmup(Duration::from_secs(45))
        .pretrain_queries(60)
        .estimator_config(EstimatorConfig {
            domain: dataset.domain,
            reservoir_capacity: 2_400,
            ..EstimatorConfig::default()
        })
        .build()
        .expect("bench parameters are in range");
    let mut latest = Latest::new(config);
    let mut gen = dataset.generator();
    while latest.phase() == PhaseTag::WarmUp {
        latest.ingest(gen.next_object());
    }
    let center = dataset.spatial_model().hotspots()[0].center;
    let area = Rect::centered_clamped(center, 2.0, 1.5, &dataset.domain);
    let mut n = 0u32;
    while latest.phase() == PhaseTag::PreTraining {
        latest.ingest(gen.next_object());
        let q = match n % 3 {
            0 => RcDvq::spatial(area),
            1 => RcDvq::keyword(vec![KeywordId(n % 40)]),
            _ => RcDvq::hybrid(area, vec![KeywordId(n % 40)]),
        };
        let _ = latest.query(&q, QueryOptions::at(gen.clock()));
        n += 1;
    }
    (latest, gen)
}

/// A hot-heavy batch: 64 queries drawn from a hot set of 8 shapes.
fn hot_batch(dataset: &DatasetSpec, round: u32) -> Vec<RcDvq> {
    let center = dataset.spatial_model().hotspots()[1].center;
    let area = Rect::centered_clamped(center, 2.0, 1.5, &dataset.domain);
    (0..BATCH as u32)
        .map(|i| {
            // Deterministic pseudo-draw over the hot set, salted per round
            // so consecutive batches are not identical sequences.
            let k = (i.wrapping_mul(2_654_435_761).wrapping_add(round)) % HOT_SET;
            match k % 3 {
                0 => RcDvq::spatial(area),
                1 => RcDvq::keyword(vec![KeywordId(k)]),
                _ => RcDvq::hybrid(area, vec![KeywordId(k)]),
            }
        })
        .collect()
}

fn bench_batched_vs_single(c: &mut Criterion) {
    let dataset = DatasetSpec::twitter();
    let mut group = c.benchmark_group("latest_batching");
    group.sample_size(20);

    let (mut latest, mut gen) = ready_latest();
    let mut round = 0u32;
    group.bench_function("one_at_a_time_x64", |b| {
        b.iter(|| {
            let batch = hot_batch(&dataset, round);
            round += 1;
            let mut acc = 0.0f64;
            for q in &batch {
                // One arrival per query: the window changes between
                // requests, exactly like a live one-at-a-time querier.
                latest.ingest(gen.next_object());
                acc += latest.query(q, QueryOptions::at(gen.clock())).estimate;
            }
            std::hint::black_box(acc)
        });
    });

    let (mut latest, mut gen) = ready_latest();
    let mut round = 0u32;
    group.bench_function("query_batch_64", |b| {
        b.iter(|| {
            let batch = hot_batch(&dataset, round);
            round += 1;
            for _ in 0..BATCH {
                latest.ingest(gen.next_object());
            }
            let outs = latest.query_batch(&batch, QueryOptions::at(gen.clock()));
            std::hint::black_box(outs.iter().map(|o| o.estimate).sum::<f64>())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_batched_vs_single);
criterion_main!(benches);
