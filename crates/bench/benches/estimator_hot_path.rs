//! Hot-path microbenchmarks of the `SampleStore`-backed sampling
//! estimators — the per-query estimate cost the paper's Fig. 12/13 and
//! Table I charge to the estimator pool.
//!
//! Two axes, per estimator:
//!
//! * **ingest churn** — a sliding-window replay (insert + evict once the
//!   window is full), covering reservoir replacement, swap-remove slot
//!   recycling, and posting-index upkeep;
//! * **estimate latency** — per query type, where the chunked spatial
//!   kernel, the sample-local posting index, and the hybrid cost cutover
//!   do their work. A `scan_baseline` arm replays the pre-refactor
//!   `Vec<GeoTextObject>` linear scan with RSL's exact RNG stream for a
//!   like-for-like before/after.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use estimators::equidepth::EquiDepthGrid;
use estimators::reservoir::ReservoirList;
use estimators::reservoir_hash::ReservoirHash;
use estimators::spn::SpnEstimator;
use estimators::windowed::WindowedSampler;
use estimators::{EstimatorConfig, SelectivityEstimator};
use geostream::synth::DatasetSpec;
use geostream::{GeoTextObject, KeywordId, ObjectId, RcDvq, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Sample capacity for the estimate-latency benchmarks.
const CAPACITY: usize = 10_000;
/// Live window size during the churn replay.
const WINDOW: usize = 20_000;
/// Total objects replayed (so `STREAM - WINDOW` evictions happen).
const STREAM: usize = 30_000;

/// The pre-refactor array-of-structs reservoir (see
/// `latest_bench::estimator_bench::ScanBaseline` for the measured JSON
/// variant): per-object clone, `HashMap` slot index, linear-scan
/// estimates, RSL's RNG stream.
struct ScanBaseline {
    capacity: usize,
    sample: Vec<GeoTextObject>,
    index: HashMap<ObjectId, usize>,
    seen: u64,
    population: u64,
    rng: StdRng,
}

impl ScanBaseline {
    fn new(config: &EstimatorConfig) -> Self {
        ScanBaseline {
            capacity: config.scaled_reservoir(),
            sample: Vec::new(),
            index: HashMap::new(),
            seen: 0,
            population: 0,
            rng: StdRng::seed_from_u64(config.seed ^ 0x5151),
        }
    }

    fn insert(&mut self, obj: &GeoTextObject) {
        self.population += 1;
        self.seen += 1;
        if self.sample.len() < self.capacity {
            self.index.insert(obj.oid, self.sample.len());
            self.sample.push(obj.clone());
        } else {
            let j = self.rng.gen_range(0..self.seen);
            if (j as usize) < self.capacity {
                let slot = j as usize;
                self.index.remove(&self.sample[slot].oid);
                self.index.insert(obj.oid, slot);
                self.sample[slot] = obj.clone();
            }
        }
    }

    fn remove(&mut self, obj: &GeoTextObject) {
        self.population = self.population.saturating_sub(1);
        if let Some(slot) = self.index.remove(&obj.oid) {
            self.sample.swap_remove(slot);
            if slot < self.sample.len() {
                self.index.insert(self.sample[slot].oid, slot);
            }
        }
    }

    fn estimate(&self, query: &RcDvq) -> f64 {
        if self.sample.is_empty() {
            return 0.0;
        }
        let matches = self.sample.iter().filter(|o| query.matches(o)).count();
        matches as f64 / self.sample.len() as f64 * self.population as f64
    }
}

fn config() -> EstimatorConfig {
    EstimatorConfig {
        domain: DatasetSpec::twitter().domain,
        reservoir_capacity: CAPACITY,
        ..EstimatorConfig::default()
    }
}

fn stream_objects() -> Vec<GeoTextObject> {
    DatasetSpec::twitter().generator().take(STREAM).collect()
}

/// Picks query keywords from the final window of the stream: the twitter
/// preset drifts its hot terms over time, so fixed low ids would
/// benchmark empty posting lists. Rank 2 is a hot term, ranks 9 and 17
/// mid-frequency ones (0-based, clamped).
fn query_keywords(window_objects: &[GeoTextObject]) -> [KeywordId; 3] {
    let mut freq: HashMap<KeywordId, usize> = HashMap::new();
    for o in window_objects {
        for &kw in o.keywords.iter() {
            *freq.entry(kw).or_default() += 1;
        }
    }
    let mut ranked: Vec<(KeywordId, usize)> = freq.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));
    let pick = |rank: usize| ranked[rank.min(ranked.len().saturating_sub(1))].0;
    [pick(2), pick(9), pick(17)]
}

/// The query shapes measured per estimator: label + query.
fn query_set(dataset: &DatasetSpec, kws: [KeywordId; 3]) -> Vec<(&'static str, RcDvq)> {
    let center = dataset.spatial_model().hotspots()[0].center;
    let rect = Rect::centered_clamped(center, 2.0, 1.5, &dataset.domain);
    let small = Rect::centered_clamped(center, 0.4, 0.3, &dataset.domain);
    vec![
        ("spatial", RcDvq::spatial(rect)),
        ("keyword1", RcDvq::keyword(vec![kws[0]])),
        ("keyword3", RcDvq::keyword(kws.to_vec())),
        ("hybrid1", RcDvq::hybrid(rect, vec![kws[0]])),
        ("hybrid3", RcDvq::hybrid(rect, kws.to_vec())),
        ("hybrid_small", RcDvq::hybrid(small, kws.to_vec())),
    ]
}

/// Windowed replay into `e`.
fn replay<E: SelectivityEstimator>(e: &mut E, objects: &[GeoTextObject]) {
    for (i, o) in objects.iter().enumerate() {
        e.insert(o);
        if i >= WINDOW {
            e.remove(&objects[i - WINDOW]);
        }
    }
}

fn bench_ingest(c: &mut Criterion) {
    let cfg = config();
    let objects = stream_objects();
    let mut group = c.benchmark_group("estimator_ingest");
    group.sample_size(10);
    group.bench_function("rsl", |b| {
        b.iter(|| {
            let mut e = ReservoirList::new(&cfg);
            replay(&mut e, &objects);
            e.sample_len()
        });
    });
    group.bench_function("rsh", |b| {
        b.iter(|| {
            let mut e = ReservoirHash::new(&cfg);
            replay(&mut e, &objects);
            e.sample_len()
        });
    });
    group.bench_function("windowed", |b| {
        b.iter(|| {
            let mut e = WindowedSampler::new(&cfg);
            replay(&mut e, &objects);
            e.sample_len()
        });
    });
    group.finish();
}

fn bench_estimate(c: &mut Criterion) {
    let dataset = DatasetSpec::twitter();
    let cfg = config();
    let objects = stream_objects();
    let queries = query_set(&dataset, query_keywords(&objects[STREAM - WINDOW..]));

    let mut baseline = ScanBaseline::new(&cfg);
    for (i, o) in objects.iter().enumerate() {
        baseline.insert(o);
        if i >= WINDOW {
            baseline.remove(&objects[i - WINDOW]);
        }
    }
    let mut rsl = ReservoirList::new(&cfg);
    replay(&mut rsl, &objects);
    let mut rsh = ReservoirHash::new(&cfg);
    replay(&mut rsh, &objects);
    let mut windowed = WindowedSampler::new(&cfg);
    replay(&mut windowed, &objects);
    let mut equidepth = EquiDepthGrid::new(&cfg);
    replay(&mut equidepth, &objects);
    let mut spn = SpnEstimator::new(&cfg);
    replay(&mut spn, &objects);

    type EstimateArm = (&'static str, Box<dyn Fn(&RcDvq) -> f64>);
    let arms: Vec<EstimateArm> = vec![
        ("scan_baseline", Box::new(move |q| baseline.estimate(q))),
        ("rsl", Box::new(move |q| rsl.estimate(q))),
        ("rsh", Box::new(move |q| rsh.estimate(q))),
        ("windowed", Box::new(move |q| windowed.estimate(q))),
        ("equidepth", Box::new(move |q| equidepth.estimate(q))),
        ("spn", Box::new(move |q| spn.estimate(q))),
    ];
    let mut group = c.benchmark_group("estimator_estimate");
    for (name, estimate) in &arms {
        for (label, q) in &queries {
            group.bench_with_input(BenchmarkId::new(*name, label), q, |b, q| {
                b.iter(|| estimate(q));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ingest, bench_estimate);
criterion_main!(benches);
