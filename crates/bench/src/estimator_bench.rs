//! Standalone sampling-estimator benchmark with machine-readable output.
//!
//! Mirrors the `estimator_hot_path` criterion bench — windowed ingest
//! throughput plus per-query-type estimate latency for every
//! [`SampleStore`]-backed estimator — but runs inside the `experiments`
//! binary and can serialize its report as JSON (`--bench-json` →
//! `BENCH_estimators.json`), so CI and the docs can diff measured
//! numbers.
//!
//! A `scan_baseline` arm replays the pre-refactor storage verbatim
//! (`Vec<GeoTextObject>` + `HashMap` slot index, linear-scan estimates,
//! identical algorithm-R RNG stream to RSL): the per-query speedup block
//! at the bottom of the report is RSL's kernels measured against that
//! baseline on the *same* sample membership, which makes the estimates
//! of the two arms — and therefore the work counted — directly
//! comparable.
//!
//! [`SampleStore`]: estimators::store::SampleStore

use crate::experiments::Scale;
use estimators::equidepth::EquiDepthGrid;
use estimators::reservoir::ReservoirList;
use estimators::reservoir_hash::ReservoirHash;
use estimators::spn::SpnEstimator;
use estimators::windowed::WindowedSampler;
use estimators::{EstimatorConfig, SelectivityEstimator};
use geostream::synth::DatasetSpec;
use geostream::{GeoTextObject, KeywordId, ObjectId, RcDvq, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::time::Instant;

/// The pre-refactor array-of-structs reservoir: per-object `clone` into a
/// `Vec<GeoTextObject>`, `HashMap` slot index, linear `query.matches`
/// scan per estimate. Kept here as the measured "before" arm.
struct ScanBaseline {
    capacity: usize,
    sample: Vec<GeoTextObject>,
    index: HashMap<ObjectId, usize>,
    seen: u64,
    population: u64,
    rng: StdRng,
}

impl ScanBaseline {
    fn new(config: &EstimatorConfig) -> Self {
        ScanBaseline {
            capacity: config.scaled_reservoir(),
            sample: Vec::new(),
            index: HashMap::new(),
            seen: 0,
            population: 0,
            rng: StdRng::seed_from_u64(config.seed ^ 0x5151),
        }
    }

    fn insert(&mut self, obj: &GeoTextObject) {
        self.population += 1;
        self.seen += 1;
        if self.sample.len() < self.capacity {
            self.index.insert(obj.oid, self.sample.len());
            self.sample.push(obj.clone());
        } else {
            let j = self.rng.gen_range(0..self.seen);
            if (j as usize) < self.capacity {
                let slot = j as usize;
                self.index.remove(&self.sample[slot].oid);
                self.index.insert(obj.oid, slot);
                self.sample[slot] = obj.clone();
            }
        }
    }

    fn remove(&mut self, obj: &GeoTextObject) {
        self.population = self.population.saturating_sub(1);
        if let Some(slot) = self.index.remove(&obj.oid) {
            self.sample.swap_remove(slot);
            if slot < self.sample.len() {
                self.index.insert(self.sample[slot].oid, slot);
            }
        }
    }

    fn estimate(&self, query: &RcDvq) -> f64 {
        if self.sample.is_empty() {
            return 0.0;
        }
        let matches = self.sample.iter().filter(|o| query.matches(o)).count();
        matches as f64 / self.sample.len() as f64 * self.population as f64
    }
}

impl SelectivityEstimator for ScanBaseline {
    fn kind(&self) -> estimators::EstimatorKind {
        estimators::EstimatorKind::Rsl
    }

    fn insert(&mut self, obj: &GeoTextObject) {
        ScanBaseline::insert(self, obj);
    }

    fn remove(&mut self, obj: &GeoTextObject) {
        ScanBaseline::remove(self, obj);
    }

    fn estimate(&self, query: &RcDvq) -> f64 {
        ScanBaseline::estimate(self, query)
    }

    fn memory_bytes(&self) -> usize {
        self.sample.iter().map(|o| o.approx_bytes()).sum::<usize>()
            + self.index.len() * (std::mem::size_of::<ObjectId>() + std::mem::size_of::<usize>())
            + std::mem::size_of::<Self>()
    }

    fn clear(&mut self) {
        self.sample.clear();
        self.index.clear();
        self.seen = 0;
        self.population = 0;
    }

    fn population(&self) -> u64 {
        self.population
    }
}

/// One query shape's measurement on one estimator arm.
#[derive(Debug, Clone)]
pub struct QueryStat {
    pub label: &'static str,
    /// Mean estimate latency, microseconds.
    pub mean_us: f64,
    /// The estimate itself — sanity anchor for cross-run comparisons
    /// (`scan_baseline` and `rsl` share a seed, so theirs must be equal).
    pub estimate: f64,
}

/// One estimator arm's measurements at one sample size.
#[derive(Debug, Clone)]
pub struct EstimatorStats {
    pub estimator: &'static str,
    /// Objects retained in the sample after the replay.
    pub sample_len: usize,
    /// Wall time of the windowed ingest replay, milliseconds.
    pub ingest_ms: f64,
    /// Ingest throughput over the replay (inserts + evictions per second).
    pub ingest_ops_per_sec: f64,
    /// Posting-list compactions performed during the replay (0 for arms
    /// without a posting index).
    pub compactions: u64,
    pub queries: Vec<QueryStat>,
}

/// All arms at one sample size.
#[derive(Debug, Clone)]
pub struct SizeStats {
    pub sample_capacity: usize,
    pub stream: usize,
    pub estimators: Vec<EstimatorStats>,
}

/// RSL kernels vs the scan baseline for one query shape at one size.
#[derive(Debug, Clone)]
pub struct Speedup {
    pub sample_capacity: usize,
    pub label: &'static str,
    pub speedup: f64,
}

/// The full report: per-size arms plus the RSL-vs-scan speedup block.
#[derive(Debug, Clone)]
pub struct EstimatorBenchReport {
    pub iters_per_query: usize,
    pub sizes: Vec<SizeStats>,
    pub speedups: Vec<Speedup>,
}

/// Picks query keywords from the *final window* of the stream: the
/// twitter preset drifts its hot terms over time, so fixed low ids go
/// stale on long streams and would benchmark empty posting lists. Rank 2
/// is a hot term, ranks 9 and 17 mid-frequency ones (0-based, clamped).
fn query_keywords(window_objects: &[GeoTextObject]) -> [KeywordId; 3] {
    let mut freq: HashMap<KeywordId, usize> = HashMap::new();
    for o in window_objects {
        for &kw in o.keywords.iter() {
            *freq.entry(kw).or_default() += 1;
        }
    }
    let mut ranked: Vec<(KeywordId, usize)> = freq.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));
    let pick = |rank: usize| ranked[rank.min(ranked.len().saturating_sub(1))].0;
    [pick(2), pick(9), pick(17)]
}

/// The query shapes measured per arm (same shapes as `exactdb`'s bench;
/// keyword ids come from the live window, see [`query_keywords`]).
fn query_set(dataset: &DatasetSpec, kws: [KeywordId; 3]) -> Vec<(&'static str, RcDvq)> {
    let center = dataset.spatial_model().hotspots()[0].center;
    let rect = Rect::centered_clamped(center, 2.0, 1.5, &dataset.domain);
    let small = Rect::centered_clamped(center, 0.4, 0.3, &dataset.domain);
    vec![
        ("spatial", RcDvq::spatial(rect)),
        ("keyword1", RcDvq::keyword(vec![kws[0]])),
        ("keyword3", RcDvq::keyword(kws.to_vec())),
        ("hybrid1", RcDvq::hybrid(rect, vec![kws[0]])),
        ("hybrid3", RcDvq::hybrid(rect, kws.to_vec())),
        ("hybrid_small", RcDvq::hybrid(small, kws.to_vec())),
    ]
}

/// The shared replay recipe for one sample size: the object stream, the
/// eviction window, and the query shapes timed against each arm.
struct Replay<'a> {
    objects: &'a [GeoTextObject],
    window: usize,
    queries: &'a [(&'static str, RcDvq)],
    iters: usize,
}

/// Replays a windowed stream through `insert`/`remove` and measures every
/// query shape. `sample_len` and `compactions` are read after the replay.
fn measure_arm<E: SelectivityEstimator>(
    estimator: &'static str,
    e: &mut E,
    sample_len: impl Fn(&E) -> usize,
    compactions: impl Fn(&E) -> u64,
    replay: &Replay,
) -> EstimatorStats {
    let start = Instant::now();
    for (i, o) in replay.objects.iter().enumerate() {
        e.insert(o);
        if i >= replay.window {
            e.remove(&replay.objects[i - replay.window]);
        }
    }
    let ingest_ms = start.elapsed().as_secs_f64() * 1_000.0;
    let ops = (replay.objects.len() + replay.objects.len().saturating_sub(replay.window)) as f64;
    let mut stats = Vec::new();
    for (label, q) in replay.queries {
        let est = e.estimate(q);
        let start = Instant::now();
        for _ in 0..replay.iters {
            std::hint::black_box(e.estimate(q));
        }
        let mean_us = start.elapsed().as_secs_f64() * 1e6 / replay.iters as f64;
        stats.push(QueryStat {
            label,
            mean_us,
            estimate: est,
        });
    }
    EstimatorStats {
        estimator,
        sample_len: sample_len(e),
        ingest_ms,
        ingest_ops_per_sec: ops / (ingest_ms / 1_000.0),
        compactions: compactions(e),
        queries: stats,
    }
}

/// Runs the full measurement. `scale` stretches the sample sizes (1.0 →
/// 10K and 100K-object samples; the stream is 1.5× the eviction window).
pub fn run(scale: Scale) -> EstimatorBenchReport {
    let iters = 200usize;
    let dataset = DatasetSpec::twitter();
    let sizes_cfg = [
        ((10_000.0 * scale.0) as usize).max(512),
        ((100_000.0 * scale.0) as usize).max(2_048),
    ];
    let mut sizes = Vec::new();
    let mut speedups = Vec::new();

    for capacity in sizes_cfg {
        // Window 2× the sample so removals hit sampled objects; stream
        // 1.5× the window so eviction churn recycles slots.
        let window = capacity * 2;
        let stream = window + window / 2;
        let objects: Vec<GeoTextObject> = dataset.generator().take(stream).collect();
        let queries = query_set(&dataset, query_keywords(&objects[stream - window..]));
        let config = EstimatorConfig {
            domain: dataset.domain,
            reservoir_capacity: capacity,
            ..EstimatorConfig::default()
        };

        let replay = Replay {
            objects: &objects,
            window,
            queries: &queries,
            iters,
        };
        let arms = vec![
            measure_arm(
                "scan_baseline",
                &mut ScanBaseline::new(&config),
                |e| e.sample.len(),
                |_| 0,
                &replay,
            ),
            measure_arm(
                "rsl",
                &mut ReservoirList::new(&config),
                |e| e.sample_len(),
                |e| e.store().compactions(),
                &replay,
            ),
            measure_arm(
                "rsh",
                &mut ReservoirHash::new(&config),
                |e| e.sample_len(),
                |e| e.store().compactions(),
                &replay,
            ),
            measure_arm(
                "windowed",
                &mut WindowedSampler::new(&config),
                |e| e.sample_len(),
                |e| e.store().compactions(),
                &replay,
            ),
            measure_arm(
                "equidepth",
                &mut EquiDepthGrid::new(&config),
                |e| e.store().len(),
                |_| 0,
                &replay,
            ),
            measure_arm(
                "spn",
                &mut SpnEstimator::new(&config),
                |e| e.store().len(),
                |e| e.store().compactions(),
                &replay,
            ),
        ];

        // RSL vs scan baseline: identical seed and algorithm-R stream →
        // identical sample membership, so the latency ratio is pure
        // kernel-vs-scan.
        let baseline = &arms[0];
        let rsl = &arms[1];
        for (b, r) in baseline.queries.iter().zip(rsl.queries.iter()) {
            speedups.push(Speedup {
                sample_capacity: capacity,
                label: b.label,
                speedup: b.mean_us / r.mean_us.max(1e-9),
            });
        }

        sizes.push(SizeStats {
            sample_capacity: capacity,
            stream,
            estimators: arms,
        });
    }
    EstimatorBenchReport {
        iters_per_query: iters,
        sizes,
        speedups,
    }
}

impl EstimatorBenchReport {
    /// Human-readable table (the `estimator-bench` experiment output).
    pub fn render_text(&self) -> String {
        let mut out = String::from("== estimator hot path ==\n");
        for s in &self.sizes {
            out.push_str(&format!(
                "-- sample capacity {} / stream {} --\n",
                s.sample_capacity, s.stream
            ));
            out.push_str("estimator\tsample_len\tingest_ms\tingest_ops_s\tcompactions\n");
            for a in &s.estimators {
                out.push_str(&format!(
                    "{}\t{}\t{:.1}\t{:.0}\t{}\n",
                    a.estimator, a.sample_len, a.ingest_ms, a.ingest_ops_per_sec, a.compactions
                ));
            }
            out.push_str("estimator\tquery\tmean_us\testimate\n");
            for a in &s.estimators {
                for q in &a.queries {
                    out.push_str(&format!(
                        "{}\t{}\t{:.2}\t{:.1}\n",
                        a.estimator, q.label, q.mean_us, q.estimate
                    ));
                }
            }
        }
        out.push_str("rsl speedup vs scan baseline\n");
        out.push_str("sample_capacity\tquery\tspeedup\n");
        for sp in &self.speedups {
            out.push_str(&format!(
                "{}\t{}\t{:.2}x\n",
                sp.sample_capacity, sp.label, sp.speedup
            ));
        }
        out
    }

    /// JSON serialization (hand-rolled: every value here is a number or a
    /// fixed label, so no escaping is needed).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!(
            "  \"iters_per_query\": {},\n",
            self.iters_per_query
        ));
        s.push_str("  \"sizes\": [\n");
        for (i, size) in self.sizes.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!(
                "      \"sample_capacity\": {},\n",
                size.sample_capacity
            ));
            s.push_str(&format!("      \"stream\": {},\n", size.stream));
            s.push_str("      \"estimators\": [\n");
            for (j, a) in size.estimators.iter().enumerate() {
                s.push_str("        {\n");
                s.push_str(&format!("          \"estimator\": \"{}\",\n", a.estimator));
                s.push_str(&format!("          \"sample_len\": {},\n", a.sample_len));
                s.push_str(&format!("          \"ingest_ms\": {:.3},\n", a.ingest_ms));
                s.push_str(&format!(
                    "          \"ingest_ops_per_sec\": {:.0},\n",
                    a.ingest_ops_per_sec
                ));
                s.push_str(&format!("          \"compactions\": {},\n", a.compactions));
                s.push_str("          \"queries\": [\n");
                for (k, q) in a.queries.iter().enumerate() {
                    s.push_str(&format!(
                        "            {{\"query\": \"{}\", \"mean_us\": {:.3}, \"estimate\": {:.3}}}{}\n",
                        q.label,
                        q.mean_us,
                        q.estimate,
                        if k + 1 < a.queries.len() { "," } else { "" }
                    ));
                }
                s.push_str("          ]\n");
                s.push_str(&format!(
                    "        }}{}\n",
                    if j + 1 < size.estimators.len() {
                        ","
                    } else {
                        ""
                    }
                ));
            }
            s.push_str("      ]\n");
            s.push_str(&format!(
                "    }}{}\n",
                if i + 1 < self.sizes.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"rsl_speedup_vs_scan\": [\n");
        for (i, sp) in self.speedups.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"sample_capacity\": {}, \"query\": \"{}\", \"speedup\": {:.2}}}{}\n",
                sp.sample_capacity,
                sp.label,
                sp.speedup,
                if i + 1 < self.speedups.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_report_is_complete_and_json_balanced() {
        let report = run(Scale(0.02)); // 512 / 2_048 sample floors
        assert_eq!(report.sizes.len(), 2);
        for size in &report.sizes {
            assert_eq!(size.estimators.len(), 6);
            let baseline = &size.estimators[0];
            let rsl = &size.estimators[1];
            assert_eq!(baseline.estimator, "scan_baseline");
            assert_eq!(rsl.estimator, "rsl");
            // Same seed + same algorithm-R stream: the before/after arms
            // must retain identical samples and produce equal estimates —
            // otherwise the speedup block compares different work.
            assert_eq!(baseline.sample_len, rsl.sample_len);
            for (b, r) in baseline.queries.iter().zip(rsl.queries.iter()) {
                assert!(
                    (b.estimate - r.estimate).abs() < 1e-9,
                    "{}: baseline {} vs rsl {}",
                    b.label,
                    b.estimate,
                    r.estimate
                );
            }
            for a in &size.estimators {
                assert_eq!(a.queries.len(), 6);
                assert!(a.ingest_ms > 0.0);
                assert!(a.sample_len > 0);
            }
        }
        // Two sizes × six query shapes.
        assert_eq!(report.speedups.len(), 12);
        let json = report.to_json();
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON"
        );
        assert!(json.contains("\"estimator\": \"scan_baseline\""));
        assert!(json.contains("\"rsl_speedup_vs_scan\""));
        let text = report.render_text();
        assert!(text.contains("speedup vs scan baseline"));
    }
}
