//! One function per paper table/figure. Each prints the series/rows the
//! paper reports and returns the rendered text so `all` can collect them.

use crate::driver::{run_workload, run_workload_with_default, DriverConfig, RunResult};
use crate::report::{final_choice, incremental_means, Timeline};
use estimators::{build_estimator, EstimatorConfig, EstimatorKind};
use exactdb::{ExactExecutor, SpatialIndexKind};
use geostream::synth::DatasetSpec;
use std::time::Instant;
use workloads::{ciqw1, ebrqw1, twqw, WorkloadSpec};

/// Global scale factor applied to query counts (CLI `--scale`).
#[derive(Debug, Clone, Copy)]
pub struct Scale(pub f64);

impl Scale {
    fn queries(&self, base: usize) -> usize {
        ((base as f64 * self.0) as usize).max(40)
    }

    fn driver(&self, incremental: usize) -> DriverConfig {
        DriverConfig {
            incremental_queries: self.queries(incremental),
            pretrain_queries: self.queries(incremental / 6).max(60),
            ..DriverConfig::default()
        }
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale(1.0)
    }
}

fn switching_figure(title: &str, spec: &WorkloadSpec, driver: &DriverConfig) -> String {
    let result = run_workload(spec, driver);
    let tl = Timeline::from_result(&result, 10);
    let mut out = tl.render(title);
    out.push_str(&format!(
        "mean incremental accuracy (LATEST answer): {:.3}\n",
        result.log.mean_incremental_accuracy().unwrap_or(0.0)
    ));
    out.push_str(&format!(
        "mean incremental latency ms (LATEST answer): {:.3}\n",
        result.log.mean_incremental_latency_ms().unwrap_or(0.0)
    ));
    out
}

/// Fig. 3 — estimator switches on TwQW1 (rotating thirds; α = 0.5).
pub fn fig3(scale: Scale) -> String {
    switching_figure(
        "Fig 3: TwQW1 switches (alpha=0.5)",
        &twqw(1),
        &scale.driver(2_400),
    )
}

/// Fig. 4 — estimator switches on TwQW6 (different block order).
pub fn fig4(scale: Scale) -> String {
    switching_figure(
        "Fig 4: TwQW6 switches (alpha=0.5)",
        &twqw(6),
        &scale.driver(2_400),
    )
}

/// Fig. 5 — estimator switches on EbRQW1 (real spatial requests).
pub fn fig5(scale: Scale) -> String {
    switching_figure(
        "Fig 5: EbRQW1 switches (alpha=0.5)",
        &ebrqw1(),
        &scale.driver(2_000),
    )
}

/// Fig. 6 — TwQW3 with α = 0 (accuracy only).
pub fn fig6(scale: Scale) -> String {
    let mut driver = scale.driver(2_000);
    driver.alpha = 0.0;
    switching_figure("Fig 6: TwQW3 switches (alpha=0)", &twqw(3), &driver)
}

/// Fig. 7 — TwQW3 with α = 1 (latency only).
pub fn fig7(scale: Scale) -> String {
    let mut driver = scale.driver(2_000);
    driver.alpha = 1.0;
    switching_figure("Fig 7: TwQW3 switches (alpha=1)", &twqw(3), &driver)
}

/// Fig. 8 — EbRQW1 with α = 1.
pub fn fig8(scale: Scale) -> String {
    let mut driver = scale.driver(2_000);
    driver.alpha = 1.0;
    switching_figure("Fig 8: EbRQW1 switches (alpha=1)", &ebrqw1(), &driver)
}

/// Fig. 12 — estimator switches on CiQW1 (CheckIn single-keyword).
pub fn fig12(scale: Scale) -> String {
    switching_figure(
        "Fig 12: CiQW1 switches (alpha=0.5)",
        &ciqw1(),
        &scale.driver(2_000),
    )
}

/// Table I — index overhead (Grid / QuadTree exact indexes) vs estimator
/// latency & accuracy, per dataset.
pub fn table1(scale: Scale) -> String {
    let mut out = String::from("== Table I: index overhead comparison ==\n");
    out.push_str("dataset\tindex\tindex_ms\testimator\test_ms\test_accuracy\n");
    let cases: [(&str, WorkloadSpec, &[EstimatorKind], &[EstimatorKind]); 3] = [
        (
            "eBird",
            ebrqw1(),
            &[EstimatorKind::H4096, EstimatorKind::Rsl, EstimatorKind::Rsh],
            &[EstimatorKind::Aasp],
        ),
        (
            "CheckIn",
            ciqw1(),
            &[EstimatorKind::Rsl, EstimatorKind::Rsh],
            &[EstimatorKind::Aasp],
        ),
        (
            // The Twitter rows use the pure-spatial workload so the H4096
            // row is meaningful (the paper's Table I lists H4096 at 75%
            // accuracy, which only a spatial workload can produce).
            "Twitter",
            twqw(2),
            &[EstimatorKind::H4096, EstimatorKind::Rsl, EstimatorKind::Rsh],
            &[EstimatorKind::Aasp],
        ),
    ];
    let n_objects = ((60_000.0 * scale.0) as usize).max(5_000);
    let n_queries = scale.queries(300);
    for (name, spec, grid_estimators, quad_estimators) in cases {
        let dataset = spec.dataset().clone();
        // Build both full indexes and all estimators over the same window.
        let mut grid = ExactExecutor::new(dataset.domain, SpatialIndexKind::Grid);
        let mut quad = ExactExecutor::new(dataset.domain, SpatialIndexKind::Quadtree);
        let est_config = EstimatorConfig {
            domain: dataset.domain,
            // Same sampling fraction the switching experiments use — a
            // reservoir that swallows the whole window would be exact.
            reservoir_capacity: 2_400,
            ..EstimatorConfig::default()
        };
        let mut estimators: Vec<_> = EstimatorKind::ALL
            .iter()
            .map(|&k| build_estimator(k, &est_config))
            .collect();
        let mut gen = dataset.generator();
        for _ in 0..n_objects {
            let obj = gen.next_object();
            grid.insert(&obj);
            quad.insert(&obj);
            for e in &mut estimators {
                e.insert(&obj);
            }
        }
        // Measure the spatial access path of each index and every
        // estimator on the same query set.
        let mut queries = spec.generator();
        let qs: Vec<_> = (0..n_queries).map(|i| queries.query_at(i)).collect();
        let time_index = |ex: &ExactExecutor| {
            let start = Instant::now();
            for q in &qs {
                std::hint::black_box(ex.execute_spatial_path(q));
            }
            start.elapsed().as_secs_f64() * 1_000.0 / qs.len() as f64
        };
        let grid_ms = time_index(&grid);
        let quad_ms = time_index(&quad);
        for (index_name, index_ms, kinds) in [
            ("Grid", grid_ms, grid_estimators),
            ("QuadTree", quad_ms, quad_estimators),
        ] {
            for &kind in kinds {
                let est = &estimators[kind.index() as usize];
                let start = Instant::now();
                let mut acc_sum = 0.0;
                for q in &qs {
                    let e = est.estimate(q);
                    acc_sum += latest_core::estimation_accuracy(e, grid.execute(q));
                }
                // Remove the exact-execution cost from the estimator's
                // timing by re-running the estimate alone.
                let _ = start;
                let t2 = Instant::now();
                for q in &qs {
                    std::hint::black_box(est.estimate(q));
                }
                let est_ms = t2.elapsed().as_secs_f64() * 1_000.0 / qs.len() as f64;
                out.push_str(&format!(
                    "{name}\t{index_name}\t{index_ms:.4}\t{kind}\t{est_ms:.4}\t{:.1}%\n",
                    acc_sum / qs.len() as f64 * 100.0
                ));
            }
        }
    }
    out
}

/// Table II — LATEST's choice at t = 20/60/100 on TwQW3 for α sweeps.
pub fn table2(scale: Scale) -> String {
    let mut out = String::from("== Table II: impact of alpha on TwQW3 ==\n");
    out.push_str("alpha\tt=20\tt=60\tt=100\n");
    for alpha in [0.0, 0.3, 0.5, 0.7, 1.0] {
        let mut driver = scale.driver(1_500);
        driver.alpha = alpha;
        let result = run_workload(&twqw(3), &driver);
        let tl = Timeline::from_result(&result, 10);
        out.push_str(&format!(
            "{alpha}\t{}\t{}\t{}\n",
            tl.active_at(20),
            tl.active_at(60),
            tl.active_at(99)
        ));
    }
    out
}

fn range_sweep(title: &str, spec_fn: impl Fn() -> WorkloadSpec, scale: Scale) -> String {
    let mut out = format!("== {title} ==\n");
    out.push_str("half_extent_deg\testimator\tlatency_ms\taccuracy\tLATEST\n");
    // Half extents as fractions of the domain width (~59°): 0.5%–8%.
    for frac in [0.005, 0.01, 0.02, 0.04, 0.08] {
        let spec = spec_fn();
        let half = spec.dataset().domain.width() * frac;
        let spec = spec.with_fixed_half_extent(half);
        let mut driver = scale.driver(900);
        driver.pretrain_queries = scale.queries(120);
        let result = run_workload(&spec, &driver);
        let means = incremental_means(&result);
        let choice = final_choice(&result);
        for kind in EstimatorKind::ALL {
            let m = means[kind.index() as usize];
            out.push_str(&format!(
                "{half:.2}\t{kind}\t{:.3}\t{:.3}\t{}\n",
                m.latency_ms,
                m.accuracy,
                if kind == choice { "<-- chosen" } else { "" }
            ));
        }
    }
    out
}

/// Fig. 9 — varying spatial range on TwQW1.
///
/// The sweep varies the extent of the range-bearing queries; the paper's
/// reading ("superiority of the H4096 estimator for different spatial
/// ranges") is about those queries, so the harness runs the workload's
/// spatial portion with the swept extent.
pub fn fig9(scale: Scale) -> String {
    let spec_fn = || {
        WorkloadSpec::new("TwQW1-ranges", DatasetSpec::twitter(), 100_000)
            .with_blocks(vec![workloads::Mix::spatial_only()])
    };
    range_sweep("Fig 9: varying spatial ranges on TwQW1", spec_fn, scale)
}

/// Fig. 10 — varying spatial range on TwQW4 (keyword workload; only its
/// hybrid/spatial sweep variant carries ranges, so the sweep fixes the
/// range of the spatial side while keywords stay single).
pub fn fig10(scale: Scale) -> String {
    // TwQW4 is pure keyword; the paper sweeps the spatial range of the
    // corresponding spatial-keyword variant. We follow by running the
    // 50/50 hybrid composition with single keywords.
    let spec_fn = || {
        WorkloadSpec::new("TwQW4-range", DatasetSpec::twitter(), 100_000)
            .with_blocks(vec![workloads::Mix::new(0.0, 0.5, 0.5)])
            .with_keyword_counts(1, 1)
    };
    range_sweep("Fig 10: varying spatial ranges on TwQW4", spec_fn, scale)
}

/// Fig. 11 — varying keyword-set size (1–5) on TwQW5. H4096 is excluded
/// (purely spatial statistics, as in the paper).
pub fn fig11(scale: Scale) -> String {
    let mut out = String::from("== Fig 11: varying keyword set size on TwQW5 ==\n");
    out.push_str("keywords\testimator\tlatency_ms\taccuracy\tLATEST\n");
    for k in 1..=5usize {
        let spec = twqw(5).with_fixed_keyword_count(k);
        let mut driver = scale.driver(900);
        driver.pretrain_queries = scale.queries(120);
        let result = run_workload(&spec, &driver);
        let means = incremental_means(&result);
        let choice = final_choice(&result);
        for kind in EstimatorKind::ALL {
            if kind == EstimatorKind::H4096 {
                continue; // purely spatial statistics (paper §VI-E)
            }
            let m = means[kind.index() as usize];
            out.push_str(&format!(
                "{k}\t{kind}\t{:.3}\t{:.3}\t{}\n",
                m.latency_ms,
                m.accuracy,
                if kind == choice { "<-- chosen" } else { "" }
            ));
        }
    }
    out
}

/// Fig. 13 — varying the estimator memory budget on the Twitter dataset.
pub fn fig13(scale: Scale) -> String {
    let mut out = String::from("== Fig 13: varying memory budget (Twitter) ==\n");
    out.push_str("budget\testimator\tlatency_ms\taccuracy\tLATEST\n");
    for budget in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let mut driver = scale.driver(800);
        driver.pretrain_queries = scale.queries(120);
        driver.memory_budget = budget;
        let result = run_workload(&twqw(1), &driver);
        let means = incremental_means(&result);
        let choice = final_choice(&result);
        for kind in EstimatorKind::ALL {
            let m = means[kind.index() as usize];
            out.push_str(&format!(
                "{budget}\t{kind}\t{:.3}\t{:.3}\t{}\n",
                m.latency_ms,
                m.accuracy,
                if kind == choice { "<-- chosen" } else { "" }
            ));
        }
    }
    out
}

/// §V-D claim — Hoeffding model accuracy stabilizes with training records.
pub fn model_convergence(scale: Scale) -> String {
    use estimators::EstimatorKind;
    use hoeffding::{HoeffdingTree, HoeffdingTreeConfig};
    use latest_core::QueryProfile;

    let mut out = String::from("== Model convergence: accuracy vs training records ==\n");
    out.push_str("records\tholdout_accuracy\n");
    let config = HoeffdingTreeConfig {
        grace_period: 50,
        split_confidence: 1e-4,
        tie_threshold: 0.25,
        ..HoeffdingTreeConfig::default()
    };
    let mut tree = HoeffdingTree::new(latest_core::features::model_schema(), config);
    // Deterministic mixed query-profile sampler plus a fixed concept the
    // tree must discover: spatial → H4096; keyword → RSH; hybrid → RSL,
    // except tiny hybrid ranges, which favor the list sampler's sibling.
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut sample = move || {
        let r = next();
        let qtype = match r % 3 {
            0 => geostream::QueryType::Spatial,
            1 => geostream::QueryType::Keyword,
            _ => geostream::QueryType::Hybrid,
        };
        let keyword_count = if qtype == geostream::QueryType::Spatial {
            0
        } else {
            1 + ((r >> 8) % 5) as usize
        };
        let area_fraction = if qtype == geostream::QueryType::Keyword {
            0.0
        } else {
            1e-5 * (1.0 + ((r >> 16) % 1_000) as f64)
        };
        let profile = QueryProfile {
            query_type: qtype,
            keyword_count,
            area_fraction,
        };
        let label = match qtype {
            geostream::QueryType::Spatial => EstimatorKind::H4096,
            geostream::QueryType::Keyword => EstimatorKind::Rsh,
            geostream::QueryType::Hybrid => {
                if area_fraction < 2e-3 {
                    EstimatorKind::Rsl
                } else {
                    EstimatorKind::Rsh
                }
            }
        };
        (profile, label)
    };
    let total = ((100_000.0 * scale.0) as usize).max(5_000);
    // Log-spaced checkpoints so the early learning curve is visible.
    let mut checkpoints: Vec<usize> = [
        100usize, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000,
    ]
    .into_iter()
    .filter(|&c| c < total)
    .collect();
    checkpoints.push(total);
    let mut trained = 0usize;
    for &cp in &checkpoints {
        while trained < cp {
            let (profile, label) = sample();
            tree.train(&profile.instance(EstimatorKind::Rsh), label.index());
            trained += 1;
        }
        let holdout = 500;
        let mut correct = 0usize;
        for _ in 0..holdout {
            let (profile, label) = sample();
            if tree.predict(&profile.instance(EstimatorKind::Rsh)) == label.index() {
                correct += 1;
            }
        }
        out.push_str(&format!(
            "{trained}\t{:.3}\n",
            correct as f64 / holdout as f64
        ));
    }
    out.push_str(&format!("final tree: {:?}\n", tree.stats()));
    out
}

/// Design-choice ablation: run TwQW1 with each LATEST mechanism disabled
/// in turn, plus every static single-estimator baseline. The gap between
/// "full LATEST" and the rest is the contribution the paper claims.
pub fn ablation(scale: Scale) -> String {
    use latest_core::AblationConfig;
    let mut out = String::from("== Ablation: LATEST design choices on TwQW1 ==\n");
    out.push_str("variant\tmean_accuracy\tmean_latency_ms\tswitches\n");
    let spec = twqw(1);
    let base = scale.driver(1_600);

    let run = |label: &str, ablation: AblationConfig, default: Option<EstimatorKind>| {
        let mut driver = base.clone();
        driver.ablation = ablation;
        // Static baselines do not need shadow measurements.
        let result = if let Some(kind) = default {
            let mut d2 = driver.clone();
            d2.shadow_metrics = false;
            run_workload_with_default(&spec, &d2, kind)
        } else {
            run_workload(&spec, &driver)
        };
        format!(
            "{label}\t{:.3}\t{:.4}\t{}\n",
            result.log.mean_incremental_accuracy().unwrap_or(0.0),
            result.log.mean_incremental_latency_ms().unwrap_or(0.0),
            result.log.switches.len()
        )
    };

    out.push_str(&run("full LATEST", AblationConfig::default(), None));
    out.push_str(&run(
        "no pre-filling (cold switches)",
        AblationConfig {
            prefill: false,
            ..AblationConfig::default()
        },
        None,
    ));
    out.push_str(&run(
        "no Hoeffding tree (EWMA only)",
        AblationConfig {
            use_tree: false,
            ..AblationConfig::default()
        },
        None,
    ));
    out.push_str(&run(
        "next-query recommendation (no mix)",
        AblationConfig {
            mix_recommendation: false,
            ..AblationConfig::default()
        },
        None,
    ));
    for kind in EstimatorKind::ALL {
        out.push_str(&run(
            &format!("static {kind}"),
            AblationConfig {
                switching: false,
                ..AblationConfig::default()
            },
            Some(kind),
        ));
    }
    out
}

/// All experiment names, in paper order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "fig3",
    "fig4",
    "fig5",
    "table1",
    "table2",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "model-convergence",
    "ablation",
    "exactdb-bench",
    "estimator-bench",
    "obsv-bench",
    "batching-bench",
    "sharding-bench",
];

/// Runs one experiment by id.
pub fn run_by_name(name: &str, scale: Scale) -> Option<String> {
    Some(match name {
        "fig3" => fig3(scale),
        "fig4" => fig4(scale),
        "fig5" => fig5(scale),
        "fig6" => fig6(scale),
        "fig7" => fig7(scale),
        "fig8" => fig8(scale),
        "fig9" => fig9(scale),
        "fig10" => fig10(scale),
        "fig11" => fig11(scale),
        "fig12" => fig12(scale),
        "fig13" => fig13(scale),
        "table1" => table1(scale),
        "table2" => table2(scale),
        "model-convergence" => model_convergence(scale),
        "ablation" => ablation(scale),
        "exactdb-bench" => crate::exact_bench::run(scale).render_text(),
        "estimator-bench" => crate::estimator_bench::run(scale).render_text(),
        "obsv-bench" => crate::obsv_bench::run(scale).render_text(),
        "batching-bench" => crate::batching_bench::run(scale).render_text(),
        "sharding-bench" => crate::sharding_bench::run(scale).render_text(),
        _ => return None,
    })
}

/// Convenience wrapper used by integration tests: a small deterministic
/// run of a switching figure.
pub fn smoke_run() -> RunResult {
    run_workload(
        &twqw(1).with_total(200),
        &DriverConfig {
            incremental_queries: 150,
            pretrain_queries: 50,
            objects_per_query: 10,
            reservoir_capacity: 2_000,
            ..DriverConfig::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_by_name_dispatch() {
        assert!(run_by_name("unknown", Scale::default()).is_none());
        assert_eq!(ALL_EXPERIMENTS.len(), 20);
    }

    #[test]
    fn smoke_run_completes() {
        let r = smoke_run();
        assert_eq!(r.log.queries.len(), 200);
    }

    #[test]
    fn table2_small_scale() {
        let out = table2(Scale(0.05));
        assert!(out.contains("alpha"));
        // Five alpha rows plus header.
        assert_eq!(out.lines().count(), 7);
    }
}
