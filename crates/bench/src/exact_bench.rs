//! Standalone exact-executor benchmark with machine-readable output.
//!
//! Mirrors the `exactdb_hot_path` criterion bench — a sliding-window
//! ingest replay plus per-query-type count latency, per spatial backend —
//! but runs inside the `experiments` binary and can serialize its report
//! as JSON (`--bench-json` → `BENCH_exactdb.json`), so the measured
//! ingest throughput, count latencies, and planner path mix land in a
//! file CI and the docs can diff against.

use crate::experiments::Scale;
use exactdb::{ExactExecutor, SpatialIndexKind};
use geostream::synth::DatasetSpec;
use geostream::{GeoTextObject, KeywordId, RcDvq, Rect};
use std::time::Instant;

const BACKENDS: [SpatialIndexKind; 3] = [
    SpatialIndexKind::Grid,
    SpatialIndexKind::Quadtree,
    SpatialIndexKind::RTree,
];

/// One query shape's measurement on one backend.
#[derive(Debug, Clone)]
pub struct QueryStat {
    pub label: &'static str,
    /// Mean count latency, microseconds.
    pub mean_us: f64,
    /// The (exact) answer — sanity anchor for cross-run comparisons.
    pub count: u64,
}

/// One backend's measurements.
#[derive(Debug, Clone)]
pub struct BackendStats {
    pub backend: &'static str,
    /// Wall time of the windowed ingest replay, milliseconds.
    pub ingest_ms: f64,
    /// Ingest throughput over the replay (inserts + evictions per second).
    pub ingest_ops_per_sec: f64,
    /// Posting-list compactions performed during the replay.
    pub compactions: u64,
    pub queries: Vec<QueryStat>,
    /// Planner routing over the measured queries.
    pub path_spatial: u64,
    pub path_inverted: u64,
}

/// The full report: window geometry plus per-backend stats.
#[derive(Debug, Clone)]
pub struct ExactBenchReport {
    pub window: usize,
    pub stream: usize,
    pub iters_per_query: usize,
    pub backends: Vec<BackendStats>,
}

/// The query shapes measured per backend (same set as the criterion
/// bench): label + query.
fn query_set(dataset: &DatasetSpec) -> Vec<(&'static str, RcDvq)> {
    let center = dataset.spatial_model().hotspots()[0].center;
    let rect = Rect::centered_clamped(center, 2.0, 1.5, &dataset.domain);
    let small = Rect::centered_clamped(center, 0.4, 0.3, &dataset.domain);
    vec![
        ("spatial", RcDvq::spatial(rect)),
        ("keyword1", RcDvq::keyword(vec![KeywordId(3)])),
        (
            "keyword3",
            RcDvq::keyword(vec![KeywordId(3), KeywordId(11), KeywordId(19)]),
        ),
        ("hybrid1", RcDvq::hybrid(rect, vec![KeywordId(3)])),
        (
            "hybrid3",
            RcDvq::hybrid(rect, vec![KeywordId(3), KeywordId(11), KeywordId(19)]),
        ),
        (
            "hybrid_small",
            RcDvq::hybrid(small, vec![KeywordId(3), KeywordId(11), KeywordId(19)]),
        ),
    ]
}

/// Runs the full measurement. `scale` stretches the window and stream
/// sizes (1.0 → 20k-object window, 30k-object stream).
pub fn run(scale: Scale) -> ExactBenchReport {
    let window = ((20_000.0 * scale.0) as usize).max(2_000);
    let stream = window + window / 2;
    let iters = 200usize;
    let dataset = DatasetSpec::twitter();
    let objects: Vec<GeoTextObject> = dataset.generator().take(stream).collect();
    let queries = query_set(&dataset);

    let mut backends = Vec::new();
    for kind in BACKENDS {
        // Ingest: windowed replay (insert + evict once the window fills).
        let start = Instant::now();
        let mut ex = ExactExecutor::new(dataset.domain, kind);
        for (i, o) in objects.iter().enumerate() {
            ex.insert(o);
            if i >= window {
                ex.remove(&objects[i - window]);
            }
        }
        let ingest_ms = start.elapsed().as_secs_f64() * 1_000.0;
        let ops = (stream + stream.saturating_sub(window)) as f64;
        let compactions = ex.compactions();

        // Counts: mean latency per query shape on the settled window.
        ex.reset_path_mix();
        let mut stats = Vec::new();
        for (label, q) in &queries {
            let count = ex.execute(q);
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(ex.execute(q));
            }
            let mean_us = start.elapsed().as_secs_f64() * 1e6 / iters as f64;
            stats.push(QueryStat {
                label,
                mean_us,
                count,
            });
        }
        let mix = ex.path_mix();
        backends.push(BackendStats {
            backend: kind.name(),
            ingest_ms,
            ingest_ops_per_sec: ops / (ingest_ms / 1_000.0),
            compactions,
            queries: stats,
            path_spatial: mix.spatial,
            path_inverted: mix.inverted,
        });
    }
    ExactBenchReport {
        window,
        stream,
        iters_per_query: iters,
        backends,
    }
}

impl ExactBenchReport {
    /// Human-readable table (the `exactdb-bench` experiment output).
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "== exactdb hot path: window {} / stream {} ==\n",
            self.window, self.stream
        );
        out.push_str("backend\tingest_ms\tingest_ops_s\tcompactions\tpath spatial/inverted\n");
        for b in &self.backends {
            out.push_str(&format!(
                "{}\t{:.1}\t{:.0}\t{}\t{}/{}\n",
                b.backend,
                b.ingest_ms,
                b.ingest_ops_per_sec,
                b.compactions,
                b.path_spatial,
                b.path_inverted
            ));
        }
        out.push_str("backend\tquery\tmean_us\tcount\n");
        for b in &self.backends {
            for q in &b.queries {
                out.push_str(&format!(
                    "{}\t{}\t{:.2}\t{}\n",
                    b.backend, q.label, q.mean_us, q.count
                ));
            }
        }
        out
    }

    /// JSON serialization (hand-rolled: every value here is a number or a
    /// fixed label, so no escaping is needed).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"window\": {},\n", self.window));
        s.push_str(&format!("  \"stream\": {},\n", self.stream));
        s.push_str(&format!(
            "  \"iters_per_query\": {},\n",
            self.iters_per_query
        ));
        s.push_str("  \"backends\": [\n");
        for (i, b) in self.backends.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"backend\": \"{}\",\n", b.backend));
            s.push_str(&format!("      \"ingest_ms\": {:.3},\n", b.ingest_ms));
            s.push_str(&format!(
                "      \"ingest_ops_per_sec\": {:.0},\n",
                b.ingest_ops_per_sec
            ));
            s.push_str(&format!("      \"compactions\": {},\n", b.compactions));
            s.push_str(&format!(
                "      \"path_mix\": {{\"spatial\": {}, \"inverted\": {}}},\n",
                b.path_spatial, b.path_inverted
            ));
            s.push_str("      \"queries\": [\n");
            for (j, q) in b.queries.iter().enumerate() {
                s.push_str(&format!(
                    "        {{\"query\": \"{}\", \"mean_us\": {:.3}, \"count\": {}}}{}\n",
                    q.label,
                    q.mean_us,
                    q.count,
                    if j + 1 < b.queries.len() { "," } else { "" }
                ));
            }
            s.push_str("      ]\n");
            s.push_str(&format!(
                "    }}{}\n",
                if i + 1 < self.backends.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_report_is_complete_and_json_balanced() {
        let report = run(Scale(0.02)); // 2k-object window floor
        assert_eq!(report.backends.len(), 3);
        for b in &report.backends {
            assert_eq!(b.queries.len(), 6);
            assert!(b.ingest_ms > 0.0);
            // Six query shapes, each executed once for the count anchor
            // plus `iters` measured runs.
            assert_eq!(
                b.path_spatial + b.path_inverted,
                (6 * (report.iters_per_query + 1)) as u64
            );
            // All three backends must agree on every anchored count.
            assert_eq!(
                b.queries.iter().map(|q| q.count).collect::<Vec<_>>(),
                report.backends[0]
                    .queries
                    .iter()
                    .map(|q| q.count)
                    .collect::<Vec<_>>()
            );
        }
        let json = report.to_json();
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON"
        );
        assert!(json.contains("\"backend\": \"Grid\""));
        assert!(json.contains("\"path_mix\""));
        let text = report.render_text();
        assert!(text.contains("hybrid_small"));
    }
}
