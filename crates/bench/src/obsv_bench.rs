//! Observability benchmark: replays a small switching workload end to end
//! and reports the run's metrics snapshot — counters, gauges, latency
//! histograms, and the lifecycle event stream — as both a human-readable
//! digest and machine-readable JSON (`--bench-json` →
//! `BENCH_observability.json`), so CI can validate the snapshot schema
//! and the docs can show a real scrape.

use crate::driver::{run_workload, DriverConfig};
use crate::experiments::Scale;
use latest_core::MetricsSnapshot;
use workloads::twqw;

/// The full report: workload identity, replay geometry, and the
/// end-of-run [`MetricsSnapshot`].
#[derive(Debug, Clone)]
pub struct ObsvBenchReport {
    pub workload: &'static str,
    pub incremental_queries: usize,
    pub pretrain_queries: usize,
    pub snapshot: MetricsSnapshot,
}

/// Runs the measurement. `scale` stretches the query counts; the floor
/// keeps even `--scale 0.01` runs long enough to reach the incremental
/// phase and exercise every registry surface.
pub fn run(scale: Scale) -> ObsvBenchReport {
    let incremental = ((600.0 * scale.0) as usize).max(120);
    let pretrain = (incremental / 6).max(60);
    let driver = DriverConfig {
        incremental_queries: incremental,
        pretrain_queries: pretrain,
        ..DriverConfig::default()
    };
    let spec = twqw(1).with_total(incremental + pretrain);
    let result = run_workload(&spec, &driver);
    ObsvBenchReport {
        workload: result.workload,
        incremental_queries: incremental,
        pretrain_queries: pretrain,
        snapshot: result.metrics,
    }
}

impl ObsvBenchReport {
    /// Human-readable digest of the snapshot (the full detail is in the
    /// JSON form).
    pub fn render_text(&self) -> String {
        let s = &self.snapshot;
        let mut out = String::new();
        out.push_str("== Observability bench: end-of-run metrics snapshot ==\n");
        out.push_str(&format!(
            "workload {} ({} pretrain + {} incremental queries)\n",
            self.workload, self.pretrain_queries, self.incremental_queries
        ));
        out.push_str(&format!(
            "phase {}  queries total {} (warmup {}, pretraining {}, incremental {})\n",
            s.phase.name(),
            s.queries_total,
            s.queries_by_phase[0],
            s.queries_by_phase[1],
            s.queries_by_phase[2]
        ));
        out.push_str(&format!(
            "window: occupancy {}  ingested {}  evicted {}\n",
            s.window.occupancy, s.window.ingested, s.window.evicted
        ));
        out.push_str(&format!(
            "adaptor: switches {}  prefills {} started / {} discarded  retrainings {}\n",
            s.adaptor.switches,
            s.adaptor.prefill_starts,
            s.adaptor.prefill_discards,
            s.adaptor.tree_retrainings
        ));
        out.push_str(&format!(
            "pool: {} rounds, {} us busy\n",
            s.pool.rounds, s.pool.busy_us
        ));
        out.push_str(&format!(
            "executor path mix: spatial {} / inverted {}\n",
            s.executor.spatial, s.executor.inverted
        ));
        for e in &s.estimators {
            out.push_str(&format!(
                "estimator {:>5} [{}]: {} estimates (mean {:.1} us), {} bytes\n",
                e.kind.name(),
                e.role.name(),
                e.latency_us.count,
                e.latency_us.mean(),
                e.memory_bytes
            ));
        }
        out.push_str(&format!(
            "events retained {} (dropped {})\n",
            s.events.len(),
            s.events_dropped
        ));
        out
    }

    /// JSON form: run metadata wrapping [`MetricsSnapshot::to_json`].
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("\"workload\": \"{}\",\n", self.workload));
        s.push_str(&format!(
            "\"pretrain_queries\": {},\n",
            self.pretrain_queries
        ));
        s.push_str(&format!(
            "\"incremental_queries\": {},\n",
            self.incremental_queries
        ));
        s.push_str(&format!("\"snapshot\": {}\n", self.snapshot.to_json()));
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use latest_core::PhaseTag;

    #[test]
    fn report_covers_every_subsystem() {
        let report = run(Scale(0.05)); // query floors kick in
        let s = &report.snapshot;
        assert_eq!(s.phase, PhaseTag::Incremental);
        assert_eq!(s.queries_total, 180); // 60 pretrain + 120 incremental
        assert!(s.window.ingested > 0);
        assert!(s.window.occupancy > 0);
        assert!(s.pool.rounds > 0, "pre-training must drive the pool");
        assert!(
            s.executor.spatial + s.executor.inverted > 0,
            "exact executor must have routed queries"
        );
        // The active estimator answered incremental queries; with shadow
        // metrics on, every kind has latency observations.
        for e in &s.estimators {
            assert!(
                e.latency_us.count > 0,
                "estimator {} has no latency samples",
                e.kind.name()
            );
        }
        let phases: Vec<PhaseTag> = s.phase_events();
        assert_eq!(
            phases,
            [
                PhaseTag::WarmUp,
                PhaseTag::PreTraining,
                PhaseTag::Incremental
            ]
        );
    }

    #[test]
    fn json_is_balanced_and_text_renders() {
        let report = run(Scale(0.05));
        let json = report.to_json();
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in observability JSON"
        );
        assert!(json.contains("\"snapshot\""));
        assert!(json.contains("\"estimators\""));
        assert!(json.contains("\"events\""));
        let text = report.render_text();
        assert!(text.contains("executor path mix"));
    }
}
