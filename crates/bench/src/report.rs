//! Report rendering: fold a run log into the series/tables the paper
//! prints.

use crate::driver::RunResult;
use estimators::EstimatorKind;
use latest_core::{PhaseTag, QueryRecord};

/// Per-estimator mean latency/accuracy within one timeline bucket.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BucketStats {
    pub latency_ms: f64,
    pub accuracy: f64,
    pub samples: usize,
}

/// The paper's `t_0 … t_100` timeline: the incremental phase divided into
/// `buckets` equal slices, with per-estimator shadow measurements averaged
/// per slice and the active estimator recorded.
pub struct Timeline {
    /// `series[estimator][bucket]`.
    pub series: Vec<Vec<BucketStats>>,
    /// The active (dotted-line) estimator of each bucket — the one that
    /// answered the majority of its queries.
    pub active: Vec<EstimatorKind>,
    /// Switch marks as `(bucket position in 0..=100, from, to)`.
    pub switches: Vec<(usize, EstimatorKind, EstimatorKind)>,
    pub buckets: usize,
}

impl Timeline {
    /// Builds the timeline from a run with shadow metrics.
    pub fn from_result(result: &RunResult, buckets: usize) -> Timeline {
        let incremental: Vec<&QueryRecord> = result
            .log
            .queries
            .iter()
            .filter(|q| q.phase == PhaseTag::Incremental)
            .collect();
        let n = incremental.len().max(1);
        let mut sums = vec![vec![(0.0f64, 0.0f64, 0usize); buckets]; EstimatorKind::ALL.len()];
        let mut active_votes = vec![[0usize; 6]; buckets];
        for (i, rec) in incremental.iter().enumerate() {
            let b = (i * buckets / n).min(buckets - 1);
            active_votes[b][rec.estimator.index() as usize] += 1;
            for s in &rec.shadow {
                let cell = &mut sums[s.estimator.index() as usize][b];
                cell.0 += s.latency_ms;
                cell.1 += s.accuracy;
                cell.2 += 1;
            }
        }
        let series = sums
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .map(|(lat, acc, k)| BucketStats {
                        latency_ms: if k > 0 { lat / k as f64 } else { 0.0 },
                        accuracy: if k > 0 { acc / k as f64 } else { 0.0 },
                        samples: k,
                    })
                    .collect()
            })
            .collect();
        let active = active_votes
            .into_iter()
            .map(|votes| {
                let best = votes
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &v)| v)
                    .map(|(i, _)| i as u32)
                    .unwrap_or(0);
                EstimatorKind::from_index(best).expect("valid index")
            })
            .collect();
        // Map switch seq positions to 0..=100 marks.
        let first_seq = incremental.first().map(|q| q.seq).unwrap_or(0);
        let switches = result
            .log
            .switches
            .iter()
            .map(|sw| {
                let pos = (sw.at_seq.saturating_sub(first_seq)) as usize * 100 / n;
                (pos.min(100), sw.from, sw.to)
            })
            .collect();
        Timeline {
            series,
            active,
            switches,
            buckets,
        }
    }

    /// Renders the two panels of a switching figure — "(a) latency" and
    /// "(b) accuracy" — as aligned text tables, with the active estimator
    /// per bucket marked `*` (the paper's dotted line).
    pub fn render(&self, title: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {title} ==\n"));
        if !self.switches.is_empty() {
            out.push_str("switches:");
            for (i, (pos, from, to)) in self.switches.iter().enumerate() {
                out.push_str(&format!(" S{}@t{:02}:{}→{}", i + 1, pos, from, to));
            }
            out.push('\n');
        } else {
            out.push_str("switches: none\n");
        }
        for (panel, metric) in [("(a) latency ms", 0usize), ("(b) accuracy", 1)] {
            out.push_str(&format!("{panel}\n"));
            out.push_str("estimator");
            for b in 0..self.buckets {
                out.push_str(&format!("\tt{:<3}", b * 100 / self.buckets));
            }
            out.push('\n');
            for kind in EstimatorKind::ALL {
                out.push_str(kind.name());
                for b in 0..self.buckets {
                    let s = self.series[kind.index() as usize][b];
                    let v = if metric == 0 {
                        s.latency_ms
                    } else {
                        s.accuracy
                    };
                    let mark = if self.active[b] == kind { "*" } else { "" };
                    out.push_str(&format!("\t{v:.3}{mark}"));
                }
                out.push('\n');
            }
        }
        out
    }

    /// The active estimator at a `t` position in `0..=100`.
    pub fn active_at(&self, t: usize) -> EstimatorKind {
        let b = (t * self.buckets / 100).min(self.buckets - 1);
        self.active[b]
    }
}

/// Per-estimator aggregate over the whole incremental phase (used by the
/// sweep figures, where one run contributes one point per estimator).
pub fn incremental_means(result: &RunResult) -> Vec<BucketStats> {
    let mut sums = vec![(0.0f64, 0.0f64, 0usize); EstimatorKind::ALL.len()];
    for rec in result
        .log
        .queries
        .iter()
        .filter(|q| q.phase == PhaseTag::Incremental)
    {
        for s in &rec.shadow {
            let cell = &mut sums[s.estimator.index() as usize];
            cell.0 += s.latency_ms;
            cell.1 += s.accuracy;
            cell.2 += 1;
        }
    }
    sums.into_iter()
        .map(|(lat, acc, k)| BucketStats {
            latency_ms: if k > 0 { lat / k as f64 } else { 0.0 },
            accuracy: if k > 0 { acc / k as f64 } else { 0.0 },
            samples: k,
        })
        .collect()
}

/// The estimator LATEST ended the run on.
pub fn final_choice(result: &RunResult) -> EstimatorKind {
    result
        .log
        .queries
        .iter()
        .rev()
        .find(|q| q.phase == PhaseTag::Incremental)
        .map(|q| q.estimator)
        .unwrap_or(EstimatorKind::Rsh)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_workload, DriverConfig};
    use workloads::twqw;

    fn result() -> RunResult {
        let spec = twqw(2).with_total(100);
        run_workload(
            &spec,
            &DriverConfig {
                incremental_queries: 80,
                pretrain_queries: 20,
                objects_per_query: 10,
                reservoir_capacity: 2_000,
                ..DriverConfig::default()
            },
        )
    }

    #[test]
    fn timeline_buckets_cover_all_queries() {
        let r = result();
        let tl = Timeline::from_result(&r, 10);
        assert_eq!(tl.active.len(), 10);
        let total: usize = (0..10)
            .map(|b| tl.series[EstimatorKind::Rsh.index() as usize][b].samples)
            .sum();
        assert_eq!(total, 80, "every incremental query lands in a bucket");
    }

    #[test]
    fn render_contains_all_estimators() {
        let r = result();
        let tl = Timeline::from_result(&r, 5);
        let text = tl.render("test");
        for kind in EstimatorKind::ALL {
            assert!(text.contains(kind.name()));
        }
        assert!(text.contains("(a) latency"));
        assert!(text.contains("(b) accuracy"));
    }

    #[test]
    fn means_and_choice() {
        let r = result();
        let means = incremental_means(&r);
        assert_eq!(means.len(), 6);
        assert!(means.iter().all(|m| m.samples == 80));
        // H4096 should have sane accuracy on a pure spatial workload.
        let h = means[EstimatorKind::H4096.index() as usize];
        assert!(
            h.accuracy > 0.5,
            "H4096 accuracy on spatial: {}",
            h.accuracy
        );
        let _ = final_choice(&r);
    }

    #[test]
    fn active_at_maps_positions() {
        let r = result();
        let tl = Timeline::from_result(&r, 10);
        let _ = tl.active_at(0);
        let _ = tl.active_at(100); // clamps, no panic
    }
}
