//! CLI entry point: regenerate any table or figure of the paper.
//!
//! ```text
//! experiments <id> [--scale F] [--list]
//! experiments all  [--scale F]
//! ```
//!
//! `id` is one of `fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12
//! fig13 table1 table2 model-convergence`. `--scale` multiplies query
//! counts (default 1.0; use 0.1 for a quick pass, 2.0+ for tighter
//! statistics).

use latest_bench::experiments::{run_by_name, Scale, ALL_EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::default();
    let mut bench_json = false;
    let mut targets: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--bench-json" => bench_json = true,
            "--scale" => {
                i += 1;
                let v = args
                    .get(i)
                    .and_then(|s| s.parse::<f64>().ok())
                    .unwrap_or_else(|| die("--scale needs a positive number"));
                if v <= 0.0 {
                    die("--scale needs a positive number");
                }
                scale = Scale(v);
            }
            "--list" => {
                for name in ALL_EXPERIMENTS {
                    println!("{name}");
                }
                return;
            }
            "--help" | "-h" => {
                print_usage();
                return;
            }
            other => targets.push(other.to_string()),
        }
        i += 1;
    }
    if bench_json {
        // Machine-readable hot-path runs: print the tables, write the
        // JSON next to the working directory for CI/docs to diff.
        let report = latest_bench::exact_bench::run(scale);
        print!("{}", report.render_text());
        let path = "BENCH_exactdb.json";
        if let Err(e) = std::fs::write(path, report.to_json()) {
            die(&format!("cannot write {path}: {e}"));
        }
        eprintln!("wrote {path}");
        let report = latest_bench::estimator_bench::run(scale);
        print!("{}", report.render_text());
        let path = "BENCH_estimators.json";
        if let Err(e) = std::fs::write(path, report.to_json()) {
            die(&format!("cannot write {path}: {e}"));
        }
        eprintln!("wrote {path}");
        let report = latest_bench::obsv_bench::run(scale);
        print!("{}", report.render_text());
        let path = "BENCH_observability.json";
        if let Err(e) = std::fs::write(path, report.to_json()) {
            die(&format!("cannot write {path}: {e}"));
        }
        eprintln!("wrote {path}");
        let report = latest_bench::batching_bench::run(scale);
        print!("{}", report.render_text());
        let path = "BENCH_batching.json";
        if let Err(e) = std::fs::write(path, report.to_json()) {
            die(&format!("cannot write {path}: {e}"));
        }
        eprintln!("wrote {path}");
        let report = latest_bench::sharding_bench::run(scale);
        print!("{}", report.render_text());
        let path = "BENCH_sharding.json";
        if let Err(e) = std::fs::write(path, report.to_json()) {
            die(&format!("cannot write {path}: {e}"));
        }
        eprintln!("wrote {path}");
        return;
    }
    if targets.is_empty() {
        print_usage();
        std::process::exit(2);
    }
    if targets.iter().any(|t| t == "all") {
        targets = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }
    for (n, target) in targets.iter().enumerate() {
        match run_by_name(target, scale) {
            Some(output) => {
                if n > 0 {
                    println!();
                }
                print!("{output}");
            }
            None => die(&format!(
                "unknown experiment '{target}'; use --list to see ids"
            )),
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage: experiments <id>... [--scale F]\n       experiments all [--scale F]\n       experiments --bench-json [--scale F]\n       experiments --list"
    );
}

// CLI usage-error path of a leaf binary: nothing above main holds state
// that a unwinding teardown would need, so a direct exit is correct here
// (the workspace-wide deny targets library code).
#[allow(clippy::exit)]
fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
