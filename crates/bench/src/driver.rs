//! The stream driver: replays a dataset + workload through LATEST.

use estimators::EstimatorConfig;
use geostream::{Duration, Timestamp};
use latest_core::{Latest, LatestConfig, QueryOptions, SystemLog};
use workloads::WorkloadSpec;

/// How a workload is replayed.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Queries answered after the pre-training phase (what the figures
    /// plot as t_0 … t_100).
    pub incremental_queries: usize,
    /// Queries in the pre-training phase.
    pub pretrain_queries: usize,
    /// Stream objects ingested between consecutive queries.
    pub objects_per_query: usize,
    /// α accuracy/latency trade-off.
    pub alpha: f64,
    /// Switch threshold τ.
    pub tau: f64,
    /// Pre-filling factor β.
    pub beta: f64,
    /// Memory budget multiplier for all estimators.
    pub memory_budget: f64,
    /// Base reservoir capacity (scaled by `memory_budget`).
    pub reservoir_capacity: usize,
    /// Maintain and measure all six estimators per query (needed by the
    /// figures; costs runtime).
    pub shadow_metrics: bool,
    /// Design-choice ablation switches (all on = full LATEST protocol).
    pub ablation: latest_core::AblationConfig,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            incremental_queries: 2_000,
            pretrain_queries: 300,
            objects_per_query: 25,
            alpha: 0.5,
            tau: 0.9,
            beta: 0.9,
            memory_budget: 1.0,
            reservoir_capacity: 2_400,
            shadow_metrics: true,
            ablation: latest_core::AblationConfig::default(),
        }
    }
}

/// Everything a finished run exposes to the report layer.
pub struct RunResult {
    pub workload: &'static str,
    pub log: SystemLog,
    /// Stream time at the start of the incremental phase.
    pub incremental_start: Timestamp,
    /// Final Hoeffding-tree statistics.
    pub tree_stats: hoeffding::TreeStats,
    /// End-of-run observability snapshot (registry + lifecycle events).
    pub metrics: latest_core::MetricsSnapshot,
}

/// [`run_workload`] with an explicit default estimator (used by the
/// static-baseline ablations).
pub fn run_workload_with_default(
    spec: &WorkloadSpec,
    driver: &DriverConfig,
    default: estimators::EstimatorKind,
) -> RunResult {
    run_workload_inner(spec, driver, default)
}

/// Replays `spec` through a LATEST instance configured by `driver`.
///
/// The virtual stream interleaves `objects_per_query` data objects before
/// each query; the warm-up phase runs until the window fills once. All
/// randomness is seeded by the specs, so runs are reproducible.
pub fn run_workload(spec: &WorkloadSpec, driver: &DriverConfig) -> RunResult {
    run_workload_inner(spec, driver, estimators::EstimatorKind::Rsh)
}

fn run_workload_inner(
    spec: &WorkloadSpec,
    driver: &DriverConfig,
    default_estimator: estimators::EstimatorKind,
) -> RunResult {
    let dataset = spec.dataset().clone();
    // Window sized so it holds a few tens of thousands of objects at the
    // dataset's arrival rate: span = mean_gap × objects_per_query × 1200.
    let window_span = Duration::from_millis(
        dataset.mean_gap.millis().max(1) * (driver.objects_per_query as u64).max(1) * 1_200,
    );
    let config = LatestConfig::builder()
        .window_span(window_span)
        .warmup(window_span)
        .pretrain_queries(driver.pretrain_queries)
        .alpha(driver.alpha)
        .tau(driver.tau)
        .beta(driver.beta)
        // Hysteresis scales with the run length so short calibration runs
        // and full runs allow a comparable number of switch opportunities.
        .min_switch_spacing((driver.incremental_queries / 12).max(48))
        .accuracy_window((driver.incremental_queries / 50).clamp(16, 32))
        .estimator_config(EstimatorConfig {
            domain: dataset.domain,
            memory_budget: driver.memory_budget,
            reservoir_capacity: driver.reservoir_capacity,
            // The paper's FFN is batch-trained during pre-training and then
            // serves as-is; freeze it at the phase boundary.
            ffn_train_budget: driver.pretrain_queries as u64,
            ..EstimatorConfig::default()
        })
        .shadow_metrics(driver.shadow_metrics)
        .ablation(driver.ablation.clone())
        .default_estimator(default_estimator)
        .build()
        .expect("driver parameters are in range");
    let mut latest = Latest::new(config);
    let mut objects = dataset.generator();
    let mut queries = spec.generator();

    // Warm-up: stream objects until the window has filled once.
    while latest.phase() == latest_core::PhaseTag::WarmUp {
        latest.ingest(objects.next_object());
    }

    let total_queries = driver.pretrain_queries + driver.incremental_queries;
    let mut incremental_start = latest.now();
    let mut started = false;
    for qi in 0..total_queries {
        for _ in 0..driver.objects_per_query {
            latest.ingest(objects.next_object());
        }
        // Map the driver's query position onto the workload's own length
        // so block schedules cover the whole run, and stamp the generator
        // with stream time so query keywords follow topical drift.
        let pos = qi * spec.total() / total_queries.max(1);
        queries.set_time(objects.clock());
        let query = queries.query_at(pos);
        let _ = latest.query(&query, QueryOptions::at(objects.clock()));
        if !started && latest.phase() == latest_core::PhaseTag::Incremental {
            incremental_start = latest.now();
            started = true;
        }
    }

    RunResult {
        workload: spec.name(),
        log: latest.log().clone(),
        incremental_start,
        tree_stats: latest.tree_stats(),
        metrics: latest.metrics_snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::twqw;

    fn tiny_driver() -> DriverConfig {
        DriverConfig {
            incremental_queries: 60,
            pretrain_queries: 20,
            objects_per_query: 10,
            reservoir_capacity: 2_000,
            ..DriverConfig::default()
        }
    }

    #[test]
    fn run_produces_log_with_both_phases() {
        let spec = twqw(2).with_total(80);
        let result = run_workload(&spec, &tiny_driver());
        assert_eq!(result.workload, "TwQW2");
        assert_eq!(result.log.queries.len(), 80);
        assert_eq!(result.log.incremental_queries(), 60);
        // Drift detection may reset the tree mid-run; it must still be
        // learning at the end.
        assert!(result.tree_stats.instances_seen >= 1);
    }

    #[test]
    fn shadow_metrics_present_when_enabled() {
        let spec = twqw(4).with_total(80);
        let result = run_workload(&spec, &tiny_driver());
        let last = result.log.queries.last().unwrap();
        assert_eq!(last.shadow.len(), 6);
    }

    #[test]
    fn runs_are_deterministic() {
        let spec = twqw(3).with_total(80);
        let a = run_workload(&spec, &tiny_driver());
        let b = run_workload(&spec, &tiny_driver());
        let seq_a: Vec<u64> = a.log.queries.iter().map(|q| q.actual).collect();
        let seq_b: Vec<u64> = b.log.queries.iter().map(|q| q.actual).collect();
        assert_eq!(seq_a, seq_b, "actual selectivities must replay identically");
    }
}
