//! # latest-bench — experiment harness for the LATEST reproduction
//!
//! Regenerates every table and figure of the paper's evaluation (§VI) on
//! the synthetic dataset presets. Each experiment module replays a
//! workload through a fully configured [`latest_core::Latest`] instance
//! and renders the recorded series the way the paper reports them
//! (per-decile latency/accuracy per estimator, switch marks, sweep
//! tables).
//!
//! Use the `experiments` binary:
//!
//! ```text
//! cargo run --release -p latest-bench --bin experiments -- fig3
//! cargo run --release -p latest-bench --bin experiments -- all
//! ```
//!
//! Scale knobs (`--queries`, `--scale`) trade fidelity for runtime; the
//! defaults finish each figure in seconds on a laptop while preserving the
//! paper's qualitative shapes.

pub mod batching_bench;
pub mod driver;
pub mod estimator_bench;
pub mod exact_bench;
pub mod experiments;
pub mod obsv_bench;
pub mod report;
pub mod sharding_bench;

pub use driver::{run_workload, run_workload_with_default, DriverConfig, RunResult};
