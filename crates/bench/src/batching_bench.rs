//! Batched-execution benchmark: replays the same hot-heavy mixed query
//! stream through [`Latest::query`] one query at a time and through
//! [`Latest::query_batch`] at increasing batch sizes, and reports the
//! throughput curve (`--bench-json` → `BENCH_batching.json`).
//!
//! The replay models the deployment trade the batched API exists for: a
//! querier that accumulates `B` requests between window updates instead
//! of interleaving every request with arrivals. Arrivals are identical
//! across runs (a fixed number of objects per query slot); only the
//! granularity changes. One-at-a-time, every query lands on a freshly
//! changed window — the selectivity cache can never hit and every request
//! pays the full executor + learning path. Batched, the window changes
//! once per batch, so repeats of the hot set collapse onto in-batch cache
//! hits, the remaining misses share one grouped
//! [`ExactExecutor::execute_batch`](exactdb::ExactExecutor::execute_batch)
//! pass, and the estimates come from one multi-query kernel sweep.

use crate::experiments::Scale;
use estimators::{EstimatorConfig, EstimatorKind};
use geostream::synth::DatasetSpec;
use geostream::{Duration, KeywordId, Point, RcDvq, Rect};
use latest_core::{AblationConfig, Latest, LatestConfig, PhaseTag, QueryOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Batch sizes the curve samples. `1` uses the single-query API;
/// everything else goes through `query_batch`.
pub const BATCH_SIZES: [usize; 5] = [1, 4, 16, 64, 256];

/// Distinct queries in the hot set.
const HOT_SET: usize = 8;
/// Probability (out of 20) that a slot draws from the hot set.
const HOT_IN_20: u32 = 19;
/// Stream arrivals per query slot.
const OBJECTS_PER_QUERY: usize = 4;
/// Standing window the replay queries against (scaled by `--scale`): the
/// exact path's cost grows with the window, which is what makes answer
/// reuse worth batching for in the first place.
const BASE_WINDOW: usize = 40_000;

/// One sampled point on the throughput curve.
#[derive(Debug, Clone, Copy)]
pub struct BatchPoint {
    pub batch_size: usize,
    /// Wall time spent inside the query calls (ingest excluded).
    pub query_ms: f64,
    /// Queries answered per second at this batch size.
    pub qps: f64,
    pub cache_hits: u64,
    pub cache_misses: u64,
}

/// The full report: replay geometry plus the curve.
#[derive(Debug, Clone)]
pub struct BatchingBenchReport {
    pub workload: &'static str,
    pub total_queries: usize,
    pub hot_set: usize,
    pub hot_ratio: f64,
    pub points: Vec<BatchPoint>,
    /// `qps(64) / qps(1)` — the headline the acceptance gate checks.
    pub speedup_at_64: f64,
}

fn config(dataset: &DatasetSpec) -> LatestConfig {
    LatestConfig::builder()
        .window_span(Duration::from_secs(3_600))
        .warmup(Duration::from_secs(60))
        .pretrain_queries(60)
        // Pin the serving estimator: a switch event rebuilds the
        // replacement from the standing window (multi-ms on 40k objects),
        // and switch timing is stochastic across replays — noise that
        // would swamp the steady-state batching effect this curve
        // isolates.
        .default_estimator(EstimatorKind::Rsh)
        .ablation(AblationConfig {
            switching: false,
            ..AblationConfig::default()
        })
        .estimator_config(EstimatorConfig {
            domain: dataset.domain,
            reservoir_capacity: 4_096,
            ..EstimatorConfig::default()
        })
        .build()
        .expect("benchmark parameters are in range")
}

/// The hot-heavy mixed query stream: mostly repeats of a small hot set of
/// region queries (the dashboard / monitoring pattern batching targets),
/// salted with cold one-off queries of every shape.
fn query_stream(rng: &mut StdRng, domain: &Rect, total: usize) -> Vec<RcDvq> {
    let hot: Vec<RcDvq> = (0..HOT_SET)
        .map(|i| make_hot_query(rng, domain, i))
        .collect();
    (0..total)
        .map(|i| {
            if rng.gen_range(0u32..20) < HOT_IN_20 {
                hot[rng.gen_range(0..HOT_SET)].clone()
            } else {
                // Cold: a fresh query that will not repeat.
                make_query(rng, domain, HOT_SET + i)
            }
        })
        .collect()
}

/// A hot-set entry: a wide spatial or hybrid region watch, the kind of
/// repeated query whose exact count is expensive on a large window.
fn make_hot_query(rng: &mut StdRng, domain: &Rect, salt: usize) -> RcDvq {
    let cx = rng.gen_range(domain.min_x..domain.max_x);
    let cy = rng.gen_range(domain.min_y..domain.max_y);
    let half = rng.gen_range(4.0..10.0);
    let rect = Rect::centered_clamped(Point::new(cx, cy), half, half, domain);
    if salt.is_multiple_of(2) {
        RcDvq::spatial(rect)
    } else {
        RcDvq::hybrid(rect, vec![KeywordId(rng.gen_range(0..100))])
    }
}

fn make_query(rng: &mut StdRng, domain: &Rect, salt: usize) -> RcDvq {
    let cx = rng.gen_range(domain.min_x..domain.max_x);
    let cy = rng.gen_range(domain.min_y..domain.max_y);
    let half = rng.gen_range(1.0..5.0);
    let rect = Rect::centered_clamped(Point::new(cx, cy), half, half, domain);
    match salt % 3 {
        0 => RcDvq::spatial(rect),
        1 => RcDvq::keyword(vec![KeywordId(rng.gen_range(0..100))]),
        _ => RcDvq::hybrid(rect, vec![KeywordId(rng.gen_range(0..100))]),
    }
}

/// Builds a system, drives it into the incremental phase on a standing
/// window of `window` objects, and replays the query stream at
/// `batch_size`, timing only the query calls.
fn replay(
    dataset: &DatasetSpec,
    queries: &[RcDvq],
    window: usize,
    batch_size: usize,
) -> BatchPoint {
    let mut latest = Latest::new(config(dataset));
    let mut gen = dataset.generator();
    while latest.phase() == PhaseTag::WarmUp {
        latest.ingest(gen.next_object());
    }
    // Pre-train on a side stream of queries so the replay below runs
    // entirely in the incremental phase.
    let mut rng = StdRng::seed_from_u64(7);
    while latest.phase() == PhaseTag::PreTraining {
        latest.ingest(gen.next_object());
        let q = make_query(&mut rng, &dataset.domain, 1_000);
        let _ = latest.query(&q, QueryOptions::at(gen.clock()));
    }
    // Fill the standing window the replay queries against.
    while latest.window_len() < window {
        latest.ingest(gen.next_object());
    }

    let before = latest.metrics_snapshot();
    let mut query_secs = 0.0f64;
    for batch in queries.chunks(batch_size) {
        for _ in 0..batch.len() * OBJECTS_PER_QUERY {
            latest.ingest(gen.next_object());
        }
        let opts = QueryOptions::at(gen.clock());
        let start = Instant::now();
        if batch_size == 1 {
            let out = latest.query(&batch[0], opts);
            std::hint::black_box(out.estimate);
        } else {
            let outs = latest.query_batch(batch, opts);
            std::hint::black_box(outs.len());
        }
        query_secs += start.elapsed().as_secs_f64();
    }
    let after = latest.metrics_snapshot();
    BatchPoint {
        batch_size,
        query_ms: query_secs * 1_000.0,
        qps: queries.len() as f64 / query_secs.max(1e-9),
        cache_hits: after.cache_hits - before.cache_hits,
        cache_misses: after.cache_misses - before.cache_misses,
    }
}

/// Runs the measurement. The floor keeps even tiny `--scale` runs at a
/// multiple of the largest batch size.
pub fn run(scale: Scale) -> BatchingBenchReport {
    let max_batch = BATCH_SIZES[BATCH_SIZES.len() - 1];
    let total = (((2_048.0 * scale.0) as usize).max(512) / max_batch).max(2) * max_batch;
    let window = ((BASE_WINDOW as f64 * scale.0) as usize).max(8_000);
    let dataset = DatasetSpec::twitter();
    let mut rng = StdRng::seed_from_u64(42);
    let queries = query_stream(&mut rng, &dataset.domain, total);
    let points: Vec<BatchPoint> = BATCH_SIZES
        .iter()
        .map(|&b| replay(&dataset, &queries, window, b))
        .collect();
    let qps_at = |b: usize| {
        points
            .iter()
            .find(|p| p.batch_size == b)
            .map_or(0.0, |p| p.qps)
    };
    BatchingBenchReport {
        workload: "twitter hot-mixed",
        total_queries: total,
        hot_set: HOT_SET,
        hot_ratio: f64::from(HOT_IN_20) / 20.0,
        speedup_at_64: qps_at(64) / qps_at(1).max(1e-9),
        points,
    }
}

impl BatchingBenchReport {
    /// Human-readable throughput table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str("== Batching bench: throughput vs batch size ==\n");
        out.push_str(&format!(
            "workload {} ({} queries, hot set {} at {:.0}% of the mix)\n",
            self.workload,
            self.total_queries,
            self.hot_set,
            self.hot_ratio * 100.0
        ));
        out.push_str("batch      qps   query_ms   cache hit/miss\n");
        for p in &self.points {
            out.push_str(&format!(
                "{:>5} {:>8.0} {:>10.2}   {}/{}\n",
                p.batch_size, p.qps, p.query_ms, p.cache_hits, p.cache_misses
            ));
        }
        out.push_str(&format!(
            "speedup at batch 64 vs one-at-a-time: {:.1}x\n",
            self.speedup_at_64
        ));
        out
    }

    /// JSON form for `BENCH_batching.json`.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("\"workload\": \"{}\",\n", self.workload));
        s.push_str(&format!("\"total_queries\": {},\n", self.total_queries));
        s.push_str(&format!("\"hot_set\": {},\n", self.hot_set));
        s.push_str(&format!("\"hot_ratio\": {},\n", self.hot_ratio));
        s.push_str("\"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            s.push_str(&format!(
                "{{\"batch_size\": {}, \"qps\": {:.1}, \"query_ms\": {:.3}, \"cache_hits\": {}, \"cache_misses\": {}}}{}\n",
                p.batch_size,
                p.qps,
                p.query_ms,
                p.cache_hits,
                p.cache_misses,
                if i + 1 == self.points.len() { "" } else { "," }
            ));
        }
        s.push_str("],\n");
        s.push_str(&format!("\"speedup_at_64\": {:.2}\n", self.speedup_at_64));
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_covers_every_batch_size_and_caches_in_batch() {
        let report = run(Scale(0.25)); // floor: 512 queries
        assert_eq!(report.points.len(), BATCH_SIZES.len());
        assert_eq!(report.total_queries % 256, 0);
        for (p, want) in report.points.iter().zip(BATCH_SIZES) {
            assert_eq!(p.batch_size, want);
            assert!(p.qps > 0.0);
            assert_eq!(
                p.cache_hits + p.cache_misses,
                report.total_queries as u64,
                "every replayed query consults the cache"
            );
        }
        // One-at-a-time the window changes before every query, so the
        // cache can never hit; batched, the hot set collapses in-batch.
        assert_eq!(report.points[0].cache_hits, 0);
        let at_64 = &report.points[3];
        assert!(
            at_64.cache_hits > at_64.cache_misses,
            "hot-heavy mix must mostly hit in-batch ({} hits / {} misses)",
            at_64.cache_hits,
            at_64.cache_misses
        );
    }

    #[test]
    fn json_is_balanced_and_text_renders() {
        let report = run(Scale(0.25));
        let json = report.to_json();
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in batching JSON"
        );
        assert!(json.contains("\"speedup_at_64\""));
        assert!(json.contains("\"points\""));
        let text = report.render_text();
        assert!(text.contains("speedup at batch 64"));
    }
}
