//! Sharded-serving benchmark: replays one deterministic Twitter stream
//! through [`ShardedLatest`] at increasing shard counts plus an unsharded
//! [`Latest`] baseline, and reports the ingest/query throughput curves
//! (`--bench-json` → `BENCH_sharding.json`).
//!
//! Two measurements per engine, on identical pre-generated work so only
//! the shard count varies:
//!
//! - **ingest**: batches of 256 objects through `ingest_batch`, closed by
//!   a [`ShardedLatest::flush`] barrier so the clock stops only after
//!   every shard has drained its queue — enqueue speed alone never counts.
//! - **query**: scatter-gather `query_batch` calls of 16 mixed queries;
//!   gathering replies is inherently synchronous, each call blocks until
//!   every fanned-out shard has answered.
//!
//! The headline numbers the acceptance gate checks: `shards = 1` stays
//! within a small constant factor of the unsharded baseline (the cost of
//! one channel hop), and ingest scales with shard count up to the host's
//! parallelism. On a core-clamped CI host the curve flattens at the clamp
//! — `render_text` prints the host parallelism next to the curve so a
//! flat tail reads as queue-bound, not as a scaling regression.

use crate::experiments::Scale;
use estimators::{EstimatorConfig, EstimatorKind};
use geostream::synth::DatasetSpec;
use geostream::{Duration, GeoTextObject, KeywordId, Point, RcDvq, Rect, Timestamp};
use latest_core::{
    AblationConfig, Latest, LatestConfig, QueryOptions, RouterPolicy, ShardConfig, ShardedLatest,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Shard counts the curve samples, alongside the unsharded baseline.
pub const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Objects per ingest batch — large enough to amortize the channel hop,
/// small enough that the per-batch eviction clock still ticks often.
const INGEST_BATCH: usize = 256;
/// Queries per scatter-gather call.
const QUERY_BATCH: usize = 16;

/// One engine's measured throughput.
#[derive(Debug, Clone, Copy)]
pub struct ShardPoint {
    pub shards: usize,
    /// Objects ingested per second (flush barrier included).
    pub ingest_eps: f64,
    /// Queries answered per second through scatter-gather.
    pub query_qps: f64,
    /// `ingest_eps / ingest_eps(shards = 1)`.
    pub ingest_speedup: f64,
    /// `query_qps / query_qps(shards = 1)`.
    pub query_speedup: f64,
}

/// The full report: replay geometry, host parallelism, the unsharded
/// baseline, and the per-shard-count curve.
#[derive(Debug, Clone)]
pub struct ShardingBenchReport {
    pub workload: &'static str,
    pub router: &'static str,
    pub objects: usize,
    pub queries: usize,
    /// `std::thread::available_parallelism()` on the measuring host —
    /// the ceiling past which more shards cannot scale.
    pub host_parallelism: usize,
    pub baseline_ingest_eps: f64,
    pub baseline_query_qps: f64,
    pub points: Vec<ShardPoint>,
    /// `ingest_eps(shards = 1) / baseline_ingest_eps` — the overhead of
    /// the shard indirection itself; the acceptance gate wants ≈ 1.
    pub shards1_vs_baseline: f64,
}

fn config(dataset: &DatasetSpec, shards: usize) -> LatestConfig {
    LatestConfig::builder()
        .window_span(Duration::from_secs(30))
        .warmup(Duration::from_secs(10))
        .pretrain_queries(12)
        // Pin the serving estimator: switch timing is stochastic across
        // replays and a switch rebuilds from the standing window — noise
        // that would swamp the scaling effect this curve isolates.
        .default_estimator(EstimatorKind::Rsh)
        .ablation(AblationConfig {
            switching: false,
            ..AblationConfig::default()
        })
        .estimator_config(EstimatorConfig {
            domain: dataset.domain,
            reservoir_capacity: 2_048,
            ..EstimatorConfig::default()
        })
        .shard(ShardConfig {
            shards,
            queue_capacity: 8_192,
            router: RouterPolicy::HashOid,
        })
        .build()
        .expect("benchmark parameters are in range")
}

fn make_query(rng: &mut StdRng, domain: &Rect, salt: usize) -> RcDvq {
    let cx = rng.gen_range(domain.min_x..domain.max_x);
    let cy = rng.gen_range(domain.min_y..domain.max_y);
    let half = rng.gen_range(1.0..5.0);
    let rect = Rect::centered_clamped(Point::new(cx, cy), half, half, domain);
    match salt % 3 {
        0 => RcDvq::spatial(rect),
        1 => RcDvq::keyword(vec![KeywordId(rng.gen_range(0..100))]),
        _ => RcDvq::hybrid(rect, vec![KeywordId(rng.gen_range(0..100))]),
    }
}

/// The pre-generated deterministic work every engine replays: priming
/// batches (warm-up + pre-training), measured ingest batches, and the
/// measured query stream with its pinned evaluation time.
struct Workload {
    prime: Vec<Vec<GeoTextObject>>,
    prime_queries: Vec<RcDvq>,
    measured: Vec<Vec<GeoTextObject>>,
    queries: Vec<RcDvq>,
    /// Stream horizon after the last measured batch; all query batches
    /// pin to it so every engine answers at the same virtual time.
    at: Timestamp,
}

fn build_workload(dataset: &DatasetSpec, objects: usize, queries: usize) -> Workload {
    let mut gen = dataset.generator();
    // Warm-up (10 s of stream time) plus enough arrivals to pre-train on.
    let mut prime = Vec::new();
    while gen.clock().0 < 12_000 {
        prime.push((0..INGEST_BATCH).map(|_| gen.next_object()).collect());
    }
    let mut rng = StdRng::seed_from_u64(0x5A4D);
    let prime_queries: Vec<RcDvq> = (0..2 * QUERY_BATCH)
        .map(|i| make_query(&mut rng, &dataset.domain, i))
        .collect();
    let measured: Vec<Vec<GeoTextObject>> = (0..objects / INGEST_BATCH)
        .map(|_| (0..INGEST_BATCH).map(|_| gen.next_object()).collect())
        .collect();
    let queries = (0..queries)
        .map(|i| make_query(&mut rng, &dataset.domain, i))
        .collect();
    Workload {
        prime,
        prime_queries,
        measured,
        queries,
        at: gen.clock(),
    }
}

/// Measures one sharded engine: prime through warm-up and pre-training,
/// then time the ingest replay (with a flush barrier) and the query
/// replay.
fn measure_sharded(dataset: &DatasetSpec, shards: usize, work: &Workload) -> (f64, f64) {
    let engine = ShardedLatest::new(config(dataset, shards)).expect("shards spawn");
    for batch in &work.prime {
        engine.ingest_batch(batch).expect("shards are live");
    }
    // Fanned-out priming queries advance every shard's pre-training in
    // lock-step (a hash-routed query is measured on all shards).
    for chunk in work.prime_queries.chunks(QUERY_BATCH) {
        let _ = engine.query_batch(chunk, QueryOptions::new());
    }

    let start = Instant::now();
    for batch in &work.measured {
        engine.ingest_batch(batch).expect("shards are live");
    }
    engine.flush().expect("shards are live");
    let ingest_secs = start.elapsed().as_secs_f64();

    let opts = QueryOptions::at(work.at);
    let start = Instant::now();
    for chunk in work.queries.chunks(QUERY_BATCH) {
        let outs = engine.query_batch(chunk, opts).expect("shards are live");
        std::hint::black_box(outs.len());
    }
    let query_secs = start.elapsed().as_secs_f64();
    engine.shutdown();

    let objects: usize = work.measured.iter().map(Vec::len).sum();
    (
        objects as f64 / ingest_secs.max(1e-9),
        work.queries.len() as f64 / query_secs.max(1e-9),
    )
}

/// The unsharded control: the identical replay through a plain `Latest`.
fn measure_baseline(dataset: &DatasetSpec, work: &Workload) -> (f64, f64) {
    let mut latest = Latest::new(config(dataset, 1));
    for batch in &work.prime {
        latest.ingest_batch(batch);
    }
    for chunk in work.prime_queries.chunks(QUERY_BATCH) {
        let _ = latest.query_batch(chunk, QueryOptions::new());
    }

    let start = Instant::now();
    for batch in &work.measured {
        latest.ingest_batch(batch);
    }
    let ingest_secs = start.elapsed().as_secs_f64();

    let opts = QueryOptions::at(work.at);
    let start = Instant::now();
    for chunk in work.queries.chunks(QUERY_BATCH) {
        let outs = latest.query_batch(chunk, opts);
        std::hint::black_box(outs.len());
    }
    let query_secs = start.elapsed().as_secs_f64();

    let objects: usize = work.measured.iter().map(Vec::len).sum();
    (
        objects as f64 / ingest_secs.max(1e-9),
        work.queries.len() as f64 / query_secs.max(1e-9),
    )
}

/// Runs the measurement. Floors keep even tiny `--scale` runs at a
/// multiple of the batch sizes.
pub fn run(scale: Scale) -> ShardingBenchReport {
    let objects = (((40_000.0 * scale.0) as usize).max(2_048) / INGEST_BATCH).max(4) * INGEST_BATCH;
    let queries = (((1_024.0 * scale.0) as usize).max(64) / QUERY_BATCH).max(2) * QUERY_BATCH;
    let dataset = DatasetSpec::twitter();
    let work = build_workload(&dataset, objects, queries);

    let (baseline_ingest_eps, baseline_query_qps) = measure_baseline(&dataset, &work);
    let raw: Vec<(usize, f64, f64)> = SHARD_COUNTS
        .iter()
        .map(|&s| {
            let (eps, qps) = measure_sharded(&dataset, s, &work);
            (s, eps, qps)
        })
        .collect();
    let (one_eps, one_qps) = (raw[0].1, raw[0].2);
    let points = raw
        .iter()
        .map(|&(shards, eps, qps)| ShardPoint {
            shards,
            ingest_eps: eps,
            query_qps: qps,
            ingest_speedup: eps / one_eps.max(1e-9),
            query_speedup: qps / one_qps.max(1e-9),
        })
        .collect();
    ShardingBenchReport {
        workload: "twitter mixed",
        router: RouterPolicy::HashOid.name(),
        objects,
        queries,
        host_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        baseline_ingest_eps,
        baseline_query_qps,
        points,
        shards1_vs_baseline: one_eps / baseline_ingest_eps.max(1e-9),
    }
}

impl ShardingBenchReport {
    /// Human-readable scaling table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str("== Sharding bench: throughput vs shard count ==\n");
        out.push_str(&format!(
            "workload {} ({} objects, {} queries, {} router)\n",
            self.workload, self.objects, self.queries, self.router
        ));
        out.push_str(&format!(
            "host parallelism: {} cores",
            self.host_parallelism
        ));
        let max_shards = SHARD_COUNTS[SHARD_COUNTS.len() - 1];
        if self.host_parallelism < max_shards + 1 {
            // +1: the caller thread that feeds and gathers.
            out.push_str(" — CLAMPED below the widest point; curves past the clamp are queue-bound, not core-bound");
        }
        out.push('\n');
        out.push_str(&format!(
            "unsharded baseline: {:>8.0} eps {:>8.0} qps\n",
            self.baseline_ingest_eps, self.baseline_query_qps
        ));
        out.push_str("shards  ingest_eps  speedup  query_qps  speedup\n");
        for p in &self.points {
            out.push_str(&format!(
                "{:>6} {:>11.0} {:>7.2}x {:>10.0} {:>7.2}x\n",
                p.shards, p.ingest_eps, p.ingest_speedup, p.query_qps, p.query_speedup
            ));
        }
        out.push_str(&format!(
            "shards=1 vs unsharded ingest: {:.2}x\n",
            self.shards1_vs_baseline
        ));
        out
    }

    /// JSON form for `BENCH_sharding.json`.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("\"workload\": \"{}\",\n", self.workload));
        s.push_str(&format!("\"router\": \"{}\",\n", self.router));
        s.push_str(&format!("\"objects\": {},\n", self.objects));
        s.push_str(&format!("\"queries\": {},\n", self.queries));
        s.push_str(&format!(
            "\"host_parallelism\": {},\n",
            self.host_parallelism
        ));
        s.push_str(&format!(
            "\"baseline\": {{\"ingest_eps\": {:.1}, \"query_qps\": {:.1}}},\n",
            self.baseline_ingest_eps, self.baseline_query_qps
        ));
        s.push_str("\"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            s.push_str(&format!(
                "{{\"shards\": {}, \"ingest_eps\": {:.1}, \"query_qps\": {:.1}, \"ingest_speedup\": {:.3}, \"query_speedup\": {:.3}}}{}\n",
                p.shards,
                p.ingest_eps,
                p.query_qps,
                p.ingest_speedup,
                p.query_speedup,
                if i + 1 == self.points.len() { "" } else { "," }
            ));
        }
        s.push_str("],\n");
        s.push_str(&format!(
            "\"shards1_vs_baseline\": {:.3}\n",
            self.shards1_vs_baseline
        ));
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_covers_every_shard_count() {
        let report = run(Scale(0.05));
        assert_eq!(report.points.len(), SHARD_COUNTS.len());
        for (p, want) in report.points.iter().zip(SHARD_COUNTS) {
            assert_eq!(p.shards, want);
            assert!(p.ingest_eps > 0.0);
            assert!(p.query_qps > 0.0);
        }
        assert!(report.baseline_ingest_eps > 0.0);
        assert!(report.shards1_vs_baseline > 0.0);
        assert!((report.points[0].ingest_speedup - 1.0).abs() < 1e-9);
        assert!(report.host_parallelism >= 1);
    }

    #[test]
    fn json_is_balanced_and_text_renders() {
        let report = run(Scale(0.05));
        let json = report.to_json();
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in sharding JSON"
        );
        assert!(json.contains("\"host_parallelism\""));
        assert!(json.contains("\"shards1_vs_baseline\""));
        let text = report.render_text();
        assert!(text.contains("shards=1 vs unsharded"));
    }
}
