//! The recommendation side of the Estimator Adaptor (§V-D).
//!
//! The adaptor combines two signals to pick a replacement estimator:
//!
//! * the **Hoeffding tree**, consulted with the profile of the next query
//!   in the queue — its class scores rank the estimators;
//! * per-`(query type, estimator)` **EWMA rewards** accumulated since the
//!   pre-training phase — the fallback ranking while the tree is young,
//!   and the tie-breaker among classes the tree has never predicted.
//!
//! The recommendation always excludes the estimator currently in use
//! (switching to itself would be a no-op the paper's protocol never does).

use crate::features::QueryProfile;
use estimators::EstimatorKind;
use geostream::QueryType;
use hoeffding::HoeffdingTree;

/// EWMA smoothing factor for per-cell rewards.
const EWMA_LAMBDA: f64 = 0.15;
/// Optimistic initial reward so unobserved estimators get explored.
const INITIAL_REWARD: f64 = 0.6;

/// Ranks estimators for a query profile from the learning model plus
/// reward history.
#[derive(Debug, Clone)]
pub struct Recommender {
    /// `rewards[query_type][estimator]` EWMA of α-weighted rewards.
    rewards: [[f64; 6]; 3],
    /// `observations[query_type][estimator]`.
    observations: [[u64; 6]; 3],
}

impl Default for Recommender {
    fn default() -> Self {
        Recommender {
            rewards: [[INITIAL_REWARD; 6]; 3],
            observations: [[0; 6]; 3],
        }
    }
}

impl Recommender {
    /// Creates a recommender with optimistic priors.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one observed reward into the EWMA cell.
    pub fn observe(&mut self, query_type: QueryType, kind: EstimatorKind, reward: f64) {
        let q = query_type.index() as usize;
        let k = kind.index() as usize;
        self.rewards[q][k] = (1.0 - EWMA_LAMBDA) * self.rewards[q][k] + EWMA_LAMBDA * reward;
        self.observations[q][k] += 1;
    }

    /// Current EWMA reward of a cell.
    pub fn reward(&self, query_type: QueryType, kind: EstimatorKind) -> f64 {
        self.rewards[query_type.index() as usize][kind.index() as usize]
    }

    /// How many rewards a cell has absorbed.
    pub fn observations(&self, query_type: QueryType, kind: EstimatorKind) -> u64 {
        self.observations[query_type.index() as usize][kind.index() as usize]
    }

    /// The estimator with the best EWMA reward for `query_type`, excluding
    /// `exclude`.
    pub fn best_by_reward(
        &self,
        query_type: QueryType,
        exclude: Option<EstimatorKind>,
    ) -> EstimatorKind {
        EstimatorKind::ALL
            .into_iter()
            .filter(|&k| Some(k) != exclude)
            .max_by(|a, b| {
                self.reward(query_type, *a)
                    .partial_cmp(&self.reward(query_type, *b))
                    // LINT-ALLOW(no-panic): rewards are mean accuracies in [0, 1], always finite, so partial_cmp succeeds
                    .expect("rewards are finite")
            })
            // LINT-ALLOW(no-panic): the candidate pool always holds all six kinds, so the top-five slice is non-empty
            .expect("at least five candidates remain")
    }

    /// Recommends a replacement for `active` given the next query's
    /// profile: consult the tree's class scores, blend with EWMA rewards,
    /// and return the best non-active estimator.
    ///
    /// The tree's scores are normalized to a distribution so young trees
    /// (all mass on one class) and mature trees compare on the same scale.
    /// Normalization runs over the **non-active** classes only: the active
    /// estimator is never a candidate, so mass the tree puts on it must not
    /// dilute the scores of the classes actually competing — otherwise a
    /// tree that (correctly) favors the active estimator would flatten the
    /// candidates' tree votes toward zero and hand the decision to reward
    /// noise.
    pub fn recommend(
        &self,
        tree: &HoeffdingTree,
        profile: &QueryProfile,
        active: EstimatorKind,
    ) -> EstimatorKind {
        let weights = tree.predict_weights(&profile.instance(active));
        let total: f64 = weights
            .iter()
            .enumerate()
            .filter(|&(k, _)| k != active.index() as usize)
            .map(|(_, w)| w)
            .sum();
        let mut best = None;
        let mut best_score = f64::NEG_INFINITY;
        for kind in EstimatorKind::ALL {
            if kind == active {
                continue;
            }
            let tree_score = if total > 0.0 {
                weights[kind.index() as usize] / total
            } else {
                0.0
            };
            // The tree vote is damped so that measured EWMA rewards decide
            // near-ties; the tree's job is to break genuine workload-shape
            // distinctions, not to override fresh performance evidence.
            let score = 0.5 * tree_score + self.reward(profile.query_type, kind);
            if score > best_score {
                best_score = score;
                best = Some(kind);
            }
        }
        // LINT-ALLOW(no-panic): the pool holds six kinds and exactly one is active, so a non-active candidate exists
        best.expect("non-active candidates exist")
    }

    /// Expected EWMA reward of `kind` under a query-type distribution
    /// (`weights` indexed by [`QueryType::index`], not necessarily
    /// normalized).
    pub fn expected_reward(&self, weights: &[f64; 3], kind: EstimatorKind) -> f64 {
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return INITIAL_REWARD;
        }
        weights
            .iter()
            .enumerate()
            .map(|(t, &w)| w / total * self.rewards[t][kind.index() as usize])
            .sum()
    }

    /// Recommends a replacement for `active` for a **workload mix** rather
    /// than a single query: scores are expectations over the recent
    /// query-type distribution, with one representative profile per type
    /// feeding the tree. This is what keeps LATEST stable on mixed
    /// workloads (e.g. 50 % spatial / 50 % hybrid): optimizing for the
    /// marginal next query would flip-flop between per-type favorites.
    pub fn recommend_mixed(
        &self,
        tree: &HoeffdingTree,
        profiles: &[Option<QueryProfile>; 3],
        weights: &[f64; 3],
        active: EstimatorKind,
    ) -> EstimatorKind {
        self.recommend_with(tree, profiles, weights, active, true)
    }

    /// [`Recommender::recommend_mixed`] with the tree vote optionally
    /// disabled (EWMA-only ablation).
    pub fn recommend_with(
        &self,
        tree: &HoeffdingTree,
        profiles: &[Option<QueryProfile>; 3],
        weights: &[f64; 3],
        active: EstimatorKind,
        use_tree: bool,
    ) -> EstimatorKind {
        // With no recorded query-type mix there is no reason to privilege
        // any single type: fall back to a uniform mix over all three query
        // types, so candidates are judged on their all-round record rather
        // than their Hybrid column alone.
        let uniform = [1.0f64; 3];
        let observed: f64 = weights.iter().sum();
        let (weights, total) = if observed > 0.0 {
            (weights, observed)
        } else {
            (&uniform, 3.0)
        };
        // Per-type tree votes, computed once. Like `recommend`, each vote
        // is normalized over the non-active classes only, so tree mass on
        // the (ineligible) active estimator cannot dilute the candidates.
        let mut tree_scores = [[0.0f64; 6]; 3];
        if use_tree {
            for (t, profile) in profiles.iter().enumerate() {
                let Some(p) = profile else { continue };
                let w = tree.predict_weights(&p.instance(active));
                let sum: f64 = w
                    .iter()
                    .enumerate()
                    .filter(|&(k, _)| k != active.index() as usize)
                    .map(|(_, x)| x)
                    .sum();
                if sum > 0.0 {
                    for k in 0..6 {
                        tree_scores[t][k] = w[k] / sum;
                    }
                }
            }
        }
        let mut best = None;
        let mut best_score = f64::NEG_INFINITY;
        for kind in EstimatorKind::ALL {
            if kind == active {
                continue;
            }
            let k = kind.index() as usize;
            let score: f64 = (0..3)
                .map(|t| weights[t] / total * (0.5 * tree_scores[t][k] + self.rewards[t][k]))
                .sum();
            if score > best_score {
                best_score = score;
                best = Some(kind);
            }
        }
        // LINT-ALLOW(no-panic): the pool holds six kinds and exactly one is active, so a non-active candidate exists
        best.expect("non-active candidates exist")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::model_schema;
    use geostream::{RcDvq, Rect};
    use hoeffding::{HoeffdingTree, HoeffdingTreeConfig};

    fn profile(qt: QueryType) -> QueryProfile {
        QueryProfile {
            query_type: qt,
            keyword_count: if qt == QueryType::Spatial { 0 } else { 2 },
            area_fraction: if qt == QueryType::Keyword { 0.0 } else { 0.01 },
        }
    }

    #[test]
    fn ewma_moves_toward_observations() {
        let mut r = Recommender::new();
        for _ in 0..50 {
            r.observe(QueryType::Spatial, EstimatorKind::H4096, 1.0);
            r.observe(QueryType::Spatial, EstimatorKind::Aasp, 0.0);
        }
        assert!(r.reward(QueryType::Spatial, EstimatorKind::H4096) > 0.95);
        assert!(r.reward(QueryType::Spatial, EstimatorKind::Aasp) < 0.05);
        assert_eq!(r.observations(QueryType::Spatial, EstimatorKind::H4096), 50);
    }

    #[test]
    fn best_by_reward_respects_exclusion() {
        let mut r = Recommender::new();
        for _ in 0..50 {
            r.observe(QueryType::Keyword, EstimatorKind::Rsh, 1.0);
            r.observe(QueryType::Keyword, EstimatorKind::Rsl, 0.9);
        }
        assert_eq!(
            r.best_by_reward(QueryType::Keyword, None),
            EstimatorKind::Rsh
        );
        assert_eq!(
            r.best_by_reward(QueryType::Keyword, Some(EstimatorKind::Rsh)),
            EstimatorKind::Rsl
        );
    }

    #[test]
    fn recommend_never_returns_active() {
        let r = Recommender::new();
        let tree = HoeffdingTree::new(model_schema(), HoeffdingTreeConfig::default());
        for qt in [QueryType::Spatial, QueryType::Keyword, QueryType::Hybrid] {
            for active in EstimatorKind::ALL {
                let rec = r.recommend(&tree, &profile(qt), active);
                assert_ne!(rec, active);
            }
        }
    }

    #[test]
    fn trained_tree_drives_recommendation() {
        let mut r = Recommender::new();
        // Neutralize reward priors so the tree signal dominates.
        for qt in [QueryType::Spatial, QueryType::Keyword, QueryType::Hybrid] {
            for k in EstimatorKind::ALL {
                for _ in 0..60 {
                    r.observe(qt, k, 0.5);
                }
            }
        }
        // Several attributes separate the classes perfectly, so the
        // best-vs-second gain gap stays ~0 and only the tie threshold can
        // trigger the split; loosen it so the test tree matures quickly.
        let config = HoeffdingTreeConfig {
            tie_threshold: 0.3,
            grace_period: 100,
            ..HoeffdingTreeConfig::default()
        };
        let mut tree = HoeffdingTree::new(model_schema(), config);
        // Teach: spatial queries → H4096, keyword queries → RSH.
        let domain = Rect::new(0.0, 0.0, 100.0, 100.0);
        for i in 0..4_000 {
            let side = 1.0 + (i % 20) as f64;
            let sq = RcDvq::spatial(Rect::new(0.0, 0.0, side, side));
            tree.train(
                &QueryProfile::of(&sq, &domain).instance(EstimatorKind::Rsh),
                EstimatorKind::H4096.index(),
            );
            let kq = RcDvq::keyword(vec![geostream::KeywordId(i as u32 % 30)]);
            tree.train(
                &QueryProfile::of(&kq, &domain).instance(EstimatorKind::Rsh),
                EstimatorKind::Rsh.index(),
            );
        }
        let spatial_rec = r.recommend(&tree, &profile(QueryType::Spatial), EstimatorKind::Rsl);
        assert_eq!(spatial_rec, EstimatorKind::H4096);
        // For keyword queries the tree prefers RSH.
        let kw_rec = r.recommend(&tree, &profile(QueryType::Keyword), EstimatorKind::Aasp);
        assert_eq!(kw_rec, EstimatorKind::Rsh);
    }

    #[test]
    fn tree_mass_on_active_does_not_dilute_candidates() {
        // The tree strongly favors the ACTIVE estimator (900 of 1000
        // labels), with the remaining mass split 60:40 between H4096 and
        // RSL; rewards are near-flat with RSL 0.02 ahead. Normalizing the
        // tree vote over all six classes shrinks both candidates' votes
        // ~10x and lets the reward noise flip the decision to RSL;
        // normalizing over the non-active classes keeps the tree's 60:40
        // preference decisive, so H4096 must win.
        let mut r = Recommender::new();
        for k in EstimatorKind::ALL {
            let reward = if k == EstimatorKind::Rsl { 0.52 } else { 0.5 };
            for _ in 0..80 {
                r.observe(QueryType::Spatial, k, reward);
            }
        }
        // A huge grace period keeps the root a leaf, so predict_weights
        // returns the raw class counts.
        let config = HoeffdingTreeConfig {
            grace_period: 1_000_000,
            ..HoeffdingTreeConfig::default()
        };
        let mut tree = HoeffdingTree::new(model_schema(), config);
        let inst = profile(QueryType::Spatial).instance(EstimatorKind::Spn);
        for _ in 0..900 {
            tree.train(&inst, EstimatorKind::Spn.index());
        }
        for _ in 0..60 {
            tree.train(&inst, EstimatorKind::H4096.index());
        }
        for _ in 0..40 {
            tree.train(&inst, EstimatorKind::Rsl.index());
        }
        let rec = r.recommend(&tree, &profile(QueryType::Spatial), EstimatorKind::Spn);
        assert_eq!(rec, EstimatorKind::H4096);
    }

    #[test]
    fn degenerate_mix_falls_back_to_uniform_expectation() {
        // No query-type mix has been recorded yet. AASP is the all-round
        // best (strong on spatial AND keyword), while FFN is merely the
        // Hybrid specialist. A fallback hardcoded to the Hybrid column
        // would pick FFN; the uniform-mix expectation must pick AASP.
        let mut r = Recommender::new();
        for _ in 0..80 {
            r.observe(QueryType::Spatial, EstimatorKind::Aasp, 0.9);
            r.observe(QueryType::Keyword, EstimatorKind::Aasp, 0.9);
            r.observe(QueryType::Hybrid, EstimatorKind::Aasp, 0.5);
            r.observe(QueryType::Spatial, EstimatorKind::Ffn, 0.45);
            r.observe(QueryType::Keyword, EstimatorKind::Ffn, 0.5);
            r.observe(QueryType::Hybrid, EstimatorKind::Ffn, 0.8);
        }
        let tree = HoeffdingTree::new(model_schema(), HoeffdingTreeConfig::default());
        let rec = r.recommend_with(
            &tree,
            &[None, None, None],
            &[0.0; 3],
            EstimatorKind::H4096,
            true,
        );
        assert_eq!(rec, EstimatorKind::Aasp);
    }

    #[test]
    fn rewards_break_tree_ties() {
        let r = {
            let mut r = Recommender::new();
            for _ in 0..80 {
                r.observe(QueryType::Hybrid, EstimatorKind::Rsl, 0.95);
            }
            r
        };
        // Untrained tree: uniform scores; reward history should decide.
        let tree = HoeffdingTree::new(model_schema(), HoeffdingTreeConfig::default());
        let rec = r.recommend(&tree, &profile(QueryType::Hybrid), EstimatorKind::Rsh);
        assert_eq!(rec, EstimatorKind::Rsl);
    }
}
