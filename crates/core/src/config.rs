//! Validated construction of [`LatestConfig`]: the builder API.
//!
//! [`LatestConfig`] remains a plain struct with public fields (and a
//! working `Default`), but the supported way to assemble one is the
//! fluent [`LatestConfigBuilder`], which checks the paper's parameter
//! domains (`τ ∈ (0,1]`, `β ∈ (0,1)`, `α ∈ [0,1]`, nonzero windows) and
//! returns a typed [`ConfigError`] instead of panicking deep inside
//! [`Latest::new`].
//!
//! ```
//! use geostream::Duration;
//! use latest_core::{ConfigError, LatestConfig};
//!
//! let config = LatestConfig::builder()
//!     .window_span(Duration::from_mins(5))
//!     .warmup(Duration::from_mins(5))
//!     .tau(0.8)
//!     .beta(0.9)
//!     .alpha(0.25)
//!     .pool_workers(4)
//!     .build()
//!     .expect("parameters are in range");
//! assert_eq!(config.tau, 0.8);
//!
//! let err = LatestConfig::builder().tau(1.5).build().unwrap_err();
//! assert!(matches!(err, ConfigError::TauOutOfRange(_)));
//! ```
//!
//! [`Latest::new`]: crate::Latest::new

use crate::system::{AblationConfig, LatestConfig};
use estimators::{EstimatorConfig, EstimatorKind};
use exactdb::SpatialIndexKind;
use geostream::Duration;
use hoeffding::HoeffdingTreeConfig;

/// Why a [`LatestConfig`] was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `τ` must be in `(0, 1]` (switching threshold on a `[0,1]` accuracy).
    TauOutOfRange(f64),
    /// `β` must be in `(0, 1)` (pre-filling starts strictly below `τ`).
    BetaOutOfRange(f64),
    /// `α` must be in `[0, 1]` (accuracy/latency trade-off weight).
    AlphaOutOfRange(f64),
    /// The sliding time window `T` must be nonzero.
    ZeroWindowSpan,
    /// The accuracy monitor's moving-average window must be nonzero.
    ZeroAccuracyWindow,
    /// The embedded [`EstimatorConfig`](estimators::EstimatorConfig)
    /// failed its own validation (degenerate domain, zero capacities, ...).
    Estimator(estimators::EstimateError),
    /// A sharded engine needs at least one shard.
    ZeroShardCount,
    /// The shard count exceeds [`MAX_SHARDS`](crate::MAX_SHARDS) — almost
    /// certainly a units mistake, and each shard is a full `Latest` with
    /// its own worker thread.
    ExcessiveShardCount(usize),
    /// Shard command queues must be able to hold at least one command,
    /// or every ingest would deadlock against its own backpressure.
    ZeroShardQueueCapacity,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::TauOutOfRange(v) => write!(f, "tau must be in (0,1], got {v}"),
            ConfigError::BetaOutOfRange(v) => write!(f, "beta must be in (0,1), got {v}"),
            ConfigError::AlphaOutOfRange(v) => write!(f, "alpha must be in [0,1], got {v}"),
            ConfigError::ZeroWindowSpan => write!(f, "window_span must be nonzero"),
            ConfigError::ZeroAccuracyWindow => write!(f, "accuracy_window must be nonzero"),
            ConfigError::Estimator(e) => write!(f, "{e}"),
            ConfigError::ZeroShardCount => write!(f, "shard.shards must be at least 1"),
            ConfigError::ExcessiveShardCount(n) => write!(
                f,
                "shard.shards must be at most {}, got {n}",
                crate::shard::MAX_SHARDS
            ),
            ConfigError::ZeroShardQueueCapacity => {
                write!(f, "shard.queue_capacity must be nonzero")
            }
        }
    }
}

impl std::error::Error for ConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConfigError::Estimator(e) => Some(e),
            _ => None,
        }
    }
}

impl LatestConfig {
    /// Starts a fluent builder seeded with the defaults.
    #[must_use]
    pub fn builder() -> LatestConfigBuilder {
        LatestConfigBuilder::default()
    }

    /// Checks every parameter domain the builder enforces. [`Latest::new`]
    /// calls this too, so hand-assembled configs fail just as loudly.
    ///
    /// [`Latest::new`]: crate::Latest::new
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(self.tau > 0.0 && self.tau <= 1.0) {
            return Err(ConfigError::TauOutOfRange(self.tau));
        }
        if !(self.beta > 0.0 && self.beta < 1.0) {
            return Err(ConfigError::BetaOutOfRange(self.beta));
        }
        if !(0.0..=1.0).contains(&self.alpha) {
            return Err(ConfigError::AlphaOutOfRange(self.alpha));
        }
        if self.window_span.0 == 0 {
            return Err(ConfigError::ZeroWindowSpan);
        }
        if self.accuracy_window == 0 {
            return Err(ConfigError::ZeroAccuracyWindow);
        }
        self.estimator_config
            .validate()
            .map_err(ConfigError::Estimator)?;
        if self.shard.shards == 0 {
            return Err(ConfigError::ZeroShardCount);
        }
        if self.shard.shards > crate::shard::MAX_SHARDS {
            return Err(ConfigError::ExcessiveShardCount(self.shard.shards));
        }
        if self.shard.queue_capacity == 0 {
            return Err(ConfigError::ZeroShardQueueCapacity);
        }
        Ok(())
    }
}

/// Fluent, validating builder for [`LatestConfig`].
#[derive(Debug, Clone, Default)]
pub struct LatestConfigBuilder {
    config: LatestConfig,
}

impl LatestConfigBuilder {
    /// The time window `T` queries are answered over.
    #[must_use = "setters move the builder; reassign or chain the result"]
    pub fn window_span(mut self, span: Duration) -> Self {
        self.config.window_span = span;
        self
    }

    /// Length of the data-only warm-up phase.
    #[must_use = "setters move the builder; reassign or chain the result"]
    pub fn warmup(mut self, warmup: Duration) -> Self {
        self.config.warmup = warmup;
        self
    }

    /// Number of queries in the pre-training phase.
    #[must_use = "setters move the builder; reassign or chain the result"]
    pub fn pretrain_queries(mut self, n: usize) -> Self {
        self.config.pretrain_queries = n;
        self
    }

    /// Accuracy threshold `τ ∈ (0, 1]`: switching below it.
    #[must_use = "setters move the builder; reassign or chain the result"]
    pub fn tau(mut self, tau: f64) -> Self {
        self.config.tau = tau;
        self
    }

    /// Pre-filling factor `β ∈ (0, 1)`: pre-filling starts below `β·τ`.
    #[must_use = "setters move the builder; reassign or chain the result"]
    pub fn beta(mut self, beta: f64) -> Self {
        self.config.beta = beta;
        self
    }

    /// Accuracy/latency trade-off `α ∈ [0, 1]` (0 = accuracy only).
    #[must_use = "setters move the builder; reassign or chain the result"]
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.config.alpha = alpha;
        self
    }

    /// Moving-average window (queries) of the accuracy monitor.
    #[must_use = "setters move the builder; reassign or chain the result"]
    pub fn accuracy_window(mut self, n: usize) -> Self {
        self.config.accuracy_window = n;
        self
    }

    /// Minimum incremental queries between consecutive switches.
    #[must_use = "setters move the builder; reassign or chain the result"]
    pub fn min_switch_spacing(mut self, n: usize) -> Self {
        self.config.min_switch_spacing = n;
        self
    }

    /// Required learned-reward advantage before pre-filling a replacement.
    #[must_use = "setters move the builder; reassign or chain the result"]
    pub fn switch_margin(mut self, margin: f64) -> Self {
        self.config.switch_margin = margin;
        self
    }

    /// The estimator employed when the incremental phase starts.
    #[must_use = "setters move the builder; reassign or chain the result"]
    pub fn default_estimator(mut self, kind: EstimatorKind) -> Self {
        self.config.default_estimator = kind;
        self
    }

    /// Sizing of the underlying estimators.
    #[must_use = "setters move the builder; reassign or chain the result"]
    pub fn estimator_config(mut self, config: EstimatorConfig) -> Self {
        self.config.estimator_config = config;
        self
    }

    /// Hoeffding tree configuration.
    #[must_use = "setters move the builder; reassign or chain the result"]
    pub fn tree_config(mut self, config: HoeffdingTreeConfig) -> Self {
        self.config.tree_config = config;
        self
    }

    /// Spatial backend of the exact executor.
    #[must_use = "setters move the builder; reassign or chain the result"]
    pub fn index_kind(mut self, kind: SpatialIndexKind) -> Self {
        self.config.index_kind = kind;
        self
    }

    /// Keep all estimators maintained and measure each per query.
    #[must_use = "setters move the builder; reassign or chain the result"]
    pub fn shadow_metrics(mut self, on: bool) -> Self {
        self.config.shadow_metrics = on;
        self
    }

    /// Mean-relative-error retraining trigger (§V-D), `None` to disable.
    #[must_use = "setters move the builder; reassign or chain the result"]
    pub fn retrain_error_threshold(mut self, threshold: Option<f64>) -> Self {
        self.config.retrain_error_threshold = threshold;
        self
    }

    /// DDM-based drift retraining of the Hoeffding tree.
    #[must_use = "setters move the builder; reassign or chain the result"]
    pub fn drift_detection(mut self, on: bool) -> Self {
        self.config.drift_detection = on;
        self
    }

    /// Ablation knobs for the design-choice experiments.
    #[must_use = "setters move the builder; reassign or chain the result"]
    pub fn ablation(mut self, ablation: AblationConfig) -> Self {
        self.config.ablation = ablation;
        self
    }

    /// Worker-thread cap for estimator-pool fan-out (`0`/`1` = serial).
    #[must_use = "setters move the builder; reassign or chain the result"]
    pub fn pool_workers(mut self, workers: usize) -> Self {
        self.config.pool_workers = workers;
        self
    }

    /// Distinct query signatures the selectivity cache memoizes per
    /// window generation (`0` disables caching).
    #[must_use = "setters move the builder; reassign or chain the result"]
    pub fn selectivity_cache_capacity(mut self, capacity: usize) -> Self {
        self.config.selectivity_cache_capacity = capacity;
        self
    }

    /// Sharded-serving layout: shard count, per-shard queue capacity, and
    /// routing policy ([`ShardedLatest`](crate::ShardedLatest)).
    #[must_use = "setters move the builder; reassign or chain the result"]
    pub fn shard(mut self, shard: crate::shard::ShardConfig) -> Self {
        self.config.shard = shard;
        self
    }

    /// Validates the assembled configuration.
    pub fn build(self) -> Result<LatestConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_builder_is_valid() {
        let config = LatestConfig::builder().build().expect("defaults valid");
        let defaults = LatestConfig::default();
        assert_eq!(config.tau, defaults.tau);
        assert_eq!(config.pretrain_queries, defaults.pretrain_queries);
    }

    #[test]
    fn fluent_setters_land() {
        let config = LatestConfig::builder()
            .window_span(Duration::from_secs(90))
            .warmup(Duration::from_secs(45))
            .pretrain_queries(77)
            .tau(1.0)
            .beta(0.5)
            .alpha(0.0)
            .accuracy_window(9)
            .min_switch_spacing(3)
            .switch_margin(0.1)
            .default_estimator(EstimatorKind::Aasp)
            .shadow_metrics(true)
            .retrain_error_threshold(Some(2.0))
            .drift_detection(false)
            .pool_workers(4)
            .build()
            .expect("valid");
        assert_eq!(config.window_span, Duration::from_secs(90));
        assert_eq!(config.pretrain_queries, 77);
        assert_eq!(config.tau, 1.0); // τ = 1 is the inclusive upper bound
        assert_eq!(config.default_estimator, EstimatorKind::Aasp);
        assert!(config.shadow_metrics);
        assert_eq!(config.retrain_error_threshold, Some(2.0));
        assert_eq!(config.pool_workers, 4);
    }

    #[test]
    fn rejects_out_of_range_parameters() {
        assert_eq!(
            LatestConfig::builder().tau(0.0).build().unwrap_err(),
            ConfigError::TauOutOfRange(0.0)
        );
        assert_eq!(
            LatestConfig::builder().tau(1.01).build().unwrap_err(),
            ConfigError::TauOutOfRange(1.01)
        );
        assert_eq!(
            LatestConfig::builder().beta(1.0).build().unwrap_err(),
            ConfigError::BetaOutOfRange(1.0)
        );
        assert_eq!(
            LatestConfig::builder().alpha(-0.1).build().unwrap_err(),
            ConfigError::AlphaOutOfRange(-0.1)
        );
        assert_eq!(
            LatestConfig::builder()
                .window_span(Duration(0))
                .build()
                .unwrap_err(),
            ConfigError::ZeroWindowSpan
        );
        assert_eq!(
            LatestConfig::builder()
                .accuracy_window(0)
                .build()
                .unwrap_err(),
            ConfigError::ZeroAccuracyWindow
        );
    }

    #[test]
    fn rejects_invalid_shard_layouts() {
        use crate::shard::{RouterPolicy, ShardConfig, MAX_SHARDS};
        assert_eq!(
            LatestConfig::builder()
                .shard(ShardConfig {
                    shards: 0,
                    ..ShardConfig::default()
                })
                .build()
                .unwrap_err(),
            ConfigError::ZeroShardCount
        );
        assert_eq!(
            LatestConfig::builder()
                .shard(ShardConfig {
                    shards: MAX_SHARDS + 1,
                    ..ShardConfig::default()
                })
                .build()
                .unwrap_err(),
            ConfigError::ExcessiveShardCount(MAX_SHARDS + 1)
        );
        assert_eq!(
            LatestConfig::builder()
                .shard(ShardConfig {
                    queue_capacity: 0,
                    ..ShardConfig::default()
                })
                .build()
                .unwrap_err(),
            ConfigError::ZeroShardQueueCapacity
        );
        // The in-range corners build.
        for shards in [1, MAX_SHARDS] {
            let config = LatestConfig::builder()
                .shard(ShardConfig {
                    shards,
                    queue_capacity: 1,
                    router: RouterPolicy::SpatialTile,
                })
                .build()
                .expect("corner layouts are valid");
            assert_eq!(config.shard.shards, shards);
            assert_eq!(config.shard.router, RouterPolicy::SpatialTile);
        }
    }

    #[test]
    fn error_messages_name_the_domain() {
        assert!(ConfigError::TauOutOfRange(1.5)
            .to_string()
            .contains("tau must be in (0,1]"));
        assert!(ConfigError::BetaOutOfRange(0.0)
            .to_string()
            .contains("beta must be in (0,1)"));
        assert!(ConfigError::ZeroWindowSpan.to_string().contains("nonzero"));
        assert!(ConfigError::ZeroShardCount
            .to_string()
            .contains("at least 1"));
        assert!(ConfigError::ExcessiveShardCount(4_096)
            .to_string()
            .contains("4096"));
        assert!(ConfigError::ZeroShardQueueCapacity
            .to_string()
            .contains("queue_capacity"));
    }

    #[test]
    fn estimator_config_errors_surface_through_builder() {
        use std::error::Error;
        let err = LatestConfig::builder()
            .estimator_config(EstimatorConfig {
                reservoir_capacity: 0,
                ..EstimatorConfig::default()
            })
            .build()
            .unwrap_err();
        let ConfigError::Estimator(ref inner) = err else {
            panic!("expected ConfigError::Estimator, got {err:?}");
        };
        assert!(inner.to_string().contains("reservoir_capacity"));
        assert!(err.source().is_some());
    }
}
