//! The system log: per-query records, shadow metrics, and switch events.
//!
//! Every figure of the paper's evaluation is a readout of this log — the
//! experiment harness replays a workload through [`crate::Latest`] and then
//! renders the recorded latency/accuracy series and switch marks.

use estimators::EstimatorKind;
use geostream::{QueryType, Timestamp};
use serde::{Deserialize, Serialize};

/// Which lifetime phase a record belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PhaseTag {
    WarmUp,
    PreTraining,
    Incremental,
}

impl PhaseTag {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            PhaseTag::WarmUp => "warm-up",
            PhaseTag::PreTraining => "pre-training",
            PhaseTag::Incremental => "incremental",
        }
    }
}

/// Latency/accuracy of one (estimator, query) pair measured in shadow mode
/// (all estimators maintained for plotting, as the paper's figures do).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShadowSample {
    pub estimator: EstimatorKind,
    pub estimate: f64,
    pub latency_ms: f64,
    pub accuracy: f64,
}

/// One answered estimation query.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryRecord {
    /// Sequence number of the query (0-based, across all phases).
    pub seq: u64,
    /// Virtual stream time when the query arrived.
    pub at: Timestamp,
    pub phase: PhaseTag,
    pub query_type: QueryType,
    /// Estimator that produced the returned answer.
    pub estimator: EstimatorKind,
    pub estimate: f64,
    /// Actual selectivity from the exact executor (the "system logs").
    pub actual: u64,
    pub latency_ms: f64,
    pub accuracy: f64,
    /// Moving-average accuracy right after this query, if warmed up.
    pub monitor_average: Option<f64>,
    /// Per-estimator measurements when shadow mode is on.
    pub shadow: Vec<ShadowSample>,
}

/// One estimator switch performed by the adaptor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwitchEvent {
    /// Query sequence number at which the switch took effect.
    pub at_seq: u64,
    /// Virtual stream time of the switch.
    pub at: Timestamp,
    pub from: EstimatorKind,
    pub to: EstimatorKind,
    /// Moving-average accuracy that triggered the switch.
    pub trigger_average: f64,
}

/// Append-only log of everything observable about a LATEST run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SystemLog {
    pub queries: Vec<QueryRecord>,
    pub switches: Vec<SwitchEvent>,
    /// Query sequence numbers at which prefilling started (diagnostics for
    /// the β knob).
    pub prefill_starts: Vec<u64>,
    /// Query sequence numbers at which a prefill was discarded because
    /// accuracy recovered.
    pub prefill_discards: Vec<u64>,
}

impl SystemLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of queries answered in the incremental phase.
    pub fn incremental_queries(&self) -> usize {
        self.queries
            .iter()
            .filter(|q| q.phase == PhaseTag::Incremental)
            .count()
    }

    /// Mean accuracy over incremental-phase queries (the headline score).
    pub fn mean_incremental_accuracy(&self) -> Option<f64> {
        let (sum, n) = self
            .queries
            .iter()
            .filter(|q| q.phase == PhaseTag::Incremental)
            .fold((0.0, 0usize), |(s, n), q| (s + q.accuracy, n + 1));
        (n > 0).then(|| sum / n as f64)
    }

    /// Mean answer latency over incremental-phase queries.
    pub fn mean_incremental_latency_ms(&self) -> Option<f64> {
        let (sum, n) = self
            .queries
            .iter()
            .filter(|q| q.phase == PhaseTag::Incremental)
            .fold((0.0, 0usize), |(s, n), q| (s + q.latency_ms, n + 1));
        (n > 0).then(|| sum / n as f64)
    }

    /// Renders the per-query records as CSV (one row per query; shadow
    /// samples flattened into `<EST>_latency_ms` / `<EST>_accuracy`
    /// columns) — the format external plotting scripts consume.
    pub fn queries_to_csv(&self) -> String {
        use estimators::EstimatorKind;
        let mut out = String::from(
            "seq,at_ms,phase,query_type,estimator,estimate,actual,latency_ms,accuracy,monitor_average",
        );
        for kind in EstimatorKind::ALL {
            out.push_str(&format!(",{kind}_latency_ms,{kind}_accuracy"));
        }
        out.push('\n');
        for q in &self.queries {
            out.push_str(&format!(
                "{},{},{},{},{},{:.6},{},{:.6},{:.6},{}",
                q.seq,
                q.at.millis(),
                q.phase.name(),
                q.query_type.name(),
                q.estimator,
                q.estimate,
                q.actual,
                q.latency_ms,
                q.accuracy,
                q.monitor_average
                    .map(|a| format!("{a:.6}"))
                    .unwrap_or_default(),
            ));
            for kind in EstimatorKind::ALL {
                match q.shadow.iter().find(|s| s.estimator == kind) {
                    Some(s) => out.push_str(&format!(",{:.6},{:.6}", s.latency_ms, s.accuracy)),
                    None => out.push_str(",,"),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Renders the switch events as CSV.
    pub fn switches_to_csv(&self) -> String {
        let mut out = String::from("at_seq,at_ms,from,to,trigger_average\n");
        for sw in &self.switches {
            out.push_str(&format!(
                "{},{},{},{},{:.6}\n",
                sw.at_seq,
                sw.at.millis(),
                sw.from,
                sw.to,
                sw.trigger_average
            ));
        }
        out
    }

    /// The sequence of estimators employed over the incremental phase, as
    /// `(starting seq, estimator)` runs.
    pub fn estimator_timeline(&self) -> Vec<(u64, EstimatorKind)> {
        let mut runs = Vec::new();
        for q in self
            .queries
            .iter()
            .filter(|q| q.phase == PhaseTag::Incremental)
        {
            if runs.last().is_none_or(|&(_, kind)| kind != q.estimator) {
                runs.push((q.seq, q.estimator));
            }
        }
        runs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(seq: u64, phase: PhaseTag, estimator: EstimatorKind, accuracy: f64) -> QueryRecord {
        QueryRecord {
            seq,
            at: Timestamp(seq),
            phase,
            query_type: QueryType::Spatial,
            estimator,
            estimate: 10.0,
            actual: 10,
            latency_ms: 1.0,
            accuracy,
            monitor_average: None,
            shadow: Vec::new(),
        }
    }

    #[test]
    fn aggregates_skip_pretraining() {
        let mut log = SystemLog::new();
        log.queries
            .push(record(0, PhaseTag::PreTraining, EstimatorKind::Rsh, 0.1));
        log.queries
            .push(record(1, PhaseTag::Incremental, EstimatorKind::Rsh, 0.8));
        log.queries
            .push(record(2, PhaseTag::Incremental, EstimatorKind::Rsh, 0.6));
        assert_eq!(log.incremental_queries(), 2);
        assert!((log.mean_incremental_accuracy().unwrap() - 0.7).abs() < 1e-12);
        assert!((log.mean_incremental_latency_ms().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_log_aggregates_none() {
        let log = SystemLog::new();
        assert_eq!(log.mean_incremental_accuracy(), None);
        assert_eq!(log.mean_incremental_latency_ms(), None);
        assert!(log.estimator_timeline().is_empty());
    }

    #[test]
    fn timeline_compresses_runs() {
        let mut log = SystemLog::new();
        for (seq, kind) in [
            (0, EstimatorKind::Rsh),
            (1, EstimatorKind::Rsh),
            (2, EstimatorKind::H4096),
            (3, EstimatorKind::H4096),
            (4, EstimatorKind::Rsh),
        ] {
            log.queries
                .push(record(seq, PhaseTag::Incremental, kind, 0.5));
        }
        let timeline = log.estimator_timeline();
        assert_eq!(
            timeline,
            vec![
                (0, EstimatorKind::Rsh),
                (2, EstimatorKind::H4096),
                (4, EstimatorKind::Rsh)
            ]
        );
    }

    #[test]
    fn csv_round_trips_columns() {
        let mut log = SystemLog::new();
        let mut rec = record(3, PhaseTag::Incremental, EstimatorKind::Rsh, 0.8);
        rec.monitor_average = Some(0.75);
        rec.shadow.push(crate::log::ShadowSample {
            estimator: EstimatorKind::H4096,
            estimate: 5.0,
            latency_ms: 0.001,
            accuracy: 0.5,
        });
        log.queries.push(rec);
        log.switches.push(SwitchEvent {
            at_seq: 3,
            at: Timestamp(3),
            from: EstimatorKind::Rsh,
            to: EstimatorKind::H4096,
            trigger_average: 0.6,
        });
        let csv = log.queries_to_csv();
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        let row = lines.next().unwrap();
        assert_eq!(
            header.split(',').count(),
            row.split(',').count(),
            "header/row column mismatch:\n{header}\n{row}"
        );
        assert!(header.contains("H4096_latency_ms"));
        assert!(row.starts_with("3,3,incremental,spatial,RSH,"));
        assert!(row.contains("0.750000"));
        let sw_csv = log.switches_to_csv();
        assert!(sw_csv.lines().nth(1).unwrap().starts_with("3,3,RSH,H4096,"));
    }

    #[test]
    fn phase_names() {
        assert_eq!(PhaseTag::WarmUp.name(), "warm-up");
        assert_eq!(PhaseTag::PreTraining.name(), "pre-training");
        assert_eq!(PhaseTag::Incremental.name(), "incremental");
    }
}
