//! The selectivity cache: answers for repeated queries over an unchanged
//! window, keyed on `(QuerySignature, window generation)`.
//!
//! A sliding-window selectivity is only stable while the window's content
//! is stable, so the cache is valid for exactly one window *generation* —
//! the [`SlidingWindow`](geostream::SlidingWindow) counter that advances on
//! every insert, eviction sweep, and clear. Rather than tagging entries,
//! the cache remembers the generation its whole map was filled under and
//! drops everything the first time it is consulted under a newer one. A
//! stale hit is therefore impossible by construction: an entry can only be
//! returned under the same generation it was inserted under.
//!
//! The map is bounded: once `capacity` distinct signatures are cached for
//! the current generation, further inserts are ignored (the next content
//! change clears the map anyway, so eviction machinery would buy nothing
//! but nondeterminism).

use crate::log::PhaseTag;
use estimators::EstimatorKind;
use geostream::QuerySignature;
use std::collections::HashMap;

/// A memoized query answer: everything [`QueryOutcome`](crate::QueryOutcome)
/// needs besides the (always-zero) latency of serving a cache hit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CachedAnswer {
    /// The estimate the estimation path answered with.
    pub estimate: f64,
    /// Actual selectivity the exact executor logged.
    pub actual: u64,
    /// Accuracy of the estimate against the actual.
    pub accuracy: f64,
    /// The estimator that produced the answer.
    pub estimator: EstimatorKind,
    /// Phase the original query was served in.
    pub phase: PhaseTag,
}

/// A bounded, generation-scoped memo table of query answers.
#[derive(Debug)]
pub struct SelectivityCache {
    /// Window generation the current map contents were filled under.
    generation: u64,
    map: HashMap<QuerySignature, CachedAnswer>,
    capacity: usize,
    /// Whole-map invalidations performed (generation changes observed).
    invalidations: u64,
}

impl SelectivityCache {
    /// An empty cache holding at most `capacity` answers per generation.
    /// `capacity` 0 disables caching (every lookup misses).
    pub fn new(capacity: usize) -> Self {
        SelectivityCache {
            generation: 0,
            map: HashMap::new(),
            capacity,
            invalidations: 0,
        }
    }

    /// Drops the map if `generation` differs from the one it was filled
    /// under, then records the new generation.
    fn sync(&mut self, generation: u64) {
        if self.generation != generation {
            if !self.map.is_empty() {
                self.map.clear();
                self.invalidations += 1;
            }
            self.generation = generation;
        }
    }

    /// The cached answer for `sig` at window `generation`, if any.
    pub fn lookup(&mut self, sig: QuerySignature, generation: u64) -> Option<CachedAnswer> {
        self.sync(generation);
        self.map.get(&sig).copied()
    }

    /// Whether `sig` is cached at window `generation` (same invalidation
    /// side effect as [`SelectivityCache::lookup`]).
    pub fn contains(&mut self, sig: QuerySignature, generation: u64) -> bool {
        self.lookup(sig, generation).is_some()
    }

    /// Memoizes `answer` under `sig` for window `generation`. A no-op when
    /// the capacity bound is reached (the entry simply stays uncached).
    pub fn insert(&mut self, sig: QuerySignature, generation: u64, answer: CachedAnswer) {
        self.sync(generation);
        if self.map.len() < self.capacity || self.map.contains_key(&sig) {
            self.map.insert(sig, answer);
        }
    }

    /// Entries cached for the current generation.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether nothing is cached for the current generation.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The window generation the current contents are valid for.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The per-generation capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whole-map invalidations observed so far.
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn answer(estimate: f64) -> CachedAnswer {
        CachedAnswer {
            estimate,
            actual: 7,
            accuracy: 0.9,
            estimator: EstimatorKind::Rsh,
            phase: PhaseTag::Incremental,
        }
    }

    #[test]
    fn hit_only_under_same_generation() {
        let mut cache = SelectivityCache::new(16);
        let sig = QuerySignature(42);
        cache.insert(sig, 3, answer(1.0));
        assert_eq!(cache.lookup(sig, 3).map(|a| a.estimate), Some(1.0));
        // Any generation change — even backwards — invalidates everything.
        assert_eq!(cache.lookup(sig, 4), None);
        assert_eq!(cache.invalidations(), 1);
        assert_eq!(cache.lookup(sig, 3), None, "old generation must not revive");
    }

    #[test]
    fn capacity_bounds_distinct_signatures() {
        let mut cache = SelectivityCache::new(2);
        cache.insert(QuerySignature(1), 0, answer(1.0));
        cache.insert(QuerySignature(2), 0, answer(2.0));
        cache.insert(QuerySignature(3), 0, answer(3.0));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.lookup(QuerySignature(3), 0), None);
        // Updating an already-cached signature is always allowed.
        cache.insert(QuerySignature(2), 0, answer(9.0));
        assert_eq!(
            cache.lookup(QuerySignature(2), 0).map(|a| a.estimate),
            Some(9.0)
        );
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = SelectivityCache::new(0);
        cache.insert(QuerySignature(1), 0, answer(1.0));
        assert_eq!(cache.lookup(QuerySignature(1), 0), None);
        assert!(cache.is_empty());
    }
}
