//! Concurrent deployment facade.
//!
//! A real system ingests the stream on one path and answers estimation
//! queries on another. This module provides the two pieces a deployment
//! needs:
//!
//! * [`SharedLatest`] — a cheaply cloneable, thread-safe handle around a
//!   [`Latest`] instance (a `parking_lot` mutex; LATEST's per-event work is
//!   microseconds, so a mutex outperforms anything fancier at realistic
//!   rates);
//! * [`StreamPipeline`] — a crossbeam-channel pipeline that runs ingestion
//!   on a background thread while the caller issues queries from any
//!   number of threads. The consumer drains the channel into batches, so
//!   lock traffic and estimator maintenance are amortized over many
//!   arrivals ([`Latest::ingest_batch`]).
//!
//! Query paths are fallible: once a pipeline shuts down, its handles
//! return [`LatestError::PipelineShutDown`] instead of silently answering
//! against a stream that is no longer advancing; a non-blocking request
//! ([`QueryOptions::blocking`]`(false)`) additionally refuses to wait on a
//! contended instance and fails with [`LatestError::WouldBlock`] instead.
//!
//! ```
//! use geostream::synth::DatasetSpec;
//! use geostream::{Duration, RcDvq, Rect};
//! use latest_core::concurrent::StreamPipeline;
//! use latest_core::{LatestConfig, LatestError, PhaseTag, QueryOptions};
//!
//! let dataset = DatasetSpec::twitter();
//! let config = LatestConfig::builder()
//!     .window_span(Duration::from_secs(30))
//!     .warmup(Duration::from_secs(30))
//!     .pretrain_queries(10)
//!     .estimator_config(estimators::EstimatorConfig {
//!         domain: dataset.domain,
//!         reservoir_capacity: 1_000,
//!         ..Default::default()
//!     })
//!     .build()
//!     .expect("parameters are in range");
//! let pipeline =
//!     StreamPipeline::spawn(config, dataset.generator(), 8_000).expect("threads spawn");
//! pipeline.wait_for_phase(PhaseTag::PreTraining);
//! let handle = pipeline.handle();
//! let out = handle
//!     .query(
//!         &RcDvq::spatial(Rect::new(-120.0, 30.0, -100.0, 45.0)),
//!         QueryOptions::new(),
//!     )
//!     .expect("pipeline is live");
//! assert!(out.estimate >= 0.0);
//! pipeline.shutdown();
//! assert_eq!(
//!     handle
//!         .query(&RcDvq::spatial(Rect::WORLD), QueryOptions::new())
//!         .unwrap_err(),
//!     LatestError::PipelineShutDown
//! );
//! ```

use crate::error::LatestError;
use crate::log::PhaseTag;
use crate::obsv::MetricsSnapshot;
use crate::system::{Latest, LatestConfig, QueryOptions, QueryOutcome};
use crossbeam::channel::{bounded, Receiver, Sender};
use estimators::EstimatorKind;
use geostream::synth::ObjectGenerator;
use geostream::{GeoTextObject, RcDvq, Timestamp};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// How many queued arrivals the pipeline consumer ingests per lock
/// acquisition, at most. Large enough to amortize locking and estimator
/// fan-out, small enough to keep query-path lock waits bounded.
const INGEST_BATCH: usize = 256;

/// A thread-safe, cloneable handle to a LATEST instance.
#[derive(Clone)]
pub struct SharedLatest {
    inner: Arc<Mutex<Latest>>,
    /// Cleared when the owning pipeline shuts down; standalone handles
    /// stay open forever.
    open: Arc<AtomicBool>,
}

impl SharedLatest {
    /// Wraps a fresh LATEST instance.
    pub fn new(config: LatestConfig) -> Self {
        SharedLatest {
            inner: Arc::new(Mutex::new(Latest::new(config))),
            open: Arc::new(AtomicBool::new(true)),
        }
    }

    /// Whether the backing stream is still live (always true for
    /// standalone handles; false once an owning pipeline shut down).
    pub fn is_open(&self) -> bool {
        // Acquire ordering: pairs with the Release store in `close()` so a
        // handle that observes `false` also observes every write the
        // pipeline made before shutting down.
        self.open.load(Ordering::Acquire)
    }

    fn ensure_open(&self) -> Result<(), LatestError> {
        if self.is_open() {
            Ok(())
        } else {
            Err(LatestError::PipelineShutDown)
        }
    }

    /// Marks the handle family as shut down (further queries fail).
    pub(crate) fn close(&self) {
        // Release ordering: publishes all pre-shutdown writes before any
        // Acquire load in `is_open()` can observe the cleared flag.
        self.open.store(false, Ordering::Release);
    }

    /// Ingests one stream object.
    pub fn ingest(&self, obj: GeoTextObject) {
        self.inner.lock().ingest(obj);
    }

    /// Ingests a batch of stream objects under a single lock acquisition.
    pub fn ingest_batch(&self, batch: &[GeoTextObject]) {
        self.inner.lock().ingest_batch(batch);
    }

    /// Acquires the instance lock per `options.blocking`: wait for the
    /// lock, or fail with [`LatestError::WouldBlock`] if it is contended.
    fn lock_for(
        &self,
        options: &QueryOptions,
    ) -> Result<parking_lot::MutexGuard<'_, Latest>, LatestError> {
        self.ensure_open()?;
        if options.blocking {
            Ok(self.inner.lock())
        } else {
            self.inner.try_lock().ok_or(LatestError::WouldBlock)
        }
    }

    /// Answers one query under `options` ([`Latest::query`]), failing once
    /// the owning pipeline shut down — and, for non-blocking requests,
    /// when the instance lock is contended.
    pub fn query(&self, query: &RcDvq, options: QueryOptions) -> Result<QueryOutcome, LatestError> {
        Ok(self.lock_for(&options)?.query(query, options))
    }

    /// Answers a batch of queries under one lock acquisition
    /// ([`Latest::query_batch`]), with the same failure modes as
    /// [`SharedLatest::query`].
    pub fn query_batch(
        &self,
        queries: &[RcDvq],
        options: QueryOptions,
    ) -> Result<Vec<QueryOutcome>, LatestError> {
        Ok(self.lock_for(&options)?.query_batch(queries, options))
    }

    /// Answers an estimation query at an explicit stream time (the
    /// pre-unified API; `query` with [`QueryOptions::at`] replaces it).
    #[deprecated(since = "0.2.0", note = "use `query(query, QueryOptions::at(at))`")]
    pub fn query_at(&self, query: &RcDvq, at: Timestamp) -> Result<QueryOutcome, LatestError> {
        self.query(query, QueryOptions::at(at).use_cache(false))
    }

    /// Non-blocking query (the pre-unified API; `query` with
    /// [`QueryOptions::blocking`]`(false)` replaces it).
    #[deprecated(
        since = "0.2.0",
        note = "use `query(query, QueryOptions::new().blocking(false))`"
    )]
    pub fn try_query(&self, query: &RcDvq) -> Result<QueryOutcome, LatestError> {
        self.query(query, QueryOptions::new().blocking(false).use_cache(false))
    }

    /// Current lifetime phase.
    pub fn phase(&self) -> PhaseTag {
        self.inner.lock().phase()
    }

    /// The estimator currently employed.
    pub fn active_kind(&self) -> EstimatorKind {
        self.inner.lock().active_kind()
    }

    /// Live window size.
    pub fn window_len(&self) -> usize {
        self.inner.lock().window_len()
    }

    /// Number of switches performed so far.
    pub fn switch_count(&self) -> usize {
        self.inner.lock().log().switches.len()
    }

    /// A point-in-time copy of the run-wide observability metrics
    /// ([`Latest::metrics_snapshot`]), taken under one brief lock hold.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.inner.lock().metrics_snapshot()
    }

    /// Runs `f` against the underlying instance (e.g. to clone the log).
    pub fn with<R>(&self, f: impl FnOnce(&Latest) -> R) -> R {
        f(&self.inner.lock())
    }
}

/// A background ingestion pipeline: a producer thread pulls objects from a
/// generator and sends them over a bounded crossbeam channel; a consumer
/// thread drains the channel into batches and ingests each batch into the
/// shared LATEST instance under one lock acquisition.
pub struct StreamPipeline {
    handle: SharedLatest,
    stop: Sender<()>,
    producer: Option<JoinHandle<()>>,
    consumer: Option<JoinHandle<u64>>,
}

impl StreamPipeline {
    /// Spawns the pipeline. `channel_capacity` bounds producer run-ahead
    /// (backpressure).
    pub fn spawn(
        config: LatestConfig,
        mut generator: ObjectGenerator,
        channel_capacity: usize,
    ) -> Result<Self, LatestError> {
        let handle = SharedLatest::new(config);
        let (obj_tx, obj_rx): (Sender<GeoTextObject>, Receiver<GeoTextObject>) =
            bounded(channel_capacity.max(1));
        let (stop_tx, stop_rx) = bounded::<()>(1);

        let producer = std::thread::Builder::new()
            .name("latest-producer".into())
            .spawn(move || loop {
                if stop_rx.try_recv().is_ok() {
                    return;
                }
                // Send blocks when the consumer lags: backpressure.
                if obj_tx.send(generator.next_object()).is_err() {
                    return;
                }
            })
            .map_err(|e| LatestError::Spawn {
                thread: "latest-producer",
                reason: e.to_string(),
            })?;

        let consumer_handle = handle.clone();
        let consumer = std::thread::Builder::new()
            .name("latest-ingestor".into())
            .spawn(move || {
                let mut ingested = 0u64;
                let mut batch = Vec::with_capacity(INGEST_BATCH);
                // Block for the first object of a batch, then drain
                // whatever else is already queued (up to the cap) so one
                // lock acquisition covers the whole burst.
                while let Ok(obj) = obj_rx.recv() {
                    batch.push(obj);
                    while batch.len() < INGEST_BATCH {
                        match obj_rx.try_recv() {
                            Ok(obj) => batch.push(obj),
                            Err(_) => break,
                        }
                    }
                    consumer_handle.ingest_batch(&batch);
                    ingested += batch.len() as u64;
                    batch.clear();
                }
                ingested
            })
            .map_err(|e| LatestError::Spawn {
                thread: "latest-ingestor",
                reason: e.to_string(),
            })?;

        Ok(StreamPipeline {
            handle,
            stop: stop_tx,
            producer: Some(producer),
            consumer: Some(consumer),
        })
    }

    /// A cloneable query handle.
    pub fn handle(&self) -> SharedLatest {
        self.handle.clone()
    }

    /// Answers one query under `options`, failing once the pipeline shut
    /// down ([`SharedLatest::query`]).
    pub fn query(&self, query: &RcDvq, options: QueryOptions) -> Result<QueryOutcome, LatestError> {
        self.handle.query(query, options)
    }

    /// Answers a batch of queries under one lock acquisition
    /// ([`SharedLatest::query_batch`]).
    pub fn query_batch(
        &self,
        queries: &[RcDvq],
        options: QueryOptions,
    ) -> Result<Vec<QueryOutcome>, LatestError> {
        self.handle.query_batch(queries, options)
    }

    /// Non-blocking query (the pre-unified API; `query` with
    /// [`QueryOptions::blocking`]`(false)` replaces it).
    #[deprecated(
        since = "0.2.0",
        note = "use `query(query, QueryOptions::new().blocking(false))`"
    )]
    pub fn try_query(&self, query: &RcDvq) -> Result<QueryOutcome, LatestError> {
        self.handle
            .query(query, QueryOptions::new().blocking(false).use_cache(false))
    }

    /// Blocks until LATEST has reached (at least) `phase`.
    pub fn wait_for_phase(&self, phase: PhaseTag) {
        let rank = |p: PhaseTag| match p {
            PhaseTag::WarmUp => 0,
            PhaseTag::PreTraining => 1,
            PhaseTag::Incremental => 2,
        };
        while rank(self.handle.phase()) < rank(phase) {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    /// Spawns a periodic metrics scraper against this pipeline: every
    /// `every`, a [`MetricsSnapshot`] is taken under one brief lock hold
    /// and offered on the scraper's bounded channel. A slow consumer never
    /// backpressures the scrape loop — when the channel is full the
    /// snapshot is dropped (the next one supersedes it anyway). The
    /// scraper stops on [`SnapshotScraper::stop`], on drop, or on its own
    /// once the pipeline shuts down.
    pub fn spawn_scraper(
        &self,
        every: std::time::Duration,
        capacity: usize,
    ) -> Result<SnapshotScraper, LatestError> {
        SnapshotScraper::spawn(self.handle(), every, capacity)
    }

    /// Stops both threads and returns the number of objects ingested.
    /// Every handle cloned from this pipeline starts failing with
    /// [`LatestError::PipelineShutDown`].
    pub fn shutdown(mut self) -> u64 {
        self.stop_threads()
    }

    fn stop_threads(&mut self) -> u64 {
        let _ = self.stop.try_send(());
        if let Some(p) = self.producer.take() {
            let _ = p.join();
        }
        match self.consumer.take() {
            Some(c) => {
                let ingested = c.join().unwrap_or(0);
                self.handle.close();
                ingested
            }
            None => 0,
        }
    }
}

impl Drop for StreamPipeline {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

/// A background thread that periodically scrapes [`MetricsSnapshot`]s from
/// a [`SharedLatest`] handle onto a bounded channel
/// ([`StreamPipeline::spawn_scraper`]).
pub struct SnapshotScraper {
    snapshots: Receiver<MetricsSnapshot>,
    stop: Sender<()>,
    thread: Option<JoinHandle<u64>>,
}

impl SnapshotScraper {
    fn spawn(
        handle: SharedLatest,
        every: std::time::Duration,
        capacity: usize,
    ) -> Result<Self, LatestError> {
        Self::spawn_source(
            move || handle.is_open().then(|| handle.metrics_snapshot()),
            every,
            capacity,
        )
    }

    /// Spawns a scraper over an arbitrary snapshot source — a
    /// [`SharedLatest`] behind a pipeline, a sharded engine's merged view
    /// ([`ShardedLatest::spawn_scraper`](crate::ShardedLatest::spawn_scraper)),
    /// or anything else that can produce a [`MetricsSnapshot`] on demand.
    /// `source` returning `None` means the backing system has shut down,
    /// which stops the scrape loop for good.
    pub fn spawn_source(
        source: impl Fn() -> Option<MetricsSnapshot> + Send + 'static,
        every: std::time::Duration,
        capacity: usize,
    ) -> Result<Self, LatestError> {
        let (snap_tx, snap_rx) = bounded::<MetricsSnapshot>(capacity.max(1));
        let (stop_tx, stop_rx) = bounded::<()>(1);
        let thread = std::thread::Builder::new()
            .name("latest-scraper".into())
            .spawn(move || {
                let mut taken = 0u64;
                loop {
                    match stop_rx.recv_timeout(every) {
                        // Stop signal or scraper handle dropped: done.
                        Ok(()) | Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                            return taken
                        }
                        Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                    }
                    let Some(snap) = source() else {
                        return taken;
                    };
                    taken += 1;
                    // A full channel drops the snapshot instead of blocking:
                    // the scrape cadence must never be hostage to a slow
                    // consumer, and the next snapshot supersedes this one.
                    let _ = snap_tx.try_send(snap);
                }
            })
            .map_err(|e| LatestError::Spawn {
                thread: "latest-scraper",
                reason: e.to_string(),
            })?;
        Ok(SnapshotScraper {
            snapshots: snap_rx,
            stop: stop_tx,
            thread: Some(thread),
        })
    }

    /// The channel the scraped snapshots arrive on.
    pub fn snapshots(&self) -> &Receiver<MetricsSnapshot> {
        &self.snapshots
    }

    /// The latest snapshot currently queued, discarding older ones.
    pub fn latest(&self) -> Option<MetricsSnapshot> {
        let mut last = None;
        while let Ok(snap) = self.snapshots.try_recv() {
            last = Some(snap);
        }
        last
    }

    /// Stops the scrape thread and returns how many snapshots it took.
    pub fn stop(mut self) -> u64 {
        self.stop_thread()
    }

    fn stop_thread(&mut self) -> u64 {
        let _ = self.stop.try_send(());
        match self.thread.take() {
            Some(t) => t.join().unwrap_or(0),
            None => 0,
        }
    }
}

impl Drop for SnapshotScraper {
    fn drop(&mut self) {
        self.stop_thread();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use estimators::EstimatorConfig;
    use geostream::synth::DatasetSpec;
    use geostream::{Duration, KeywordId, Rect};

    fn config(dataset: &DatasetSpec) -> LatestConfig {
        LatestConfig::builder()
            .window_span(Duration::from_secs(30))
            .warmup(Duration::from_secs(30))
            .pretrain_queries(15)
            .estimator_config(EstimatorConfig {
                domain: dataset.domain,
                reservoir_capacity: 1_000,
                ..EstimatorConfig::default()
            })
            .build()
            .expect("valid test config")
    }

    #[test]
    fn pipeline_streams_and_answers() {
        let dataset = DatasetSpec::twitter();
        let pipeline =
            StreamPipeline::spawn(config(&dataset), dataset.generator(), 4_096).expect("spawn");
        pipeline.wait_for_phase(PhaseTag::PreTraining);
        let handle = pipeline.handle();
        assert!(handle.window_len() > 0);
        for i in 0..30u32 {
            let out = handle
                .query(
                    &RcDvq::keyword(vec![KeywordId(i % 20)]),
                    QueryOptions::new(),
                )
                .expect("pipeline is live");
            assert!(out.estimate >= 0.0);
        }
        let ingested = pipeline.shutdown();
        assert!(ingested > 0);
    }

    #[test]
    fn concurrent_queriers_share_one_instance() {
        let dataset = DatasetSpec::twitter();
        let pipeline =
            StreamPipeline::spawn(config(&dataset), dataset.generator(), 4_096).expect("spawn");
        pipeline.wait_for_phase(PhaseTag::PreTraining);
        let mut joins = Vec::new();
        for t in 0..4u32 {
            let handle = pipeline.handle();
            joins.push(std::thread::spawn(move || {
                let mut answered = 0usize;
                for i in 0..25u32 {
                    let q = RcDvq::hybrid(
                        Rect::new(-120.0, 30.0, -100.0, 45.0),
                        vec![KeywordId(t * 31 + i)],
                    );
                    let out = handle
                        .query(&q, QueryOptions::new())
                        .expect("pipeline is live");
                    assert!(out.estimate.is_finite());
                    answered += 1;
                }
                answered
            }));
        }
        let total: usize = joins.into_iter().map(|j| j.join().expect("no panic")).sum();
        assert_eq!(total, 100);
        // All 100 queries are in the single shared log.
        assert!(pipeline.handle().with(|l| l.log().queries.len()) >= 100);
        pipeline.shutdown();
    }

    #[test]
    fn scraper_delivers_periodic_snapshots() {
        let dataset = DatasetSpec::twitter();
        let pipeline =
            StreamPipeline::spawn(config(&dataset), dataset.generator(), 4_096).expect("spawn");
        let scraper = pipeline
            .spawn_scraper(std::time::Duration::from_millis(5), 64)
            .expect("scraper spawns");
        pipeline.wait_for_phase(PhaseTag::PreTraining);
        let handle = pipeline.handle();
        for i in 0..20u32 {
            let _ = handle.query(
                &RcDvq::keyword(vec![KeywordId(i % 20)]),
                QueryOptions::new(),
            );
        }
        // Wait out at least one scrape tick after the queries landed.
        std::thread::sleep(std::time::Duration::from_millis(40));
        let snap = scraper.latest().expect("at least one snapshot queued");
        assert!(snap.window.ingested > 0, "scraped snapshot saw no ingest");
        assert!(snap.queries_total >= 20);
        let taken = scraper.stop();
        assert!(taken >= 1);
        pipeline.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_via_drop() {
        let dataset = DatasetSpec::twitter();
        let pipeline =
            StreamPipeline::spawn(config(&dataset), dataset.generator(), 128).expect("spawn");
        pipeline.wait_for_phase(PhaseTag::PreTraining);
        drop(pipeline); // Drop must stop threads without deadlocking.
    }

    #[test]
    fn shared_handle_reports_state() {
        let dataset = DatasetSpec::twitter();
        let shared = SharedLatest::new(config(&dataset));
        assert_eq!(shared.phase(), PhaseTag::WarmUp);
        assert_eq!(shared.switch_count(), 0);
        let mut gen = dataset.generator();
        for _ in 0..100 {
            shared.ingest(gen.next_object());
        }
        assert_eq!(shared.window_len(), 100);
        let clone = shared.clone();
        assert_eq!(clone.window_len(), 100);
        assert_eq!(clone.active_kind(), EstimatorKind::Rsh);
    }

    #[test]
    fn shared_batch_ingest_matches_singles() {
        let dataset = DatasetSpec::twitter();
        let shared = SharedLatest::new(config(&dataset));
        let mut gen = dataset.generator();
        let objs: Vec<GeoTextObject> = (0..200).map(|_| gen.next_object()).collect();
        shared.ingest_batch(&objs);
        assert_eq!(shared.window_len(), 200);
    }

    #[test]
    #[allow(deprecated)] // the shims must keep failing closed too
    fn queries_fail_after_shutdown() {
        let dataset = DatasetSpec::twitter();
        let pipeline =
            StreamPipeline::spawn(config(&dataset), dataset.generator(), 1_024).expect("spawn");
        pipeline.wait_for_phase(PhaseTag::PreTraining);
        let handle = pipeline.handle();
        assert!(handle.is_open());
        let q = RcDvq::keyword(vec![KeywordId(1)]);
        assert!(handle.query(&q, QueryOptions::new()).is_ok());
        pipeline.shutdown();
        assert!(!handle.is_open());
        assert_eq!(
            handle.query(&q, QueryOptions::new()).unwrap_err(),
            LatestError::PipelineShutDown
        );
        assert_eq!(
            handle
                .query_batch(std::slice::from_ref(&q), QueryOptions::new())
                .unwrap_err(),
            LatestError::PipelineShutDown
        );
        assert_eq!(
            handle.try_query(&q).unwrap_err(),
            LatestError::PipelineShutDown
        );
        assert_eq!(
            handle.query_at(&q, Timestamp(1)).unwrap_err(),
            LatestError::PipelineShutDown
        );
    }

    #[test]
    fn non_blocking_query_refuses_to_block() {
        let dataset = DatasetSpec::twitter();
        let shared = SharedLatest::new(config(&dataset));
        let mut gen = dataset.generator();
        for _ in 0..50 {
            shared.ingest(gen.next_object());
        }
        let q = RcDvq::keyword(vec![KeywordId(1)]);
        let opts = || QueryOptions::new().blocking(false);
        // Uncontended: answers.
        assert!(shared.query(&q, opts()).is_ok());
        // Contended: hold the lock on another thread and expect WouldBlock.
        let holder = shared.clone();
        let (locked_tx, locked_rx) = std::sync::mpsc::channel();
        let (release_tx, release_rx) = std::sync::mpsc::channel();
        let t = std::thread::spawn(move || {
            holder.with(|_| {
                locked_tx.send(()).expect("send locked");
                release_rx.recv().expect("wait for release");
            });
        });
        locked_rx.recv().expect("lock acquired");
        assert_eq!(
            shared.query(&q, opts()).unwrap_err(),
            LatestError::WouldBlock
        );
        assert_eq!(
            shared
                .query_batch(std::slice::from_ref(&q), opts())
                .unwrap_err(),
            LatestError::WouldBlock
        );
        release_tx.send(()).expect("release");
        t.join().expect("holder thread");
        assert!(shared.query(&q, opts()).is_ok());
        // The deprecated shim still maps onto the same non-blocking path.
        #[allow(deprecated)]
        {
            assert!(shared.try_query(&q).is_ok());
        }
    }
}
