//! Concurrent deployment facade.
//!
//! A real system ingests the stream on one path and answers estimation
//! queries on another. This module provides the two pieces a deployment
//! needs:
//!
//! * [`SharedLatest`] — a cheaply cloneable, thread-safe handle around a
//!   [`Latest`] instance (a `parking_lot` mutex; LATEST's per-event work is
//!   microseconds, so a mutex outperforms anything fancier at realistic
//!   rates);
//! * [`StreamPipeline`] — a crossbeam-channel pipeline that runs ingestion
//!   on a background thread while the caller issues queries from any
//!   number of threads.
//!
//! ```
//! use geostream::synth::DatasetSpec;
//! use geostream::{Duration, RcDvq, Rect};
//! use latest_core::concurrent::StreamPipeline;
//! use latest_core::{LatestConfig, PhaseTag};
//!
//! let dataset = DatasetSpec::twitter();
//! let config = LatestConfig {
//!     window_span: Duration::from_secs(30),
//!     warmup: Duration::from_secs(30),
//!     pretrain_queries: 10,
//!     estimator_config: estimators::EstimatorConfig {
//!         domain: dataset.domain,
//!         reservoir_capacity: 1_000,
//!         ..Default::default()
//!     },
//!     ..Default::default()
//! };
//! let pipeline = StreamPipeline::spawn(config, dataset.generator(), 8_000);
//! pipeline.wait_for_phase(PhaseTag::PreTraining);
//! let out = pipeline
//!     .handle()
//!     .query(&RcDvq::spatial(Rect::new(-120.0, 30.0, -100.0, 45.0)));
//! assert!(out.estimate >= 0.0);
//! pipeline.shutdown();
//! ```

use crate::log::PhaseTag;
use crate::system::{Latest, LatestConfig, QueryOutcome};
use crossbeam::channel::{bounded, Receiver, Sender};
use estimators::EstimatorKind;
use geostream::synth::ObjectGenerator;
use geostream::{GeoTextObject, RcDvq, Timestamp};
use parking_lot::Mutex;
use std::sync::Arc;
use std::thread::JoinHandle;

/// A thread-safe, cloneable handle to a LATEST instance.
#[derive(Clone)]
pub struct SharedLatest {
    inner: Arc<Mutex<Latest>>,
}

impl SharedLatest {
    /// Wraps a fresh LATEST instance.
    pub fn new(config: LatestConfig) -> Self {
        SharedLatest {
            inner: Arc::new(Mutex::new(Latest::new(config))),
        }
    }

    /// Ingests one stream object.
    pub fn ingest(&self, obj: GeoTextObject) {
        self.inner.lock().ingest(obj);
    }

    /// Answers an estimation query at the stream's current time.
    pub fn query(&self, query: &RcDvq) -> QueryOutcome {
        let mut guard = self.inner.lock();
        let now = guard.now();
        guard.query(query, now)
    }

    /// Answers an estimation query at an explicit stream time.
    pub fn query_at(&self, query: &RcDvq, at: Timestamp) -> QueryOutcome {
        self.inner.lock().query(query, at)
    }

    /// Current lifetime phase.
    pub fn phase(&self) -> PhaseTag {
        self.inner.lock().phase()
    }

    /// The estimator currently employed.
    pub fn active_kind(&self) -> EstimatorKind {
        self.inner.lock().active_kind()
    }

    /// Live window size.
    pub fn window_len(&self) -> usize {
        self.inner.lock().window_len()
    }

    /// Number of switches performed so far.
    pub fn switch_count(&self) -> usize {
        self.inner.lock().log().switches.len()
    }

    /// Runs `f` against the underlying instance (e.g. to clone the log).
    pub fn with<R>(&self, f: impl FnOnce(&Latest) -> R) -> R {
        f(&self.inner.lock())
    }
}

/// A background ingestion pipeline: a producer thread pulls objects from a
/// generator and sends them over a bounded crossbeam channel; a consumer
/// thread ingests them into the shared LATEST instance.
pub struct StreamPipeline {
    handle: SharedLatest,
    stop: Sender<()>,
    producer: Option<JoinHandle<()>>,
    consumer: Option<JoinHandle<u64>>,
}

impl StreamPipeline {
    /// Spawns the pipeline. `channel_capacity` bounds producer run-ahead
    /// (backpressure).
    pub fn spawn(
        config: LatestConfig,
        mut generator: ObjectGenerator,
        channel_capacity: usize,
    ) -> Self {
        let handle = SharedLatest::new(config);
        let (obj_tx, obj_rx): (Sender<GeoTextObject>, Receiver<GeoTextObject>) =
            bounded(channel_capacity.max(1));
        let (stop_tx, stop_rx) = bounded::<()>(1);

        let producer = std::thread::Builder::new()
            .name("latest-producer".into())
            .spawn(move || loop {
                if stop_rx.try_recv().is_ok() {
                    return;
                }
                // Send blocks when the consumer lags: backpressure.
                if obj_tx.send(generator.next_object()).is_err() {
                    return;
                }
            })
            .expect("spawn producer");

        let consumer_handle = handle.clone();
        let consumer = std::thread::Builder::new()
            .name("latest-ingestor".into())
            .spawn(move || {
                let mut ingested = 0u64;
                while let Ok(obj) = obj_rx.recv() {
                    consumer_handle.ingest(obj);
                    ingested += 1;
                }
                ingested
            })
            .expect("spawn consumer");

        StreamPipeline {
            handle,
            stop: stop_tx,
            producer: Some(producer),
            consumer: Some(consumer),
        }
    }

    /// A cloneable query handle.
    pub fn handle(&self) -> SharedLatest {
        self.handle.clone()
    }

    /// Blocks until LATEST has reached (at least) `phase`.
    pub fn wait_for_phase(&self, phase: PhaseTag) {
        let rank = |p: PhaseTag| match p {
            PhaseTag::WarmUp => 0,
            PhaseTag::PreTraining => 1,
            PhaseTag::Incremental => 2,
        };
        while rank(self.handle.phase()) < rank(phase) {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    /// Stops both threads and returns the number of objects ingested.
    pub fn shutdown(mut self) -> u64 {
        self.stop_threads()
    }

    fn stop_threads(&mut self) -> u64 {
        let _ = self.stop.try_send(());
        if let Some(p) = self.producer.take() {
            let _ = p.join();
        }
        match self.consumer.take() {
            Some(c) => c.join().unwrap_or(0),
            None => 0,
        }
    }
}

impl Drop for StreamPipeline {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use estimators::EstimatorConfig;
    use geostream::synth::DatasetSpec;
    use geostream::{Duration, KeywordId, Rect};

    fn config(dataset: &DatasetSpec) -> LatestConfig {
        LatestConfig {
            window_span: Duration::from_secs(30),
            warmup: Duration::from_secs(30),
            pretrain_queries: 15,
            estimator_config: EstimatorConfig {
                domain: dataset.domain,
                reservoir_capacity: 1_000,
                ..EstimatorConfig::default()
            },
            ..LatestConfig::default()
        }
    }

    #[test]
    fn pipeline_streams_and_answers() {
        let dataset = DatasetSpec::twitter();
        let pipeline = StreamPipeline::spawn(config(&dataset), dataset.generator(), 4_096);
        pipeline.wait_for_phase(PhaseTag::PreTraining);
        let handle = pipeline.handle();
        assert!(handle.window_len() > 0);
        for i in 0..30u32 {
            let out = handle.query(&RcDvq::keyword(vec![KeywordId(i % 20)]));
            assert!(out.estimate >= 0.0);
        }
        let ingested = pipeline.shutdown();
        assert!(ingested > 0);
    }

    #[test]
    fn concurrent_queriers_share_one_instance() {
        let dataset = DatasetSpec::twitter();
        let pipeline = StreamPipeline::spawn(config(&dataset), dataset.generator(), 4_096);
        pipeline.wait_for_phase(PhaseTag::PreTraining);
        let mut joins = Vec::new();
        for t in 0..4u32 {
            let handle = pipeline.handle();
            joins.push(std::thread::spawn(move || {
                let mut answered = 0usize;
                for i in 0..25u32 {
                    let q = RcDvq::hybrid(
                        Rect::new(-120.0, 30.0, -100.0, 45.0),
                        vec![KeywordId(t * 31 + i)],
                    );
                    let out = handle.query(&q);
                    assert!(out.estimate.is_finite());
                    answered += 1;
                }
                answered
            }));
        }
        let total: usize = joins.into_iter().map(|j| j.join().expect("no panic")).sum();
        assert_eq!(total, 100);
        // All 100 queries are in the single shared log.
        assert!(pipeline.handle().with(|l| l.log().queries.len()) >= 100);
        pipeline.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_via_drop() {
        let dataset = DatasetSpec::twitter();
        let pipeline = StreamPipeline::spawn(config(&dataset), dataset.generator(), 128);
        pipeline.wait_for_phase(PhaseTag::PreTraining);
        drop(pipeline); // Drop must stop threads without deadlocking.
    }

    #[test]
    fn shared_handle_reports_state() {
        let dataset = DatasetSpec::twitter();
        let shared = SharedLatest::new(config(&dataset));
        assert_eq!(shared.phase(), PhaseTag::WarmUp);
        assert_eq!(shared.switch_count(), 0);
        let mut gen = dataset.generator();
        for _ in 0..100 {
            shared.ingest(gen.next_object());
        }
        assert_eq!(shared.window_len(), 100);
        let clone = shared.clone();
        assert_eq!(clone.window_len(), 100);
        assert_eq!(clone.active_kind(), EstimatorKind::Rsh);
    }
}
