//! Sharded multi-core serving: scatter-gather query routing over a
//! partitioned stream (ROADMAP item 1: "serve millions of users").
//!
//! A single [`Latest`] behind a mutex caps the serving path at one core.
//! This module partitions the stream across `N` independent shards — each
//! owning its *own* [`SlidingWindow`](geostream::SlidingWindow), exact
//! executor, estimator pool, adaptor, and selectivity cache — with each
//! shard running on a dedicated worker thread behind a bounded ingest
//! queue:
//!
//! * [`ShardRouter`] — the pluggable partitioning policy
//!   ([`RouterPolicy::HashOid`]: FNV-hash of the object id;
//!   [`RouterPolicy::SpatialTile`]: equal-width vertical strips of the
//!   domain). Every live object is owned by exactly one shard; a query
//!   fans out to exactly the shards that can hold matching objects.
//! * [`ShardedLatest`] — the engine: batched ingest with a cross-shard
//!   **eviction clock** (every shard's window advances to the batch
//!   maximum timestamp, so virtual time stays aligned even when a shard's
//!   sub-batch ends early), scatter-gather [`ShardedLatest::query_batch`]
//!   that merges per-shard counts into one [`QueryOutcome`], and
//!   [`MetricsSnapshot`] aggregation across shards.
//! * [`ServingEngine`] — a zero-dependency thread-pool front door:
//!   [`ServingEngine::submit`] enqueues a query batch and returns a
//!   [`Ticket`]; a full queue surfaces [`LatestError::WouldBlock`] —
//!   nothing is ever silently dropped.
//!
//! With one shard the engine degenerates to a plain [`Latest`] on a
//! worker thread: the same ingest batches in the same order, no extra
//! clock advances, outcomes returned verbatim — which is what makes the
//! sharded/unsharded equivalence property testable bit-for-bit.

use crate::error::LatestError;
use crate::obsv::MetricsSnapshot;
use crate::system::{Latest, LatestConfig, QueryOptions, QueryOutcome};
use crossbeam::channel::{bounded, Receiver, Sender};
use geostream::{GeoTextObject, RcDvq, Rect, Timestamp};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Upper bound on the configured shard count: far above any realistic
/// core count, low enough to catch a garbage value (for example a byte
/// count) before it spawns thousands of threads.
pub const MAX_SHARDS: usize = 1_024;

/// How the stream is partitioned across shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RouterPolicy {
    /// Route each object by an FNV-1a hash of its id. Load balances any
    /// workload, but spatial queries must fan out to every shard.
    #[default]
    HashOid,
    /// Route each object by its longitude into equal-width vertical
    /// strips of the domain. Spatial and hybrid queries fan out only to
    /// the strips their rectangle overlaps; keyword-only queries still
    /// visit every shard.
    SpatialTile,
}

impl RouterPolicy {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            RouterPolicy::HashOid => "hash-oid",
            RouterPolicy::SpatialTile => "spatial-tile",
        }
    }
}

/// Sharded-serving layout, embedded in
/// [`LatestConfig`](crate::LatestConfig) and validated by
/// [`LatestConfig::validate`](crate::LatestConfig::validate): the shard
/// count must be in `[1, MAX_SHARDS]` and the queue capacity nonzero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// Number of shards (`1` = unsharded behavior on a worker thread).
    pub shards: usize,
    /// Bounded per-shard command-queue capacity: how far ingest may run
    /// ahead of a shard before producers block (or, on the `try_` paths,
    /// see [`LatestError::WouldBlock`]).
    pub queue_capacity: usize,
    /// The partitioning policy.
    pub router: RouterPolicy,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 1,
            queue_capacity: 8_192,
            router: RouterPolicy::HashOid,
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over the little-endian bytes of an object id: stable across
/// runs and platforms, so shard ownership is a pure function of the id.
fn hash_oid(oid: u64) -> u64 {
    let mut h = FNV_OFFSET;
    for b in oid.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The pluggable partitioning policy: which shard owns an object, and
/// which shards a query must visit. Pure and deterministic — the audit
/// re-derives ownership from the router alone.
#[derive(Debug, Clone)]
pub struct ShardRouter {
    policy: RouterPolicy,
    shards: usize,
    domain: Rect,
}

impl ShardRouter {
    /// A router over `shards` partitions of `domain` (the domain only
    /// matters for [`RouterPolicy::SpatialTile`]).
    pub fn new(policy: RouterPolicy, shards: usize, domain: Rect) -> Self {
        ShardRouter {
            policy,
            shards: shards.max(1),
            domain,
        }
    }

    /// Number of shards routed over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The policy in use.
    pub fn policy(&self) -> RouterPolicy {
        self.policy
    }

    /// Strip index of a longitude under the spatial-tile policy: floor
    /// division of the offset by the strip width, clamped into range so
    /// out-of-domain objects still have a deterministic owner.
    fn strip_of(&self, x: f64) -> usize {
        let width = self.domain.width();
        if width <= 0.0 {
            return 0;
        }
        let frac = (x - self.domain.min_x) / width;
        let idx = (frac * self.shards as f64).floor();
        if idx.is_nan() || idx < 0.0 {
            0
        } else {
            (idx as usize).min(self.shards - 1)
        }
    }

    /// The single shard that owns `obj`.
    pub fn route_object(&self, obj: &GeoTextObject) -> usize {
        match self.policy {
            RouterPolicy::HashOid => (hash_oid(obj.oid.0) % self.shards as u64) as usize,
            RouterPolicy::SpatialTile => self.strip_of(obj.loc.x),
        }
    }

    /// The shards `query` must visit, ascending. Always nonempty: the
    /// fan-out set covers every shard that can own a matching object
    /// (strip arithmetic is the same floor used by `route_object`, so an
    /// object inside the query rectangle is always in a visited strip).
    pub fn route_query(&self, query: &RcDvq) -> Vec<usize> {
        match (self.policy, query.range()) {
            (RouterPolicy::SpatialTile, Some(r)) => {
                let lo = self.strip_of(r.min_x);
                let hi = self.strip_of(r.max_x);
                (lo..=hi.max(lo)).collect()
            }
            // Hash routing scatters matching objects everywhere, and a
            // keyword-only predicate has no spatial locality either way.
            _ => (0..self.shards).collect(),
        }
    }
}

/// One command on a shard's bounded FIFO queue. Ingest, clock advances,
/// and queries share the queue, so a shard observes them in exactly the
/// order the caller issued them.
enum ShardCmd {
    /// Ingest a routed sub-batch (non-decreasing timestamps).
    Ingest(Vec<GeoTextObject>),
    /// Advance the eviction clock ([`Latest::advance_clock`]) so this
    /// shard's window horizon matches the batch maximum even when its own
    /// sub-batch ended earlier (or was empty).
    AdvanceTo(Timestamp),
    /// Answer a routed query sub-batch and reply with the shard index.
    Query {
        queries: Vec<RcDvq>,
        options: QueryOptions,
        reply: Sender<(usize, Vec<QueryOutcome>)>,
    },
    /// Take a metrics snapshot.
    Snapshot(Sender<MetricsSnapshot>),
    /// Run an arbitrary closure against the shard's instance (flush
    /// barriers, audits, test hooks).
    Run(Box<dyn FnOnce(&mut Latest) + Send>),
}

impl std::fmt::Debug for ShardCmd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardCmd::Ingest(batch) => f.debug_tuple("Ingest").field(&batch.len()).finish(),
            ShardCmd::AdvanceTo(at) => f.debug_tuple("AdvanceTo").field(at).finish(),
            ShardCmd::Query { queries, .. } => {
                f.debug_tuple("Query").field(&queries.len()).finish()
            }
            ShardCmd::Snapshot(_) => f.write_str("Snapshot"),
            ShardCmd::Run(_) => f.write_str("Run"),
        }
    }
}

/// The shard worker loop: drain commands until every sender is dropped,
/// then report how many objects this shard ingested.
fn shard_loop(mut latest: Latest, shard: usize, rx: Receiver<ShardCmd>) -> u64 {
    let mut ingested = 0u64;
    while let Ok(cmd) = rx.recv() {
        match cmd {
            ShardCmd::Ingest(batch) => {
                ingested += batch.len() as u64;
                latest.ingest_batch(&batch);
            }
            ShardCmd::AdvanceTo(at) => latest.advance_clock(at),
            ShardCmd::Query {
                queries,
                options,
                reply,
            } => {
                let outcomes = latest.query_batch(&queries, options);
                // A gatherer that gave up (shut down mid-query) is not an
                // error for the shard; drop the reply.
                let _ = reply.send((shard, outcomes));
            }
            ShardCmd::Snapshot(reply) => {
                let _ = reply.send(latest.metrics_snapshot());
            }
            ShardCmd::Run(f) => f(&mut latest),
        }
    }
    ingested
}

/// A sharded LATEST serving engine: `N` independent [`Latest`] instances
/// on worker threads, a [`ShardRouter`] deciding ownership, and
/// scatter-gather queries merged into single [`QueryOutcome`]s.
///
/// ```
/// use geostream::synth::DatasetSpec;
/// use geostream::{Duration, RcDvq, Rect};
/// use latest_core::{LatestConfig, QueryOptions, ShardConfig, ShardedLatest};
///
/// let dataset = DatasetSpec::twitter();
/// let config = LatestConfig::builder()
///     .window_span(Duration::from_secs(30))
///     .warmup(Duration::from_secs(30))
///     .pretrain_queries(10)
///     .estimator_config(estimators::EstimatorConfig {
///         domain: dataset.domain,
///         reservoir_capacity: 1_000,
///         ..Default::default()
///     })
///     .shard(ShardConfig {
///         shards: 2,
///         ..ShardConfig::default()
///     })
///     .build()
///     .expect("parameters are in range");
/// let engine = ShardedLatest::new(config).expect("shards spawn");
/// let mut gen = dataset.generator();
/// let batch: Vec<_> = (0..512).map(|_| gen.next_object()).collect();
/// engine.ingest_batch(&batch).expect("shards are live");
/// engine.flush().expect("shards are live");
/// let out = engine
///     .query(
///         &RcDvq::spatial(Rect::new(-120.0, 30.0, -100.0, 45.0)),
///         QueryOptions::new(),
///     )
///     .expect("shards are live");
/// assert!(out.estimate >= 0.0);
/// engine.shutdown();
/// ```
pub struct ShardedLatest {
    config: LatestConfig,
    router: ShardRouter,
    senders: Vec<Sender<ShardCmd>>,
    workers: Vec<JoinHandle<u64>>,
    /// Maximum stream timestamp observed by `ingest_batch`, in raw
    /// `Timestamp` millis: the engine-wide virtual clock queries pin to
    /// when the caller does not supply `QueryOptions::at`.
    clock: AtomicU64,
}

impl ShardedLatest {
    /// Spawns `config.shard.shards` shard workers, each owning a fresh
    /// [`Latest`] built from the same configuration.
    pub fn new(config: LatestConfig) -> Result<Self, LatestError> {
        config.validate()?;
        let shard = config.shard;
        let router = ShardRouter::new(shard.router, shard.shards, config.estimator_config.domain);
        let mut senders = Vec::with_capacity(shard.shards);
        let mut workers = Vec::with_capacity(shard.shards);
        for i in 0..shard.shards {
            // Validation passed above, so the per-shard `Latest::new`
            // cannot hit its config panic.
            let latest = Latest::new(config.clone());
            let (tx, rx) = bounded(shard.queue_capacity);
            let worker = std::thread::Builder::new()
                .name(format!("latest-shard-{i}"))
                .spawn(move || shard_loop(latest, i, rx))
                .map_err(|e| LatestError::Spawn {
                    thread: "latest-shard",
                    reason: e.to_string(),
                })?;
            senders.push(tx);
            workers.push(worker);
        }
        Ok(ShardedLatest {
            config,
            router,
            senders,
            workers,
            clock: AtomicU64::new(0),
        })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// The configuration in use (shared by every shard).
    pub fn config(&self) -> &LatestConfig {
        &self.config
    }

    /// The partitioning router.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// The engine-wide virtual clock: the maximum stream timestamp any
    /// ingested batch carried so far.
    pub fn clock(&self) -> Timestamp {
        // Relaxed ordering: the clock is a monotone watermark used as a
        // query-time lower bound; command FIFO order, not this load, is
        // what orders queries against ingest.
        Timestamp(self.clock.load(Ordering::Relaxed))
    }

    /// Ingests one stream object (routed like a one-element batch).
    pub fn ingest(&self, obj: GeoTextObject) -> Result<(), LatestError> {
        self.ingest_batch(std::slice::from_ref(&obj))
    }

    /// Ingests a batch of stream objects (non-decreasing timestamps, the
    /// same precondition as [`Latest::ingest_batch`]): the batch is
    /// partitioned by the router into order-preserving sub-batches, and
    /// every shard's eviction clock is advanced to the batch maximum so
    /// all windows share one virtual horizon. Blocks when a shard's
    /// bounded queue is full (backpressure).
    pub fn ingest_batch(&self, batch: &[GeoTextObject]) -> Result<(), LatestError> {
        self.ingest_batch_inner(batch, true)
    }

    /// Non-blocking [`ShardedLatest::ingest_batch`]: refuses with
    /// [`LatestError::WouldBlock`] — ingesting nothing — when any shard's
    /// queue lacks room for the sub-batch plus its clock advance. With
    /// concurrent producers the room check is advisory (a racing producer
    /// can still fill the queue first, briefly blocking the send), but
    /// nothing is ever silently dropped.
    pub fn try_ingest_batch(&self, batch: &[GeoTextObject]) -> Result<(), LatestError> {
        self.ingest_batch_inner(batch, false)
    }

    fn ingest_batch_inner(
        &self,
        batch: &[GeoTextObject],
        blocking: bool,
    ) -> Result<(), LatestError> {
        let Some(last) = batch.last() else {
            return Ok(());
        };
        let batch_max = last.timestamp;
        if !blocking {
            for s in &self.senders {
                // Room for the sub-batch and the trailing clock advance.
                if s.len() + 2 > s.capacity().unwrap_or(usize::MAX) {
                    return Err(LatestError::WouldBlock);
                }
            }
        }
        let n = self.senders.len();
        let mut sub: Vec<Vec<GeoTextObject>> = vec![Vec::new(); n];
        if n == 1 {
            // Single shard: ownership is trivial, skip the per-object
            // routing so the shards=1 path stays within a hair of plain
            // `Latest` ingest.
            sub[0].extend_from_slice(batch);
        } else {
            for obj in batch {
                sub[self.router.route_object(obj)].push(obj.clone());
            }
        }
        for (shard, objs) in sub.into_iter().enumerate() {
            // A shard whose sub-batch already ends at the batch maximum
            // needs no separate clock advance — with one shard this makes
            // the command stream identical to plain `Latest` ingest.
            let needs_advance = objs.last().is_none_or(|o| o.timestamp < batch_max);
            if !objs.is_empty() {
                self.senders[shard]
                    .send(ShardCmd::Ingest(objs))
                    .map_err(|_| LatestError::PipelineShutDown)?;
            }
            if needs_advance {
                self.senders[shard]
                    .send(ShardCmd::AdvanceTo(batch_max))
                    .map_err(|_| LatestError::PipelineShutDown)?;
            }
        }
        // Relaxed ordering: monotone watermark (see `clock()`); fetch_max
        // keeps concurrent producers from ever moving it backwards.
        self.clock.fetch_max(batch_max.0, Ordering::Relaxed);
        Ok(())
    }

    /// Blocks until every shard has drained all commands issued before
    /// this call (a FIFO barrier: one no-op closure per shard).
    pub fn flush(&self) -> Result<(), LatestError> {
        let (tx, rx) = bounded::<()>(self.senders.len());
        for s in &self.senders {
            let tx = tx.clone();
            s.send(ShardCmd::Run(Box::new(move |_| {
                let _ = tx.send(());
            })))
            .map_err(|_| LatestError::PipelineShutDown)?;
        }
        drop(tx);
        for _ in 0..self.senders.len() {
            rx.recv().map_err(|_| LatestError::PipelineShutDown)?;
        }
        Ok(())
    }

    /// Answers one query by scatter-gather: the owning shards each answer
    /// their partition, and the per-shard counts merge into one outcome.
    /// A query that fans out to a single shard (always, with one shard)
    /// returns that shard's outcome verbatim.
    pub fn query(&self, query: &RcDvq, options: QueryOptions) -> Result<QueryOutcome, LatestError> {
        let mut outcomes = self.query_batch(std::slice::from_ref(query), options)?;
        outcomes.pop().ok_or(LatestError::PipelineShutDown)
    }

    /// Answers a batch of queries by scatter-gather, reusing the grouped
    /// per-shard [`Latest::query_batch`] execution (shared window slide,
    /// in-batch cache collapse, multi-query kernels). Each query's
    /// per-shard outcomes are merged in shard-index order; queries the
    /// router sends to a single shard come back verbatim.
    ///
    /// The stream time defaults to the engine clock (the maximum ingested
    /// timestamp) rather than any one shard's window time, so all shards
    /// answer at the same virtual instant. With
    /// [`QueryOptions::blocking`]`(false)` a full shard queue refuses
    /// with [`LatestError::WouldBlock`] before anything is enqueued.
    pub fn query_batch(
        &self,
        queries: &[RcDvq],
        options: QueryOptions,
    ) -> Result<Vec<QueryOutcome>, LatestError> {
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        let options = QueryOptions {
            at: Some(options.at.unwrap_or_else(|| self.clock())),
            ..options
        };
        let n = self.senders.len();
        // Scatter: per-shard index lists, preserving batch order.
        let mut routed: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (qi, query) in queries.iter().enumerate() {
            for shard in self.router.route_query(query) {
                routed[shard].push(qi);
            }
        }
        if !options.blocking {
            for (shard, indices) in routed.iter().enumerate() {
                let s = &self.senders[shard];
                if !indices.is_empty() && s.len() + 1 > s.capacity().unwrap_or(usize::MAX) {
                    return Err(LatestError::WouldBlock);
                }
            }
        }
        let participants = routed.iter().filter(|idx| !idx.is_empty()).count();
        let (reply_tx, reply_rx) = bounded(participants.max(1));
        for (shard, indices) in routed.iter().enumerate() {
            if indices.is_empty() {
                continue;
            }
            let sub: Vec<RcDvq> = indices.iter().map(|&i| queries[i].clone()).collect();
            self.senders[shard]
                .send(ShardCmd::Query {
                    queries: sub,
                    options,
                    reply: reply_tx.clone(),
                })
                .map_err(|_| LatestError::PipelineShutDown)?;
        }
        drop(reply_tx);
        // Gather: collect per-shard outcome vectors, then stitch each
        // query's parts together in ascending shard order.
        let mut per_shard: Vec<Option<Vec<QueryOutcome>>> = vec![None; n];
        for _ in 0..participants {
            let (shard, outcomes) = reply_rx.recv().map_err(|_| LatestError::PipelineShutDown)?;
            per_shard[shard] = Some(outcomes);
        }
        let mut parts: Vec<Vec<QueryOutcome>> = vec![Vec::new(); queries.len()];
        for (shard, indices) in routed.iter().enumerate() {
            if indices.is_empty() {
                continue;
            }
            let outcomes = per_shard[shard]
                .take()
                .ok_or(LatestError::PipelineShutDown)?;
            if outcomes.len() != indices.len() {
                return Err(LatestError::PipelineShutDown);
            }
            for (&qi, outcome) in indices.iter().zip(outcomes) {
                parts[qi].push(outcome);
            }
        }
        let mut merged = Vec::with_capacity(queries.len());
        for p in parts {
            merged.push(merge_outcomes(p).ok_or(LatestError::PipelineShutDown)?);
        }
        Ok(merged)
    }

    /// A point-in-time view of the whole engine: every shard's
    /// [`MetricsSnapshot`], merged with [`MetricsSnapshot::merge`]
    /// (counters sum, histograms add bucket-wise, the phase is the least
    /// advanced shard's).
    pub fn metrics_snapshot(&self) -> Result<MetricsSnapshot, LatestError> {
        let (tx, rx) = bounded(self.senders.len());
        for s in &self.senders {
            s.send(ShardCmd::Snapshot(tx.clone()))
                .map_err(|_| LatestError::PipelineShutDown)?;
        }
        drop(tx);
        let mut merged: Option<MetricsSnapshot> = None;
        for _ in 0..self.senders.len() {
            let snap = rx.recv().map_err(|_| LatestError::PipelineShutDown)?;
            merged = Some(match merged {
                None => snap,
                Some(m) => m.merge(&snap),
            });
        }
        merged.ok_or(LatestError::PipelineShutDown)
    }

    /// Spawns a periodic metrics scraper over the merged engine snapshot
    /// (the sharded counterpart of
    /// [`StreamPipeline::spawn_scraper`](crate::StreamPipeline::spawn_scraper)).
    /// The scraper stops on its own once the engine is dropped.
    pub fn spawn_scraper(
        self: &Arc<Self>,
        every: std::time::Duration,
        capacity: usize,
    ) -> Result<crate::concurrent::SnapshotScraper, LatestError> {
        let engine = Arc::downgrade(self);
        crate::concurrent::SnapshotScraper::spawn_source(
            move || engine.upgrade().and_then(|e| e.metrics_snapshot().ok()),
            every,
            capacity,
        )
    }

    /// Deep cross-shard invariant walk: every shard's own
    /// [`Latest::audit`] plus the sharding invariants — router partition
    /// coverage (each live object is held by the shard that owns it, and
    /// by no other shard) and the cross-shard occupancy identity
    /// (`Σ occupancy == Σ ingested − Σ evicted`).
    #[cfg(feature = "debug-invariants")]
    pub fn audit(&self) -> Result<(), geostream::AuditError> {
        use geostream::AuditError;
        let shut = || AuditError {
            structure: "ShardedLatest",
            invariant: "shards-live",
            detail: "a shard worker exited before the audit completed".into(),
        };
        type ShardReport = (
            usize,
            Result<(), AuditError>,
            usize,
            Vec<u64>,
            (u64, u64, u64),
        );
        let (tx, rx) = bounded::<ShardReport>(self.senders.len());
        for (i, s) in self.senders.iter().enumerate() {
            let tx = tx.clone();
            let router = self.router.clone();
            s.send(ShardCmd::Run(Box::new(move |latest| {
                let audit = latest.audit();
                let mut misrouted = 0usize;
                let mut oids = Vec::with_capacity(latest.window_len());
                for obj in latest.window_objects() {
                    if router.route_object(obj) != i {
                        misrouted += 1;
                    }
                    oids.push(obj.oid.0);
                }
                let m = latest.metrics();
                let flows = (
                    latest.window_len() as u64,
                    m.objects_ingested.get(),
                    m.objects_evicted.get(),
                );
                let _ = tx.send((i, audit, misrouted, oids, flows));
            })))
            .map_err(|_| shut())?;
        }
        drop(tx);
        let mut seen = std::collections::HashSet::new();
        let mut occupancy = 0u64;
        let mut ingested = 0u64;
        let mut evicted = 0u64;
        for _ in 0..self.senders.len() {
            let (shard, audit, misrouted, oids, flows) = rx.recv().map_err(|_| shut())?;
            audit?;
            if misrouted != 0 {
                return Err(AuditError {
                    structure: "ShardedLatest",
                    invariant: "partition-coverage",
                    detail: format!("shard {shard} holds {misrouted} objects it does not own"),
                });
            }
            for oid in oids {
                if !seen.insert(oid) {
                    return Err(AuditError {
                        structure: "ShardedLatest",
                        invariant: "partition-disjoint",
                        detail: format!("oid {oid} is live on more than one shard"),
                    });
                }
            }
            occupancy += flows.0;
            ingested += flows.1;
            evicted += flows.2;
        }
        if occupancy != ingested - evicted || occupancy != seen.len() as u64 {
            return Err(AuditError {
                structure: "ShardedLatest",
                invariant: "occupancy-total",
                detail: format!(
                    "Σ occupancy {occupancy} vs Σ ingested {ingested} − Σ evicted {evicted} \
                     (distinct live oids: {})",
                    seen.len()
                ),
            });
        }
        Ok(())
    }

    fn stop(&mut self) -> u64 {
        // Dropping every sender disconnects the shard queues; workers
        // drain what is already enqueued and return their ingest counts.
        self.senders.clear();
        let mut ingested = 0u64;
        for worker in self.workers.drain(..) {
            ingested += worker.join().unwrap_or(0);
        }
        ingested
    }

    /// Stops every shard worker (draining already-enqueued commands) and
    /// returns the total number of objects ingested across shards.
    pub fn shutdown(mut self) -> u64 {
        self.stop()
    }
}

impl std::fmt::Debug for ShardedLatest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedLatest")
            .field("shards", &self.senders.len())
            .field("router", &self.router.policy())
            .field("clock", &self.clock())
            .finish_non_exhaustive()
    }
}

impl Drop for ShardedLatest {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Merges one query's per-shard outcomes (ascending shard order) into the
/// engine-level outcome. A single part is returned verbatim; otherwise
/// counts sum left-to-right (`estimate`, `actual`), the accuracy is
/// re-derived from the merged totals, the latency is the gather makespan
/// (the slowest shard), and identity fields (`estimator`, `phase`,
/// `served_by`) come from the lowest-indexed participating shard.
fn merge_outcomes(parts: Vec<QueryOutcome>) -> Option<QueryOutcome> {
    let mut iter = parts.into_iter();
    let mut merged = iter.next()?;
    let mut many = false;
    for p in iter {
        many = true;
        merged.estimate += p.estimate;
        merged.actual += p.actual;
        merged.latency_ms = merged.latency_ms.max(p.latency_ms);
        merged.switched |= p.switched;
    }
    if many {
        merged.accuracy = crate::estimation_accuracy(merged.estimate, merged.actual);
    }
    Some(merged)
}

/// An opaque handle to a submitted [`ServingEngine`] job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ticket(u64);

impl Ticket {
    /// The job's engine-unique id.
    pub fn id(self) -> u64 {
        self.0
    }
}

/// One submitted query batch awaiting a serving worker.
struct Job {
    ticket: u64,
    queries: Vec<RcDvq>,
    options: QueryOptions,
}

/// Completed results, keyed by ticket id, plus the wakeup for blocking
/// waiters.
struct EngineState {
    done: Mutex<HashMap<u64, Result<Vec<QueryOutcome>, LatestError>>>,
    ready: Condvar,
}

/// A zero-dependency thread-pool front door over a [`ShardedLatest`]:
/// callers [`submit`](ServingEngine::submit) query batches onto a bounded
/// job queue and later [`poll`](ServingEngine::poll) or
/// [`wait`](ServingEngine::wait) on the returned [`Ticket`]. A full queue
/// surfaces [`LatestError::WouldBlock`] at submit time — backpressure is
/// the caller's signal, and no accepted job is ever dropped.
pub struct ServingEngine {
    jobs: Option<Sender<Job>>,
    state: Arc<EngineState>,
    next_ticket: AtomicU64,
    workers: Vec<JoinHandle<u64>>,
}

impl ServingEngine {
    /// Spawns `workers` serving threads (at least one) over `engine`,
    /// with a job queue bounded at `queue_capacity`.
    pub fn new(
        engine: Arc<ShardedLatest>,
        workers: usize,
        queue_capacity: usize,
    ) -> Result<Self, LatestError> {
        let (job_tx, job_rx) = bounded::<Job>(queue_capacity.max(1));
        let state = Arc::new(EngineState {
            done: Mutex::new(HashMap::new()),
            ready: Condvar::new(),
        });
        let mut handles = Vec::with_capacity(workers.max(1));
        for i in 0..workers.max(1) {
            let rx = job_rx.clone();
            let engine = Arc::clone(&engine);
            let state = Arc::clone(&state);
            let handle = std::thread::Builder::new()
                .name(format!("latest-serving-{i}"))
                .spawn(move || {
                    let mut served = 0u64;
                    while let Ok(job) = rx.recv() {
                        let result = engine.query_batch(&job.queries, job.options);
                        served += 1;
                        state.done.lock().insert(job.ticket, result);
                        state.ready.notify_all();
                    }
                    served
                })
                .map_err(|e| LatestError::Spawn {
                    thread: "latest-serving",
                    reason: e.to_string(),
                })?;
            handles.push(handle);
        }
        Ok(ServingEngine {
            jobs: Some(job_tx),
            state,
            next_ticket: AtomicU64::new(0),
            workers: handles,
        })
    }

    /// Submits a query batch for asynchronous execution. Fails with
    /// [`LatestError::WouldBlock`] when the job queue is full (the batch
    /// is NOT enqueued — retry later) and
    /// [`LatestError::PipelineShutDown`] once the engine stopped.
    pub fn submit(
        &self,
        queries: Vec<RcDvq>,
        options: QueryOptions,
    ) -> Result<Ticket, LatestError> {
        let jobs = self.jobs.as_ref().ok_or(LatestError::PipelineShutDown)?;
        // Relaxed ordering: ticket ids only need to be unique; the job
        // channel orders the actual work.
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        match jobs.try_send(Job {
            ticket,
            queries,
            options,
        }) {
            Ok(()) => Ok(Ticket(ticket)),
            Err(crossbeam::channel::TrySendError::Full(_)) => Err(LatestError::WouldBlock),
            Err(crossbeam::channel::TrySendError::Disconnected(_)) => {
                Err(LatestError::PipelineShutDown)
            }
        }
    }

    /// Takes the result of a completed job, or `None` while it is still
    /// queued or running. A completed ticket yields its result exactly
    /// once.
    pub fn poll(&self, ticket: Ticket) -> Option<Result<Vec<QueryOutcome>, LatestError>> {
        self.state.done.lock().remove(&ticket.0)
    }

    /// Blocks until the job completes and takes its result.
    pub fn wait(&self, ticket: Ticket) -> Result<Vec<QueryOutcome>, LatestError> {
        let mut done = self.state.done.lock();
        loop {
            if let Some(result) = done.remove(&ticket.0) {
                return result;
            }
            self.state.ready.wait(&mut done);
        }
    }

    /// Pending jobs currently queued (not yet picked up by a worker).
    pub fn queued(&self) -> usize {
        self.jobs.as_ref().map_or(0, Sender::len)
    }

    fn stop(&mut self) -> u64 {
        drop(self.jobs.take());
        let mut served = 0u64;
        for worker in self.workers.drain(..) {
            served += worker.join().unwrap_or(0);
        }
        // Wake any waiter stuck on a ticket that can no longer complete.
        self.state.ready.notify_all();
        served
    }

    /// Stops the serving workers after they drain the accepted jobs, and
    /// returns how many jobs were served.
    pub fn shutdown(mut self) -> u64 {
        self.stop()
    }
}

impl Drop for ServingEngine {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::PhaseTag;
    use estimators::EstimatorConfig;
    use geostream::synth::DatasetSpec;
    use geostream::{Duration, KeywordId, ObjectId, Point};

    fn config(shards: usize, router: RouterPolicy) -> LatestConfig {
        let dataset = DatasetSpec::twitter();
        LatestConfig::builder()
            .window_span(Duration::from_secs(60))
            .warmup(Duration::from_secs(60))
            .pretrain_queries(20)
            .estimator_config(EstimatorConfig {
                domain: dataset.domain,
                reservoir_capacity: 1_000,
                ..EstimatorConfig::default()
            })
            .shard(ShardConfig {
                shards,
                queue_capacity: 1_024,
                router,
            })
            .build()
            .expect("valid test config")
    }

    fn obj(id: u64, x: f64, y: f64, at: u64) -> GeoTextObject {
        GeoTextObject::new(
            ObjectId(id),
            Point::new(x, y),
            vec![KeywordId((id % 16) as u32)],
            Timestamp(at),
        )
    }

    #[test]
    fn hash_router_partitions_and_fans_out_everywhere() {
        let domain = Rect::new(0.0, 0.0, 100.0, 100.0);
        let router = ShardRouter::new(RouterPolicy::HashOid, 4, domain);
        let mut per_shard = [0usize; 4];
        for id in 0..1_000u64 {
            let o = obj(id, 50.0, 50.0, 0);
            per_shard[router.route_object(&o)] += 1;
        }
        // FNV spreads sequential ids: no shard is empty or hogs the load.
        for n in per_shard {
            assert!(n > 100, "skewed hash partition: {per_shard:?}");
        }
        let q = RcDvq::spatial(Rect::new(10.0, 10.0, 20.0, 20.0));
        assert_eq!(router.route_query(&q), vec![0, 1, 2, 3]);
    }

    #[test]
    fn spatial_router_covers_matching_strips_only() {
        let domain = Rect::new(0.0, 0.0, 100.0, 100.0);
        let router = ShardRouter::new(RouterPolicy::SpatialTile, 4, domain);
        // Strips are [0,25), [25,50), [50,75), [75,100].
        assert_eq!(router.route_object(&obj(1, 10.0, 5.0, 0)), 0);
        assert_eq!(router.route_object(&obj(2, 25.0, 5.0, 0)), 1);
        assert_eq!(router.route_object(&obj(3, 99.9, 5.0, 0)), 3);
        assert_eq!(router.route_object(&obj(4, 100.0, 5.0, 0)), 3); // clamped
        let q = RcDvq::spatial(Rect::new(30.0, 0.0, 60.0, 10.0));
        assert_eq!(router.route_query(&q), vec![1, 2]);
        // Keyword-only queries have no spatial locality: all shards.
        let q = RcDvq::keyword(vec![KeywordId(3)]);
        assert_eq!(router.route_query(&q), vec![0, 1, 2, 3]);
        // Router coverage: every object inside a query rect is on a
        // visited strip.
        let q = RcDvq::spatial(Rect::new(24.9, 0.0, 25.1, 10.0));
        let visited = router.route_query(&q);
        for o in [obj(5, 24.95, 5.0, 0), obj(6, 25.05, 5.0, 0)] {
            assert!(visited.contains(&router.route_object(&o)));
        }
    }

    #[test]
    fn rejects_invalid_shard_configs() {
        let bad = LatestConfig {
            shard: ShardConfig {
                shards: 0,
                ..ShardConfig::default()
            },
            ..LatestConfig::default()
        };
        assert!(ShardedLatest::new(bad).is_err());
        let bad = LatestConfig {
            shard: ShardConfig {
                queue_capacity: 0,
                ..ShardConfig::default()
            },
            ..LatestConfig::default()
        };
        assert!(ShardedLatest::new(bad).is_err());
    }

    #[test]
    fn ingests_and_answers_across_shards() {
        for router in [RouterPolicy::HashOid, RouterPolicy::SpatialTile] {
            let engine = ShardedLatest::new(config(4, router)).expect("spawn");
            let dataset = DatasetSpec::twitter();
            let mut gen = dataset.generator();
            let batch: Vec<_> = (0..2_000).map(|_| gen.next_object()).collect();
            engine.ingest_batch(&batch).expect("live");
            engine.flush().expect("live");
            let snap = engine.metrics_snapshot().expect("live");
            assert_eq!(snap.window.ingested, 2_000);
            assert_eq!(snap.window.occupancy, 2_000); // nothing evicted yet
            let out = engine
                .query(
                    &RcDvq::spatial(Rect::new(-120.0, 30.0, -100.0, 45.0)),
                    QueryOptions::new(),
                )
                .expect("live");
            assert!(out.estimate >= 0.0);
            assert_eq!(engine.shutdown(), 2_000);
        }
    }

    #[test]
    fn merged_actual_matches_direct_count() {
        let engine = ShardedLatest::new(config(3, RouterPolicy::SpatialTile)).expect("spawn");
        let domain = Rect::new(-124.7, 25.1, -66.2, 49.0); // twitter domain
        let mut batch = Vec::new();
        for id in 0..600u64 {
            let x = domain.min_x + (id as f64 / 600.0) * domain.width();
            batch.push(obj(id, x, 30.0, id));
        }
        engine.ingest_batch(&batch).expect("live");
        engine.flush().expect("live");
        let q = RcDvq::spatial(Rect::new(domain.min_x, 25.1, domain.min_x + 30.0, 49.0));
        let expected = batch.iter().filter(|o| q.matches(o)).count() as u64;
        let out = engine
            .query(&q, QueryOptions::new().exact(true))
            .expect("live");
        assert_eq!(out.actual, expected);
        assert!(out.estimate == expected as f64);
        engine.shutdown();
    }

    #[test]
    fn eviction_clock_keeps_windows_aligned() {
        let engine = ShardedLatest::new(config(4, RouterPolicy::SpatialTile)).expect("spawn");
        // All objects in strip 0, but time advances for every shard: the
        // other three windows must still slide.
        let span_ms = 60_000u64;
        let mut batch = Vec::new();
        for id in 0..100u64 {
            batch.push(obj(id, 0.01, 30.0, id * 2_000));
        }
        // Only strip 0 gets data; later batch pushes time past the span.
        let engine_domain = engine.config().estimator_config.domain;
        let _ = engine_domain;
        engine.ingest_batch(&batch).expect("live");
        engine.flush().expect("live");
        let snap = engine.metrics_snapshot().expect("live");
        // The window keeps objects with `ts >= now − span` (inclusive).
        let live_expected = batch
            .iter()
            .filter(|o| o.timestamp.0 + span_ms >= batch[99].timestamp.0)
            .count() as u64;
        assert_eq!(snap.window.occupancy, live_expected);
        assert_eq!(engine.clock(), Timestamp(99 * 2_000));
        engine.shutdown();
    }

    #[test]
    fn non_blocking_paths_surface_would_block() {
        let dataset = DatasetSpec::twitter();
        let tiny = LatestConfig::builder()
            .window_span(Duration::from_secs(60))
            .warmup(Duration::from_secs(60))
            .estimator_config(EstimatorConfig {
                domain: dataset.domain,
                reservoir_capacity: 1_000,
                ..EstimatorConfig::default()
            })
            .shard(ShardConfig {
                shards: 1,
                queue_capacity: 2,
                router: RouterPolicy::HashOid,
            })
            .build()
            .expect("valid");
        let engine = ShardedLatest::new(tiny).expect("spawn");
        // Park the single shard worker on a blocking closure so the queue
        // cannot drain, then fill it.
        let (hold_tx, hold_rx) = bounded::<()>(1);
        engine.senders[0]
            .send(ShardCmd::Run(Box::new(move |_| {
                let _ = hold_rx.recv();
            })))
            .expect("live");
        while engine.senders[0].len() < 2 {
            if engine.senders[0]
                .try_send(ShardCmd::AdvanceTo(Timestamp(0)))
                .is_err()
            {
                break;
            }
        }
        let batch = vec![obj(1, 0.0, 0.0, 1)];
        assert_eq!(
            engine.try_ingest_batch(&batch).unwrap_err(),
            LatestError::WouldBlock
        );
        let q = RcDvq::keyword(vec![KeywordId(1)]);
        assert_eq!(
            engine
                .query(&q, QueryOptions::new().blocking(false))
                .unwrap_err(),
            LatestError::WouldBlock
        );
        hold_tx.send(()).expect("worker is parked");
        engine.flush().expect("live");
        assert!(engine.try_ingest_batch(&batch).is_ok());
        engine.shutdown();
    }

    #[test]
    fn merge_outcomes_sums_counts_and_rederives_accuracy() {
        let part = |estimate: f64, actual: u64, latency_ms: f64| QueryOutcome {
            estimate,
            actual,
            latency_ms,
            accuracy: crate::estimation_accuracy(estimate, actual),
            estimator: estimators::EstimatorKind::Rsh,
            phase: PhaseTag::Incremental,
            switched: false,
            served_by: crate::system::ServedBy::Estimator(estimators::EstimatorKind::Rsh),
        };
        // Single part: verbatim.
        let single = merge_outcomes(vec![part(9.0, 10, 0.5)]).expect("one part");
        assert_eq!(single.actual, 10);
        assert_eq!(single.latency_ms, 0.5);
        // Two parts: sums, max latency, re-derived accuracy.
        let merged =
            merge_outcomes(vec![part(9.0, 10, 0.5), part(21.0, 20, 1.5)]).expect("two parts");
        assert_eq!(merged.actual, 30);
        assert_eq!(merged.estimate, 30.0);
        assert_eq!(merged.latency_ms, 1.5);
        assert_eq!(merged.accuracy, 1.0);
        assert!(merge_outcomes(Vec::new()).is_none());
    }

    #[test]
    fn serving_engine_submit_poll_wait_and_backpressure() {
        let engine = Arc::new(ShardedLatest::new(config(2, RouterPolicy::HashOid)).expect("spawn"));
        let dataset = DatasetSpec::twitter();
        let mut gen = dataset.generator();
        let batch: Vec<_> = (0..1_000).map(|_| gen.next_object()).collect();
        engine.ingest_batch(&batch).expect("live");
        engine.flush().expect("live");
        let serving = ServingEngine::new(Arc::clone(&engine), 1, 1).expect("spawn");
        let q = vec![RcDvq::keyword(vec![KeywordId(1)])];
        // Park the worker indirectly: park both shard workers so the one
        // serving thread blocks inside query_batch.
        let mut holds = Vec::new();
        for s in &engine.senders {
            let (hold_tx, hold_rx) = bounded::<()>(1);
            s.send(ShardCmd::Run(Box::new(move |_| {
                let _ = hold_rx.recv();
            })))
            .expect("live");
            holds.push(hold_tx);
        }
        let t1 = serving.submit(q.clone(), QueryOptions::new()).expect("t1");
        // Wait until the worker picked t1 up, then fill the queue of 1.
        while serving.queued() > 0 {
            std::thread::yield_now();
        }
        let t2 = serving.submit(q.clone(), QueryOptions::new()).expect("t2");
        assert_eq!(
            serving.submit(q.clone(), QueryOptions::new()).unwrap_err(),
            LatestError::WouldBlock
        );
        assert!(serving.poll(t1).is_none(), "t1 cannot finish while parked");
        for h in holds {
            h.send(()).expect("worker parked");
        }
        let r1 = serving.wait(t1).expect("t1 completes");
        assert_eq!(r1.len(), 1);
        let r2 = serving.wait(t2).expect("t2 completes");
        assert_eq!(r2.len(), 1);
        assert_eq!(serving.shutdown(), 2);
    }

    #[test]
    fn scraper_snapshots_merge_across_shards() {
        let engine = Arc::new(ShardedLatest::new(config(2, RouterPolicy::HashOid)).expect("spawn"));
        let scraper = engine
            .spawn_scraper(std::time::Duration::from_millis(5), 16)
            .expect("scraper spawns");
        let dataset = DatasetSpec::twitter();
        let mut gen = dataset.generator();
        let batch: Vec<_> = (0..500).map(|_| gen.next_object()).collect();
        engine.ingest_batch(&batch).expect("live");
        engine.flush().expect("live");
        // Wait for a post-ingest scrape tick.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            if let Some(snap) = scraper.latest() {
                if snap.window.ingested == 500 {
                    break;
                }
            }
            assert!(std::time::Instant::now() < deadline, "no merged snapshot");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        scraper.stop();
    }

    #[cfg(feature = "debug-invariants")]
    #[test]
    fn audit_passes_on_live_engine() {
        for router in [RouterPolicy::HashOid, RouterPolicy::SpatialTile] {
            let engine = ShardedLatest::new(config(4, router)).expect("spawn");
            let dataset = DatasetSpec::twitter();
            let mut gen = dataset.generator();
            for _ in 0..10 {
                let batch: Vec<_> = (0..300).map(|_| gen.next_object()).collect();
                engine.ingest_batch(&batch).expect("live");
            }
            engine.flush().expect("live");
            engine.audit().expect("cross-shard invariants hold");
            engine.shutdown();
        }
    }
}
