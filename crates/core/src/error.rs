//! Typed errors for the fallible LATEST APIs.

use crate::config::ConfigError;

/// What went wrong on a LATEST operation.
#[derive(Debug, Clone, PartialEq)]
pub enum LatestError {
    /// The configuration failed validation.
    Config(ConfigError),
    /// The pipeline backing this handle has been shut down; no further
    /// queries can be answered consistently with the stream.
    PipelineShutDown,
    /// A non-blocking call found the instance locked by another thread.
    WouldBlock,
    /// The OS refused to spawn a pipeline thread (resource exhaustion).
    Spawn {
        /// Which pipeline thread failed (`"latest-producer"` /
        /// `"latest-ingestor"`).
        thread: &'static str,
        /// The OS error text.
        reason: String,
    },
}

impl std::fmt::Display for LatestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LatestError::Config(e) => write!(f, "invalid configuration: {e}"),
            LatestError::PipelineShutDown => write!(f, "pipeline has shut down"),
            LatestError::WouldBlock => {
                write!(f, "instance is busy; non-blocking call would block")
            }
            LatestError::Spawn { thread, reason } => {
                write!(f, "failed to spawn pipeline thread `{thread}`: {reason}")
            }
        }
    }
}

impl std::error::Error for LatestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LatestError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for LatestError {
    fn from(e: ConfigError) -> Self {
        LatestError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn displays_and_chains() {
        let e = LatestError::from(ConfigError::TauOutOfRange(2.0));
        assert!(e.to_string().contains("invalid configuration"));
        assert!(e.source().is_some());
        assert!(LatestError::PipelineShutDown.source().is_none());
        assert!(LatestError::WouldBlock.to_string().contains("busy"));
        let spawn = LatestError::Spawn {
            thread: "latest-producer",
            reason: "out of threads".into(),
        };
        assert!(spawn.to_string().contains("latest-producer"));
    }
}
