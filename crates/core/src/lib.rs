//! # latest-core — the LATEST selectivity-estimation module
//!
//! The paper's primary contribution (§V): a system-level module that keeps
//! a pool of selectivity estimators and uses an incrementally trained
//! Hoeffding tree over query-workload features to decide which estimator
//! the system should employ at every point of the stream lifetime.
//!
//! The stream lifetime is divided into three phases:
//!
//! 1. **warm-up** (`t ∈ [0, T)`): data accumulates until the time window
//!    `S_T` is meaningful; all estimation structures are pre-filled;
//! 2. **pre-training**: every incoming query runs on *all* estimators; the
//!    actual selectivity from the exact executor ("system logs") scores
//!    each one, and the winners become training records for the Hoeffding
//!    tree;
//! 3. **incremental learning**: a single active estimator answers queries.
//!    Each query's accuracy is fed back into the tree, a moving-average
//!    accuracy is monitored, and when it sinks below `β·τ` a recommended
//!    replacement starts pre-filling — ready to take over the moment the
//!    average crosses `τ` (the paper's Estimator Adaptor, §V-D).
//!
//! The trade-off knob `α ∈ [0, 1]` weighs estimation latency against
//! accuracy when scoring estimators (`α = 0`: accuracy only; `α = 1`:
//! latency only; default 0.5).
//!
//! Entry point: [`Latest`]. See `examples/quickstart.rs` for a tour.

pub mod adaptor;
pub mod cache;
pub mod concurrent;
pub mod config;
pub mod error;
pub mod features;
pub mod log;
pub mod monitor;
pub mod obsv;
pub mod pool;
pub mod shard;
pub mod system;

pub use adaptor::Recommender;
pub use cache::{CachedAnswer, SelectivityCache};
pub use concurrent::{SharedLatest, SnapshotScraper, StreamPipeline};
pub use config::{ConfigError, LatestConfigBuilder};
pub use error::LatestError;
pub use features::{QueryProfile, RewardScaler};
pub use log::{PhaseTag, QueryRecord, ShadowSample, SwitchEvent, SystemLog};
pub use monitor::AccuracyMonitor;
pub use obsv::{
    EstimatorRole, EventStream, LifecycleEvent, MetricsRegistry, MetricsSnapshot, RetrainCause,
    WallTimer,
};
pub use pool::EstimatorPool;
pub use shard::{
    RouterPolicy, ServingEngine, ShardConfig, ShardRouter, ShardedLatest, Ticket, MAX_SHARDS,
};
pub use system::{AblationConfig, Latest, LatestConfig, QueryOptions, QueryOutcome, ServedBy};

/// Estimation accuracy of an estimate vs. the logged actual selectivity:
/// `max(0, 1 − |est − actual| / max(actual, 1))`, the relative-error-based
/// accuracy in `[0, 1]` the paper's plots use.
pub fn estimation_accuracy(estimate: f64, actual: u64) -> f64 {
    let denom = (actual as f64).max(1.0);
    (1.0 - (estimate - actual as f64).abs() / denom).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_perfect_and_degraded() {
        assert_eq!(estimation_accuracy(100.0, 100), 1.0);
        assert!((estimation_accuracy(90.0, 100) - 0.9).abs() < 1e-12);
        assert!((estimation_accuracy(110.0, 100) - 0.9).abs() < 1e-12);
        assert_eq!(estimation_accuracy(300.0, 100), 0.0); // clamped
    }

    #[test]
    fn accuracy_small_actuals_use_floor() {
        // actual = 0 uses denominator 1 so exactness is still rewarded.
        assert_eq!(estimation_accuracy(0.0, 0), 1.0);
        assert_eq!(estimation_accuracy(1.0, 0), 0.0);
    }
}
