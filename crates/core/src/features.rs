//! Workload features and reward scoring (§V-C).
//!
//! The Hoeffding tree learns over per-query workload features: the query
//! type, keyword-set size, spatial extent, and the estimator currently in
//! use. The *label* is an [`EstimatorKind`]. Estimator performance —
//! accuracy and latency — is folded into the **reward** that decides the
//! label, min-max normalized and weighted by the paper's `α` parameter.

use estimators::EstimatorKind;
use geostream::{QueryType, RcDvq, Rect};
use hoeffding::{AttributeSpec, Instance, Schema, Value};

/// Compact, ML-ready description of one query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryProfile {
    /// Which predicates the query carries.
    pub query_type: QueryType,
    /// Number of query keywords (0 for pure spatial).
    pub keyword_count: usize,
    /// Query area as a fraction of the domain (0 for pure keyword).
    pub area_fraction: f64,
}

impl QueryProfile {
    /// Extracts the profile of `query` over `domain`.
    pub fn of(query: &RcDvq, domain: &Rect) -> Self {
        let area_fraction = query
            .range()
            .map(|r| (r.area() / domain.area()).clamp(0.0, 1.0))
            .unwrap_or(0.0);
        QueryProfile {
            query_type: query.query_type(),
            keyword_count: query.keywords().len(),
            area_fraction,
        }
    }

    /// Builds the Hoeffding-tree instance for this profile given the
    /// estimator currently employed.
    pub fn instance(&self, active: EstimatorKind) -> Instance {
        vec![
            Value::Cat(self.query_type.index()),
            Value::Num(self.keyword_count as f64),
            // Log-compress the area so city-block vs. state-wide ranges
            // remain distinguishable near zero.
            Value::Num((self.area_fraction.max(1e-12)).ln()),
            Value::Cat(active.index()),
        ]
    }
}

/// The attribute schema shared by LATEST's learning model: query type,
/// keyword count, log area, active estimator → class = recommended
/// estimator.
pub fn model_schema() -> Schema {
    Schema::new(
        vec![
            AttributeSpec::categorical("query_type", QueryType::COUNT),
            AttributeSpec::numeric("keyword_count"),
            AttributeSpec::numeric("log_area_fraction"),
            AttributeSpec::categorical("active_estimator", EstimatorKind::ALL.len() as u32),
        ],
        EstimatorKind::ALL.len() as u32,
    )
}

/// Min-max normalization of latencies plus the α-weighted reward (§V-C).
///
/// Accuracy is already in `[0, 1]`. Latency is min-max normalized **in log
/// space** against the fastest/slowest latency observed so far, then the
/// reward blends them: `reward = (1 − α)·accuracy + α·(1 − latency_norm)`,
/// so `α = 0` scores by accuracy only and `α = 1` by latency only.
///
/// Log-space normalization is a deliberate deviation from a plain linear
/// min-max: the paper's estimators span 19–111 ms (a 6× linear range), but
/// at laptop scale ours span four orders of magnitude (µs histogram probes
/// to sub-ms tree walks). Linear normalization would compress every
/// non-slowest estimator to a latency score of ≈1 and erase the signal the
/// paper's α experiments rely on; log-space restores relative spacing
/// comparable to the paper's linear one.
#[derive(Debug, Clone)]
pub struct RewardScaler {
    alpha: f64,
    /// Min/max of `ln(latency_ms + ε)`.
    lat_min: f64,
    lat_max: f64,
}

/// Offset keeping `ln` finite for ~zero latencies (1 ns in ms).
const LOG_EPS: f64 = 1e-6;

impl RewardScaler {
    /// Creates a scaler for the given `α ∈ [0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
        RewardScaler {
            alpha,
            lat_min: f64::INFINITY,
            lat_max: f64::NEG_INFINITY,
        }
    }

    /// The configured α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Records an observed latency (milliseconds) to keep the min-max
    /// range current.
    pub fn observe_latency(&mut self, latency_ms: f64) {
        if latency_ms.is_finite() && latency_ms >= 0.0 {
            let l = (latency_ms + LOG_EPS).ln();
            self.lat_min = self.lat_min.min(l);
            self.lat_max = self.lat_max.max(l);
        }
    }

    /// Normalizes a latency into `[0, 1]` against the observed log-space
    /// range (0 = fastest seen). Before any observation, returns 0.5.
    pub fn normalize_latency(&self, latency_ms: f64) -> f64 {
        if !self.lat_min.is_finite() || self.lat_max <= self.lat_min {
            return 0.5;
        }
        let l = (latency_ms.max(0.0) + LOG_EPS).ln();
        ((l - self.lat_min) / (self.lat_max - self.lat_min)).clamp(0.0, 1.0)
    }

    /// The α-weighted reward of an observation.
    pub fn reward(&self, accuracy: f64, latency_ms: f64) -> f64 {
        let lat_score = 1.0 - self.normalize_latency(latency_ms);
        (1.0 - self.alpha) * accuracy.clamp(0.0, 1.0) + self.alpha * lat_score
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geostream::KeywordId;

    const DOMAIN: Rect = Rect {
        min_x: 0.0,
        min_y: 0.0,
        max_x: 100.0,
        max_y: 100.0,
    };

    #[test]
    fn profile_of_each_query_type() {
        let s = QueryProfile::of(&RcDvq::spatial(Rect::new(0.0, 0.0, 10.0, 10.0)), &DOMAIN);
        assert_eq!(s.query_type, QueryType::Spatial);
        assert_eq!(s.keyword_count, 0);
        assert!((s.area_fraction - 0.01).abs() < 1e-12);

        let k = QueryProfile::of(&RcDvq::keyword(vec![KeywordId(1), KeywordId(2)]), &DOMAIN);
        assert_eq!(k.query_type, QueryType::Keyword);
        assert_eq!(k.keyword_count, 2);
        assert_eq!(k.area_fraction, 0.0);

        let h = QueryProfile::of(
            &RcDvq::hybrid(Rect::new(0.0, 0.0, 50.0, 50.0), vec![KeywordId(1)]),
            &DOMAIN,
        );
        assert_eq!(h.query_type, QueryType::Hybrid);
        assert!((h.area_fraction - 0.25).abs() < 1e-12);
    }

    #[test]
    fn instances_validate_against_schema() {
        let schema = model_schema();
        for q in [
            RcDvq::spatial(Rect::new(0.0, 0.0, 1.0, 1.0)),
            RcDvq::keyword(vec![KeywordId(3)]),
            RcDvq::hybrid(Rect::new(0.0, 0.0, 1.0, 1.0), vec![KeywordId(3)]),
        ] {
            let profile = QueryProfile::of(&q, &DOMAIN);
            for kind in EstimatorKind::ALL {
                let inst = profile.instance(kind);
                assert!(
                    schema.validate(&inst).is_ok(),
                    "invalid instance for {kind}"
                );
            }
        }
    }

    #[test]
    fn reward_extremes_match_alpha_semantics() {
        let mut acc_only = RewardScaler::new(0.0);
        let mut lat_only = RewardScaler::new(1.0);
        for s in [&mut acc_only, &mut lat_only] {
            s.observe_latency(1.0);
            s.observe_latency(11.0);
        }
        // α = 0: only accuracy matters.
        assert!(acc_only.reward(0.9, 11.0) > acc_only.reward(0.5, 1.0));
        // α = 1: only latency matters.
        assert!(lat_only.reward(0.1, 1.0) > lat_only.reward(1.0, 11.0));
    }

    #[test]
    fn balanced_alpha_blends() {
        let mut s = RewardScaler::new(0.5);
        s.observe_latency(0.0);
        s.observe_latency(10.0);
        // acc 1.0, fastest → reward 1.0; acc 0, slowest → reward 0.
        assert!((s.reward(1.0, 0.0) - 1.0).abs() < 1e-12);
        assert!(s.reward(0.0, 10.0).abs() < 1e-12);
        assert!((s.reward(1.0, 10.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn latency_normalization_clamps() {
        let mut s = RewardScaler::new(0.5);
        assert_eq!(s.normalize_latency(5.0), 0.5); // no observations yet
        s.observe_latency(2.0);
        s.observe_latency(4.0);
        assert_eq!(s.normalize_latency(1.0), 0.0);
        assert_eq!(s.normalize_latency(9.0), 1.0);
        // Log-space midpoint of [2, 4] is the geometric mean 2√2.
        let mid = 2.0 * std::f64::consts::SQRT_2;
        assert!((s.normalize_latency(mid) - 0.5).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn rejects_bad_alpha() {
        let _ = RewardScaler::new(1.5);
    }
}
