//! Run-wide observability: the metrics registry, the lifecycle event
//! stream, and point-in-time snapshots.
//!
//! The adaptor's whole control loop (§V-D) runs on signals — moving-average
//! accuracy, prefill/switch decisions, drift retrainings — that used to be
//! inspectable only post-hoc through [`SystemLog`](crate::SystemLog). This
//! module makes the system observable *live*:
//!
//! * [`MetricsRegistry`] — one struct of relaxed-atomic counters, gauges,
//!   and fixed-bucket histograms covering every subsystem: the sliding
//!   window (occupancy, eviction rates), the estimator pool (rounds, batch
//!   sizes, per-worker busy time), per-[`EstimatorKind`] estimate-latency
//!   histograms and memory gauges, and the phase machine itself. The
//!   exact executor's path-mix counters are the same [`Counter`] cells
//!   (they live in `exactdb` and are folded into every snapshot).
//! * [`EventStream`] — a bounded ring of typed [`LifecycleEvent`]s
//!   (phase transitions, prefill starts/discards, switches, tree
//!   retrainings, coalesced window evictions, audit failures), so "what
//!   just happened" has a machine-readable answer.
//! * [`MetricsSnapshot`] — a plain-data copy of everything above, taken by
//!   [`Latest::metrics_snapshot`](crate::Latest::metrics_snapshot), with a
//!   hand-rolled [`MetricsSnapshot::to_json`] writer (the bench harness
//!   ships it as `BENCH_observability.json`).
//!
//! ## Clocks
//!
//! The storage cells are clock-free ([`geostream::obsv`]); histograms come
//! in two variants only by what feeds them. *Virtual-clock* series (the
//! inter-query stream-time gaps, eviction batch sizes) are derived from
//! object [`Timestamp`]s and stay deterministic under replay. *Wall-clock*
//! series (estimate latency, pool busy time) are timed with [`WallTimer`] —
//! the **single** wall-clock read in the instrumented crates, explicitly
//! budgeted under the `virtual-clock` lint rule rather than silently
//! exempted.

use crate::log::PhaseTag;
use estimators::EstimatorKind;
use geostream::Timestamp;
pub use geostream::{Counter, Gauge, Histogram, HistogramSnapshot};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::time::Instant;

/// Bucket bounds (microseconds) for wall-clock latency histograms: sub-µs
/// estimator kernels up to multi-ms stragglers.
pub const WALL_LATENCY_US_BOUNDS: [u64; 12] =
    [1, 2, 5, 10, 25, 50, 100, 250, 1_000, 5_000, 25_000, 100_000];

/// Bucket bounds (virtual milliseconds) for stream-time gap histograms.
pub const VIRTUAL_GAP_MS_BOUNDS: [u64; 9] = [1, 10, 50, 100, 500, 1_000, 5_000, 30_000, 300_000];

/// Bucket bounds (objects) for batch-size histograms (ingest rounds,
/// eviction sweeps, pool maintenance batches).
pub const BATCH_SIZE_BOUNDS: [u64; 8] = [1, 4, 16, 64, 256, 1_024, 4_096, 16_384];

/// How many evicted objects accumulate before one coalesced
/// [`LifecycleEvent::WindowEvicted`] event is emitted. Evictions happen on
/// every window slide; per-slide events would flood the bounded stream and
/// push out the rare, valuable ones (switches, phase transitions).
pub const EVICTION_EVENT_GRANULARITY: u64 = 256;

/// Default capacity of the bounded [`EventStream`].
pub const DEFAULT_EVENT_CAPACITY: usize = 4_096;

/// The explicit wall-clock instrumentation surface: a started stopwatch.
///
/// This is the only place the instrumented crates read the wall clock
/// (`Instant::now`); the site is counted against the `virtual-clock` lint
/// budget in `lint.toml`, so any *new* wall-clock read elsewhere still
/// fails the lint pass. Virtual stream time never flows through this type.
#[derive(Debug, Clone, Copy)]
pub struct WallTimer {
    start: Instant,
}

impl WallTimer {
    /// Starts the stopwatch.
    pub fn start() -> Self {
        WallTimer {
            // LINT-ALLOW(virtual-clock): the one budgeted wall-clock read of the instrumentation surface; stream time stays virtual
            start: Instant::now(),
        }
    }

    /// Elapsed wall time in whole microseconds.
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
    }

    /// Elapsed wall time in (fractional) milliseconds.
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1_000.0
    }

    /// Records the elapsed microseconds into a wall-latency histogram.
    pub fn observe(&self, histogram: &Histogram) {
        histogram.record(self.elapsed_us());
    }
}

/// Why the Hoeffding tree was reset and regrown (§V-D retraining).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetrainCause {
    /// DDM drift detection over the tree's own prediction errors.
    Drift,
    /// The mean relative error since the last training exceeded the
    /// configured threshold.
    ErrorThreshold,
}

impl RetrainCause {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            RetrainCause::Drift => "drift",
            RetrainCause::ErrorThreshold => "error-threshold",
        }
    }
}

/// One typed lifecycle event of a LATEST run.
#[derive(Debug, Clone, PartialEq)]
pub enum LifecycleEvent {
    /// The phase machine entered `phase` at stream time `at`.
    PhaseEntered { phase: PhaseTag, at: Timestamp },
    /// A replacement started pre-filling at query `seq`.
    PrefillStarted { seq: u64, kind: EstimatorKind },
    /// A pre-filling replacement was discarded (accuracy recovered).
    PrefillDiscarded { seq: u64, kind: EstimatorKind },
    /// The adaptor switched the employed estimator (mirrors the
    /// [`SwitchEvent`](crate::SwitchEvent) appended to the system log).
    EstimatorSwitched {
        seq: u64,
        at: Timestamp,
        from: EstimatorKind,
        to: EstimatorKind,
        trigger_average: f64,
    },
    /// The Hoeffding tree was reset and will regrow.
    TreeRetrained { seq: u64, cause: RetrainCause },
    /// `n` objects left the sliding window (coalesced: one event per
    /// [`EVICTION_EVENT_GRANULARITY`] evictions, stamped with the stream
    /// time of the sweep that crossed the threshold).
    WindowEvicted { n: u64, at: Timestamp },
    /// A `debug-invariants` audit walk found a violated invariant.
    AuditFailed {
        structure: String,
        invariant: String,
    },
}

impl LifecycleEvent {
    /// Snake-case event name (the `"event"` field of the JSON rendering).
    pub fn name(&self) -> &'static str {
        match self {
            LifecycleEvent::PhaseEntered { .. } => "phase_entered",
            LifecycleEvent::PrefillStarted { .. } => "prefill_started",
            LifecycleEvent::PrefillDiscarded { .. } => "prefill_discarded",
            LifecycleEvent::EstimatorSwitched { .. } => "estimator_switched",
            LifecycleEvent::TreeRetrained { .. } => "tree_retrained",
            LifecycleEvent::WindowEvicted { .. } => "window_evicted",
            LifecycleEvent::AuditFailed { .. } => "audit_failed",
        }
    }

    /// One-line JSON object for this event.
    pub fn to_json(&self) -> String {
        match self {
            LifecycleEvent::PhaseEntered { phase, at } => format!(
                "{{\"event\": \"phase_entered\", \"phase\": \"{}\", \"at_ms\": {}}}",
                phase.name(),
                at.0
            ),
            LifecycleEvent::PrefillStarted { seq, kind } => format!(
                "{{\"event\": \"prefill_started\", \"seq\": {seq}, \"kind\": \"{}\"}}",
                kind.name()
            ),
            LifecycleEvent::PrefillDiscarded { seq, kind } => format!(
                "{{\"event\": \"prefill_discarded\", \"seq\": {seq}, \"kind\": \"{}\"}}",
                kind.name()
            ),
            LifecycleEvent::EstimatorSwitched {
                seq,
                at,
                from,
                to,
                trigger_average,
            } => format!(
                "{{\"event\": \"estimator_switched\", \"seq\": {seq}, \"at_ms\": {}, \
                 \"from\": \"{}\", \"to\": \"{}\", \"trigger_average\": {trigger_average:.4}}}",
                at.0,
                from.name(),
                to.name()
            ),
            LifecycleEvent::TreeRetrained { seq, cause } => format!(
                "{{\"event\": \"tree_retrained\", \"seq\": {seq}, \"cause\": \"{}\"}}",
                cause.name()
            ),
            LifecycleEvent::WindowEvicted { n, at } => format!(
                "{{\"event\": \"window_evicted\", \"n\": {n}, \"at_ms\": {}}}",
                at.0
            ),
            LifecycleEvent::AuditFailed {
                structure,
                invariant,
            } => format!(
                "{{\"event\": \"audit_failed\", \"structure\": \"{structure}\", \
                 \"invariant\": \"{invariant}\"}}"
            ),
        }
    }
}

/// A bounded ring of recent [`LifecycleEvent`]s.
///
/// Recording is `&self` (a short mutex hold; events are rare by design —
/// evictions are coalesced). When the ring is full the oldest event is
/// dropped and the drop is counted, so consumers can tell a quiet system
/// from a saturated stream.
pub struct EventStream {
    inner: Mutex<VecDeque<LifecycleEvent>>,
    capacity: usize,
    dropped: Counter,
}

impl std::fmt::Debug for EventStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventStream")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .field("dropped", &self.dropped.get())
            .finish()
    }
}

impl EventStream {
    /// An event ring holding at most `capacity` recent events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventStream {
            inner: Mutex::new(VecDeque::with_capacity(capacity.max(1))),
            capacity: capacity.max(1),
            dropped: Counter::new(),
        }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn record(&self, event: LifecycleEvent) {
        let mut buf = self.inner.lock();
        if buf.len() == self.capacity {
            buf.pop_front();
            self.dropped.inc();
        }
        buf.push_back(event);
    }

    /// The retained events, oldest first.
    pub fn snapshot(&self) -> Vec<LifecycleEvent> {
        self.inner.lock().iter().cloned().collect()
    }

    /// Events lost to the capacity bound so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// The ring's capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl Default for EventStream {
    fn default() -> Self {
        EventStream::with_capacity(DEFAULT_EVENT_CAPACITY)
    }
}

/// Maps a phase to its index in per-phase counter arrays.
pub fn phase_index(phase: PhaseTag) -> usize {
    match phase {
        PhaseTag::WarmUp => 0,
        PhaseTag::PreTraining => 1,
        PhaseTag::Incremental => 2,
    }
}

/// The single place where "is the system healthy" is answerable at
/// runtime: every subsystem's counters, gauges, and histograms.
///
/// All cells update through `&self`, so the registry is shared as an
/// `Arc` between [`Latest`](crate::Latest) and the estimator pool's
/// worker threads without locks.
#[derive(Debug)]
pub struct MetricsRegistry {
    // --- sliding window / ingest path ---
    /// Stream objects ingested.
    pub objects_ingested: Counter,
    /// Objects evicted by window slides (ingest and query paths).
    pub objects_evicted: Counter,
    /// Ingest batches applied.
    pub ingest_batches: Counter,
    /// Live window occupancy after the latest slide.
    pub window_occupancy: Gauge,
    /// Eviction sweep sizes (objects per non-empty sweep; virtual-clock
    /// series — sizes are driven by object timestamps).
    pub eviction_batch_sizes: Histogram,
    // --- phase machine / queries ---
    /// Queries answered, total.
    pub queries_total: Counter,
    /// Queries answered per phase (`[warm-up, pre-training, incremental]`).
    pub queries_by_phase: [Counter; 3],
    /// Virtual stream-time gap between consecutive queries (ms).
    pub query_stream_gap_ms: Histogram,
    /// Queries served straight from the selectivity cache (these skip the
    /// executor, the log, and `queries_total` — a cache hit is a pure read).
    pub cache_hits: Counter,
    /// Cache-eligible queries that had to run the full estimation path.
    pub cache_misses: Counter,
    /// Sizes of the batches handed to `query_batch` (queries per call).
    pub query_batch_sizes: Histogram,
    // --- estimator adaptor ---
    /// Estimator switches performed.
    pub switches: Counter,
    /// Prefills started.
    pub prefill_starts: Counter,
    /// Prefills discarded after accuracy recovered.
    pub prefill_discards: Counter,
    /// Hoeffding-tree retrainings (drift + error-threshold).
    pub tree_retrainings: Counter,
    // --- estimator pool ---
    /// Pool maintenance/measurement fan-out rounds.
    pub pool_rounds: Counter,
    /// Summed wall-clock busy time of all pool workers (µs).
    pub pool_busy_us: Counter,
    /// Objects per pool maintenance round (arrivals + evictions).
    pub pool_batch_sizes: Histogram,
    /// Per-worker busy time per fan-out round (wall µs).
    pub pool_worker_busy_us: Histogram,
    // --- per-estimator-kind series (indexed by `EstimatorKind::index()`) ---
    /// Wall-clock estimate latency per kind (µs).
    pub estimate_latency_us: [Histogram; EstimatorKind::COUNT],
    /// Latest memory footprint per kind (bytes; 0 when unmaintained).
    pub estimator_memory_bytes: [Gauge; EstimatorKind::COUNT],
    // --- lifecycle events ---
    /// Bounded ring of typed lifecycle events.
    pub events: EventStream,
}

impl MetricsRegistry {
    /// A fresh registry with all cells zeroed.
    pub fn new() -> Self {
        MetricsRegistry {
            objects_ingested: Counter::new(),
            objects_evicted: Counter::new(),
            ingest_batches: Counter::new(),
            window_occupancy: Gauge::new(),
            eviction_batch_sizes: Histogram::new(&BATCH_SIZE_BOUNDS),
            queries_total: Counter::new(),
            queries_by_phase: std::array::from_fn(|_| Counter::new()),
            query_stream_gap_ms: Histogram::new(&VIRTUAL_GAP_MS_BOUNDS),
            cache_hits: Counter::new(),
            cache_misses: Counter::new(),
            query_batch_sizes: Histogram::new(&BATCH_SIZE_BOUNDS),
            switches: Counter::new(),
            prefill_starts: Counter::new(),
            prefill_discards: Counter::new(),
            tree_retrainings: Counter::new(),
            pool_rounds: Counter::new(),
            pool_busy_us: Counter::new(),
            pool_batch_sizes: Histogram::new(&BATCH_SIZE_BOUNDS),
            pool_worker_busy_us: Histogram::new(&WALL_LATENCY_US_BOUNDS),
            estimate_latency_us: std::array::from_fn(|_| Histogram::new(&WALL_LATENCY_US_BOUNDS)),
            estimator_memory_bytes: std::array::from_fn(|_| Gauge::new()),
            events: EventStream::default(),
        }
    }

    /// Records a wall-clock estimate latency for `kind`.
    pub fn record_estimate_latency(&self, kind: EstimatorKind, us: u64) {
        self.estimate_latency_us[kind.index() as usize].record(us);
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

/// Window-subsystem slice of a snapshot.
#[derive(Debug, Clone)]
pub struct WindowMetrics {
    pub occupancy: u64,
    pub ingested: u64,
    pub evicted: u64,
    pub ingest_batches: u64,
    pub eviction_batch_sizes: HistogramSnapshot,
}

/// Adaptor-subsystem slice of a snapshot.
#[derive(Debug, Clone)]
pub struct AdaptorMetrics {
    pub switches: u64,
    pub prefill_starts: u64,
    pub prefill_discards: u64,
    pub tree_retrainings: u64,
    /// Observations currently in the accuracy monitor's window.
    pub monitor_len: u64,
    /// Current moving-average accuracy, if any observations exist.
    pub monitor_average: Option<f64>,
    pub queries_since_switch: u64,
}

/// Estimator-pool slice of a snapshot.
#[derive(Debug, Clone)]
pub struct PoolMetrics {
    pub rounds: u64,
    pub busy_us: u64,
    pub batch_sizes: HistogramSnapshot,
    pub worker_busy_us: HistogramSnapshot,
}

/// Exact-executor slice of a snapshot (the access-path mix).
#[derive(Debug, Clone, Copy)]
pub struct ExecutorMetrics {
    pub spatial: u64,
    pub inverted: u64,
}

/// What an estimator is doing for the system right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimatorRole {
    /// Answering queries (incremental phase).
    Active,
    /// Pre-filling as the designated replacement.
    Prefilling,
    /// Maintained in the pre-training pool.
    Pool,
    /// Maintained for shadow metrics only.
    Shadow,
    /// Not currently maintained.
    Idle,
}

impl EstimatorRole {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            EstimatorRole::Active => "active",
            EstimatorRole::Prefilling => "prefilling",
            EstimatorRole::Pool => "pool",
            EstimatorRole::Shadow => "shadow",
            EstimatorRole::Idle => "idle",
        }
    }
}

/// Per-kind slice of a snapshot.
#[derive(Debug, Clone)]
pub struct EstimatorMetrics {
    pub kind: EstimatorKind,
    pub role: EstimatorRole,
    pub memory_bytes: u64,
    pub latency_us: HistogramSnapshot,
}

/// A point-in-time, plain-data copy of the whole registry plus the
/// adaptor state the registry cannot see (monitor, roles, path mix).
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Current lifetime phase.
    pub phase: PhaseTag,
    pub queries_total: u64,
    /// `[warm-up, pre-training, incremental]`.
    pub queries_by_phase: [u64; 3],
    pub query_stream_gap_ms: HistogramSnapshot,
    /// Queries served straight from the selectivity cache (not counted in
    /// `queries_total`).
    pub cache_hits: u64,
    /// Cache-eligible queries that ran the full estimation path.
    pub cache_misses: u64,
    /// Batch sizes observed by `query_batch`.
    pub query_batch_sizes: HistogramSnapshot,
    pub window: WindowMetrics,
    pub adaptor: AdaptorMetrics,
    pub pool: PoolMetrics,
    pub executor: ExecutorMetrics,
    /// One entry per [`EstimatorKind`], in `ALL` order.
    pub estimators: Vec<EstimatorMetrics>,
    /// Retained lifecycle events, oldest first.
    pub events: Vec<LifecycleEvent>,
    /// Events lost to the ring's capacity bound.
    pub events_dropped: u64,
}

/// Renders a histogram snapshot as a one-line JSON object.
fn hist_json(h: &HistogramSnapshot) -> String {
    let mut buckets = String::from("[");
    for (i, n) in h.counts.iter().enumerate() {
        if i > 0 {
            buckets.push_str(", ");
        }
        match h.bounds.get(i) {
            Some(le) => buckets.push_str(&format!("{{\"le\": {le}, \"n\": {n}}}")),
            None => buckets.push_str(&format!("{{\"le\": null, \"n\": {n}}}")),
        }
    }
    buckets.push(']');
    format!(
        "{{\"count\": {}, \"sum\": {}, \"mean\": {:.3}, \"buckets\": {buckets}}}",
        h.count,
        h.sum,
        h.mean()
    )
}

impl MetricsSnapshot {
    /// Serializes the snapshot with the workspace's hand-rolled JSON
    /// style (the same writer discipline as the bench reports; validated
    /// by `python3 -m json.tool` in CI).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"phase\": \"{}\",\n", self.phase.name()));
        s.push_str("  \"queries\": {\n");
        s.push_str(&format!("    \"total\": {},\n", self.queries_total));
        s.push_str(&format!("    \"warmup\": {},\n", self.queries_by_phase[0]));
        s.push_str(&format!(
            "    \"pretraining\": {},\n",
            self.queries_by_phase[1]
        ));
        s.push_str(&format!(
            "    \"incremental\": {},\n",
            self.queries_by_phase[2]
        ));
        s.push_str(&format!(
            "    \"stream_gap_ms\": {},\n",
            hist_json(&self.query_stream_gap_ms)
        ));
        s.push_str(&format!("    \"cache_hits\": {},\n", self.cache_hits));
        s.push_str(&format!("    \"cache_misses\": {},\n", self.cache_misses));
        s.push_str(&format!(
            "    \"batch_sizes\": {}\n",
            hist_json(&self.query_batch_sizes)
        ));
        s.push_str("  },\n");
        s.push_str("  \"window\": {\n");
        s.push_str(&format!("    \"occupancy\": {},\n", self.window.occupancy));
        s.push_str(&format!("    \"ingested\": {},\n", self.window.ingested));
        s.push_str(&format!("    \"evicted\": {},\n", self.window.evicted));
        s.push_str(&format!(
            "    \"ingest_batches\": {},\n",
            self.window.ingest_batches
        ));
        s.push_str(&format!(
            "    \"eviction_batch_sizes\": {}\n",
            hist_json(&self.window.eviction_batch_sizes)
        ));
        s.push_str("  },\n");
        s.push_str("  \"adaptor\": {\n");
        s.push_str(&format!("    \"switches\": {},\n", self.adaptor.switches));
        s.push_str(&format!(
            "    \"prefill_starts\": {},\n",
            self.adaptor.prefill_starts
        ));
        s.push_str(&format!(
            "    \"prefill_discards\": {},\n",
            self.adaptor.prefill_discards
        ));
        s.push_str(&format!(
            "    \"tree_retrainings\": {},\n",
            self.adaptor.tree_retrainings
        ));
        s.push_str(&format!(
            "    \"monitor_len\": {},\n",
            self.adaptor.monitor_len
        ));
        match self.adaptor.monitor_average {
            Some(avg) => s.push_str(&format!("    \"monitor_average\": {avg:.4},\n")),
            None => s.push_str("    \"monitor_average\": null,\n"),
        }
        s.push_str(&format!(
            "    \"queries_since_switch\": {}\n",
            self.adaptor.queries_since_switch
        ));
        s.push_str("  },\n");
        s.push_str("  \"pool\": {\n");
        s.push_str(&format!("    \"rounds\": {},\n", self.pool.rounds));
        s.push_str(&format!("    \"busy_us\": {},\n", self.pool.busy_us));
        s.push_str(&format!(
            "    \"batch_sizes\": {},\n",
            hist_json(&self.pool.batch_sizes)
        ));
        s.push_str(&format!(
            "    \"worker_busy_us\": {}\n",
            hist_json(&self.pool.worker_busy_us)
        ));
        s.push_str("  },\n");
        s.push_str(&format!(
            "  \"executor\": {{\"spatial\": {}, \"inverted\": {}}},\n",
            self.executor.spatial, self.executor.inverted
        ));
        s.push_str("  \"estimators\": [\n");
        for (i, e) in self.estimators.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"kind\": \"{}\", \"role\": \"{}\", \"memory_bytes\": {}, \
                 \"latency_us\": {}}}{}\n",
                e.kind.name(),
                e.role.name(),
                e.memory_bytes,
                hist_json(&e.latency_us),
                if i + 1 < self.estimators.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"events\": {\n");
        s.push_str(&format!("    \"dropped\": {},\n", self.events_dropped));
        s.push_str("    \"recent\": [\n");
        for (i, ev) in self.events.iter().enumerate() {
            s.push_str(&format!(
                "      {}{}\n",
                ev.to_json(),
                if i + 1 < self.events.len() { "," } else { "" }
            ));
        }
        s.push_str("    ]\n");
        s.push_str("  }\n");
        s.push_str("}\n");
        s
    }

    /// The `PhaseEntered` events, in recorded order.
    pub fn phase_events(&self) -> Vec<PhaseTag> {
        self.events
            .iter()
            .filter_map(|e| match e {
                LifecycleEvent::PhaseEntered { phase, .. } => Some(*phase),
                _ => None,
            })
            .collect()
    }

    /// The `EstimatorSwitched` events, in recorded order.
    pub fn switch_events(&self) -> Vec<&LifecycleEvent> {
        self.events
            .iter()
            .filter(|e| matches!(e, LifecycleEvent::EstimatorSwitched { .. }))
            .collect()
    }

    /// Merges two snapshots into the run-wide view a sharded engine
    /// reports ([`ShardedLatest::metrics_snapshot`]). The algebra, per
    /// cell class:
    ///
    /// * **counters** (queries, ingest/eviction flows, cache traffic,
    ///   adaptor decisions, pool work, path mix) sum;
    /// * **histograms** add bucket-wise ([`HistogramSnapshot::merge`]);
    /// * **gauges**: occupancy and memory footprints sum (they partition
    ///   disjoint state), the monitor average becomes the
    ///   observation-count-weighted mean, and `queries_since_switch`
    ///   takes the max (the least-recently-switched shard bounds the
    ///   whole engine's stability claim);
    /// * **phase** is the *least* advanced shard's — the engine is only
    ///   as far along as its slowest shard;
    /// * **estimator roles** keep the most engaged role across shards
    ///   (active > prefilling > pool > shadow > idle);
    /// * **events** concatenate (self's first) and drop counts sum.
    ///
    /// The operation is associative and commutative on every numeric
    /// field, so folding any number of shards in any order yields the
    /// same totals.
    ///
    /// [`ShardedLatest::metrics_snapshot`]: crate::ShardedLatest::metrics_snapshot
    pub fn merge(&self, other: &MetricsSnapshot) -> MetricsSnapshot {
        let phase = if phase_index(other.phase) < phase_index(self.phase) {
            other.phase
        } else {
            self.phase
        };
        let monitor_average = match (
            (self.adaptor.monitor_average, self.adaptor.monitor_len),
            (other.adaptor.monitor_average, other.adaptor.monitor_len),
        ) {
            ((Some(a), la), (Some(b), lb)) if la + lb > 0 => {
                Some((a * la as f64 + b * lb as f64) / (la + lb) as f64)
            }
            ((Some(a), _), _) => Some(a),
            (_, (Some(b), _)) => Some(b),
            _ => None,
        };
        let mut estimators: Vec<EstimatorMetrics> = self.estimators.clone();
        for theirs in &other.estimators {
            match estimators.iter_mut().find(|e| e.kind == theirs.kind) {
                Some(ours) => {
                    if role_rank(theirs.role) < role_rank(ours.role) {
                        ours.role = theirs.role;
                    }
                    ours.memory_bytes += theirs.memory_bytes;
                    ours.latency_us = ours.latency_us.merge(&theirs.latency_us);
                }
                None => estimators.push(theirs.clone()),
            }
        }
        let mut events = self.events.clone();
        events.extend(other.events.iter().cloned());
        MetricsSnapshot {
            phase,
            queries_total: self.queries_total + other.queries_total,
            queries_by_phase: std::array::from_fn(|i| {
                self.queries_by_phase[i] + other.queries_by_phase[i]
            }),
            query_stream_gap_ms: self.query_stream_gap_ms.merge(&other.query_stream_gap_ms),
            cache_hits: self.cache_hits + other.cache_hits,
            cache_misses: self.cache_misses + other.cache_misses,
            query_batch_sizes: self.query_batch_sizes.merge(&other.query_batch_sizes),
            window: WindowMetrics {
                occupancy: self.window.occupancy + other.window.occupancy,
                ingested: self.window.ingested + other.window.ingested,
                evicted: self.window.evicted + other.window.evicted,
                ingest_batches: self.window.ingest_batches + other.window.ingest_batches,
                eviction_batch_sizes: self
                    .window
                    .eviction_batch_sizes
                    .merge(&other.window.eviction_batch_sizes),
            },
            adaptor: AdaptorMetrics {
                switches: self.adaptor.switches + other.adaptor.switches,
                prefill_starts: self.adaptor.prefill_starts + other.adaptor.prefill_starts,
                prefill_discards: self.adaptor.prefill_discards + other.adaptor.prefill_discards,
                tree_retrainings: self.adaptor.tree_retrainings + other.adaptor.tree_retrainings,
                monitor_len: self.adaptor.monitor_len + other.adaptor.monitor_len,
                monitor_average,
                queries_since_switch: self
                    .adaptor
                    .queries_since_switch
                    .max(other.adaptor.queries_since_switch),
            },
            pool: PoolMetrics {
                rounds: self.pool.rounds + other.pool.rounds,
                busy_us: self.pool.busy_us + other.pool.busy_us,
                batch_sizes: self.pool.batch_sizes.merge(&other.pool.batch_sizes),
                worker_busy_us: self.pool.worker_busy_us.merge(&other.pool.worker_busy_us),
            },
            executor: ExecutorMetrics {
                spatial: self.executor.spatial + other.executor.spatial,
                inverted: self.executor.inverted + other.executor.inverted,
            },
            estimators,
            events,
            events_dropped: self.events_dropped + other.events_dropped,
        }
    }
}

/// Engagement order of estimator roles for snapshot merging: lower rank =
/// more engaged, and the merged view keeps the most engaged role any
/// shard reports for a kind.
fn role_rank(role: EstimatorRole) -> u8 {
    match role {
        EstimatorRole::Active => 0,
        EstimatorRole::Prefilling => 1,
        EstimatorRole::Pool => 2,
        EstimatorRole::Shadow => 3,
        EstimatorRole::Idle => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_stream_is_bounded_and_counts_drops() {
        let stream = EventStream::with_capacity(3);
        for seq in 0..5 {
            stream.record(LifecycleEvent::PrefillStarted {
                seq,
                kind: EstimatorKind::Rsh,
            });
        }
        assert_eq!(stream.len(), 3);
        assert_eq!(stream.dropped(), 2);
        let events = stream.snapshot();
        // Oldest first, and the two oldest fell off the ring.
        assert!(
            matches!(events[0], LifecycleEvent::PrefillStarted { seq: 2, .. }),
            "unexpected head: {:?}",
            events[0]
        );
    }

    #[test]
    fn registry_cells_start_zeroed() {
        let m = MetricsRegistry::new();
        assert_eq!(m.queries_total.get(), 0);
        assert!(m.events.is_empty());
        assert!(m.estimate_latency_us.iter().all(|h| h.is_empty()));
        m.record_estimate_latency(EstimatorKind::Spn, 12);
        assert_eq!(
            m.estimate_latency_us[EstimatorKind::Spn.index() as usize].count(),
            1
        );
    }

    #[test]
    fn wall_timer_measures_something_nonnegative() {
        let h = Histogram::new(&WALL_LATENCY_US_BOUNDS);
        let t = WallTimer::start();
        std::hint::black_box((0..100).sum::<u64>());
        t.observe(&h);
        assert_eq!(h.count(), 1);
        assert!(t.elapsed_ms() >= 0.0);
    }

    #[test]
    fn event_json_fragments_are_well_formed() {
        let events = [
            LifecycleEvent::PhaseEntered {
                phase: PhaseTag::WarmUp,
                at: Timestamp(0),
            },
            LifecycleEvent::EstimatorSwitched {
                seq: 7,
                at: Timestamp(123),
                from: EstimatorKind::H4096,
                to: EstimatorKind::Rsh,
                trigger_average: 0.61,
            },
            LifecycleEvent::TreeRetrained {
                seq: 9,
                cause: RetrainCause::Drift,
            },
            LifecycleEvent::WindowEvicted {
                n: 256,
                at: Timestamp(4),
            },
            LifecycleEvent::AuditFailed {
                structure: "SampleStore".into(),
                invariant: "dead-counter".into(),
            },
        ];
        for ev in &events {
            let json = ev.to_json();
            assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
            assert!(json.contains(ev.name()), "{json}");
            assert_eq!(
                json.matches('{').count(),
                json.matches('}').count(),
                "{json}"
            );
        }
    }

    #[test]
    fn phase_indices_cover_all_phases() {
        assert_eq!(phase_index(PhaseTag::WarmUp), 0);
        assert_eq!(phase_index(PhaseTag::PreTraining), 1);
        assert_eq!(phase_index(PhaseTag::Incremental), 2);
    }

    /// A hand-built snapshot for merge tests, parameterized enough to make
    /// the per-field algebra distinguishable.
    fn snap(phase: PhaseTag, queries: u64, avg: Option<f64>, len: u64) -> MetricsSnapshot {
        let hist = |values: &[u64]| {
            let h = Histogram::new(&BATCH_SIZE_BOUNDS);
            for &v in values {
                h.record(v);
            }
            h.snapshot()
        };
        MetricsSnapshot {
            phase,
            queries_total: queries,
            queries_by_phase: [1, 2, queries.saturating_sub(3)],
            query_stream_gap_ms: hist(&[queries]),
            cache_hits: 2 * queries,
            cache_misses: queries,
            query_batch_sizes: hist(&[3, 300]),
            window: WindowMetrics {
                occupancy: 10 * queries,
                ingested: 12 * queries,
                evicted: 2 * queries,
                ingest_batches: queries,
                eviction_batch_sizes: hist(&[5]),
            },
            adaptor: AdaptorMetrics {
                switches: 1,
                prefill_starts: 2,
                prefill_discards: 1,
                tree_retrainings: 1,
                monitor_len: len,
                monitor_average: avg,
                queries_since_switch: queries,
            },
            pool: PoolMetrics {
                rounds: queries,
                busy_us: 100 * queries,
                batch_sizes: hist(&[17]),
                worker_busy_us: hist(&[40]),
            },
            executor: ExecutorMetrics {
                spatial: queries,
                inverted: 2 * queries,
            },
            estimators: vec![
                EstimatorMetrics {
                    kind: EstimatorKind::Rsh,
                    role: if phase == PhaseTag::Incremental {
                        EstimatorRole::Active
                    } else {
                        EstimatorRole::Pool
                    },
                    memory_bytes: 1_000,
                    latency_us: hist(&[7]),
                },
                EstimatorMetrics {
                    kind: EstimatorKind::Spn,
                    role: EstimatorRole::Idle,
                    memory_bytes: 0,
                    latency_us: hist(&[]),
                },
            ],
            events: vec![LifecycleEvent::PhaseEntered {
                phase,
                at: Timestamp(queries),
            }],
            events_dropped: queries,
        }
    }

    #[test]
    fn merge_sums_counters_and_adds_histograms_bucket_wise() {
        let a = snap(PhaseTag::Incremental, 10, Some(0.9), 8);
        let b = snap(PhaseTag::Incremental, 4, Some(0.6), 2);
        let m = a.merge(&b);
        assert_eq!(m.queries_total, 14);
        assert_eq!(m.queries_by_phase, [2, 4, 8]);
        assert_eq!(m.cache_hits, 28);
        assert_eq!(m.cache_misses, 14);
        assert_eq!(m.window.occupancy, 140);
        assert_eq!(m.window.ingested, 168);
        assert_eq!(m.window.evicted, 28);
        assert_eq!(m.executor.spatial, 14);
        assert_eq!(m.executor.inverted, 28);
        assert_eq!(m.pool.busy_us, 1_400);
        assert_eq!(m.events_dropped, 14);
        // Histograms: counts add bucket-for-bucket, totals add.
        assert_eq!(m.query_batch_sizes.count, 4);
        assert_eq!(m.query_batch_sizes.sum, 606);
        assert_eq!(
            m.query_batch_sizes.counts.iter().sum::<u64>(),
            a.query_batch_sizes.counts.iter().sum::<u64>()
                + b.query_batch_sizes.counts.iter().sum::<u64>()
        );
        // Events concatenate, self first.
        assert_eq!(m.events.len(), 2);
    }

    #[test]
    fn merge_phase_is_least_advanced_and_average_is_weighted() {
        let a = snap(PhaseTag::Incremental, 10, Some(0.9), 8);
        let b = snap(PhaseTag::WarmUp, 4, Some(0.6), 2);
        let m = a.merge(&b);
        assert_eq!(m.phase, PhaseTag::WarmUp);
        // Weighted mean: (0.9·8 + 0.6·2) / 10 = 0.84.
        let avg = m.adaptor.monitor_average.expect("both sides observed");
        assert!((avg - 0.84).abs() < 1e-12, "avg = {avg}");
        assert_eq!(m.adaptor.monitor_len, 10);
        // queries_since_switch: max, not sum.
        assert_eq!(m.adaptor.queries_since_switch, 10);
    }

    #[test]
    fn merge_handles_one_sided_and_absent_monitors() {
        let some = snap(PhaseTag::Incremental, 5, Some(0.7), 4);
        let none = snap(PhaseTag::Incremental, 5, None, 0);
        assert_eq!(
            some.merge(&none).adaptor.monitor_average,
            Some(0.7),
            "one-sided merge keeps the observed average"
        );
        assert_eq!(none.merge(&some).adaptor.monitor_average, Some(0.7));
        assert_eq!(none.merge(&none).adaptor.monitor_average, None);
    }

    #[test]
    fn merge_keeps_most_engaged_estimator_role_and_sums_memory() {
        let active = snap(PhaseTag::Incremental, 5, None, 0); // Rsh active
        let pooled = snap(PhaseTag::WarmUp, 5, None, 0); // Rsh pooled
        for m in [active.merge(&pooled), pooled.merge(&active)] {
            let rsh = m
                .estimators
                .iter()
                .find(|e| e.kind == EstimatorKind::Rsh)
                .expect("rsh entry survives the merge");
            assert_eq!(rsh.role, EstimatorRole::Active);
            assert_eq!(rsh.memory_bytes, 2_000);
            assert_eq!(rsh.latency_us.count, 2);
        }
    }

    #[test]
    fn merge_is_commutative_on_totals_and_associative() {
        let a = snap(PhaseTag::Incremental, 3, Some(0.5), 2);
        let b = snap(PhaseTag::PreTraining, 7, Some(0.9), 6);
        let c = snap(PhaseTag::WarmUp, 1, None, 0);
        let ab_c = a.merge(&b).merge(&c);
        let a_bc = a.merge(&b.merge(&c));
        assert_eq!(ab_c.queries_total, a_bc.queries_total);
        assert_eq!(ab_c.window.occupancy, a_bc.window.occupancy);
        assert_eq!(ab_c.phase, a_bc.phase);
        assert_eq!(ab_c.adaptor.monitor_len, a_bc.adaptor.monitor_len);
        let (x, y) = (
            ab_c.adaptor.monitor_average.expect("observed"),
            a_bc.adaptor.monitor_average.expect("observed"),
        );
        assert!((x - y).abs() < 1e-12);
        let ba = b.merge(&a);
        let ab = a.merge(&b);
        assert_eq!(ab.queries_total, ba.queries_total);
        assert_eq!(ab.phase, ba.phase);
        assert_eq!(ab.query_batch_sizes, ba.query_batch_sizes);
    }

    #[test]
    fn merged_snapshot_still_renders_valid_json_shape() {
        let a = snap(PhaseTag::Incremental, 10, Some(0.9), 8);
        let b = snap(PhaseTag::WarmUp, 4, None, 0);
        let json = a.merge(&b).to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"phase\": \"warm-up\""));
    }
}
