//! The estimator pool: parallel maintenance of every live estimator.
//!
//! LATEST's protocol keeps several estimators consistent with the sliding
//! window at once — all six during pre-training (§V-C) and shadow-metrics
//! runs, the active one plus a pre-filling replacement during adaptation
//! (§V-D). The seed updated them one at a time inside the ingest path, so
//! maintenance cost scaled linearly with pool size. [`EstimatorPool`]
//! instead owns the maintained estimators and fans `insert`/`remove`
//! batches and `estimate`/`observe_query` rounds across them on scoped
//! worker threads.
//!
//! Parallelism is *across estimators, never within one*: each estimator is
//! only ever touched by one worker per round, in the same per-estimator
//! call order as the serial path, so every estimator (including the
//! RNG-driven reservoirs) reaches a state identical to serial maintenance.
//! With `workers <= 1` the pool degrades to the serial loop — no threads
//! are spawned at all. The configured worker count is additionally clamped
//! to the parallelism the host actually exposes: spawning more CPU-bound
//! workers than cores buys nothing and costs spawn overhead, so on a
//! single-core machine a `workers = 4` pool runs the serial loop.
//!
//! Fan-out rounds accept an optional *sideline* closure that runs on the
//! calling thread while the workers are busy ([`EstimatorPool::apply_batch_with`]).
//! The ingest path uses it to overlap the exact executor's index upkeep —
//! serial work that is independent of every estimator — with the pool
//! round, taking it off the critical path entirely on multi-core hosts.

use crate::estimation_accuracy;
use crate::log::ShadowSample;
use crate::obsv::{MetricsRegistry, WallTimer};
use estimators::{build_estimator, BoxedEstimator, EstimatorConfig, EstimatorKind};
use geostream::{GeoTextObject, RcDvq};
use std::sync::Arc;

/// A pool of maintained estimators with a scoped worker fan-out.
pub struct EstimatorPool {
    estimators: Vec<BoxedEstimator>,
    /// Worker-thread cap for fan-out rounds; `0` and `1` both mean serial.
    workers: usize,
    /// Hardware cap on spawned workers (`available_parallelism` at
    /// construction); fan-outs never exceed it.
    spawn_cap: usize,
    /// Observability registry fed by fan-out rounds (round counts, batch
    /// sizes, per-worker busy time, per-kind estimate latency). `None`
    /// leaves the pool uninstrumented.
    metrics: Option<Arc<MetricsRegistry>>,
}

impl EstimatorPool {
    /// Wraps an existing set of estimators.
    pub fn new(estimators: Vec<BoxedEstimator>, workers: usize) -> Self {
        let spawn_cap = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        EstimatorPool {
            estimators,
            workers,
            spawn_cap,
            metrics: None,
        }
    }

    /// Connects the pool to a metrics registry; subsequent fan-out rounds
    /// feed it. The registry survives pool rebuilds at phase transitions —
    /// callers re-attach the same `Arc` to the successor pool.
    pub fn set_metrics(&mut self, metrics: Arc<MetricsRegistry>) {
        self.metrics = Some(metrics);
    }

    /// The attached metrics registry, if any (for re-attaching across
    /// pool rebuilds).
    pub fn metrics(&self) -> Option<Arc<MetricsRegistry>> {
        self.metrics.clone()
    }

    /// Builds the full six-estimator pool of the pre-training phase, in
    /// [`EstimatorKind::ALL`] order.
    pub fn full(config: &EstimatorConfig, workers: usize) -> Self {
        let estimators = EstimatorKind::ALL
            .iter()
            .map(|&k| build_estimator(k, config))
            .collect();
        EstimatorPool::new(estimators, workers)
    }

    /// An estimator-less pool (placeholder during phase transitions).
    pub fn empty() -> Self {
        EstimatorPool::new(Vec::new(), 1)
    }

    /// Number of estimators maintained.
    pub fn len(&self) -> usize {
        self.estimators.len()
    }

    /// Whether the pool maintains no estimators.
    pub fn is_empty(&self) -> bool {
        self.estimators.is_empty()
    }

    /// The configured worker cap (`<= 1` means serial).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Overrides the hardware spawn cap. Test hook: lets single-core CI
    /// hosts exercise the real threaded fan-out.
    #[doc(hidden)]
    pub fn set_spawn_cap(&mut self, cap: usize) {
        self.spawn_cap = cap.max(1);
    }

    /// Workers a fan-out round will actually use: the configured cap,
    /// bounded by the pool size and the host's parallelism.
    fn effective_workers(&self) -> usize {
        self.workers
            .clamp(1, self.estimators.len().max(1))
            .min(self.spawn_cap)
    }

    /// Splits `ests` into at most `workers` contiguous chunks whose sizes
    /// differ by at most one (pool order preserved), so no worker inherits
    /// two extra estimators while another sits idle.
    fn balanced_chunks(ests: &mut [BoxedEstimator], workers: usize) -> Vec<&mut [BoxedEstimator]> {
        let (base, rem) = (ests.len() / workers, ests.len() % workers);
        let mut chunks = Vec::with_capacity(workers);
        let mut rest = ests;
        for i in 0..workers {
            let take = base + usize::from(i < rem);
            if take == 0 {
                break;
            }
            let (head, tail) = rest.split_at_mut(take);
            chunks.push(head);
            rest = tail;
        }
        chunks
    }

    /// The kinds currently maintained, in pool order.
    pub fn kinds(&self) -> Vec<EstimatorKind> {
        self.estimators.iter().map(|e| e.kind()).collect()
    }

    /// Adds an estimator to the pool.
    pub fn push(&mut self, est: BoxedEstimator) {
        self.estimators.push(est);
    }

    /// Keeps only the estimators satisfying `keep`.
    pub fn retain(&mut self, keep: impl FnMut(&BoxedEstimator) -> bool) {
        self.estimators.retain(keep);
    }

    /// Dissolves the pool into its estimators (pool order preserved).
    pub fn into_inner(self) -> Vec<BoxedEstimator> {
        self.estimators
    }

    /// Records one worker's busy interval into the registry.
    fn record_busy(metrics: Option<&MetricsRegistry>, timer: WallTimer) {
        if let Some(m) = metrics {
            let us = timer.elapsed_us();
            m.pool_worker_busy_us.record(us);
            m.pool_busy_us.add(us);
        }
    }

    /// Fans a closure across every estimator, running `sideline` on the
    /// calling thread while the workers are busy. Each estimator is
    /// visited exactly once, by exactly one thread; the sideline always
    /// runs, even on an empty pool.
    fn fan_out<F>(&mut self, f: F, sideline: impl FnOnce())
    where
        F: Fn(&mut BoxedEstimator) + Sync,
    {
        let workers = self.effective_workers();
        let metrics = self.metrics.as_deref();
        if workers <= 1 {
            sideline();
            let timer = WallTimer::start();
            for est in &mut self.estimators {
                f(est);
            }
            Self::record_busy(metrics, timer);
            return;
        }
        let f = &f;
        std::thread::scope(|s| {
            for slice in Self::balanced_chunks(&mut self.estimators, workers) {
                s.spawn(move || {
                    let timer = WallTimer::start();
                    for est in slice {
                        f(est);
                    }
                    Self::record_busy(metrics, timer);
                });
            }
            // Overlaps with the workers; the scope joins them afterwards.
            sideline();
        });
    }

    /// [`Self::fan_out`] without a sideline.
    fn par_for_each<F>(&mut self, f: F)
    where
        F: Fn(&mut BoxedEstimator) + Sync,
    {
        self.fan_out(f, || {});
    }

    /// Fans a closure across every estimator and collects the results in
    /// pool order.
    fn par_map<R, F>(&mut self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut BoxedEstimator) -> R + Sync,
    {
        let workers = self.effective_workers();
        let metrics = self.metrics.as_deref();
        if workers <= 1 {
            let timer = WallTimer::start();
            let out = self.estimators.iter_mut().map(f).collect();
            Self::record_busy(metrics, timer);
            return out;
        }
        let f = &f;
        std::thread::scope(|s| {
            let handles: Vec<_> = Self::balanced_chunks(&mut self.estimators, workers)
                .into_iter()
                .map(|slice| {
                    s.spawn(move || {
                        let timer = WallTimer::start();
                        let out = slice.iter_mut().map(f).collect::<Vec<R>>();
                        Self::record_busy(metrics, timer);
                        out
                    })
                })
                .collect();
            // Chunks are contiguous, so joining in spawn order preserves
            // pool order.
            handles
                .into_iter()
                // LINT-ALLOW(no-panic): join re-raises a worker panic on the caller thread; workers panic only on bugs
                .flat_map(|h| h.join().expect("pool worker panicked"))
                .collect()
        })
    }

    /// Ingests a batch of arrivals into every estimator.
    pub fn insert_batch(&mut self, objs: &[GeoTextObject]) {
        if objs.is_empty() {
            return;
        }
        self.par_for_each(|est| est.insert_batch(objs));
    }

    /// Retracts a batch of evictions from every estimator.
    pub fn remove_batch(&mut self, objs: &[GeoTextObject]) {
        if objs.is_empty() {
            return;
        }
        self.par_for_each(|est| est.remove_batch(objs));
    }

    /// One maintenance round: every estimator ingests `arrived` and then
    /// retracts `evicted`, in a single fan-out.
    pub fn apply_batch(&mut self, arrived: &[GeoTextObject], evicted: &[GeoTextObject]) {
        if arrived.is_empty() && evicted.is_empty() {
            return;
        }
        self.apply_batch_with(arrived, evicted, || {});
    }

    /// [`Self::apply_batch`], with independent caller work overlapped on
    /// the calling thread while the pool's workers run. The ingest path
    /// passes the exact executor's index upkeep here, taking that serial
    /// cost off the critical path. `sideline` runs exactly once, even when
    /// both batches are empty or the pool maintains no estimators.
    pub fn apply_batch_with(
        &mut self,
        arrived: &[GeoTextObject],
        evicted: &[GeoTextObject],
        sideline: impl FnOnce(),
    ) {
        if let Some(m) = &self.metrics {
            m.pool_rounds.inc();
            m.pool_batch_sizes
                .record((arrived.len() + evicted.len()) as u64);
        }
        self.fan_out(
            |est| {
                est.insert_batch(arrived);
                est.remove_batch(evicted);
            },
            sideline,
        );
    }

    /// Deep invariant walk over the pool (the `debug-invariants`
    /// auditor): each estimator's own `audit`, plus
    ///
    /// * **population-agreement** — every maintained estimator has been
    ///   fed the same insert/remove stream, so all populations match;
    /// * **chunk-coverage** — [`Self::balanced_chunks`] partitions the
    ///   pool at every worker count: chunk sizes sum to the pool length
    ///   and differ by at most one, so a fan-out round visits every
    ///   estimator exactly once with no worker inheriting two extras.
    ///
    /// Takes `&mut self` only because the chunk check exercises the real
    /// `&mut`-splitting fan-out path; no estimator state changes.
    #[cfg(feature = "debug-invariants")]
    pub fn audit(&mut self) -> Result<(), geostream::AuditError> {
        use geostream::audit::ensure;
        const S: &str = "EstimatorPool";
        let mut first: Option<(EstimatorKind, u64)> = None;
        for est in &self.estimators {
            est.audit()?;
            let pop = est.population();
            match first {
                None => first = Some((est.kind(), pop)),
                Some((kind0, pop0)) => {
                    ensure(pop == pop0, S, "population-agreement", || {
                        format!(
                            "{kind0} tracks {pop0} objects but {} tracks {pop}",
                            est.kind()
                        )
                    })?;
                }
            }
        }
        let n = self.estimators.len();
        for workers in 1..=n.max(1) {
            let sizes: Vec<usize> = Self::balanced_chunks(&mut self.estimators, workers)
                .iter()
                .map(|c| c.len())
                .collect();
            ensure(
                sizes.iter().sum::<usize>() == n,
                S,
                "chunk-coverage",
                || format!("{workers} workers: chunks {sizes:?} do not cover {n} estimators"),
            )?;
            let min = sizes.iter().min().copied().unwrap_or(0);
            let max = sizes.iter().max().copied().unwrap_or(0);
            ensure(max - min <= 1, S, "chunk-coverage", || {
                format!("{workers} workers: chunk sizes {sizes:?} differ by more than one")
            })?;
        }
        Ok(())
    }

    /// One measurement round: every estimator answers `query` (timed) and
    /// receives the `observe_query` feedback, in a single fan-out. Samples
    /// come back in pool order. Estimate latencies also feed the per-kind
    /// histograms and memory gauges of an attached registry.
    pub fn measure(&mut self, query: &RcDvq, actual: u64) -> Vec<ShadowSample> {
        if let Some(m) = &self.metrics {
            m.pool_rounds.inc();
        }
        let metrics = self.metrics.clone();
        self.par_map(move |est| {
            let timer = WallTimer::start();
            let estimate = est.estimate(query);
            let latency_us = timer.elapsed_us();
            est.observe_query(query, actual);
            if let Some(m) = &metrics {
                m.record_estimate_latency(est.kind(), latency_us);
                m.estimator_memory_bytes[est.kind().index() as usize]
                    .set(est.memory_bytes() as u64);
            }
            ShadowSample {
                estimator: est.kind(),
                estimate,
                latency_ms: latency_us as f64 / 1_000.0,
                accuracy: estimation_accuracy(estimate, actual),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geostream::{KeywordId, ObjectId, Point, Rect, Timestamp};

    fn config() -> EstimatorConfig {
        EstimatorConfig {
            domain: Rect::new(0.0, 0.0, 64.0, 64.0),
            reservoir_capacity: 500,
            ..EstimatorConfig::default()
        }
    }

    fn objects(n: u64) -> Vec<GeoTextObject> {
        (0..n)
            .map(|i| {
                GeoTextObject::new(
                    ObjectId(i),
                    Point::new((i % 64) as f64, ((i / 64) % 64) as f64),
                    vec![KeywordId(i as u32 % 20)],
                    Timestamp(i),
                )
            })
            .collect()
    }

    fn probe() -> RcDvq {
        RcDvq::hybrid(Rect::new(0.0, 0.0, 32.0, 32.0), vec![KeywordId(3)])
    }

    #[test]
    fn full_pool_maintains_all_six() {
        let mut pool = EstimatorPool::full(&config(), 1);
        assert_eq!(pool.len(), 6);
        assert_eq!(pool.kinds(), EstimatorKind::ALL.to_vec());
        let objs = objects(200);
        pool.insert_batch(&objs);
        let samples = pool.measure(&probe(), 50);
        assert_eq!(samples.len(), 6);
        for (s, k) in samples.iter().zip(EstimatorKind::ALL) {
            assert_eq!(s.estimator, k);
            assert!(s.estimate >= 0.0);
        }
    }

    #[test]
    fn parallel_fanout_matches_serial_state() {
        let mut serial = EstimatorPool::full(&config(), 1);
        let mut pooled = EstimatorPool::full(&config(), 4);
        // Exercise the real threaded fan-out even on single-core hosts,
        // where the hardware clamp would otherwise degrade it to serial.
        pooled.set_spawn_cap(4);
        let objs = objects(600);
        let (head, tail) = objs.split_at(400);
        serial.insert_batch(head);
        pooled.insert_batch(head);
        serial.apply_batch(tail, &head[..100]);
        pooled.apply_batch(tail, &head[..100]);
        let q = probe();
        let a = serial.measure(&q, 80);
        let b = pooled.measure(&q, 80);
        for (sa, sb) in a.iter().zip(&b) {
            assert_eq!(sa.estimator, sb.estimator);
            assert!(
                (sa.estimate - sb.estimate).abs() < 1e-9,
                "{}: serial {} vs pooled {}",
                sa.estimator,
                sa.estimate,
                sb.estimate
            );
        }
    }

    #[test]
    fn empty_batches_are_no_ops() {
        let mut pool = EstimatorPool::full(&config(), 4);
        pool.insert_batch(&[]);
        pool.remove_batch(&[]);
        pool.apply_batch(&[], &[]);
        assert!(pool.measure(&probe(), 0).iter().all(|s| s.estimate == 0.0));
    }

    #[test]
    fn sideline_runs_exactly_once_in_every_configuration() {
        let objs = objects(50);
        for (pool_size, workers) in [(0, 1), (6, 1), (6, 4)] {
            let mut pool = if pool_size == 0 {
                EstimatorPool::empty()
            } else {
                EstimatorPool::full(&config(), workers)
            };
            pool.set_spawn_cap(workers);
            let mut ran = 0;
            pool.apply_batch_with(&objs, &[], || ran += 1);
            assert_eq!(ran, 1, "pool_size={pool_size} workers={workers}");
            // Empty batches must not skip the sideline either.
            let mut ran = 0;
            pool.apply_batch_with(&[], &[], || ran += 1);
            assert_eq!(ran, 1);
        }
    }

    #[test]
    fn balanced_chunks_cover_the_pool_without_overlap() {
        let mut pool = EstimatorPool::full(&config(), 4);
        let sizes: Vec<usize> = EstimatorPool::balanced_chunks(&mut pool.estimators, 4)
            .iter()
            .map(|c| c.len())
            .collect();
        assert_eq!(sizes, vec![2, 2, 1, 1]);
        let sizes: Vec<usize> = EstimatorPool::balanced_chunks(&mut pool.estimators, 8)
            .iter()
            .map(|c| c.len())
            .collect();
        assert_eq!(sizes, vec![1; 6]);
    }

    /// The pool auditor passes on a consistently maintained pool and
    /// flags an estimator that missed part of the maintenance stream.
    #[cfg(feature = "debug-invariants")]
    #[test]
    fn audit_checks_every_estimator_and_population_agreement() {
        let mut pool = EstimatorPool::full(&config(), 2);
        let objs = objects(300);
        pool.insert_batch(&objs);
        pool.remove_batch(&objs[..100]);
        pool.audit().expect("consistently maintained pool");
        // A freshly built estimator never saw the stream: its population
        // disagrees with the rest of the pool.
        pool.push(build_estimator(EstimatorKind::Ffn, &config()));
        let err = pool.audit().expect_err("stale estimator must be caught");
        assert_eq!(err.structure, "EstimatorPool");
        assert_eq!(err.invariant, "population-agreement");
    }

    #[test]
    fn attached_registry_sees_rounds_and_latencies() {
        let mut pool = EstimatorPool::full(&config(), 2);
        let m = Arc::new(MetricsRegistry::new());
        pool.set_metrics(Arc::clone(&m));
        pool.apply_batch(&objects(100), &[]);
        pool.measure(&probe(), 10);
        assert_eq!(m.pool_rounds.get(), 2);
        assert_eq!(m.pool_batch_sizes.count(), 1);
        assert!(m.pool_busy_us.get() > 0 || m.pool_worker_busy_us.count() > 0);
        for k in EstimatorKind::ALL {
            assert_eq!(
                m.estimate_latency_us[k.index() as usize].count(),
                1,
                "{k} latency histogram missed the measure round"
            );
        }
        assert!(
            m.estimator_memory_bytes.iter().any(|g| g.get() > 0),
            "memory gauges never updated"
        );
    }

    #[test]
    fn retain_and_push_reshape_the_pool() {
        let mut pool = EstimatorPool::full(&config(), 2);
        pool.retain(|e| e.kind() != EstimatorKind::Ffn);
        assert_eq!(pool.len(), 5);
        pool.push(build_estimator(EstimatorKind::Ffn, &config()));
        assert_eq!(pool.len(), 6);
        let inner = pool.into_inner();
        assert_eq!(inner.last().unwrap().kind(), EstimatorKind::Ffn);
    }
}
