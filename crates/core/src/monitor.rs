//! Moving-average estimation-accuracy monitor (§V-D).
//!
//! After every answered query, LATEST scores the active estimator against
//! the system-log selectivity and pushes the accuracy here. The monitor
//! keeps the accuracies of the most recent `W` queries; its average is the
//! signal the estimator adaptor compares against the pre-filling threshold
//! `β·τ` and the switch threshold `τ`.
//!
//! The running sum uses Kahan compensated summation and is re-derived from
//! the windowed values on a fixed cadence, so the average tracks the true
//! window mean to within an ulp even over unbounded streams. The naive
//! add/subtract running sum drifts: each push does one subtraction and one
//! addition in `f64`, and the rounding residue compounds forever because the
//! sum is never rebuilt from its constituents.

use std::collections::VecDeque;

/// Rebuild the compensated sum from scratch every this many pushes.
/// Kahan summation already bounds the error independently of stream
/// length; the periodic recompute additionally pins the sum to the exact
/// fold of the current window, making drift impossible by construction.
const RECOMPUTE_EVERY: u64 = 1 << 16;

/// Sliding average over the accuracies of the last `capacity` queries.
#[derive(Debug, Clone)]
pub struct AccuracyMonitor {
    window: VecDeque<f64>,
    capacity: usize,
    /// Kahan-compensated running sum of `window`.
    sum: f64,
    /// Kahan compensation term carrying the low-order bits `sum` lost.
    compensation: f64,
    /// Pushes since the last from-scratch recompute of `sum`.
    pushes_since_recompute: u64,
}

impl AccuracyMonitor {
    /// Creates a monitor over the last `capacity` queries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "monitor needs a positive window");
        AccuracyMonitor {
            window: VecDeque::with_capacity(capacity),
            capacity,
            sum: 0.0,
            compensation: 0.0,
            pushes_since_recompute: 0,
        }
    }

    /// Kahan (compensated) add of `value` into the running sum.
    fn kahan_add(&mut self, value: f64) {
        let y = value - self.compensation;
        let t = self.sum + y;
        self.compensation = (t - self.sum) - y;
        self.sum = t;
    }

    /// Re-derives the running sum exactly from the windowed values.
    fn recompute_sum(&mut self) {
        let mut sum = 0.0_f64;
        let mut comp = 0.0_f64;
        for &v in &self.window {
            let y = v - comp;
            let t = sum + y;
            comp = (t - sum) - y;
            sum = t;
        }
        self.sum = sum;
        self.compensation = comp;
        self.pushes_since_recompute = 0;
    }

    /// Pushes one accuracy observation in `[0, 1]`.
    pub fn push(&mut self, accuracy: f64) {
        let accuracy = accuracy.clamp(0.0, 1.0);
        if self.window.len() == self.capacity {
            // LINT-ALLOW(no-panic): this branch runs only when len == capacity, so the deque has a front to pop
            let popped = self.window.pop_front().expect("non-empty at capacity");
            self.kahan_add(-popped);
        }
        self.window.push_back(accuracy);
        self.kahan_add(accuracy);
        self.pushes_since_recompute += 1;
        if self.pushes_since_recompute >= RECOMPUTE_EVERY {
            self.recompute_sum();
        }
    }

    /// Average accuracy over the current window (`None` until at least one
    /// observation arrives). Unclamped: with the compensated sum the value
    /// is the true window mean, and clamping would only paper over a
    /// bookkeeping bug the `debug-invariants` audits should catch instead.
    pub fn average(&self) -> Option<f64> {
        if self.window.is_empty() {
            None
        } else {
            Some(self.sum / self.window.len() as f64)
        }
    }

    /// Number of observations currently windowed.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Whether no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Whether the window has seen enough queries for its average to be
    /// trusted (at least half full).
    pub fn warmed_up(&self) -> bool {
        self.window.len() * 2 >= self.capacity
    }

    /// Forgets all observations (used right after a switch so the new
    /// estimator is judged on its own record).
    pub fn reset(&mut self) {
        self.window.clear();
        self.sum = 0.0;
        self.compensation = 0.0;
        self.pushes_since_recompute = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The window mean computed fresh, with no running-sum shortcuts.
    fn fresh_mean(m: &AccuracyMonitor) -> f64 {
        m.window.iter().sum::<f64>() / m.window.len() as f64
    }

    #[test]
    fn average_over_window() {
        let mut m = AccuracyMonitor::new(4);
        assert_eq!(m.average(), None);
        m.push(1.0);
        m.push(0.5);
        assert!((m.average().unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn old_observations_fall_out() {
        let mut m = AccuracyMonitor::new(2);
        m.push(0.0);
        m.push(0.0);
        m.push(1.0);
        m.push(1.0);
        assert!((m.average().unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn clamps_inputs() {
        let mut m = AccuracyMonitor::new(2);
        m.push(5.0);
        m.push(-3.0);
        assert!((m.average().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn warmed_up_at_half_capacity() {
        let mut m = AccuracyMonitor::new(4);
        m.push(1.0);
        assert!(!m.warmed_up());
        m.push(1.0);
        assert!(m.warmed_up());
    }

    #[test]
    fn reset_clears() {
        let mut m = AccuracyMonitor::new(4);
        m.push(0.9);
        m.reset();
        assert!(m.is_empty());
        assert_eq!(m.average(), None);
        m.push(0.25);
        assert!((m.average().unwrap() - 0.25).abs() < 1e-15);
    }

    #[test]
    fn long_stream_stays_numerically_sane() {
        // Alternating blocks of near-1 and near-0 accuracies force maximal
        // cancellation in the running sum; a naive add/subtract sum drifts
        // to ~5e-13 from the true window mean over these 100k pushes, while
        // the compensated + periodically recomputed sum stays within a few
        // ulps of the freshly computed mean.
        let mut m = AccuracyMonitor::new(8);
        for i in 0..100_000_u64 {
            let v = if (i / 8) % 2 == 0 {
                0.999_999_999
            } else {
                1e-9 + (i as f64 * 1e-13)
            };
            m.push(v);
        }
        let avg = m.average().unwrap();
        assert!((0.0..=1.0).contains(&avg));
        assert!(
            (avg - fresh_mean(&m)).abs() < 1e-14,
            "running average {avg} drifted from fresh mean {}",
            fresh_mean(&m)
        );
    }

    #[test]
    fn recompute_cadence_pins_sum_exactly() {
        // Cross the RECOMPUTE_EVERY boundary and verify the running sum is
        // *exactly* the fresh Kahan fold right after the rebuild.
        let mut m = AccuracyMonitor::new(16);
        for i in 0..(RECOMPUTE_EVERY + 3) {
            m.push(((i % 97) as f64) / 97.0);
        }
        assert!(m.pushes_since_recompute < RECOMPUTE_EVERY);
        assert!((m.average().unwrap() - fresh_mean(&m)).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "positive window")]
    fn rejects_zero_capacity() {
        let _ = AccuracyMonitor::new(0);
    }
}
