//! Moving-average estimation-accuracy monitor (§V-D).
//!
//! After every answered query, LATEST scores the active estimator against
//! the system-log selectivity and pushes the accuracy here. The monitor
//! keeps the accuracies of the most recent `W` queries; its average is the
//! signal the estimator adaptor compares against the pre-filling threshold
//! `β·τ` and the switch threshold `τ`.

use std::collections::VecDeque;

/// Sliding average over the accuracies of the last `capacity` queries.
#[derive(Debug, Clone)]
pub struct AccuracyMonitor {
    window: VecDeque<f64>,
    capacity: usize,
    sum: f64,
}

impl AccuracyMonitor {
    /// Creates a monitor over the last `capacity` queries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "monitor needs a positive window");
        AccuracyMonitor {
            window: VecDeque::with_capacity(capacity),
            capacity,
            sum: 0.0,
        }
    }

    /// Pushes one accuracy observation in `[0, 1]`.
    pub fn push(&mut self, accuracy: f64) {
        let accuracy = accuracy.clamp(0.0, 1.0);
        if self.window.len() == self.capacity {
            // LINT-ALLOW(no-panic): this branch runs only when len == capacity, so the deque has a front to pop
            self.sum -= self.window.pop_front().expect("non-empty at capacity");
        }
        self.window.push_back(accuracy);
        self.sum += accuracy;
    }

    /// Average accuracy over the current window (`None` until at least one
    /// observation arrives).
    pub fn average(&self) -> Option<f64> {
        if self.window.is_empty() {
            None
        } else {
            Some((self.sum / self.window.len() as f64).clamp(0.0, 1.0))
        }
    }

    /// Number of observations currently windowed.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Whether no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Whether the window has seen enough queries for its average to be
    /// trusted (at least half full).
    pub fn warmed_up(&self) -> bool {
        self.window.len() * 2 >= self.capacity
    }

    /// Forgets all observations (used right after a switch so the new
    /// estimator is judged on its own record).
    pub fn reset(&mut self) {
        self.window.clear();
        self.sum = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_over_window() {
        let mut m = AccuracyMonitor::new(4);
        assert_eq!(m.average(), None);
        m.push(1.0);
        m.push(0.5);
        assert!((m.average().unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn old_observations_fall_out() {
        let mut m = AccuracyMonitor::new(2);
        m.push(0.0);
        m.push(0.0);
        m.push(1.0);
        m.push(1.0);
        assert!((m.average().unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn clamps_inputs() {
        let mut m = AccuracyMonitor::new(2);
        m.push(5.0);
        m.push(-3.0);
        assert!((m.average().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn warmed_up_at_half_capacity() {
        let mut m = AccuracyMonitor::new(4);
        m.push(1.0);
        assert!(!m.warmed_up());
        m.push(1.0);
        assert!(m.warmed_up());
    }

    #[test]
    fn reset_clears() {
        let mut m = AccuracyMonitor::new(4);
        m.push(0.9);
        m.reset();
        assert!(m.is_empty());
        assert_eq!(m.average(), None);
    }

    #[test]
    fn long_stream_stays_numerically_sane() {
        let mut m = AccuracyMonitor::new(8);
        for i in 0..100_000 {
            m.push((i % 10) as f64 / 10.0);
        }
        let avg = m.average().unwrap();
        assert!((0.0..=1.0).contains(&avg));
    }

    #[test]
    #[should_panic(expected = "positive window")]
    fn rejects_zero_capacity() {
        let _ = AccuracyMonitor::new(0);
    }
}
