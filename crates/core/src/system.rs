//! The LATEST system module: phase orchestration and the Estimator Adaptor.

use crate::adaptor::Recommender;
use crate::cache::{CachedAnswer, SelectivityCache};
use crate::estimation_accuracy;
use crate::features::{model_schema, QueryProfile, RewardScaler};
use crate::log::{PhaseTag, QueryRecord, ShadowSample, SwitchEvent, SystemLog};
use crate::monitor::AccuracyMonitor;
use crate::obsv::{
    phase_index, AdaptorMetrics, EstimatorMetrics, EstimatorRole, ExecutorMetrics, LifecycleEvent,
    MetricsRegistry, MetricsSnapshot, PoolMetrics, RetrainCause, WallTimer, WindowMetrics,
    EVICTION_EVENT_GRANULARITY,
};
use crate::pool::EstimatorPool;
use crate::shard::ShardConfig;
use estimators::{build_estimator, BoxedEstimator, EstimatorConfig, EstimatorKind};
use exactdb::{ExactExecutor, SpatialIndexKind};
use geostream::QueryType;
use geostream::{Duration, GeoTextObject, QuerySignature, RcDvq, SlidingWindow, Timestamp};
use hoeffding::{DdmDetector, DriftState, HoeffdingTree, HoeffdingTreeConfig, TreeStats};
use std::sync::Arc;

/// Configuration of a LATEST instance. Defaults mirror the paper's §VI-A
/// setup at laptop scale.
#[derive(Debug, Clone)]
pub struct LatestConfig {
    /// The time window `T` queries are answered over.
    pub window_span: Duration,
    /// Length of the warm-up (data only, no queries). The paper defaults
    /// this to `T` so the window is full when queries start.
    pub warmup: Duration,
    /// Number of queries in the pre-training phase.
    pub pretrain_queries: usize,
    /// Accuracy threshold `τ`: switching below it.
    pub tau: f64,
    /// Pre-filling factor `β ∈ (0, 1)`: pre-filling starts below `β·τ`.
    pub beta: f64,
    /// Accuracy/latency trade-off `α ∈ [0, 1]` (0 = accuracy only).
    pub alpha: f64,
    /// Moving-average window (queries) of the accuracy monitor.
    pub accuracy_window: usize,
    /// Minimum incremental queries between consecutive switches
    /// (hysteresis so a single noisy batch cannot thrash).
    pub min_switch_spacing: usize,
    /// A replacement is only pre-filled when its learned reward for the
    /// current query type beats the active estimator's by this margin —
    /// switching between statistically indistinguishable estimators is
    /// churn, not adaptation.
    pub switch_margin: f64,
    /// The default estimator employed when the incremental phase starts.
    pub default_estimator: EstimatorKind,
    /// Sizing of the underlying estimators.
    pub estimator_config: EstimatorConfig,
    /// Hoeffding tree configuration (paper: info gain + majority class).
    pub tree_config: HoeffdingTreeConfig,
    /// Spatial backend of the exact executor.
    pub index_kind: SpatialIndexKind,
    /// Keep *all* estimators maintained and measure each per query (the
    /// paper's figures plot every estimator's latency/accuracy). Costs
    /// memory and time; off by default.
    pub shadow_metrics: bool,
    /// Retrain trigger (§V-D): reset and regrow the tree when the mean
    /// relative error since the last (re)training exceeds this, if set.
    pub retrain_error_threshold: Option<f64>,
    /// DDM-based retraining (§V-D's "overall error rate" trigger): watch
    /// the tree's own prediction errors and reset it on detected drift.
    pub drift_detection: bool,
    /// Worker-thread cap for fanning estimator-pool maintenance and
    /// measurement across threads (`0` and `1` both mean serial). Only the
    /// multi-estimator paths — pre-training and shadow metrics — fan out;
    /// parallelism is across estimators, so results are identical to the
    /// serial path (latency measurements aside).
    pub pool_workers: usize,
    /// Capacity of the selectivity cache: distinct query signatures
    /// memoized per window generation (any window content change clears
    /// the cache wholesale). `0` disables caching entirely.
    pub selectivity_cache_capacity: usize,
    /// Sharded-serving layout ([`ShardedLatest`](crate::ShardedLatest)):
    /// how many shards partition the stream, their ingest-queue capacity,
    /// and the routing policy. A plain [`Latest`] ignores everything but
    /// validation; the default is one shard (unsharded behavior).
    pub shard: ShardConfig,
    /// Ablation knobs for the design-choice experiments. All on for the
    /// full LATEST protocol.
    pub ablation: AblationConfig,
}

/// Switches individual LATEST design choices off for ablation studies
/// (the `experiments ablation` harness target sweeps these).
#[derive(Debug, Clone)]
pub struct AblationConfig {
    /// Pre-fill the replacement below `β·τ` before switching at `τ`
    /// (§V-D). Off: replacements are built cold at switch time, so the new
    /// estimator answers from whatever it can ingest after activation.
    pub prefill: bool,
    /// Consult the Hoeffding tree when recommending (off: EWMA rewards
    /// only — is the learning model actually earning its keep?).
    pub use_tree: bool,
    /// Recommend for the recent workload *mix* (off: the single next
    /// query's profile decides, which thrashes on interleaved workloads).
    pub mix_recommendation: bool,
    /// Allow switching at all (off: the default estimator serves the whole
    /// stream — the static-baseline comparison).
    pub switching: bool,
}

impl Default for AblationConfig {
    fn default() -> Self {
        AblationConfig {
            prefill: true,
            use_tree: true,
            mix_recommendation: true,
            switching: true,
        }
    }
}

impl Default for LatestConfig {
    fn default() -> Self {
        LatestConfig {
            window_span: Duration::from_mins(10),
            warmup: Duration::from_mins(10),
            pretrain_queries: 300,
            tau: 0.75,
            beta: 0.9,
            alpha: 0.5,
            accuracy_window: 48,
            min_switch_spacing: 64,
            switch_margin: 0.03,
            default_estimator: EstimatorKind::Rsh,
            estimator_config: EstimatorConfig::default(),
            tree_config: HoeffdingTreeConfig {
                // Workload records are plentiful and several features often
                // separate the classes equally well (best-vs-second gain
                // gap ≈ 0), so react faster than the generic VFDT default:
                // smaller grace period, looser δ, and a tie threshold wide
                // enough that a clean split does not need tens of
                // thousands of records per leaf (R = log2(6) here).
                grace_period: 50,
                split_confidence: 1e-4,
                tie_threshold: 0.25,
                ..HoeffdingTreeConfig::default()
            },
            index_kind: SpatialIndexKind::Grid,
            shadow_metrics: false,
            retrain_error_threshold: None,
            drift_detection: true,
            pool_workers: 1,
            selectivity_cache_capacity: 4_096,
            shard: ShardConfig::default(),
            ablation: AblationConfig::default(),
        }
    }
}

/// Per-request knobs of the unified query API ([`Latest::query`],
/// [`Latest::query_batch`], and the [`SharedLatest`] /
/// [`StreamPipeline`] counterparts).
///
/// The default is the common case: answer at the stream's current time,
/// block on a contended shared instance, consult the selectivity cache,
/// and serve from the estimation path.
///
/// ```
/// use geostream::Timestamp;
/// use latest_core::QueryOptions;
///
/// let opts = QueryOptions::default();
/// assert!(opts.blocking && opts.use_cache && !opts.exact);
/// let pinned = QueryOptions::at(Timestamp(1_000)).exact(true);
/// assert_eq!(pinned.at, Some(Timestamp(1_000)));
/// ```
///
/// [`SharedLatest`]: crate::SharedLatest
/// [`StreamPipeline`]: crate::StreamPipeline
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryOptions {
    /// Stream time to answer at; `None` means the window's current time.
    pub at: Option<Timestamp>,
    /// Whether a shared handle may block on a contended instance lock
    /// (`false` maps contention to [`LatestError::WouldBlock`]; ignored on
    /// an exclusive [`Latest`] borrow, which never waits).
    ///
    /// [`LatestError::WouldBlock`]: crate::LatestError::WouldBlock
    pub blocking: bool,
    /// Whether to consult (and feed) the selectivity cache. Cache hits are
    /// pure reads: they skip the executor, the learning loop, the query
    /// log, and the `queries_total` counter.
    pub use_cache: bool,
    /// Answer with the exact executor's ground truth instead of an
    /// estimate. Exact answers bypass the cache, the estimators, and the
    /// query log — they still count toward `queries_total` and the
    /// executor's path mix.
    pub exact: bool,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            at: None,
            blocking: true,
            use_cache: true,
            exact: false,
        }
    }
}

impl QueryOptions {
    /// The default options (answer now, blocking, cached, estimated).
    pub fn new() -> Self {
        QueryOptions::default()
    }

    /// Default options pinned to an explicit stream time.
    pub fn at(at: Timestamp) -> Self {
        QueryOptions {
            at: Some(at),
            ..QueryOptions::default()
        }
    }

    /// Pins the stream time to answer at.
    #[must_use = "builder methods move the options; reassign or chain the result"]
    pub fn at_time(mut self, at: Timestamp) -> Self {
        self.at = Some(at);
        self
    }

    /// Sets whether shared handles may block on a contended instance.
    #[must_use = "builder methods move the options; reassign or chain the result"]
    pub fn blocking(mut self, blocking: bool) -> Self {
        self.blocking = blocking;
        self
    }

    /// Sets whether the selectivity cache is consulted and fed.
    #[must_use = "builder methods move the options; reassign or chain the result"]
    pub fn use_cache(mut self, use_cache: bool) -> Self {
        self.use_cache = use_cache;
        self
    }

    /// Sets whether to answer with exact ground truth instead of an
    /// estimate.
    #[must_use = "builder methods move the options; reassign or chain the result"]
    pub fn exact(mut self, exact: bool) -> Self {
        self.exact = exact;
        self
    }
}

/// Which subsystem produced a [`QueryOutcome`]'s answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedBy {
    /// The estimation path: the named estimator answered.
    Estimator(EstimatorKind),
    /// The exact executor's ground truth ([`QueryOptions::exact`]).
    Exact,
    /// The selectivity cache (a memoized earlier answer; pure read).
    Cache,
}

impl ServedBy {
    /// Short display name (the estimator's own name for estimator serves).
    pub fn name(self) -> &'static str {
        match self {
            ServedBy::Estimator(kind) => kind.name(),
            ServedBy::Exact => "exact",
            ServedBy::Cache => "cache",
        }
    }
}

/// What a single estimation query returned.
#[derive(Debug, Clone)]
#[must_use = "the outcome carries the estimate and its accuracy; discarding it wastes the query"]
pub struct QueryOutcome {
    /// The estimate LATEST answered with.
    pub estimate: f64,
    /// Actual selectivity from the system logs.
    pub actual: u64,
    /// Latency of the estimate (milliseconds).
    pub latency_ms: f64,
    /// Relative-error-based accuracy of the answer.
    pub accuracy: f64,
    /// The estimator that produced the answer.
    pub estimator: EstimatorKind,
    /// Phase the query was served in.
    pub phase: PhaseTag,
    /// Whether this query triggered an estimator switch.
    pub switched: bool,
    /// Which subsystem produced the answer (estimator, exact executor, or
    /// the selectivity cache).
    pub served_by: ServedBy,
}

enum Phase {
    /// Warm-up: all estimators pre-filling, no queries expected.
    WarmUp { pool: EstimatorPool },
    /// Pre-training: every query runs on the whole pool.
    PreTraining { pool: EstimatorPool },
    /// Incremental learning: one active estimator (+ optional prefill).
    Incremental {
        active: BoxedEstimator,
        prefill: Option<BoxedEstimator>,
        /// Shadow pool for per-estimator metrics, when enabled.
        shadow: EstimatorPool,
    },
}

/// The LATEST module. Drive it with [`Latest::ingest`] for stream objects
/// and [`Latest::query`] for estimation queries; read
/// [`Latest::log`] afterwards.
pub struct Latest {
    config: LatestConfig,
    window: SlidingWindow,
    executor: ExactExecutor,
    phase: Phase,
    tree: HoeffdingTree,
    recommender: Recommender,
    scaler: RewardScaler,
    monitor: AccuracyMonitor,
    log: SystemLog,
    queries_seen: u64,
    queries_since_switch: usize,
    /// Aggregate relative error since the last tree (re)training.
    error_sum: f64,
    error_count: u64,
    /// DDM detector over the tree's own prediction errors.
    drift: DdmDetector,
    /// Model retrainings triggered by drift detection.
    pub(crate) drift_retrainings: u64,
    /// Query types of the most recent incremental queries (the workload
    /// mix the adaptor optimizes for).
    recent_types: std::collections::VecDeque<QueryType>,
    /// EWMA representative profile per query type, for consulting the tree
    /// about a *mix* rather than a single query.
    type_profiles: [Option<QueryProfile>; 3],
    evict_buf: Vec<GeoTextObject>,
    /// Memoized answers for repeated queries over an unchanged window,
    /// keyed on `(QuerySignature, window generation)`.
    cache: SelectivityCache,
    /// Run-wide observability registry, shared (`Arc`) with the estimator
    /// pools so their fan-out rounds feed the same cells.
    metrics: Arc<MetricsRegistry>,
    /// Evictions accumulated since the last coalesced `WindowEvicted`
    /// lifecycle event.
    evictions_since_event: u64,
    /// Stream time of the previous query, for the inter-query gap series.
    last_query_at: Option<Timestamp>,
}

impl Latest {
    /// Creates a LATEST instance in the warm-up phase.
    ///
    /// # Panics
    /// Panics if the configuration fails [`LatestConfig::validate`];
    /// prefer assembling configs through [`LatestConfig::builder`], which
    /// surfaces the same checks as a `Result`.
    pub fn new(config: LatestConfig) -> Self {
        if let Err(e) = config.validate() {
            // LINT-ALLOW(no-panic): `new` documents this panic; `try_new` is the fallible path for recoverable callers
            panic!("{e}");
        }
        let metrics = Arc::new(MetricsRegistry::new());
        metrics.events.record(LifecycleEvent::PhaseEntered {
            phase: PhaseTag::WarmUp,
            at: Timestamp::ZERO,
        });
        let mut pool = EstimatorPool::full(&config.estimator_config, config.pool_workers);
        pool.set_metrics(Arc::clone(&metrics));
        Latest {
            window: SlidingWindow::new(config.window_span),
            executor: ExactExecutor::new(config.estimator_config.domain, config.index_kind),
            phase: Phase::WarmUp { pool },
            tree: HoeffdingTree::new(model_schema(), config.tree_config.clone()),
            recommender: Recommender::new(),
            scaler: RewardScaler::new(config.alpha),
            monitor: AccuracyMonitor::new(config.accuracy_window),
            log: SystemLog::new(),
            queries_seen: 0,
            queries_since_switch: 0,
            error_sum: 0.0,
            error_count: 0,
            drift: DdmDetector::default(),
            drift_retrainings: 0,
            recent_types: std::collections::VecDeque::new(),
            type_profiles: [None, None, None],
            evict_buf: Vec::new(),
            cache: SelectivityCache::new(config.selectivity_cache_capacity),
            metrics,
            evictions_since_event: 0,
            last_query_at: None,
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &LatestConfig {
        &self.config
    }

    /// The current phase tag.
    pub fn phase(&self) -> PhaseTag {
        match self.phase {
            Phase::WarmUp { .. } => PhaseTag::WarmUp,
            Phase::PreTraining { .. } => PhaseTag::PreTraining,
            Phase::Incremental { .. } => PhaseTag::Incremental,
        }
    }

    /// The estimator currently employed (the pre-training default until the
    /// incremental phase starts).
    pub fn active_kind(&self) -> EstimatorKind {
        match &self.phase {
            Phase::Incremental { active, .. } => active.kind(),
            _ => self.config.default_estimator,
        }
    }

    /// Whether a replacement estimator is currently pre-filling.
    pub fn prefilling(&self) -> Option<EstimatorKind> {
        match &self.phase {
            Phase::Incremental {
                prefill: Some(p), ..
            } => Some(p.kind()),
            _ => None,
        }
    }

    /// Read access to the run log.
    pub fn log(&self) -> &SystemLog {
        &self.log
    }

    /// Shape statistics of the learning model.
    pub fn tree_stats(&self) -> TreeStats {
        self.tree.stats()
    }

    /// Number of drift-triggered model retrainings performed (§V-D).
    pub fn drift_retrainings(&self) -> u64 {
        self.drift_retrainings
    }

    /// Live window size.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// How the exact executor's access-path planner has routed the
    /// ground-truth queries so far (spatial index vs. inverted index).
    pub fn executor_path_mix(&self) -> exactdb::PathMix {
        self.executor.path_mix()
    }

    /// Current stream time.
    pub fn now(&self) -> Timestamp {
        self.window.now()
    }

    /// Advances virtual stream time to `at` without ingesting anything:
    /// the window slides (propagating the eviction sweep to the executor
    /// and every maintained estimator) and the warm-up → pre-training
    /// transition is checked, exactly as an empty ingest batch stamped
    /// `at` would. [`ShardedLatest`](crate::ShardedLatest) uses this as
    /// its cross-shard eviction clock, so shards whose sub-batch ended
    /// early still observe the same window horizon as their peers.
    /// Timestamps earlier than the current stream time are ignored (the
    /// window never moves backwards).
    pub fn advance_clock(&mut self, at: Timestamp) {
        self.advance_window_to(at);
        self.maybe_leave_warmup();
    }

    /// Iterates over the live window contents, oldest first (read-only;
    /// the sharded audit uses it to check router partition coverage).
    pub fn window_objects(&self) -> impl Iterator<Item = &GeoTextObject> + '_ {
        self.window.iter()
    }

    /// Read access to the selectivity cache (size, generation,
    /// invalidation count).
    pub fn cache(&self) -> &SelectivityCache {
        &self.cache
    }

    /// The run-wide observability registry (shared with the estimator
    /// pools). Live cells; prefer [`Latest::metrics_snapshot`] for a
    /// consistent point-in-time copy.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// A point-in-time copy of every subsystem's metrics — window, pool,
    /// executor path mix, per-estimator series, lifecycle events — plus
    /// the adaptor state only the system itself can see (monitor window,
    /// estimator roles).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let m = &self.metrics;
        let mix = self.executor.path_mix();
        let role_of = |kind: EstimatorKind| match &self.phase {
            Phase::WarmUp { pool } | Phase::PreTraining { pool } => {
                if pool.kinds().contains(&kind) {
                    EstimatorRole::Pool
                } else {
                    EstimatorRole::Idle
                }
            }
            Phase::Incremental {
                active,
                prefill,
                shadow,
            } => {
                if active.kind() == kind {
                    EstimatorRole::Active
                } else if prefill.as_ref().is_some_and(|p| p.kind() == kind) {
                    EstimatorRole::Prefilling
                } else if shadow.kinds().contains(&kind) {
                    EstimatorRole::Shadow
                } else {
                    EstimatorRole::Idle
                }
            }
        };
        MetricsSnapshot {
            phase: self.phase(),
            queries_total: m.queries_total.get(),
            queries_by_phase: [
                m.queries_by_phase[0].get(),
                m.queries_by_phase[1].get(),
                m.queries_by_phase[2].get(),
            ],
            query_stream_gap_ms: m.query_stream_gap_ms.snapshot(),
            cache_hits: m.cache_hits.get(),
            cache_misses: m.cache_misses.get(),
            query_batch_sizes: m.query_batch_sizes.snapshot(),
            window: WindowMetrics {
                occupancy: self.window.len() as u64,
                ingested: m.objects_ingested.get(),
                evicted: m.objects_evicted.get(),
                ingest_batches: m.ingest_batches.get(),
                eviction_batch_sizes: m.eviction_batch_sizes.snapshot(),
            },
            adaptor: AdaptorMetrics {
                switches: m.switches.get(),
                prefill_starts: m.prefill_starts.get(),
                prefill_discards: m.prefill_discards.get(),
                tree_retrainings: m.tree_retrainings.get(),
                monitor_len: self.monitor.len() as u64,
                monitor_average: self.monitor.average(),
                queries_since_switch: self.queries_since_switch as u64,
            },
            pool: PoolMetrics {
                rounds: m.pool_rounds.get(),
                busy_us: m.pool_busy_us.get(),
                batch_sizes: m.pool_batch_sizes.snapshot(),
                worker_busy_us: m.pool_worker_busy_us.snapshot(),
            },
            executor: ExecutorMetrics {
                spatial: mix.spatial,
                inverted: mix.inverted,
            },
            estimators: EstimatorKind::ALL
                .into_iter()
                .map(|kind| EstimatorMetrics {
                    kind,
                    role: role_of(kind),
                    memory_bytes: m.estimator_memory_bytes[kind.index() as usize].get(),
                    latency_us: m.estimate_latency_us[kind.index() as usize].snapshot(),
                })
                .collect(),
            events: m.events.snapshot(),
            events_dropped: m.events.dropped(),
        }
    }

    /// Deep invariant walk over the window, the exact executor, and every
    /// estimator the current phase maintains. A violation is recorded as
    /// an `AuditFailed` lifecycle event before being returned, so a run's
    /// snapshot shows *that* an audit tripped even if the error itself was
    /// swallowed upstream.
    #[cfg(feature = "debug-invariants")]
    pub fn audit(&mut self) -> Result<(), geostream::AuditError> {
        let result = self
            .window
            .audit()
            .and_then(|()| self.executor.audit())
            .and_then(|()| match &mut self.phase {
                Phase::WarmUp { pool } | Phase::PreTraining { pool } => pool.audit(),
                Phase::Incremental {
                    active,
                    prefill,
                    shadow,
                } => {
                    active.audit()?;
                    if let Some(p) = prefill {
                        p.audit()?;
                    }
                    shadow.audit()
                }
            });
        if let Err(e) = &result {
            self.metrics.events.record(LifecycleEvent::AuditFailed {
                structure: e.structure.to_string(),
                invariant: e.invariant.to_string(),
            });
        }
        result
    }

    /// Overrides the current phase's estimator-pool hardware spawn cap.
    /// Test hook (mirrors [`EstimatorPool::set_spawn_cap`]): lets
    /// single-core CI hosts exercise the real threaded fan-out. Phase
    /// transitions rebuild pools, so re-apply after them.
    #[doc(hidden)]
    pub fn set_pool_spawn_cap(&mut self, cap: usize) {
        match &mut self.phase {
            Phase::WarmUp { pool } | Phase::PreTraining { pool } => pool.set_spawn_cap(cap),
            Phase::Incremental { shadow, .. } => shadow.set_spawn_cap(cap),
        }
    }

    /// Ingests one stream object, updating the window, the exact executor,
    /// and whichever estimators the current phase maintains. Also advances
    /// the warm-up → pre-training transition.
    pub fn ingest(&mut self, obj: GeoTextObject) {
        self.ingest_batch(std::slice::from_ref(&obj));
    }

    /// Ingests a batch of stream objects (non-decreasing timestamps) in one
    /// maintenance round: the window slides once, and each maintained
    /// estimator receives the arrivals and the evictions as batches —
    /// fanned across the estimator pool's workers where the phase keeps
    /// more than one estimator. The warm-up → pre-training transition is
    /// checked once, after the batch lands (the phases maintain the same
    /// pool, so mid-batch arrival order is unaffected).
    pub fn ingest_batch(&mut self, batch: &[GeoTextObject]) {
        if batch.is_empty() {
            return;
        }
        self.evict_buf.clear();
        let mut evicted = std::mem::take(&mut self.evict_buf);
        self.window
            .insert_batch(batch.iter().cloned(), &mut evicted);
        // The exact executor's index upkeep is independent of every
        // estimator, so it rides on the calling thread while the pool's
        // workers run (split borrows: executor vs. phase).
        let executor = &mut self.executor;
        let mut upkeep = || {
            executor.insert_batch(batch);
            executor.remove_batch(&evicted);
        };
        match &mut self.phase {
            Phase::WarmUp { pool } | Phase::PreTraining { pool } => {
                pool.apply_batch_with(batch, &evicted, upkeep);
            }
            Phase::Incremental {
                active,
                prefill,
                shadow,
            } => {
                // The active (and pre-filling) estimator stays on the
                // calling thread too: it is the latency-critical one, and
                // the shadow pool is where the bulk of the work lives.
                shadow.apply_batch_with(batch, &evicted, || {
                    upkeep();
                    active.insert_batch(batch);
                    active.remove_batch(&evicted);
                    if let Some(p) = prefill {
                        p.insert_batch(batch);
                        p.remove_batch(&evicted);
                    }
                });
            }
        }
        self.metrics.objects_ingested.add(batch.len() as u64);
        self.metrics.ingest_batches.inc();
        self.note_evictions(evicted.len());
        self.evict_buf = evicted;
        self.maybe_leave_warmup();
    }

    /// Folds one eviction sweep into the registry: totals, occupancy, the
    /// sweep-size histogram, and (coalesced) `WindowEvicted` events.
    fn note_evictions(&mut self, evicted: usize) {
        self.metrics.window_occupancy.set(self.window.len() as u64);
        if evicted == 0 {
            return;
        }
        self.metrics.objects_evicted.add(evicted as u64);
        self.metrics.eviction_batch_sizes.record(evicted as u64);
        self.evictions_since_event += evicted as u64;
        if self.evictions_since_event >= EVICTION_EVENT_GRANULARITY {
            self.metrics.events.record(LifecycleEvent::WindowEvicted {
                n: self.evictions_since_event,
                at: self.window.now(),
            });
            self.evictions_since_event = 0;
        }
    }

    fn maybe_leave_warmup(&mut self) {
        if matches!(self.phase, Phase::WarmUp { .. })
            && self.window.now() >= Timestamp::ZERO.after(self.config.warmup)
        {
            let Phase::WarmUp { pool } = std::mem::replace(
                &mut self.phase,
                Phase::PreTraining {
                    pool: EstimatorPool::empty(),
                },
            ) else {
                unreachable!()
            };
            self.phase = Phase::PreTraining { pool };
            self.metrics.events.record(LifecycleEvent::PhaseEntered {
                phase: PhaseTag::PreTraining,
                at: self.window.now(),
            });
        }
    }

    /// Answers one query under `options`, returning the outcome and — on
    /// the estimation path — updating the learning model, the monitor,
    /// and, if the thresholds say so, the employed estimator.
    ///
    /// With the default options the answer is served at the stream's
    /// current time and the selectivity cache is consulted first: a repeat
    /// of a recent query over an unchanged window is a pure read that
    /// skips the executor and the learning loop entirely.
    pub fn query(&mut self, query: &RcDvq, options: QueryOptions) -> QueryOutcome {
        let at = options.at.unwrap_or_else(|| self.window.now());
        self.advance_window_to(at);
        let cacheable = options.use_cache && !options.exact;
        let generation = self.window.generation();
        let sig = query.signature();
        if cacheable {
            if let Some(hit) = self.cache.lookup(sig, generation) {
                self.metrics.cache_hits.inc();
                return Self::cache_outcome(&hit);
            }
            self.metrics.cache_misses.inc();
        }
        if options.exact {
            return self.exact_query(query, at);
        }
        let actual = self.executor.execute(query);
        let outcome = self.answer_estimation(query, at, actual, None);
        if cacheable {
            self.cache
                .insert(sig, generation, Self::cache_entry(&outcome));
        }
        outcome
    }

    /// Answers one estimation query at stream time `at` (the pre-unified
    /// API; `query` with [`QueryOptions::at`] replaces it). The legacy
    /// path never consulted a cache, so the shim disables it.
    #[deprecated(since = "0.2.0", note = "use `query(query, QueryOptions::at(at))`")]
    pub fn query_at(&mut self, query: &RcDvq, at: Timestamp) -> QueryOutcome {
        self.query(query, QueryOptions::at(at).use_cache(false))
    }

    /// Answers a batch of queries under one set of options, equivalently
    /// to issuing them one at a time in order — same estimates (bit-equal),
    /// same feedback order, same counters — but with the grouped work
    /// amortized:
    ///
    /// * the window slides once for the whole batch;
    /// * duplicate signatures and cached answers collapse onto one
    ///   execution (the rest are pure cache reads);
    /// * the remaining misses run through
    ///   [`ExactExecutor::execute_batch`](exactdb::ExactExecutor::execute_batch),
    ///   which groups by access path and shares posting-list merges;
    /// * when the active estimator's `estimate` is a pure read (anything
    ///   but the self-training FFN), the misses' estimates are produced by
    ///   one multi-query kernel pass over the sample columns.
    ///
    /// Per-query feedback (reward scaling, tree training, the accuracy
    /// monitor, switch decisions) still runs in original order, so the
    /// adaptor sees exactly the single-query history.
    pub fn query_batch(&mut self, queries: &[RcDvq], options: QueryOptions) -> Vec<QueryOutcome> {
        if queries.is_empty() {
            return Vec::new();
        }
        self.metrics.query_batch_sizes.record(queries.len() as u64);
        let at = options.at.unwrap_or_else(|| self.window.now());
        self.advance_window_to(at);
        if options.exact {
            // Ground-truth batches skip the cache and the estimation path:
            // one grouped executor pass answers everything.
            let timer = WallTimer::start();
            let actuals = self.executor.execute_batch(queries);
            let latency_ms = timer.elapsed_ms() / queries.len() as f64;
            let estimator = self.active_kind();
            let phase = self.phase();
            let mut outcomes = Vec::with_capacity(queries.len());
            for actual in actuals {
                self.record_query_admission(at);
                outcomes.push(QueryOutcome {
                    estimate: actual as f64,
                    actual,
                    latency_ms,
                    accuracy: 1.0,
                    estimator,
                    phase,
                    switched: false,
                    served_by: ServedBy::Exact,
                });
            }
            return outcomes;
        }
        let cacheable = options.use_cache;
        let generation = self.window.generation();
        let sigs: Vec<QuerySignature> = queries.iter().map(|q| q.signature()).collect();
        // Predict the hit/miss partition upfront: the first occurrence of
        // each signature not already cached runs the full path; every
        // later occurrence hits the answer that first one inserts. The
        // window cannot change mid-batch, so the partition is exact (up to
        // the cache's capacity bound — the loop below falls back to the
        // single-query path if an entry failed to land).
        let mut missed: Vec<usize> = Vec::new();
        if cacheable {
            let mut pending: std::collections::HashSet<QuerySignature> =
                std::collections::HashSet::new();
            for (i, sig) in sigs.iter().enumerate() {
                if !self.cache.contains(*sig, generation) && pending.insert(*sig) {
                    missed.push(i);
                }
            }
        } else {
            missed = (0..queries.len()).collect();
        }
        let missed_queries: Vec<RcDvq> = missed.iter().map(|&i| queries[i].clone()).collect();
        let actuals = self.executor.execute_batch(&missed_queries);
        let mut estimates: Vec<Option<(f64, u64)>> = vec![None; missed_queries.len()];
        self.precompute_estimates(&missed_queries, &mut estimates, 0);
        let mut outcomes = Vec::with_capacity(queries.len());
        let mut next_miss = 0usize;
        for (i, query) in queries.iter().enumerate() {
            if cacheable {
                if let Some(hit) = self.cache.lookup(sigs[i], generation) {
                    self.metrics.cache_hits.inc();
                    outcomes.push(Self::cache_outcome(&hit));
                    continue;
                }
                self.metrics.cache_misses.inc();
            }
            let (actual, precomputed) = if next_miss < missed.len() && missed[next_miss] == i {
                let m = next_miss;
                next_miss += 1;
                (actuals[m], estimates[m])
            } else {
                // Predicted hit that missed after all (the cache's
                // capacity bound refused the insert): single-query path.
                (self.executor.execute(query), None)
            };
            let outcome = self.answer_estimation(query, at, actual, precomputed);
            if cacheable {
                self.cache
                    .insert(sigs[i], generation, Self::cache_entry(&outcome));
            }
            if outcome.switched {
                // The active estimator changed: every pre-computed estimate
                // for the tail of the batch is stale. Re-derive them from
                // the replacement (or fall back to in-sequence estimates if
                // the replacement is the self-training FFN).
                self.precompute_estimates(&missed_queries, &mut estimates, next_miss);
            }
            outcomes.push(outcome);
        }
        outcomes
    }

    /// Builds the outcome of a cache hit: a pure read — zero latency, no
    /// switch, no feedback.
    fn cache_outcome(hit: &CachedAnswer) -> QueryOutcome {
        QueryOutcome {
            estimate: hit.estimate,
            actual: hit.actual,
            latency_ms: 0.0,
            accuracy: hit.accuracy,
            estimator: hit.estimator,
            phase: hit.phase,
            switched: false,
            served_by: ServedBy::Cache,
        }
    }

    /// The memoizable slice of an outcome.
    fn cache_entry(outcome: &QueryOutcome) -> CachedAnswer {
        CachedAnswer {
            estimate: outcome.estimate,
            actual: outcome.actual,
            accuracy: outcome.accuracy,
            estimator: outcome.estimator,
            phase: outcome.phase,
        }
    }

    /// Slides the window to `at` and propagates the eviction sweep to the
    /// phase's estimators and the exact executor.
    fn advance_window_to(&mut self, at: Timestamp) {
        self.evict_buf.clear();
        let mut evicted = std::mem::take(&mut self.evict_buf);
        self.window.advance_to(at, &mut evicted);
        if !evicted.is_empty() {
            match &mut self.phase {
                Phase::WarmUp { pool } | Phase::PreTraining { pool } => {
                    pool.remove_batch(&evicted);
                }
                Phase::Incremental {
                    active,
                    prefill,
                    shadow,
                } => {
                    active.remove_batch(&evicted);
                    if let Some(p) = prefill {
                        p.remove_batch(&evicted);
                    }
                    shadow.remove_batch(&evicted);
                }
            }
            self.executor.remove_batch(&evicted);
        }
        self.note_evictions(evicted.len());
        self.evict_buf = evicted;
    }

    /// Counts one admitted (non-cache-hit) query into the registry.
    fn record_query_admission(&mut self, at: Timestamp) {
        self.metrics.queries_total.inc();
        self.metrics.queries_by_phase[phase_index(self.phase())].inc();
        if let Some(prev) = self.last_query_at {
            self.metrics
                .query_stream_gap_ms
                .record(at.0.saturating_sub(prev.0));
        }
        self.last_query_at = Some(at);
    }

    /// The ground-truth path: the exact executor answers, nothing is
    /// learned and nothing is logged (the answer is not an estimate).
    fn exact_query(&mut self, query: &RcDvq, at: Timestamp) -> QueryOutcome {
        self.record_query_admission(at);
        let timer = WallTimer::start();
        let actual = self.executor.execute(query);
        QueryOutcome {
            estimate: actual as f64,
            actual,
            latency_ms: timer.elapsed_ms(),
            accuracy: 1.0,
            estimator: self.active_kind(),
            phase: self.phase(),
            switched: false,
            served_by: ServedBy::Exact,
        }
    }

    /// The estimation path for one admitted query with its ground truth
    /// already executed (and, on the batch path, a pre-computed estimate).
    fn answer_estimation(
        &mut self,
        query: &RcDvq,
        at: Timestamp,
        actual: u64,
        precomputed: Option<(f64, u64)>,
    ) -> QueryOutcome {
        self.record_query_admission(at);
        let seq = self.queries_seen;
        self.queries_seen += 1;
        let profile = QueryProfile::of(query, &self.config.estimator_config.domain);
        let outcome = match self.phase() {
            PhaseTag::WarmUp | PhaseTag::PreTraining => {
                self.pretraining_query(query, at, seq, actual, &profile)
            }
            PhaseTag::Incremental => {
                self.incremental_query(query, at, seq, actual, &profile, precomputed)
            }
        };
        self.maybe_finish_pretraining();
        outcome
    }

    /// Fills `out[from..]` with one batched-kernel estimate per query when
    /// the active estimator's `estimate` is a pure read (incremental
    /// phase, non-FFN active — the FFN trains itself on every observed
    /// query, so its answers must be produced in sequence). Stale slots
    /// are cleared when batching does not apply. The recorded per-query
    /// latency is the kernel pass amortized over its queries.
    fn precompute_estimates(&self, queries: &[RcDvq], out: &mut [Option<(f64, u64)>], from: usize) {
        if from >= queries.len() {
            return;
        }
        let batchable = match &self.phase {
            Phase::Incremental { active, .. } => active.kind() != EstimatorKind::Ffn,
            _ => false,
        };
        if !batchable {
            for slot in out[from..].iter_mut() {
                *slot = None;
            }
            return;
        }
        let Phase::Incremental { active, .. } = &self.phase else {
            unreachable!("batchable implies incremental")
        };
        let timer = WallTimer::start();
        let estimates = active.estimate_batch(&queries[from..]);
        let per_query_us = timer.elapsed_us() / (queries.len() - from) as u64;
        for (slot, estimate) in out[from..].iter_mut().zip(estimates) {
            *slot = Some((estimate, per_query_us));
        }
    }

    /// Pre-training: run the query on the whole pool, score every
    /// estimator, label the winner, and answer with the default estimator.
    fn pretraining_query(
        &mut self,
        query: &RcDvq,
        at: Timestamp,
        seq: u64,
        actual: u64,
        profile: &QueryProfile,
    ) -> QueryOutcome {
        let default_kind = self.config.default_estimator;
        let (Phase::WarmUp { pool } | Phase::PreTraining { pool }) = &mut self.phase else {
            unreachable!("phase checked by caller")
        };
        // One fan-out measures (and feeds back to) every pool estimator.
        let samples = pool.measure(query, actual);
        for s in &samples {
            self.scaler.observe_latency(s.latency_ms);
        }
        // Label: the estimator with the best α-weighted reward.
        let mut best = samples[0].estimator;
        let mut best_reward = f64::NEG_INFINITY;
        for s in &samples {
            let r = self.scaler.reward(s.accuracy, s.latency_ms);
            self.recommender.observe(profile.query_type, s.estimator, r);
            if r > best_reward {
                best_reward = r;
                best = s.estimator;
            }
        }
        self.tree
            .train(&profile.instance(default_kind), best.index());

        let answer = samples
            .iter()
            .find(|s| s.estimator == default_kind)
            .copied()
            // LINT-ALLOW(no-panic): the pool is seeded from ALL_KINDS, which includes the configured default kind
            .expect("default estimator is in the pool");
        self.track_error(answer.estimate, actual);
        self.log.queries.push(QueryRecord {
            seq,
            at,
            phase: self.phase(),
            query_type: profile.query_type,
            estimator: default_kind,
            estimate: answer.estimate,
            actual,
            latency_ms: answer.latency_ms,
            accuracy: answer.accuracy,
            monitor_average: None,
            shadow: samples,
        });
        QueryOutcome {
            estimate: answer.estimate,
            actual,
            latency_ms: answer.latency_ms,
            accuracy: answer.accuracy,
            estimator: default_kind,
            phase: self.phase(),
            switched: false,
            served_by: ServedBy::Estimator(default_kind),
        }
    }

    /// Ends pre-training once enough queries were harvested: wipe every
    /// pool estimator except the default, which becomes the active one
    /// (§V-C "all estimation structures are wiped out ... except the one
    /// used at the beginning of the next phase").
    fn maybe_finish_pretraining(&mut self) {
        let done = matches!(&self.phase, Phase::PreTraining { .. })
            && self.log.queries.len() >= self.config.pretrain_queries;
        if !done {
            return;
        }
        let Phase::PreTraining { pool } = std::mem::replace(
            &mut self.phase,
            Phase::WarmUp {
                pool: EstimatorPool::empty(),
            },
        ) else {
            unreachable!()
        };
        let mut active = None;
        let mut shadow = Vec::new();
        for est in pool.into_inner() {
            if est.kind() == self.config.default_estimator {
                active = Some(est);
            } else if self.config.shadow_metrics {
                shadow.push(est);
            }
            // Otherwise dropped: wiped out to keep one live structure.
        }
        // Pool rebuilds must not orphan the registry: re-attach the same
        // `Arc` so shadow fan-outs keep feeding the run-wide cells.
        let mut shadow = EstimatorPool::new(shadow, self.config.pool_workers);
        shadow.set_metrics(Arc::clone(&self.metrics));
        self.phase = Phase::Incremental {
            // LINT-ALLOW(no-panic): the loop above inserted every kind, including the default, into the pool
            active: active.expect("default estimator was in the pool"),
            prefill: None,
            shadow,
        };
        self.monitor.reset();
        self.queries_since_switch = 0;
        self.metrics.events.record(LifecycleEvent::PhaseEntered {
            phase: PhaseTag::Incremental,
            at: self.window.now(),
        });
    }

    /// Incremental phase: answer with the active estimator, feed the
    /// feedback loop, and run the adaptor's threshold logic.
    fn incremental_query(
        &mut self,
        query: &RcDvq,
        at: Timestamp,
        seq: u64,
        actual: u64,
        profile: &QueryProfile,
        precomputed: Option<(f64, u64)>,
    ) -> QueryOutcome {
        let tau = self.config.tau;
        let prefill_threshold = self.config.beta * tau;
        // Update the recent workload mix before destructuring the phase.
        if self.recent_types.len() >= self.config.accuracy_window {
            self.recent_types.pop_front();
        }
        self.recent_types.push_back(profile.query_type);
        let slot = &mut self.type_profiles[profile.query_type.index() as usize];
        *slot = Some(match slot {
            None => *profile,
            Some(prev) => QueryProfile {
                query_type: profile.query_type,
                keyword_count: ((prev.keyword_count as f64) * 0.9
                    + (profile.keyword_count as f64) * 0.1)
                    .round() as usize,
                area_fraction: prev.area_fraction * 0.9 + profile.area_fraction * 0.1,
            },
        });
        let mut type_weights = [0.0f64; 3];
        for t in &self.recent_types {
            type_weights[t.index() as usize] += 1.0;
        }
        let Phase::Incremental {
            active,
            prefill,
            shadow,
        } = &mut self.phase
        else {
            unreachable!("phase checked by caller")
        };
        let active_kind = active.kind();

        let (estimate, latency_us) = match precomputed {
            // The batch path pre-computed this answer with one multi-query
            // kernel pass; `estimate` on a pure-read estimator is
            // deterministic, so the value is bit-equal to what the call
            // below would produce.
            Some(pair) => pair,
            None => {
                let timer = WallTimer::start();
                let estimate = active.estimate(query);
                (estimate, timer.elapsed_us())
            }
        };
        let latency_ms = latency_us as f64 / 1_000.0;
        let accuracy = estimation_accuracy(estimate, actual);
        active.observe_query(query, actual);
        self.metrics
            .record_estimate_latency(active_kind, latency_us);
        self.metrics.estimator_memory_bytes[active_kind.index() as usize]
            .set(active.memory_bytes() as u64);

        // Shadow measurements for the figures, when enabled: one fan-out
        // across the shadow pool.
        let mut samples = Vec::new();
        if self.config.shadow_metrics {
            samples.push(ShadowSample {
                estimator: active_kind,
                estimate,
                latency_ms,
                accuracy,
            });
            samples.extend(shadow.measure(query, actual));
        }

        // Feedback loop: scaler, EWMA rewards, Hoeffding training record.
        self.scaler.observe_latency(latency_ms);
        let reward = self.scaler.reward(accuracy, latency_ms);
        self.recommender
            .observe(profile.query_type, active_kind, reward);
        if self.config.shadow_metrics {
            for s in samples.iter().filter(|s| s.estimator != active_kind) {
                self.scaler.observe_latency(s.latency_ms);
                let r = self.scaler.reward(s.accuracy, s.latency_ms);
                self.recommender.observe(profile.query_type, s.estimator, r);
            }
        }
        // Train with the active estimator when it is doing well; otherwise
        // teach the tree the best-known alternative for this query type.
        let label = if reward >= tau {
            active_kind
        } else {
            self.recommender
                .best_by_reward(profile.query_type, Some(active_kind))
        };
        let instance = profile.instance(active_kind);
        // §V-D retraining trigger: score the tree's own prediction before
        // training on the record; sustained error growth (DDM drift) means
        // the learned concept is stale — reset and regrow.
        if self.config.drift_detection {
            let wrong = self.tree.predict(&instance) != label.index();
            if self.drift.observe(wrong) == DriftState::Drift {
                self.tree.reset();
                self.drift.reset();
                self.drift_retrainings += 1;
                self.metrics.tree_retrainings.inc();
                self.metrics.events.record(LifecycleEvent::TreeRetrained {
                    seq,
                    cause: RetrainCause::Drift,
                });
            }
        }
        self.tree.train(&instance, label.index());

        self.monitor.push(accuracy);
        // track_error, inlined: the destructured phase borrow above blocks
        // `&mut self` method calls, but disjoint field access is fine.
        let rel = (estimate - actual as f64).abs() / (actual as f64).max(1.0);
        self.error_sum += rel.min(10.0);
        self.error_count += 1;
        self.queries_since_switch += 1;
        let monitor_average = self.monitor.warmed_up().then(|| {
            self.monitor
                .average()
                // LINT-ALLOW(no-panic): warmed_up() requires at least one observation, so the window mean exists
                .expect("warmed_up implies observations")
        });

        // ---- Estimator Adaptor (§V-D) ----
        let mut switched = false;
        if let Some(avg) = monitor_average.filter(|_| self.config.ablation.switching) {
            let spaced = self.queries_since_switch >= self.config.min_switch_spacing;
            if avg >= prefill_threshold {
                // Accuracy recovered: discard any pre-filling candidate.
                if let Some(p) = prefill.take() {
                    self.log.prefill_discards.push(seq);
                    self.metrics.prefill_discards.inc();
                    self.metrics
                        .events
                        .record(LifecycleEvent::PrefillDiscarded {
                            seq,
                            kind: p.kind(),
                        });
                }
            } else if spaced {
                if prefill.is_none() {
                    // Entering the danger zone: consult the model about the
                    // recent workload *mix* and start pre-filling its
                    // recommendation from the live window — but only if the
                    // model actually expects the candidate to do better
                    // than what we have (switch margin).
                    let rec = if self.config.ablation.mix_recommendation {
                        self.recommender.recommend_with(
                            &self.tree,
                            &self.type_profiles,
                            &type_weights,
                            active_kind,
                            self.config.ablation.use_tree,
                        )
                    } else {
                        // Ablation: the single next query's profile decides.
                        self.recommender.recommend(&self.tree, profile, active_kind)
                    };
                    let advantage = self.recommender.expected_reward(&type_weights, rec)
                        - self.recommender.expected_reward(&type_weights, active_kind);
                    if advantage > self.config.switch_margin {
                        let candidate = if self.config.ablation.prefill {
                            let mut c = build_estimator(rec, &self.config.estimator_config);
                            // Pre-fill from the live window in (at most) two
                            // batched sweeps over the ring buffer's halves.
                            let (older, newer) = self.window.as_slices();
                            c.insert_batch(older);
                            c.insert_batch(newer);
                            c
                        } else {
                            // Ablation: cold replacement, no pre-filling.
                            build_estimator(rec, &self.config.estimator_config)
                        };
                        *prefill = Some(candidate);
                        self.log.prefill_starts.push(seq);
                        self.metrics.prefill_starts.inc();
                        self.metrics
                            .events
                            .record(LifecycleEvent::PrefillStarted { seq, kind: rec });
                    }
                }
                // Below τ with a prefilled replacement ready: activate it.
                // (No prefill means the model sees no better option — stay
                // on the current estimator rather than churn.)
                if avg < tau && prefill.is_some() {
                    // LINT-ALLOW(no-panic): guarded by the `prefill.is_some()` check on the enclosing branch
                    let replacement = prefill.take().expect("checked");
                    let old = std::mem::replace(active, replacement);
                    if self.config.shadow_metrics {
                        // Keep the old estimator measurable in shadow mode.
                        let new_kind = active.kind();
                        shadow.retain(|e| e.kind() != new_kind);
                        shadow.push(old);
                    }
                    self.log.switches.push(SwitchEvent {
                        at_seq: seq,
                        at,
                        from: active_kind,
                        to: active.kind(),
                        trigger_average: avg,
                    });
                    self.metrics.switches.inc();
                    self.metrics
                        .events
                        .record(LifecycleEvent::EstimatorSwitched {
                            seq,
                            at,
                            from: active_kind,
                            to: active.kind(),
                            trigger_average: avg,
                        });
                    self.monitor.reset();
                    self.queries_since_switch = 0;
                    switched = true;
                }
            }
        }

        // maybe_retrain, inlined for the same borrow reason (§V-D manual
        // retraining trigger).
        if let Some(threshold) = self.config.retrain_error_threshold {
            if self.error_count >= 200 && self.error_sum / self.error_count as f64 > threshold {
                self.tree.reset();
                self.error_sum = 0.0;
                self.error_count = 0;
                self.metrics.tree_retrainings.inc();
                self.metrics.events.record(LifecycleEvent::TreeRetrained {
                    seq,
                    cause: RetrainCause::ErrorThreshold,
                });
            }
        }

        self.log.queries.push(QueryRecord {
            seq,
            at,
            phase: PhaseTag::Incremental,
            query_type: profile.query_type,
            estimator: active_kind,
            estimate,
            actual,
            latency_ms,
            accuracy,
            monitor_average,
            shadow: samples,
        });
        QueryOutcome {
            estimate,
            actual,
            latency_ms,
            accuracy,
            estimator: active_kind,
            phase: PhaseTag::Incremental,
            switched,
            served_by: ServedBy::Estimator(active_kind),
        }
    }

    fn track_error(&mut self, estimate: f64, actual: u64) {
        let rel = (estimate - actual as f64).abs() / (actual as f64).max(1.0);
        self.error_sum += rel.min(10.0); // cap outliers
        self.error_count += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geostream::synth::DatasetSpec;
    use geostream::{KeywordId, Rect};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn small_config() -> LatestConfig {
        let spec = DatasetSpec::twitter();
        LatestConfig {
            window_span: Duration::from_secs(60),
            warmup: Duration::from_secs(60),
            pretrain_queries: 40,
            accuracy_window: 16,
            min_switch_spacing: 16,
            estimator_config: EstimatorConfig {
                domain: spec.domain,
                reservoir_capacity: 2_000,
                ..EstimatorConfig::default()
            },
            ..LatestConfig::default()
        }
    }

    /// Drives warm-up with synthetic data, returns the generator for more.
    fn warm_up(latest: &mut Latest) -> geostream::synth::ObjectGenerator {
        let mut gen = DatasetSpec::twitter().generator();
        while latest.phase() == PhaseTag::WarmUp {
            latest.ingest(gen.next_object());
        }
        gen
    }

    fn random_query(rng: &mut StdRng, domain: &Rect) -> RcDvq {
        let cx = rng.gen_range(domain.min_x..domain.max_x);
        let cy = rng.gen_range(domain.min_y..domain.max_y);
        let half = rng.gen_range(0.5..4.0);
        match rng.gen_range(0..3) {
            0 => RcDvq::spatial(Rect::centered_clamped(
                geostream::Point::new(cx, cy),
                half,
                half,
                domain,
            )),
            1 => RcDvq::keyword(vec![KeywordId(rng.gen_range(0..100))]),
            _ => RcDvq::hybrid(
                Rect::centered_clamped(geostream::Point::new(cx, cy), half, half, domain),
                vec![KeywordId(rng.gen_range(0..100))],
            ),
        }
    }

    #[test]
    fn phases_progress() {
        let config = small_config();
        let domain = config.estimator_config.domain;
        let mut latest = Latest::new(config);
        assert_eq!(latest.phase(), PhaseTag::WarmUp);
        let mut gen = warm_up(&mut latest);
        assert_eq!(latest.phase(), PhaseTag::PreTraining);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..40 {
            for _ in 0..5 {
                latest.ingest(gen.next_object());
            }
            let q = random_query(&mut rng, &domain);
            let out = latest.query(&q, QueryOptions::at(gen.clock()));
            assert!(out.estimate >= 0.0);
        }
        assert_eq!(latest.phase(), PhaseTag::Incremental);
        assert_eq!(latest.active_kind(), EstimatorKind::Rsh);
    }

    #[test]
    fn pretraining_answers_with_default_and_trains_tree() {
        let config = small_config();
        let domain = config.estimator_config.domain;
        let mut latest = Latest::new(config);
        let mut gen = warm_up(&mut latest);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            latest.ingest(gen.next_object());
            let q = random_query(&mut rng, &domain);
            let out = latest.query(&q, QueryOptions::at(gen.clock()));
            assert_eq!(out.estimator, EstimatorKind::Rsh);
            assert_eq!(out.phase, PhaseTag::PreTraining);
        }
        assert!(latest.tree_stats().instances_seen >= 10);
        // Every pre-training record carries all six shadow samples.
        let rec = &latest.log().queries[0];
        assert_eq!(rec.shadow.len(), 6);
    }

    #[test]
    fn incremental_queries_answer_reasonably() {
        let config = small_config();
        let domain = config.estimator_config.domain;
        let mut latest = Latest::new(config);
        let mut gen = warm_up(&mut latest);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..60 {
            for _ in 0..3 {
                latest.ingest(gen.next_object());
            }
            let q = random_query(&mut rng, &domain);
            let _ = latest.query(&q, QueryOptions::at(gen.clock()));
        }
        let log = latest.log();
        assert!(log.incremental_queries() > 0);
        let acc = log.mean_incremental_accuracy().unwrap();
        assert!(acc > 0.3, "incremental accuracy too low: {acc}");
        // Every query ran once through the exact executor's planner.
        assert_eq!(latest.executor_path_mix().total(), 60);
    }

    /// The executor's path-mix counters stay exact when estimator
    /// maintenance runs on a threaded pool with the executor's index
    /// upkeep riding the fan-out's sideline hook: one planner routing per
    /// query, regardless of how the maintenance rounds were scheduled.
    #[test]
    fn path_mix_is_exact_under_pooled_sideline_upkeep() {
        let mut config = small_config();
        config.pool_workers = 4;
        config.shadow_metrics = true;
        let domain = config.estimator_config.domain;
        let mut latest = Latest::new(config);
        let mut gen = warm_up(&mut latest);
        let mut rng = StdRng::seed_from_u64(11);
        let mut queries = 0u64;
        for _ in 0..120 {
            // Exercise the real threaded fan-out even on single-core CI
            // hosts; phase transitions rebuild pools, so re-apply.
            latest.set_pool_spawn_cap(4);
            for _ in 0..3 {
                latest.ingest(gen.next_object());
            }
            let q = random_query(&mut rng, &domain);
            let _ = latest.query(&q, QueryOptions::at(gen.clock()));
            queries += 1;
        }
        assert_eq!(latest.executor_path_mix().total(), queries);
    }

    #[test]
    fn switches_away_from_bad_estimator() {
        // Force H4096 active, then hammer with keyword queries it cannot
        // answer — the adaptor must switch away.
        let mut config = small_config();
        config.default_estimator = EstimatorKind::H4096;
        config.pretrain_queries = 20;
        config.min_switch_spacing = 8;
        config.accuracy_window = 8;
        let mut latest = Latest::new(config);
        let mut gen = warm_up(&mut latest);
        let mut rng = StdRng::seed_from_u64(4);
        // Pre-train with keyword queries so rewards already favor samplers.
        for _ in 0..20 {
            latest.ingest(gen.next_object());
            let q = RcDvq::keyword(vec![KeywordId(rng.gen_range(0..50))]);
            let _ = latest.query(&q, QueryOptions::at(gen.clock()));
        }
        assert_eq!(latest.phase(), PhaseTag::Incremental);
        assert_eq!(latest.active_kind(), EstimatorKind::H4096);
        for _ in 0..80 {
            for _ in 0..2 {
                latest.ingest(gen.next_object());
            }
            let q = RcDvq::keyword(vec![KeywordId(rng.gen_range(0..50))]);
            let _ = latest.query(&q, QueryOptions::at(gen.clock()));
            if latest.active_kind() != EstimatorKind::H4096 {
                break;
            }
        }
        assert_ne!(
            latest.active_kind(),
            EstimatorKind::H4096,
            "never switched away from a keyword-blind estimator"
        );
        assert!(!latest.log().switches.is_empty());
        let sw = latest.log().switches[0];
        assert_eq!(sw.from, EstimatorKind::H4096);
        assert!(sw.trigger_average < latest.config().tau);
    }

    #[test]
    fn good_estimator_is_kept() {
        // RSH on well-behaved mixed queries should not thrash.
        let config = small_config();
        let domain = config.estimator_config.domain;
        let mut latest = Latest::new(config);
        let mut gen = warm_up(&mut latest);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..150 {
            for _ in 0..3 {
                latest.ingest(gen.next_object());
            }
            // Large ranges → high actual counts → sampler accuracy high.
            let q = RcDvq::spatial(Rect::centered_clamped(
                geostream::Point::new(
                    rng.gen_range(domain.min_x..domain.max_x),
                    rng.gen_range(domain.min_y..domain.max_y),
                ),
                20.0,
                10.0,
                &domain,
            ));
            let _ = latest.query(&q, QueryOptions::at(gen.clock()));
        }
        assert!(
            latest.log().switches.len() <= 1,
            "stable workload caused {} switches",
            latest.log().switches.len()
        );
    }

    #[test]
    fn shadow_metrics_record_every_estimator() {
        let mut config = small_config();
        config.shadow_metrics = true;
        config.pretrain_queries = 10;
        let domain = config.estimator_config.domain;
        let mut latest = Latest::new(config);
        let mut gen = warm_up(&mut latest);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..20 {
            latest.ingest(gen.next_object());
            let q = random_query(&mut rng, &domain);
            let _ = latest.query(&q, QueryOptions::at(gen.clock()));
        }
        let last = latest.log().queries.last().unwrap();
        assert_eq!(last.phase, PhaseTag::Incremental);
        assert_eq!(last.shadow.len(), 6, "shadow mode must measure all six");
    }

    #[test]
    fn window_eviction_reaches_estimators() {
        let mut config = small_config();
        config.window_span = Duration::from_secs(5);
        config.warmup = Duration::from_secs(5);
        let mut latest = Latest::new(config);
        let mut gen = DatasetSpec::twitter().generator();
        for _ in 0..3_000 {
            latest.ingest(gen.next_object());
        }
        // Window span is 5s and objects arrive ~4ms apart ⇒ far fewer live
        // than ingested.
        assert!(latest.window_len() < 3_000);
        assert_eq!(latest.executor.len(), latest.window_len());
    }

    #[test]
    fn switching_ablation_pins_default_estimator() {
        let mut config = small_config();
        config.default_estimator = EstimatorKind::H4096;
        config.ablation.switching = false;
        let mut latest = Latest::new(config);
        let mut gen = warm_up(&mut latest);
        let mut rng = StdRng::seed_from_u64(21);
        // Keyword flood: full LATEST would abandon the histogram; the
        // no-switching ablation must stay put.
        for _ in 0..120 {
            latest.ingest(gen.next_object());
            let q = RcDvq::keyword(vec![KeywordId(rng.gen_range(0..50))]);
            let _ = latest.query(&q, QueryOptions::at(gen.clock()));
        }
        assert_eq!(latest.active_kind(), EstimatorKind::H4096);
        assert!(latest.log().switches.is_empty());
    }

    #[test]
    fn cold_switch_ablation_still_switches() {
        let mut config = small_config();
        config.default_estimator = EstimatorKind::H4096;
        config.pretrain_queries = 20;
        config.min_switch_spacing = 8;
        config.accuracy_window = 8;
        config.ablation.prefill = false;
        let mut latest = Latest::new(config);
        let mut gen = warm_up(&mut latest);
        let mut rng = StdRng::seed_from_u64(22);
        for _ in 0..120 {
            for _ in 0..2 {
                latest.ingest(gen.next_object());
            }
            let q = RcDvq::keyword(vec![KeywordId(rng.gen_range(0..50))]);
            let _ = latest.query(&q, QueryOptions::at(gen.clock()));
            if latest.active_kind() != EstimatorKind::H4096 {
                break;
            }
        }
        // Switching still happens; the replacement just starts cold.
        assert_ne!(latest.active_kind(), EstimatorKind::H4096);
    }

    #[test]
    fn ewma_only_ablation_still_recommends() {
        let mut config = small_config();
        config.default_estimator = EstimatorKind::H4096;
        config.pretrain_queries = 20;
        config.min_switch_spacing = 8;
        config.accuracy_window = 8;
        config.ablation.use_tree = false;
        let mut latest = Latest::new(config);
        let mut gen = warm_up(&mut latest);
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..120 {
            for _ in 0..2 {
                latest.ingest(gen.next_object());
            }
            let q = RcDvq::keyword(vec![KeywordId(rng.gen_range(0..50))]);
            let _ = latest.query(&q, QueryOptions::at(gen.clock()));
            if latest.active_kind() != EstimatorKind::H4096 {
                break;
            }
        }
        assert_ne!(latest.active_kind(), EstimatorKind::H4096);
    }

    #[test]
    #[should_panic(expected = "tau must be in")]
    fn rejects_bad_tau() {
        let mut config = small_config();
        config.tau = 1.5;
        let _ = Latest::new(config);
    }

    #[test]
    fn repeat_query_hits_cache_until_window_changes() {
        let config = small_config();
        let mut latest = Latest::new(config);
        let mut gen = warm_up(&mut latest);
        let q = RcDvq::keyword(vec![KeywordId(3)]);
        let first = latest.query(&q, QueryOptions::at(gen.clock()));
        assert!(matches!(first.served_by, ServedBy::Estimator(_)));
        // Same query, unchanged window: a pure cache read that repeats the
        // answer bit-for-bit and skips the executor and the log.
        let logged = latest.log().queries.len();
        let hit = latest.query(&q, QueryOptions::at(gen.clock()));
        assert_eq!(hit.served_by, ServedBy::Cache);
        assert_eq!(hit.estimate.to_bits(), first.estimate.to_bits());
        assert_eq!(hit.actual, first.actual);
        assert_eq!(hit.accuracy.to_bits(), first.accuracy.to_bits());
        assert_eq!(hit.latency_ms, 0.0);
        assert!(!hit.switched);
        assert_eq!(latest.log().queries.len(), logged);
        let m = latest.metrics_snapshot();
        assert_eq!(m.cache_hits, 1);
        assert_eq!(m.cache_misses, 1);
        // Any content change invalidates: the next repeat misses again.
        latest.ingest(gen.next_object());
        let after = latest.query(&q, QueryOptions::at(gen.clock()));
        assert_ne!(after.served_by, ServedBy::Cache);
        assert_eq!(latest.metrics_snapshot().cache_misses, 2);
        assert!(latest.cache().invalidations() >= 1);
    }

    #[test]
    fn opting_out_of_the_cache_repeats_the_full_path() {
        let config = small_config();
        let mut latest = Latest::new(config);
        let gen = warm_up(&mut latest);
        let q = RcDvq::keyword(vec![KeywordId(3)]);
        let opts = QueryOptions::at(gen.clock()).use_cache(false);
        let logged = latest.log().queries.len();
        let _ = latest.query(&q, opts);
        let second = latest.query(&q, opts);
        assert_ne!(second.served_by, ServedBy::Cache);
        assert_eq!(latest.log().queries.len(), logged + 2);
        assert_eq!(latest.metrics_snapshot().cache_hits, 0);
        // The deprecated shim preserves the legacy cache-free semantics.
        #[allow(deprecated)]
        let third = latest.query_at(&q, gen.clock());
        assert_ne!(third.served_by, ServedBy::Cache);
    }

    #[test]
    fn exact_queries_bypass_estimation_and_learning() {
        let config = small_config();
        let mut latest = Latest::new(config);
        let gen = warm_up(&mut latest);
        let q = RcDvq::keyword(vec![KeywordId(7)]);
        let logged = latest.log().queries.len();
        let out = latest.query(&q, QueryOptions::at(gen.clock()).exact(true));
        assert_eq!(out.served_by, ServedBy::Exact);
        assert_eq!(out.estimate, out.actual as f64);
        assert_eq!(out.accuracy, 1.0);
        // Ground truth is not an estimate: nothing is logged or learned,
        // and nothing lands in the cache.
        assert_eq!(latest.log().queries.len(), logged);
        assert!(latest.cache().is_empty());
        let estimated = latest.query(&q, QueryOptions::at(gen.clock()));
        assert!(matches!(estimated.served_by, ServedBy::Estimator(_)));
    }

    #[test]
    fn query_batch_matches_sequential_queries() {
        let config = small_config();
        let domain = config.estimator_config.domain;
        let mut batched = Latest::new(config);
        let mut single = Latest::new(small_config());
        let gen_b = warm_up(&mut batched);
        let _gen_s = warm_up(&mut single);
        let mut rng = StdRng::seed_from_u64(11);
        let mut queries: Vec<RcDvq> = (0..24).map(|_| random_query(&mut rng, &domain)).collect();
        // Duplicates inside the batch must collapse onto cache hits.
        queries.push(queries[0].clone());
        queries.push(queries[3].clone());
        let at = gen_b.clock();
        let batch_outs = batched.query_batch(&queries, QueryOptions::at(at));
        let single_outs: Vec<QueryOutcome> = queries
            .iter()
            .map(|q| single.query(q, QueryOptions::at(at)))
            .collect();
        assert_eq!(batch_outs.len(), single_outs.len());
        for (b, s) in batch_outs.iter().zip(&single_outs) {
            assert_eq!(b.estimate.to_bits(), s.estimate.to_bits());
            assert_eq!(b.actual, s.actual);
            assert_eq!(b.accuracy.to_bits(), s.accuracy.to_bits());
            assert_eq!(b.estimator, s.estimator);
            assert_eq!(b.phase, s.phase);
            assert_eq!(b.served_by, s.served_by);
        }
        assert_eq!(batch_outs[24].served_by, ServedBy::Cache);
        assert_eq!(batch_outs[25].served_by, ServedBy::Cache);
        assert_eq!(batched.log().queries.len(), single.log().queries.len());
        let m = batched.metrics_snapshot();
        // At least the two appended duplicates hit (the random 24 may
        // collide among themselves too).
        assert!(m.cache_hits >= 2);
        assert_eq!(m.query_batch_sizes.count, 1);
    }

    #[test]
    fn exact_batch_reports_ground_truth_for_every_query() {
        let config = small_config();
        let mut latest = Latest::new(config);
        let gen = warm_up(&mut latest);
        let queries = vec![
            RcDvq::keyword(vec![KeywordId(1)]),
            RcDvq::spatial(Rect::WORLD),
            RcDvq::keyword(vec![KeywordId(1)]),
        ];
        let outs = latest.query_batch(&queries, QueryOptions::at(gen.clock()).exact(true));
        assert_eq!(outs.len(), 3);
        for (q, out) in queries.iter().zip(&outs) {
            assert_eq!(out.served_by, ServedBy::Exact);
            assert_eq!(
                out.actual,
                latest
                    .query(q, QueryOptions::at(gen.clock()).exact(true))
                    .actual
            );
        }
        assert_eq!(outs[1].actual, latest.window_len() as u64);
        assert_eq!(outs[0].actual, outs[2].actual);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut latest = Latest::new(small_config());
        let _ = warm_up(&mut latest);
        let before = latest.metrics_snapshot();
        assert!(latest.query_batch(&[], QueryOptions::new()).is_empty());
        let after = latest.metrics_snapshot();
        assert_eq!(after.queries_total, before.queries_total);
        assert_eq!(after.query_batch_sizes.count, 0);
    }
}
