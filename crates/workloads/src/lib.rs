//! # workloads — the paper's query workloads (§VI-A)
//!
//! Generators for the Twitter (`TwQW1`–`TwQW6`), eBird (`EbRQW1`), and
//! CheckIn (`CiQW1`) query workloads: deterministic streams of
//! [`RcDvq`](geostream::RcDvq) queries with controlled compositions of
//! pure-spatial, pure-keyword, and hybrid queries that can *change over
//! the workload's lifetime* — the dynamism LATEST is built to absorb.
//!
//! Query locations are sampled from the same hotspot mixture that
//! generates the data (standing in for the paper's Bing mobile-search
//! locations, which correlate with population density), and query keywords
//! are Zipf-drawn from the dataset vocabulary (the paper picks them
//! "randomly from evaluation data", which reproduces the data's skew).

mod spec;

pub use spec::{Mix, WorkloadGenerator, WorkloadSpec};

use geostream::synth::DatasetSpec;

/// A workload-family lookup failed: the requested number is outside the
/// set of workloads the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadError {
    /// The workload family name (`"TwQW"`, `"EbRQW"`, `"CiQW"`).
    pub family: &'static str,
    /// The requested workload number.
    pub n: u8,
    /// The largest valid number for the family (all start at 1).
    pub max: u8,
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}{} is not one of the evaluated workloads ({}1..={})",
            self.family, self.n, self.family, self.max
        )
    }
}

impl std::error::Error for WorkloadError {}

/// The Twitter workloads TwQW1–TwQW6 (the paper describes six of its nine;
/// we reproduce the six it evaluates). Fallible lookup; [`twqw`] is the
/// panicking convenience.
pub fn try_twqw(n: u8) -> Result<WorkloadSpec, WorkloadError> {
    if !(1..=6).contains(&n) {
        return Err(WorkloadError {
            family: "TwQW",
            n,
            max: 6,
        });
    }
    let base = DatasetSpec::twitter();
    Ok(match n {
        // One-third each, with the dominant type rotating in blocks —
        // "types of queries are heavily changing over time" (§VI-B).
        1 => WorkloadSpec::new("TwQW1", base, 100_000)
            .with_blocks(vec![
                Mix::spatial_only(),
                Mix::keyword_only(),
                Mix::hybrid_only(),
                Mix::spatial_only(),
                Mix::keyword_only(),
                Mix::hybrid_only(),
            ])
            .with_keyword_counts(1, 3),
        // 100% pure spatial.
        2 => WorkloadSpec::new("TwQW2", base, 100_000).with_blocks(vec![Mix::spatial_only()]),
        // 50% pure spatial / 50% hybrid.
        3 => WorkloadSpec::new("TwQW3", base, 100_000)
            .with_blocks(vec![Mix::new(0.5, 0.0, 0.5)])
            .with_keyword_counts(1, 2),
        // 100% single-keyword queries.
        4 => WorkloadSpec::new("TwQW4", base, 100_000)
            .with_blocks(vec![Mix::keyword_only()])
            .with_keyword_counts(1, 1),
        // 100% multi-keyword queries.
        5 => WorkloadSpec::new("TwQW5", base, 100_000)
            .with_blocks(vec![Mix::keyword_only()])
            .with_keyword_counts(2, 5),
        // Same thirds as TwQW1 in a different block order (§VI-B, Fig. 4).
        6 => WorkloadSpec::new("TwQW6", base, 100_000)
            .with_blocks(vec![
                Mix::keyword_only(),
                Mix::spatial_only(),
                Mix::keyword_only(),
                Mix::hybrid_only(),
            ])
            .with_keyword_counts(1, 3),
        _ => unreachable!("range-checked above"),
    })
}

/// Panicking convenience around [`try_twqw`].
///
/// # Panics
/// Panics for numbers outside `1..=6`.
pub fn twqw(n: u8) -> WorkloadSpec {
    // LINT-ALLOW(no-panic): documented convenience wrapper; try_twqw is the
    // fallible path for workload numbers taken from user input.
    try_twqw(n).unwrap_or_else(|e| panic!("{e}"))
}

/// The six eBird request workloads (§VI-A: 40K real dataset-search
/// requests combined with sampled keywords into "six workloads of
/// different query type distributions"). The paper's figures use EbRQW1.
/// Fallible lookup; [`ebrqw`] is the panicking convenience.
pub fn try_ebrqw(n: u8) -> Result<WorkloadSpec, WorkloadError> {
    if !(1..=6).contains(&n) {
        return Err(WorkloadError {
            family: "EbRQW",
            n,
            max: 6,
        });
    }
    let base = WorkloadSpec::new(
        match n {
            1 => "EbRQW1",
            2 => "EbRQW2",
            3 => "EbRQW3",
            4 => "EbRQW4",
            5 => "EbRQW5",
            6 => "EbRQW6",
            _ => unreachable!("range-checked above"),
        },
        DatasetSpec::ebird(),
        40_000,
    )
    // Dataset-search requests span wide ranges compared to the tight
    // observation clusters.
    .with_range_scale(2.0);
    Ok(match n {
        // 100% spatial — the workload the paper evaluates in its figures.
        1 => base.with_blocks(vec![Mix::spatial_only()]),
        // 100% keyword (species / protocol searches).
        2 => base
            .with_blocks(vec![Mix::keyword_only()])
            .with_keyword_counts(1, 3),
        // 100% hybrid (species within a region).
        3 => base
            .with_blocks(vec![Mix::new(0.0, 0.0, 1.0)])
            .with_keyword_counts(1, 2),
        // Uniform thirds.
        4 => base.with_keyword_counts(1, 2),
        // Half spatial, half keyword.
        5 => base
            .with_blocks(vec![Mix::new(0.5, 0.5, 0.0)])
            .with_keyword_counts(1, 2),
        // Rotating blocks (the TwQW1-style dynamic variant).
        6 => base
            .with_blocks(vec![
                Mix::spatial_only(),
                Mix::keyword_only(),
                Mix::new(0.0, 0.0, 1.0),
            ])
            .with_keyword_counts(1, 2),
        _ => unreachable!("range-checked above"),
    })
}

/// Panicking convenience around [`try_ebrqw`].
///
/// # Panics
/// Panics for numbers outside `1..=6`.
pub fn ebrqw(n: u8) -> WorkloadSpec {
    // LINT-ALLOW(no-panic): documented convenience wrapper; try_ebrqw is
    // the fallible path for workload numbers taken from user input.
    try_ebrqw(n).unwrap_or_else(|e| panic!("{e}"))
}

/// `EbRQW1` — the eBird workload the paper's figures use.
pub fn ebrqw1() -> WorkloadSpec {
    ebrqw(1)
}

/// The three CheckIn workloads (§VI-A: "three workloads of different
/// distributions of query types"). The paper's figures use CiQW1.
/// Fallible lookup; [`ciqw`] is the panicking convenience.
pub fn try_ciqw(n: u8) -> Result<WorkloadSpec, WorkloadError> {
    if !(1..=3).contains(&n) {
        return Err(WorkloadError {
            family: "CiQW",
            n,
            max: 3,
        });
    }
    let base = WorkloadSpec::new(
        match n {
            1 => "CiQW1",
            2 => "CiQW2",
            3 => "CiQW3",
            _ => unreachable!("range-checked above"),
        },
        DatasetSpec::checkin(),
        100_000,
    );
    Ok(match n {
        // 100K single-keyword queries — the paper's evaluated workload.
        1 => base
            .with_blocks(vec![Mix::keyword_only()])
            .with_keyword_counts(1, 1),
        // 100% spatial (venue-density queries).
        2 => base.with_blocks(vec![Mix::spatial_only()]),
        // Uniform thirds.
        3 => base.with_keyword_counts(1, 2),
        _ => unreachable!("range-checked above"),
    })
}

/// Panicking convenience around [`try_ciqw`].
///
/// # Panics
/// Panics for numbers outside `1..=3`.
pub fn ciqw(n: u8) -> WorkloadSpec {
    // LINT-ALLOW(no-panic): documented convenience wrapper; try_ciqw is
    // the fallible path for workload numbers taken from user input.
    try_ciqw(n).unwrap_or_else(|e| panic!("{e}"))
}

/// `CiQW1` — the CheckIn workload the paper's figures use.
pub fn ciqw1() -> WorkloadSpec {
    ciqw(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geostream::QueryType;

    #[test]
    fn out_of_range_workload_numbers_are_typed_errors() {
        assert_eq!(
            try_twqw(0).unwrap_err(),
            WorkloadError {
                family: "TwQW",
                n: 0,
                max: 6
            }
        );
        assert!(try_twqw(7).is_err());
        assert!(try_ebrqw(7).is_err());
        assert!(try_ciqw(4).is_err());
        let msg = try_ciqw(9).unwrap_err().to_string();
        assert!(msg.contains("CiQW9"), "{msg}");
        assert!(msg.contains("CiQW1..=3"), "{msg}");
        for n in 1..=6 {
            assert!(try_twqw(n).is_ok());
            assert!(try_ebrqw(n).is_ok());
        }
        for n in 1..=3 {
            assert!(try_ciqw(n).is_ok());
        }
    }

    fn type_histogram(spec: &WorkloadSpec, n: usize) -> [usize; 3] {
        let mut counts = [0usize; 3];
        let mut g = spec.generator();
        for i in 0..n {
            let q = g.query_at(i);
            counts[q.query_type().index() as usize] += 1;
        }
        counts
    }

    #[test]
    fn twqw2_is_pure_spatial() {
        let spec = twqw(2).with_total(1_000);
        let [s, k, h] = type_histogram(&spec, 1_000);
        assert_eq!((s, k, h), (1_000, 0, 0));
    }

    #[test]
    fn twqw4_is_pure_single_keyword() {
        let spec = twqw(4).with_total(1_000);
        let mut g = spec.generator();
        for i in 0..1_000 {
            let q = g.query_at(i);
            assert_eq!(q.query_type(), QueryType::Keyword);
            assert_eq!(q.keywords().len(), 1);
        }
    }

    #[test]
    fn twqw5_is_pure_multi_keyword() {
        let spec = twqw(5).with_total(500);
        let mut g = spec.generator();
        for i in 0..500 {
            let q = g.query_at(i);
            assert_eq!(q.query_type(), QueryType::Keyword);
            assert!(q.keywords().len() >= 2 && q.keywords().len() <= 5);
        }
    }

    #[test]
    fn twqw1_has_all_types_in_thirds() {
        let spec = twqw(1).with_total(6_000);
        let [s, k, h] = type_histogram(&spec, 6_000);
        // Rotating dominance evens out to roughly a third each.
        for (name, c) in [("spatial", s), ("keyword", k), ("hybrid", h)] {
            assert!(
                (1_400..=2_600).contains(&c),
                "{name} count {c} far from a third of 6000"
            );
        }
    }

    #[test]
    fn twqw1_composition_shifts_over_time() {
        let spec = twqw(1).with_total(6_000);
        let mut g = spec.generator();
        // First block is spatial-dominated, second keyword-dominated.
        let mut first = [0usize; 3];
        for i in 0..800 {
            first[g.query_at(i).query_type().index() as usize] += 1;
        }
        let mut second = [0usize; 3];
        for i in 1_000..1_800 {
            second[g.query_at(i).query_type().index() as usize] += 1;
        }
        assert!(
            first[0] > first[1] * 2,
            "block 1 not spatial-dominated: {first:?}"
        );
        assert!(
            second[1] > second[0] * 2,
            "block 2 not keyword-dominated: {second:?}"
        );
    }

    #[test]
    fn twqw6_differs_from_twqw1_in_order() {
        let w1 = twqw(1).with_total(4_000);
        let w6 = twqw(6).with_total(4_000);
        let mut g1 = w1.generator();
        let mut g6 = w6.generator();
        // Early TwQW1 is spatial-dominated; early TwQW6 keyword-dominated.
        let t1 = g1.query_at(10).query_type();
        let t6_counts = {
            let mut c = [0usize; 3];
            for i in 0..400 {
                c[g6.query_at(i).query_type().index() as usize] += 1;
            }
            c
        };
        let _ = t1;
        assert!(
            t6_counts[1] > t6_counts[0],
            "TwQW6 must start keyword-heavy"
        );
    }

    #[test]
    fn ebrqw1_is_spatial_with_wide_ranges() {
        let spec = ebrqw1().with_total(500);
        let mut g = spec.generator();
        let domain = spec.dataset().domain;
        for i in 0..500 {
            let q = g.query_at(i);
            assert_eq!(q.query_type(), QueryType::Spatial);
            let r = q.range().unwrap();
            assert!(domain.contains_rect(r));
            assert!(r.area() > 0.0);
        }
    }

    #[test]
    fn ciqw1_single_keyword_in_vocab() {
        let spec = ciqw1().with_total(500);
        let vocab = spec.dataset().vocab_size;
        let mut g = spec.generator();
        for i in 0..500 {
            let q = g.query_at(i);
            assert_eq!(q.keywords().len(), 1);
            assert!((q.keywords()[0].index()) < vocab);
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let a: Vec<_> = {
            let spec = twqw(1).with_total(100);
            let mut g = spec.generator();
            (0..100).map(|i| g.query_at(i)).collect()
        };
        let b: Vec<_> = {
            let spec = twqw(1).with_total(100);
            let mut g = spec.generator();
            (0..100).map(|i| g.query_at(i)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "not one of the evaluated workloads")]
    fn unknown_workload_panics() {
        let _ = twqw(9);
    }

    #[test]
    fn all_ebird_workloads_generate() {
        for n in 1..=6u8 {
            let spec = ebrqw(n).with_total(300);
            let mut g = spec.generator();
            for i in 0..300 {
                let _ = g.query_at(i);
            }
            assert!(spec.name().starts_with("EbRQW"));
        }
    }

    #[test]
    fn ebrqw2_is_pure_keyword() {
        let spec = ebrqw(2).with_total(300);
        let mut g = spec.generator();
        for i in 0..300 {
            assert_eq!(g.query_at(i).query_type(), QueryType::Keyword);
        }
    }

    #[test]
    fn ebrqw3_is_pure_hybrid() {
        let spec = ebrqw(3).with_total(300);
        let mut g = spec.generator();
        for i in 0..300 {
            assert_eq!(g.query_at(i).query_type(), QueryType::Hybrid);
        }
    }

    #[test]
    fn ciqw2_is_pure_spatial() {
        let spec = ciqw(2).with_total(300);
        let mut g = spec.generator();
        for i in 0..300 {
            assert_eq!(g.query_at(i).query_type(), QueryType::Spatial);
        }
    }

    #[test]
    fn ciqw3_mixes_types() {
        let spec = ciqw(3).with_total(900);
        let [s, k, h] = type_histogram(&spec, 900);
        assert!(s > 100 && k > 100 && h > 100, "not mixed: {s}/{k}/{h}");
    }

    #[test]
    #[should_panic(expected = "CiQW5 is not one of the evaluated workloads")]
    fn unknown_checkin_workload_panics() {
        let _ = ciqw(5);
    }
}
