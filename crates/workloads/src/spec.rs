//! Workload specifications and the deterministic query generator.

use geostream::synth::{GaussianMixture, KeywordModel, SpatialModel, TopicDrift, ZipfKeywords};
use geostream::{KeywordId, Point, RcDvq, Rect, Timestamp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A composition of query types, as probabilities summing to 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mix {
    pub spatial: f64,
    pub keyword: f64,
    pub hybrid: f64,
}

impl Mix {
    /// Builds a mix; the three shares must sum to 1 (±1e-9).
    pub fn new(spatial: f64, keyword: f64, hybrid: f64) -> Self {
        let sum = spatial + keyword + hybrid;
        assert!((sum - 1.0).abs() < 1e-9, "mix must sum to 1, got {sum}");
        assert!(spatial >= 0.0 && keyword >= 0.0 && hybrid >= 0.0);
        Mix {
            spatial,
            keyword,
            hybrid,
        }
    }

    /// 100% pure spatial queries.
    pub fn spatial_only() -> Self {
        Mix::new(1.0, 0.0, 0.0)
    }

    /// 100% pure keyword queries.
    pub fn keyword_only() -> Self {
        Mix::new(0.0, 1.0, 0.0)
    }

    /// 100% hybrid queries.
    pub fn hybrid_only() -> Self {
        Mix::new(0.0, 0.0, 1.0)
    }

    /// Spatial-dominated third-mix block (70/15/15).
    pub fn dominated_spatial() -> Self {
        Mix::new(0.7, 0.15, 0.15)
    }

    /// Keyword-dominated third-mix block (15/70/15).
    pub fn dominated_keyword() -> Self {
        Mix::new(0.15, 0.7, 0.15)
    }

    /// Hybrid-dominated third-mix block (15/15/70).
    pub fn dominated_hybrid() -> Self {
        Mix::new(0.15, 0.15, 0.7)
    }
}

/// Full description of a query workload over one dataset.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    name: &'static str,
    dataset: geostream::synth::DatasetSpec,
    total: usize,
    /// Equal-length blocks of query-type composition covering the
    /// workload's lifetime.
    blocks: Vec<Mix>,
    /// Inclusive range of keywords per keyword-bearing query.
    keyword_counts: (usize, usize),
    /// Base half-extent of query ranges, as a multiple of the dataset's
    /// hotspot sigma (≈ "city-sized" at 1.0).
    range_scale: f64,
    /// When set, every spatial range uses exactly this half-extent in
    /// degrees (the Fig. 9/10 sweep knob).
    fixed_half_extent: Option<f64>,
    /// When set, every keyword query uses exactly this many keywords (the
    /// Fig. 11 sweep knob).
    fixed_keyword_count: Option<usize>,
    seed: u64,
}

impl WorkloadSpec {
    /// Creates a workload over `dataset` with `total` queries and a single
    /// uniform-mix block (one third each) until blocks are configured.
    pub fn new(name: &'static str, dataset: geostream::synth::DatasetSpec, total: usize) -> Self {
        WorkloadSpec {
            name,
            seed: dataset.seed ^ 0x9e3779b9,
            dataset,
            total,
            blocks: vec![Mix::new(1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0)],
            keyword_counts: (1, 3),
            range_scale: 1.0,
            fixed_half_extent: None,
            fixed_keyword_count: None,
        }
    }

    /// The workload's display name (e.g. `TwQW1`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The dataset the workload runs against.
    pub fn dataset(&self) -> &geostream::synth::DatasetSpec {
        &self.dataset
    }

    /// Total queries in the workload.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Replaces the composition schedule.
    pub fn with_blocks(mut self, blocks: Vec<Mix>) -> Self {
        assert!(!blocks.is_empty(), "schedule needs at least one block");
        self.blocks = blocks;
        self
    }

    /// Sets the per-query keyword count range.
    pub fn with_keyword_counts(mut self, lo: usize, hi: usize) -> Self {
        assert!(lo >= 1 && hi >= lo, "invalid keyword count range");
        self.keyword_counts = (lo, hi);
        self
    }

    /// Scales spatial query ranges relative to hotspot size.
    pub fn with_range_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0);
        self.range_scale = scale;
        self
    }

    /// Overrides the query count (for scaled-down runs).
    pub fn with_total(mut self, total: usize) -> Self {
        assert!(total >= 1);
        self.total = total;
        self
    }

    /// Fixes every spatial range to the given half-extent in degrees
    /// (Fig. 9/10 sweeps).
    pub fn with_fixed_half_extent(mut self, half: f64) -> Self {
        assert!(half > 0.0);
        self.fixed_half_extent = Some(half);
        self
    }

    /// Fixes every keyword query to exactly `count` keywords (Fig. 11
    /// sweep).
    pub fn with_fixed_keyword_count(mut self, count: usize) -> Self {
        assert!(count >= 1);
        self.fixed_keyword_count = Some(count);
        self
    }

    /// Overrides the workload RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the deterministic generator.
    pub fn generator(&self) -> WorkloadGenerator {
        WorkloadGenerator::new(self.clone())
    }

    /// The composition in force at query position `i` of `total`.
    pub fn mix_at(&self, i: usize) -> Mix {
        let block = (i * self.blocks.len() / self.total.max(1)).min(self.blocks.len() - 1);
        self.blocks[block]
    }
}

/// Deterministic query generator for one [`WorkloadSpec`].
///
/// Query centers come from the dataset's own hotspot mixture, so queries
/// land where data lives (as real search traffic does); keywords are
/// Zipf-drawn from the dataset vocabulary.
pub struct WorkloadGenerator {
    spec: WorkloadSpec,
    centers: GaussianMixture,
    keywords: Box<dyn KeywordModel + Send + Sync>,
    rng: StdRng,
    /// Virtual stream time the next queries are issued at; drives topical
    /// drift so query keywords track the data's hot vocabulary (the paper
    /// picks query keywords "randomly from evaluation data").
    now: Timestamp,
}

impl WorkloadGenerator {
    fn new(spec: WorkloadSpec) -> Self {
        let centers = spec.dataset.spatial_model();
        // Query keywords are more head-skewed than the content itself —
        // search-term frequency famously concentrates harder than document
        // vocabulary — so the query sampler uses a steeper Zipf exponent
        // than the data generator. It also follows the dataset's topical
        // drift: users search what is currently being posted.
        let base = ZipfKeywords::new(spec.dataset.vocab_size, spec.dataset.zipf_s + 0.35);
        let keywords: Box<dyn KeywordModel + Send + Sync> = match spec.dataset.keyword_drift {
            Some((period, step)) => Box::new(TopicDrift::new(base, period, step)),
            None => Box::new(base),
        };
        let rng = StdRng::seed_from_u64(spec.seed);
        WorkloadGenerator {
            spec,
            centers,
            keywords,
            rng,
            now: Timestamp::ZERO,
        }
    }

    /// Sets the virtual stream time for subsequent queries (drives topical
    /// drift; harmless when the dataset has none).
    pub fn set_time(&mut self, now: Timestamp) {
        self.now = now;
    }

    /// The spec this generator was built from.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Generates the query at position `i` of the workload. Positions need
    /// not be visited in order, but the stream of random draws is shared,
    /// so identical call sequences produce identical workloads.
    pub fn query_at(&mut self, i: usize) -> RcDvq {
        let mix = self.spec.mix_at(i);
        let u: f64 = self.rng.gen();
        if u < mix.spatial {
            RcDvq::spatial(self.sample_range())
        } else if u < mix.spatial + mix.keyword {
            RcDvq::keyword(self.sample_keywords())
        } else {
            RcDvq::hybrid(self.sample_range(), self.sample_keywords())
        }
    }

    fn sample_range(&mut self) -> Rect {
        let domain = self.spec.dataset.domain;
        let center = self.centers.sample(&mut self.rng, self.now);
        let (hx, hy) = match self.spec.fixed_half_extent {
            Some(h) => (h, h),
            None => {
                // Query extents of a few hotspot sigmas (≈ a few grid
                // cells), varying ~3× so the estimators see a spread of
                // selectivities.
                let base_x = self.spec.dataset.sigma_frac * domain.width();
                let base_y = self.spec.dataset.sigma_frac * domain.height();
                let f = self.rng.gen_range(1.5..5.0) * self.spec.range_scale;
                (base_x * f, base_y * f)
            }
        };
        Rect::centered_clamped(Point::new(center.x, center.y), hx, hy, &domain)
    }

    fn sample_keywords(&mut self) -> Vec<KeywordId> {
        let count = match self.spec.fixed_keyword_count {
            Some(c) => c,
            None => {
                let (lo, hi) = self.spec.keyword_counts;
                self.rng.gen_range(lo..=hi)
            }
        };
        // Rejection-light distinct draw: Zipf repeats are re-rolled a few
        // times, then accepted (duplicates are deduped by RcDvq anyway).
        let mut kws: Vec<KeywordId> = Vec::with_capacity(count);
        for _ in 0..count {
            let mut kw = self.keywords.sample_keywords(&mut self.rng, self.now, 1)[0];
            for _ in 0..4 {
                if !kws.contains(&kw) {
                    break;
                }
                kw = self.keywords.sample_keywords(&mut self.rng, self.now, 1)[0];
            }
            kws.push(kw);
        }
        kws
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geostream::synth::DatasetSpec;

    #[test]
    fn mix_must_sum_to_one() {
        let m = Mix::new(0.2, 0.3, 0.5);
        assert_eq!(m.spatial, 0.2);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_mix_panics() {
        let _ = Mix::new(0.5, 0.5, 0.5);
    }

    #[test]
    fn mix_at_walks_blocks() {
        let spec = WorkloadSpec::new("t", DatasetSpec::twitter(), 100)
            .with_blocks(vec![Mix::spatial_only(), Mix::keyword_only()]);
        assert_eq!(spec.mix_at(0), Mix::spatial_only());
        assert_eq!(spec.mix_at(49), Mix::spatial_only());
        assert_eq!(spec.mix_at(50), Mix::keyword_only());
        assert_eq!(spec.mix_at(99), Mix::keyword_only());
        // Out-of-range clamps to the last block.
        assert_eq!(spec.mix_at(500), Mix::keyword_only());
    }

    #[test]
    fn ranges_stay_in_domain() {
        let spec = WorkloadSpec::new("t", DatasetSpec::twitter(), 100)
            .with_blocks(vec![Mix::spatial_only()]);
        let domain = spec.dataset().domain;
        let mut g = spec.generator();
        for i in 0..100 {
            let q = g.query_at(i);
            assert!(domain.contains_rect(q.range().unwrap()));
        }
    }

    #[test]
    fn fixed_half_extent_is_respected() {
        let spec = WorkloadSpec::new("t", DatasetSpec::twitter(), 50)
            .with_blocks(vec![Mix::spatial_only()])
            .with_fixed_half_extent(1.5);
        let mut g = spec.generator();
        for i in 0..50 {
            let r = *g.query_at(i).range().unwrap();
            // Clamping can shrink edge queries, never grow them.
            assert!(r.width() <= 3.0 + 1e-9);
            assert!(r.height() <= 3.0 + 1e-9);
        }
    }

    #[test]
    fn fixed_keyword_count_is_respected() {
        let spec = WorkloadSpec::new("t", DatasetSpec::twitter(), 50)
            .with_blocks(vec![Mix::keyword_only()])
            .with_fixed_keyword_count(4);
        let mut g = spec.generator();
        let mut four = 0;
        for i in 0..50 {
            let n = g.query_at(i).keywords().len();
            assert!(n <= 4);
            if n == 4 {
                four += 1;
            }
        }
        // Zipf collisions can dedup a few below 4, but most hit exactly 4.
        assert!(four >= 40, "only {four}/50 reached 4 distinct keywords");
    }

    #[test]
    fn keyword_skew_follows_zipf() {
        let spec = WorkloadSpec::new("t", DatasetSpec::twitter(), 5_000)
            .with_blocks(vec![Mix::keyword_only()])
            .with_keyword_counts(1, 1);
        let mut g = spec.generator();
        let mut head = 0usize;
        for i in 0..5_000 {
            if g.query_at(i).keywords()[0].index() < 20 {
                head += 1;
            }
        }
        assert!(head > 1_000, "query keywords not skewed: head={head}");
    }
}
