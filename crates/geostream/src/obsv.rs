//! Clock-free metric primitives: counters, gauges, fixed-bucket histograms.
//!
//! These are the storage cells of the workspace's observability layer (the
//! registry and event stream live in `latest-core::obsv`, which re-exports
//! this module). They live in the base crate so the data-path crates —
//! `exactdb`'s executor path-mix counters, for instance — can expose their
//! statistics through the same types the registry snapshots, instead of
//! ad-hoc `AtomicU64` fields.
//!
//! Everything here is a passive cell: **no primitive ever reads a clock**.
//! Callers feed values in — wall-clock durations from the explicitly
//! budgeted instrumentation surface in `latest-core`, virtual-stream
//! durations derived from object [`Timestamp`](crate::Timestamp)s — so this
//! module stays clean under the `virtual-clock` lint that bans wall-clock
//! reads in the stream data-path crates.
//!
//! All cells update through `&self` with relaxed atomics: they are
//! statistics, never synchronization points.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n` events.
    pub fn add(&self, n: u64) {
        // Relaxed ordering: a pure statistics cell — each increment only
        // needs atomicity, no cross-cell ordering is ever read from it.
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one event.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        // Relaxed ordering: readers want this counter's own value only;
        // snapshots tolerate tearing across distinct cells.
        self.0.load(Ordering::Relaxed)
    }

    /// Resets the counter to zero (bench harness epochs).
    pub fn reset(&self) {
        // Relaxed ordering: callers quiesce writers around a reset; the
        // store itself needs no ordering with other cells.
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A last-value-wins instantaneous measurement (occupancy, bytes).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge starting at zero.
    pub fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Overwrites the gauge with the latest observation.
    pub fn set(&self, value: u64) {
        // Relaxed ordering: last-value-wins statistics; no reader derives
        // inter-cell ordering from a gauge.
        self.0.store(value, Ordering::Relaxed);
    }

    /// Latest observation.
    pub fn get(&self) -> u64 {
        // Relaxed ordering: the gauge's own value is all a reader needs.
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram over `u64` measurements.
///
/// Bucket `i` counts observations `<= bounds[i]` (and greater than the
/// previous bound); one extra overflow bucket catches everything above the
/// last bound. Bounds are fixed at construction, so recording is a binary
/// search plus one relaxed increment — cheap enough for hot paths.
#[derive(Debug)]
pub struct Histogram {
    /// Ascending inclusive upper bounds, one per non-overflow bucket.
    bounds: Box<[u64]>,
    /// `bounds.len() + 1` cells; the last is the overflow bucket.
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// A histogram over the given ascending, non-empty bucket bounds.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds: bounds.into(),
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        // Relaxed ordering: statistics cells — each increment is atomic on
        // its own; snapshots tolerate momentary bucket/count skew.
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        // Relaxed ordering: the total is a statistic, not a sync point.
        self.count.load(Ordering::Relaxed)
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// A point-in-time copy of the histogram's state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.to_vec(),
            // Relaxed ordering: per-cell loads; a snapshot taken while a
            // writer runs may skew one observation between cells, which is
            // acceptable for monitoring output.
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A plain-data copy of a [`Histogram`], safe to serialize or ship across
/// threads after the fact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Ascending inclusive upper bounds (the overflow bucket has none).
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts; `counts.len() == bounds.len() + 1`.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Merges two snapshots of histograms with the same bucket layout:
    /// bucket-wise count addition, plus summed totals — exactly the
    /// snapshot a single histogram would have produced had it recorded
    /// both observation streams.
    ///
    /// Snapshots with *different* bounds cannot be aligned
    /// bucket-for-bucket; `self`'s layout wins and the other side's
    /// entire count is folded into the overflow bucket. Totals (and
    /// therefore [`HistogramSnapshot::mean`]) stay exact either way —
    /// only the bucket shape degrades, and in this workspace every
    /// registry uses shared constant bounds so the fallback never fires
    /// outside tests.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let counts = if self.bounds == other.bounds {
            // Equal bounds imply equal lengths (`bounds.len() + 1`), so
            // zip covers every bucket including overflow.
            self.counts
                .iter()
                .zip(&other.counts)
                .map(|(a, b)| a + b)
                .collect()
        } else {
            let mut counts = self.counts.clone();
            if let Some(overflow) = counts.last_mut() {
                *overflow += other.count;
            }
            counts
        };
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts,
            count: self.count + other.count,
            sum: self.sum + other.sum,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_resets() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_is_last_value_wins() {
        let g = Gauge::new();
        g.set(10);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn histogram_routes_values_to_buckets() {
        let h = Histogram::new(&[10, 100, 1000]);
        h.record(0); // <= 10
        h.record(10); // <= 10 (inclusive)
        h.record(11); // <= 100
        h.record(5000); // overflow
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 1, 0, 1]);
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 5021);
        assert!((s.mean() - 5021.0 / 4.0).abs() < 1e-12);
        assert!(!h.is_empty());
    }

    #[test]
    fn empty_histogram_snapshot() {
        let h = Histogram::new(&[1]);
        assert!(h.is_empty());
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn concurrent_records_lose_nothing() {
        let h = Histogram::new(&[8, 64]);
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for v in 0..500u64 {
                        h.record(v % 100);
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(h.count(), 2000);
        assert_eq!(c.get(), 2000);
        assert_eq!(h.snapshot().counts.iter().sum::<u64>(), 2000);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn rejects_unsorted_bounds() {
        let _ = Histogram::new(&[10, 5]);
    }

    #[test]
    fn snapshot_merge_adds_bucket_wise() {
        let a = Histogram::new(&[10, 100]);
        let b = Histogram::new(&[10, 100]);
        for v in [1, 50, 5000] {
            a.record(v);
        }
        for v in [2, 3, 200] {
            b.record(v);
        }
        let merged = a.snapshot().merge(&b.snapshot());
        assert_eq!(merged.counts, vec![3, 1, 2]);
        assert_eq!(merged.count, 6);
        assert_eq!(merged.sum, 5256);
        // Merge equals the snapshot of one histogram fed both streams.
        let both = Histogram::new(&[10, 100]);
        for v in [1, 50, 5000, 2, 3, 200] {
            both.record(v);
        }
        assert_eq!(merged, both.snapshot());
    }

    #[test]
    fn snapshot_merge_mismatched_bounds_folds_into_overflow() {
        let a = Histogram::new(&[10, 100]);
        let b = Histogram::new(&[7]);
        a.record(5);
        b.record(1);
        b.record(9);
        let merged = a.snapshot().merge(&b.snapshot());
        assert_eq!(merged.bounds, vec![10, 100]); // self's layout wins
        assert_eq!(merged.counts, vec![1, 0, 2]); // other folded into overflow
        assert_eq!(merged.count, 3);
        assert_eq!(merged.sum, 15); // totals stay exact
    }

    #[test]
    fn snapshot_merge_with_empty_is_identity() {
        let a = Histogram::new(&[10]);
        a.record(4);
        a.record(40);
        let empty = Histogram::new(&[10]).snapshot();
        assert_eq!(a.snapshot().merge(&empty), a.snapshot());
        assert_eq!(empty.merge(&a.snapshot()), a.snapshot());
    }
}
