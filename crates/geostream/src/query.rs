//! The RC-DVQ estimation query (§III).
//!
//! A **Range-Counting Distinct-Value Query** `q = (R, W)` asks for the
//! number of window objects that (1) lie inside the optional spatial range
//! `R` and (2) carry at least one of the optional query keywords `W`. Both
//! predicates are optional (but not both absent), which degrades the query
//! to a pure range-counting query `q = (R)` or a pure distinct-value query
//! `q = (W)` — the flexibility LATEST is designed around.

use crate::geometry::Rect;
use crate::vocab::KeywordId;
use serde::{Deserialize, Serialize};

/// Classification of a query by which predicates it carries. This is one of
/// the workload features the learning model trains on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueryType {
    /// Only a spatial range (pure range-counting query).
    Spatial,
    /// Only keywords (pure distinct-value query).
    Keyword,
    /// Both predicates.
    Hybrid,
}

impl QueryType {
    /// Stable dense index, used as a categorical ML feature.
    pub fn index(self) -> u32 {
        match self {
            QueryType::Spatial => 0,
            QueryType::Keyword => 1,
            QueryType::Hybrid => 2,
        }
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            QueryType::Spatial => "spatial",
            QueryType::Keyword => "keyword",
            QueryType::Hybrid => "hybrid",
        }
    }

    /// Number of query types (arity of the categorical feature).
    pub const COUNT: u32 = 3;
}

/// Stable identity hash of a query's predicates: equal queries (same
/// range bits, same sorted keyword set, same [`QueryType`]) always hash
/// to the same signature, across runs and platforms. Selectivity caches
/// key on `(QuerySignature, window generation)`.
///
/// The hash is FNV-1a over a type tag, the rectangle's raw `f64` bits,
/// and the sorted keyword ids — no floating-point comparison semantics
/// are involved, so `-0.0` and `0.0` rectangles are distinct (they are
/// distinct predicates bit-wise, and a cache miss is always safe).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QuerySignature(pub u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    let mut h = hash;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A Range-Counting Distinct-Value estimation query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RcDvq {
    range: Option<Rect>,
    /// Sorted, deduplicated query keywords. Empty means "no keyword
    /// predicate".
    keywords: Vec<KeywordId>,
}

impl RcDvq {
    /// Builds a query from optional predicates.
    ///
    /// # Panics
    /// Panics if both predicates are absent — such a query would just count
    /// the window.
    pub fn new(range: Option<Rect>, mut keywords: Vec<KeywordId>) -> Self {
        keywords.sort_unstable();
        keywords.dedup();
        assert!(
            range.is_some() || !keywords.is_empty(),
            "RC-DVQ needs at least one predicate"
        );
        RcDvq { range, keywords }
    }

    /// Pure range-counting query `q = (R)`.
    pub fn spatial(range: Rect) -> Self {
        RcDvq::new(Some(range), Vec::new())
    }

    /// Pure distinct-value query `q = (W)`.
    pub fn keyword(keywords: Vec<KeywordId>) -> Self {
        RcDvq::new(None, keywords)
    }

    /// Hybrid query `q = (R, W)`.
    pub fn hybrid(range: Rect, keywords: Vec<KeywordId>) -> Self {
        assert!(!keywords.is_empty(), "hybrid query needs keywords");
        RcDvq::new(Some(range), keywords)
    }

    /// The spatial predicate, if present.
    pub fn range(&self) -> Option<&Rect> {
        self.range.as_ref()
    }

    /// The keyword predicate (sorted, deduplicated; empty if absent).
    pub fn keywords(&self) -> &[KeywordId] {
        &self.keywords
    }

    /// Which predicates the query carries.
    pub fn query_type(&self) -> QueryType {
        match (self.range.is_some(), self.keywords.is_empty()) {
            (true, true) => QueryType::Spatial,
            (false, false) => QueryType::Keyword,
            (true, false) => QueryType::Hybrid,
            (false, true) => unreachable!("constructor forbids empty query"),
        }
    }

    /// Stable content hash of the query's predicates (see
    /// [`QuerySignature`]). Deterministic across runs: the constructor
    /// sorts and dedups keywords, so equal predicate sets always produce
    /// equal signatures.
    pub fn signature(&self) -> QuerySignature {
        let mut h = fnv1a(FNV_OFFSET, &[self.query_type().index() as u8]);
        if let Some(r) = &self.range {
            for v in [r.min_x, r.min_y, r.max_x, r.max_y] {
                h = fnv1a(h, &v.to_bits().to_le_bytes());
            }
        }
        for kw in &self.keywords {
            h = fnv1a(h, &kw.0.to_le_bytes());
        }
        QuerySignature(h)
    }

    /// Whether `obj` satisfies both predicates (the exact-match test used by
    /// the ground-truth executor and samplers).
    pub fn matches(&self, obj: &crate::object::GeoTextObject) -> bool {
        if let Some(r) = &self.range {
            if !r.contains(&obj.loc) {
                return false;
            }
        }
        if !self.keywords.is_empty() && !obj.matches_any_keyword(&self.keywords) {
            return false;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;
    use crate::object::{GeoTextObject, ObjectId};
    use crate::time::Timestamp;

    fn obj(x: f64, y: f64, kws: &[u32]) -> GeoTextObject {
        GeoTextObject::new(
            ObjectId(0),
            Point::new(x, y),
            kws.iter().copied().map(KeywordId).collect(),
            Timestamp::ZERO,
        )
    }

    #[test]
    fn query_type_classification() {
        let r = Rect::new(0.0, 0.0, 1.0, 1.0);
        assert_eq!(RcDvq::spatial(r).query_type(), QueryType::Spatial);
        assert_eq!(
            RcDvq::keyword(vec![KeywordId(1)]).query_type(),
            QueryType::Keyword
        );
        assert_eq!(
            RcDvq::hybrid(r, vec![KeywordId(1)]).query_type(),
            QueryType::Hybrid
        );
    }

    #[test]
    #[should_panic(expected = "at least one predicate")]
    fn rejects_empty_query() {
        let _ = RcDvq::new(None, vec![]);
    }

    #[test]
    fn keywords_sorted_deduped() {
        let q = RcDvq::keyword(vec![KeywordId(3), KeywordId(1), KeywordId(3)]);
        assert_eq!(q.keywords(), &[KeywordId(1), KeywordId(3)]);
    }

    #[test]
    fn matches_spatial_only() {
        let q = RcDvq::spatial(Rect::new(0.0, 0.0, 1.0, 1.0));
        assert!(q.matches(&obj(0.5, 0.5, &[])));
        assert!(!q.matches(&obj(2.0, 0.5, &[])));
    }

    #[test]
    fn matches_keyword_only() {
        let q = RcDvq::keyword(vec![KeywordId(7)]);
        assert!(q.matches(&obj(99.0, 99.0, &[7, 9])));
        assert!(!q.matches(&obj(0.0, 0.0, &[6])));
    }

    #[test]
    fn matches_hybrid_requires_both() {
        let q = RcDvq::hybrid(Rect::new(0.0, 0.0, 1.0, 1.0), vec![KeywordId(7)]);
        assert!(q.matches(&obj(0.5, 0.5, &[7])));
        assert!(!q.matches(&obj(0.5, 0.5, &[8])));
        assert!(!q.matches(&obj(5.0, 0.5, &[7])));
    }

    #[test]
    fn signatures_are_stable_and_discriminating() {
        let r = Rect::new(0.0, 0.0, 1.0, 1.0);
        let a = RcDvq::hybrid(r, vec![KeywordId(3), KeywordId(1)]);
        let b = RcDvq::hybrid(r, vec![KeywordId(1), KeywordId(3), KeywordId(3)]);
        // Same predicate set (order/dup-insensitive) → same signature.
        assert_eq!(a.signature(), b.signature());
        // Different type, range, or keyword set → different signatures.
        assert_ne!(RcDvq::spatial(r).signature(), a.signature());
        assert_ne!(
            RcDvq::keyword(vec![KeywordId(1), KeywordId(3)]).signature(),
            a.signature()
        );
        assert_ne!(
            RcDvq::hybrid(
                Rect::new(0.0, 0.0, 1.0, 2.0),
                vec![KeywordId(1), KeywordId(3)]
            )
            .signature(),
            a.signature()
        );
        assert_ne!(
            RcDvq::hybrid(r, vec![KeywordId(1)]).signature(),
            a.signature()
        );
    }

    #[test]
    fn type_indices_are_dense() {
        assert_eq!(QueryType::Spatial.index(), 0);
        assert_eq!(QueryType::Keyword.index(), 1);
        assert_eq!(QueryType::Hybrid.index(), 2);
        assert_eq!(QueryType::COUNT, 3);
        assert_eq!(QueryType::Hybrid.name(), "hybrid");
    }
}
