//! Deep invariant auditing (the `debug-invariants` feature).
//!
//! Every core data structure in the workspace exposes an `audit()` method
//! behind the `debug-invariants` cargo feature: a full O(n) walk that
//! re-derives the structure's maintained counters and cross-checks every
//! internal consistency claim its fast paths rely on. Audits are *not*
//! `debug_assert!`s — they return a typed [`AuditError`] naming the
//! structure, the violated invariant, and the observed discrepancy, so a
//! churn harness can drive millions of operations and report the first
//! corruption precisely.
//!
//! The feature cascades across the workspace: `estimators`, `exactdb`,
//! `latest-core`, and `latest-bench` all re-export their auditors behind a
//! feature of the same name that enables this one.

/// A violated data-structure invariant found by an `audit()` walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditError {
    /// The audited structure (e.g. `"SampleStore"`).
    pub structure: &'static str,
    /// Short name of the violated invariant (e.g. `"dead-counter"`).
    pub invariant: &'static str,
    /// What the walk observed, with the relevant values.
    pub detail: String,
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "audit failed: {} / {}: {}",
            self.structure, self.invariant, self.detail
        )
    }
}

impl std::error::Error for AuditError {}

impl AuditError {
    /// Builds an error for `structure` violating `invariant`.
    pub fn new(structure: &'static str, invariant: &'static str, detail: String) -> Self {
        AuditError {
            structure,
            invariant,
            detail,
        }
    }
}

/// Returns an error unless `cond` holds; `detail` is only evaluated on
/// failure, so audits can format rich diagnostics without paying for them
/// on the (overwhelmingly common) passing path.
pub fn ensure(
    cond: bool,
    structure: &'static str,
    invariant: &'static str,
    detail: impl FnOnce() -> String,
) -> Result<(), AuditError> {
    if cond {
        Ok(())
    } else {
        Err(AuditError::new(structure, invariant, detail()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_is_lazy_and_typed() {
        assert_eq!(ensure(true, "S", "inv", || unreachable!()), Ok(()));
        let e = ensure(false, "SampleStore", "dead-counter", || "3 != 4".into()).unwrap_err();
        assert_eq!(e.structure, "SampleStore");
        assert_eq!(e.invariant, "dead-counter");
        assert!(e.to_string().contains("SampleStore / dead-counter: 3 != 4"));
    }
}
