//! # geostream — geo-textual stream substrate
//!
//! This crate provides the data substrate the LATEST reproduction is built
//! on: the geo-textual object model from the paper's problem definition
//! (§III), planar geometry for spatial predicates, an interned keyword
//! vocabulary, a sliding time window `S_T`, and synthetic stream generators
//! that stand in for the paper's Twitter / eBird / Foursquare CheckIn
//! datasets.
//!
//! Every object in a stream `S` is a tuple `(oid, loc, kw, timestamp)`
//! ([`GeoTextObject`]). A window [`window::SlidingWindow`] keeps the objects
//! of the last `T` time units, which is the population every selectivity
//! estimate refers to.
//!
//! The [`synth`] module generates streams whose spatial skew (Gaussian
//! hotspot mixtures), textual skew (Zipf keyword frequencies), and temporal
//! drift reproduce the statistical structure that drives the paper's
//! experiments, at laptop scale.

#[cfg(feature = "debug-invariants")]
pub mod audit;
pub mod geometry;
pub mod object;
pub mod obsv;
pub mod query;
pub mod stream;
pub mod synth;
pub mod time;
pub mod vocab;
pub mod window;

#[cfg(feature = "debug-invariants")]
pub use audit::AuditError;
pub use geometry::{Point, Rect};
pub use object::{GeoTextObject, ObjectId};
pub use obsv::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use query::{QuerySignature, QueryType, RcDvq};
pub use time::{Duration, Timestamp};
pub use vocab::{KeywordId, Vocabulary};
pub use window::SlidingWindow;
