//! Stream event plumbing: timestamped items and merge iteration.
//!
//! The LATEST driver consumes a single time-ordered event stream that
//! interleaves data-object arrivals with query arrivals. Objects come from a
//! [`crate::synth::ObjectGenerator`]; queries come from a workload
//! generator (crate `workloads`). [`merge_by_time`] zips any two timestamped
//! streams into one ordered stream.

use crate::time::Timestamp;
use std::iter::Peekable;

/// A timestamped item of any payload type.
#[derive(Debug, Clone, PartialEq)]
pub struct Clocked<T> {
    pub at: Timestamp,
    pub item: T,
}

impl<T> Clocked<T> {
    pub fn new(at: Timestamp, item: T) -> Self {
        Clocked { at, item }
    }
}

/// Either side of a merged two-source stream.
#[derive(Debug, Clone, PartialEq)]
pub enum Merged<A, B> {
    Left(A),
    Right(B),
}

/// Merges two already time-ordered streams into one ordered stream. Ties go
/// to the left stream (objects should be inserted before a simultaneous
/// query observes the window).
pub fn merge_by_time<A, B, IA, IB>(left: IA, right: IB) -> MergeByTime<A, B, IA, IB>
where
    IA: Iterator<Item = Clocked<A>>,
    IB: Iterator<Item = Clocked<B>>,
{
    MergeByTime {
        left: left.peekable(),
        right: right.peekable(),
    }
}

/// Iterator returned by [`merge_by_time`].
pub struct MergeByTime<A, B, IA, IB>
where
    IA: Iterator<Item = Clocked<A>>,
    IB: Iterator<Item = Clocked<B>>,
{
    left: Peekable<IA>,
    right: Peekable<IB>,
}

impl<A, B, IA, IB> Iterator for MergeByTime<A, B, IA, IB>
where
    IA: Iterator<Item = Clocked<A>>,
    IB: Iterator<Item = Clocked<B>>,
{
    type Item = Clocked<Merged<A, B>>;

    fn next(&mut self) -> Option<Self::Item> {
        let take_left = match (self.left.peek(), self.right.peek()) {
            (Some(l), Some(r)) => l.at <= r.at,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        if take_left {
            // LINT-ALLOW(no-panic): peek returned Some on this branch, so next yields the same element
            let c = self.left.next().expect("peeked");
            Some(Clocked::new(c.at, Merged::Left(c.item)))
        } else {
            // LINT-ALLOW(no-panic): peek returned Some on this branch, so next yields the same element
            let c = self.right.next().expect("peeked");
            Some(Clocked::new(c.at, Merged::Right(c.item)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clocked(ts: &[u64]) -> Vec<Clocked<u64>> {
        ts.iter().map(|&t| Clocked::new(Timestamp(t), t)).collect()
    }

    #[test]
    fn merges_in_time_order() {
        let a = clocked(&[1, 4, 9]);
        let b = clocked(&[2, 3, 10]);
        let merged: Vec<u64> = merge_by_time(a.into_iter(), b.into_iter())
            .map(|c| c.at.0)
            .collect();
        assert_eq!(merged, vec![1, 2, 3, 4, 9, 10]);
    }

    #[test]
    fn ties_go_left() {
        let a = clocked(&[5]);
        let b = clocked(&[5]);
        let merged: Vec<_> = merge_by_time(a.into_iter(), b.into_iter()).collect();
        assert!(matches!(merged[0].item, Merged::Left(_)));
        assert!(matches!(merged[1].item, Merged::Right(_)));
    }

    #[test]
    fn handles_exhausted_sides() {
        let a = clocked(&[1, 2]);
        let b: Vec<Clocked<u64>> = vec![];
        let merged: Vec<_> = merge_by_time(a.into_iter(), b.into_iter()).collect();
        assert_eq!(merged.len(), 2);
        let a2: Vec<Clocked<u64>> = vec![];
        let b2 = clocked(&[7]);
        let merged2: Vec<_> = merge_by_time(a2.into_iter(), b2.into_iter()).collect();
        assert_eq!(merged2.len(), 1);
        assert!(matches!(merged2[0].item, Merged::Right(7)));
    }

    #[test]
    fn empty_merge_is_empty() {
        let a: Vec<Clocked<u64>> = vec![];
        let b: Vec<Clocked<u64>> = vec![];
        assert_eq!(merge_by_time(a.into_iter(), b.into_iter()).count(), 0);
    }
}
