//! Virtual time for stream simulation.
//!
//! Streams in this workspace run on a *virtual clock* measured in
//! milliseconds since stream start. Using virtual time (rather than wall
//! time) makes every experiment deterministic and lets a 10-hour paper
//! stream be replayed in seconds.

use serde::{Deserialize, Serialize};

/// A point in virtual time, in milliseconds since the stream started.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub u64);

/// A span of virtual time, in milliseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Duration(pub u64);

impl Timestamp {
    /// The stream origin, `t = 0`.
    pub const ZERO: Timestamp = Timestamp(0);

    /// Milliseconds since stream start.
    #[inline]
    pub const fn millis(self) -> u64 {
        self.0
    }

    /// The timestamp `d` later than `self`.
    #[inline]
    pub const fn after(self, d: Duration) -> Timestamp {
        Timestamp(self.0 + d.0)
    }

    /// The timestamp `d` earlier than `self`, saturating at zero.
    #[inline]
    pub const fn before(self, d: Duration) -> Timestamp {
        Timestamp(self.0.saturating_sub(d.0))
    }

    /// Elapsed time since `earlier`, saturating at zero if `earlier` is in
    /// the future.
    #[inline]
    pub const fn since(self, earlier: Timestamp) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    pub const ZERO: Duration = Duration(0);

    /// Builds a duration from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Duration {
        Duration(ms)
    }

    /// Builds a duration from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Duration {
        Duration(s * 1_000)
    }

    /// Builds a duration from minutes.
    #[inline]
    pub const fn from_mins(m: u64) -> Duration {
        Duration(m * 60_000)
    }

    /// The duration in milliseconds.
    #[inline]
    pub const fn millis(self) -> u64 {
        self.0
    }

    /// Scales the duration by an integer factor.
    #[inline]
    pub const fn times(self, k: u64) -> Duration {
        Duration(self.0 * k)
    }
}

impl std::ops::Add<Duration> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn add(self, rhs: Duration) -> Timestamp {
        self.after(rhs)
    }
}

impl std::ops::Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl std::fmt::Display for Timestamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t={}ms", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = Timestamp(1_000);
        assert_eq!(t.after(Duration::from_secs(2)), Timestamp(3_000));
        assert_eq!(t.before(Duration::from_secs(2)), Timestamp::ZERO);
        assert_eq!(Timestamp(5_000).since(t), Duration(4_000));
        assert_eq!(t.since(Timestamp(5_000)), Duration::ZERO);
        assert_eq!(t + Duration(5), Timestamp(1_005));
    }

    #[test]
    fn duration_constructors() {
        assert_eq!(Duration::from_secs(3).millis(), 3_000);
        assert_eq!(Duration::from_mins(2).millis(), 120_000);
        assert_eq!(Duration::from_millis(7).millis(), 7);
        assert_eq!(Duration::from_secs(1).times(3), Duration::from_secs(3));
        assert_eq!(Duration(1) + Duration(2), Duration(3));
    }

    #[test]
    fn ordering() {
        assert!(Timestamp(1) < Timestamp(2));
        assert!(Duration(10) > Duration(9));
    }
}
