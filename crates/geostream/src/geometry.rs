//! Planar geometry used by spatial predicates.
//!
//! Locations are latitude/longitude pairs treated as points in a Euclidean
//! plane (the paper does the same: all spatial predicates are axis-aligned
//! rectangles over raw coordinates, no great-circle math is involved).

use serde::{Deserialize, Serialize};

/// A point in 2D space. `x` is longitude, `y` is latitude.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    /// Creates a point at `(x, y)`.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Squared Euclidean distance to `other`. Cheaper than [`Point::dist`]
    /// when only comparisons are needed.
    #[inline]
    pub fn dist_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(&self, other: &Point) -> f64 {
        self.dist_sq(other).sqrt()
    }
}

/// An axis-aligned rectangle, closed on the min edges and open on the max
/// edges (`[min_x, max_x) × [min_y, max_y)`), except that the spatial-domain
/// rectangle is treated as closed on all edges by the containment helpers so
/// points on the top/right domain boundary are not lost.
///
/// Half-open semantics make a regular grid partition exact: every point
/// belongs to exactly one cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    pub min_x: f64,
    pub min_y: f64,
    pub max_x: f64,
    pub max_y: f64,
}

impl Rect {
    /// Creates a rectangle from min/max corners. Panics in debug builds if
    /// the corners are inverted.
    #[inline]
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        debug_assert!(min_x <= max_x, "inverted x extent: {min_x} > {max_x}");
        debug_assert!(min_y <= max_y, "inverted y extent: {min_y} > {max_y}");
        Rect {
            min_x,
            min_y,
            max_x,
            max_y,
        }
    }

    /// Creates the rectangle centered on `c` with half-extents `hx`, `hy`,
    /// clamped to `domain`.
    pub fn centered_clamped(c: Point, hx: f64, hy: f64, domain: &Rect) -> Self {
        Rect::new(
            (c.x - hx).max(domain.min_x),
            (c.y - hy).max(domain.min_y),
            (c.x + hx).min(domain.max_x),
            (c.y + hy).min(domain.max_y),
        )
    }

    /// Width of the rectangle.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max_x - self.min_x
    }

    /// Height of the rectangle.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max_y - self.min_y
    }

    /// Area of the rectangle.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Center point of the rectangle.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min_x + self.max_x) / 2.0,
            (self.min_y + self.max_y) / 2.0,
        )
    }

    /// Whether `p` lies inside the rectangle (closed on all edges).
    ///
    /// Query rectangles in the paper are closed ranges; grid-partition code
    /// uses index arithmetic instead of this predicate, so the closed
    /// semantics here never double-counts.
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }

    /// Whether `other` lies entirely inside `self`.
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.min_x >= self.min_x
            && other.max_x <= self.max_x
            && other.min_y >= self.min_y
            && other.max_y <= self.max_y
    }

    /// Whether the two rectangles intersect (touching edges count).
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min_x <= other.max_x
            && other.min_x <= self.max_x
            && self.min_y <= other.max_y
            && other.min_y <= self.max_y
    }

    /// The intersection of the two rectangles, or `None` if disjoint.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect::new(
            self.min_x.max(other.min_x),
            self.min_y.max(other.min_y),
            self.max_x.min(other.max_x),
            self.max_y.min(other.max_y),
        ))
    }

    /// Fraction of `self`'s area covered by `other`, in `[0, 1]`.
    ///
    /// Degenerate (zero-area) rectangles yield 1.0 when intersected at all:
    /// a cell that is a point is either fully covered or not covered.
    pub fn coverage_by(&self, other: &Rect) -> f64 {
        match self.intersection(other) {
            None => 0.0,
            Some(i) => {
                let a = self.area();
                if a <= f64::EPSILON {
                    1.0
                } else {
                    (i.area() / a).clamp(0.0, 1.0)
                }
            }
        }
    }

    /// Splits the rectangle into its four quadrants, ordered
    /// `[SW, SE, NW, NE]`.
    pub fn quadrants(&self) -> [Rect; 4] {
        let c = self.center();
        [
            Rect::new(self.min_x, self.min_y, c.x, c.y),
            Rect::new(c.x, self.min_y, self.max_x, c.y),
            Rect::new(self.min_x, c.y, c.x, self.max_y),
            Rect::new(c.x, c.y, self.max_x, self.max_y),
        ]
    }

    /// Index (0..4, in `[SW, SE, NW, NE]` order) of the quadrant `p` falls
    /// into, using half-open split semantics so each point maps to exactly
    /// one quadrant.
    #[inline]
    pub fn quadrant_of(&self, p: &Point) -> usize {
        let c = self.center();
        let east = p.x >= c.x;
        let north = p.y >= c.y;
        (north as usize) * 2 + east as usize
    }

    /// The whole-world lat/lon rectangle.
    pub const WORLD: Rect = Rect {
        min_x: -180.0,
        min_y: -90.0,
        max_x: 180.0,
        max_y: 90.0,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_distance() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist_sq(&b), 25.0);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(a.dist(&a), 0.0);
    }

    #[test]
    fn rect_basic_measures() {
        let r = Rect::new(0.0, 0.0, 4.0, 2.0);
        assert_eq!(r.width(), 4.0);
        assert_eq!(r.height(), 2.0);
        assert_eq!(r.area(), 8.0);
        assert_eq!(r.center(), Point::new(2.0, 1.0));
    }

    #[test]
    fn rect_contains_closed_edges() {
        let r = Rect::new(0.0, 0.0, 1.0, 1.0);
        assert!(r.contains(&Point::new(0.0, 0.0)));
        assert!(r.contains(&Point::new(1.0, 1.0)));
        assert!(r.contains(&Point::new(0.5, 0.5)));
        assert!(!r.contains(&Point::new(1.0001, 0.5)));
        assert!(!r.contains(&Point::new(0.5, -0.0001)));
    }

    #[test]
    fn rect_intersection() {
        let a = Rect::new(0.0, 0.0, 2.0, 2.0);
        let b = Rect::new(1.0, 1.0, 3.0, 3.0);
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, Rect::new(1.0, 1.0, 2.0, 2.0));
        let c = Rect::new(5.0, 5.0, 6.0, 6.0);
        assert!(a.intersection(&c).is_none());
        assert!(!a.intersects(&c));
    }

    #[test]
    fn rect_touching_edges_intersect() {
        let a = Rect::new(0.0, 0.0, 1.0, 1.0);
        let b = Rect::new(1.0, 0.0, 2.0, 1.0);
        assert!(a.intersects(&b));
        let i = a.intersection(&b).unwrap();
        assert_eq!(i.area(), 0.0);
    }

    #[test]
    fn coverage_fraction() {
        let cell = Rect::new(0.0, 0.0, 2.0, 2.0);
        let query = Rect::new(1.0, 0.0, 3.0, 2.0);
        assert!((cell.coverage_by(&query) - 0.5).abs() < 1e-12);
        assert_eq!(cell.coverage_by(&Rect::new(10.0, 10.0, 11.0, 11.0)), 0.0);
        assert_eq!(cell.coverage_by(&Rect::new(-1.0, -1.0, 3.0, 3.0)), 1.0);
    }

    #[test]
    fn coverage_of_degenerate_cell() {
        let cell = Rect::new(1.0, 1.0, 1.0, 1.0);
        let query = Rect::new(0.0, 0.0, 2.0, 2.0);
        assert_eq!(cell.coverage_by(&query), 1.0);
    }

    #[test]
    fn quadrants_partition_area() {
        let r = Rect::new(-2.0, -2.0, 2.0, 6.0);
        let qs = r.quadrants();
        let total: f64 = qs.iter().map(Rect::area).sum();
        assert!((total - r.area()).abs() < 1e-9);
        // SW quadrant has the min corner.
        assert_eq!(qs[0].min_x, r.min_x);
        assert_eq!(qs[0].min_y, r.min_y);
        // NE quadrant has the max corner.
        assert_eq!(qs[3].max_x, r.max_x);
        assert_eq!(qs[3].max_y, r.max_y);
    }

    #[test]
    fn quadrant_of_matches_quadrant_rects() {
        let r = Rect::new(0.0, 0.0, 8.0, 8.0);
        let qs = r.quadrants();
        for &(x, y) in &[(1.0, 1.0), (5.0, 1.0), (1.0, 5.0), (5.0, 5.0), (4.0, 4.0)] {
            let p = Point::new(x, y);
            let q = r.quadrant_of(&p);
            assert!(qs[q].contains(&p), "point {p:?} not in quadrant {q}");
        }
        // Center point goes to NE under half-open semantics.
        assert_eq!(r.quadrant_of(&Point::new(4.0, 4.0)), 3);
    }

    #[test]
    fn centered_clamped_respects_domain() {
        let domain = Rect::new(0.0, 0.0, 10.0, 10.0);
        let r = Rect::centered_clamped(Point::new(0.5, 9.9), 1.0, 1.0, &domain);
        assert_eq!(r.min_x, 0.0);
        assert_eq!(r.max_y, 10.0);
        assert!(domain.contains_rect(&r));
    }

    #[test]
    fn contains_rect_works() {
        let outer = Rect::new(0.0, 0.0, 10.0, 10.0);
        assert!(outer.contains_rect(&Rect::new(1.0, 1.0, 2.0, 2.0)));
        assert!(outer.contains_rect(&outer));
        assert!(!outer.contains_rect(&Rect::new(5.0, 5.0, 11.0, 6.0)));
    }
}
