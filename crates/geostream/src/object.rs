//! The geo-textual object model from the paper's problem definition (§III).

use crate::geometry::Point;
use crate::time::Timestamp;
use crate::vocab::KeywordId;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Unique identifier for a stream object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjectId(pub u64);

/// A geo-textual stream object `(oid, loc, kw, timestamp)`.
///
/// The keyword set is an `Arc<[KeywordId]>` so objects can be held by the
/// sliding window, a reservoir sampler, and an index at once without cloning
/// the keyword list. The slice is kept **sorted and deduplicated** by
/// [`GeoTextObject::new`], which makes keyword-intersection tests a merge
/// scan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeoTextObject {
    pub oid: ObjectId,
    pub loc: Point,
    pub keywords: Arc<[KeywordId]>,
    pub timestamp: Timestamp,
}

impl GeoTextObject {
    /// Builds an object, sorting and deduplicating `keywords`.
    pub fn new(
        oid: ObjectId,
        loc: Point,
        mut keywords: Vec<KeywordId>,
        timestamp: Timestamp,
    ) -> Self {
        keywords.sort_unstable();
        keywords.dedup();
        GeoTextObject {
            oid,
            loc,
            keywords: keywords.into(),
            timestamp,
        }
    }

    /// Whether the object carries `kw`.
    #[inline]
    pub fn has_keyword(&self, kw: KeywordId) -> bool {
        self.keywords.binary_search(&kw).is_ok()
    }

    /// Whether the object's keyword set intersects the **sorted** query
    /// keyword slice (the `o.kw ∩ q.W ≠ ∅` predicate of RC-DVQ).
    pub fn matches_any_keyword(&self, query_kws: &[KeywordId]) -> bool {
        // Merge scan over two sorted sequences; both sides are tiny (a
        // handful of keywords), so this beats hashing.
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.keywords.len() && j < query_kws.len() {
            match self.keywords[i].cmp(&query_kws[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// Approximate heap footprint of the object in bytes, used for memory
    /// budget accounting in the estimators.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.keywords.len() * std::mem::size_of::<KeywordId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(kws: Vec<u32>) -> GeoTextObject {
        GeoTextObject::new(
            ObjectId(1),
            Point::new(0.0, 0.0),
            kws.into_iter().map(KeywordId).collect(),
            Timestamp::ZERO,
        )
    }

    #[test]
    fn keywords_sorted_and_deduped() {
        let o = obj(vec![5, 3, 5, 1, 3]);
        assert_eq!(
            o.keywords.as_ref(),
            &[KeywordId(1), KeywordId(3), KeywordId(5)]
        );
    }

    #[test]
    fn has_keyword() {
        let o = obj(vec![2, 4, 6]);
        assert!(o.has_keyword(KeywordId(4)));
        assert!(!o.has_keyword(KeywordId(5)));
    }

    #[test]
    fn matches_any_keyword_merge_scan() {
        let o = obj(vec![10, 20, 30]);
        assert!(o.matches_any_keyword(&[KeywordId(5), KeywordId(20)]));
        assert!(!o.matches_any_keyword(&[KeywordId(5), KeywordId(25)]));
        assert!(!o.matches_any_keyword(&[]));
        let empty = obj(vec![]);
        assert!(!empty.matches_any_keyword(&[KeywordId(10)]));
    }

    #[test]
    fn cheap_sharing() {
        let o = obj(vec![1, 2, 3]);
        let o2 = o.clone();
        assert!(Arc::ptr_eq(&o.keywords, &o2.keywords));
    }

    #[test]
    fn approx_bytes_grows_with_keywords() {
        assert!(obj(vec![1, 2, 3]).approx_bytes() > obj(vec![1]).approx_bytes());
    }
}
