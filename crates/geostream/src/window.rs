//! The sliding time window `S_T` (§III).
//!
//! `S_T` holds every object whose timestamp is within the last `T` time
//! units. Estimation queries are always answered with respect to the window,
//! and the exact executor (crate `exactdb`) computes ground truth over it.
//!
//! The window is a FIFO of objects ordered by arrival. Streams deliver
//! objects in non-decreasing timestamp order, so eviction is a pop from the
//! front. Evicted objects are reported to the caller so downstream
//! structures (indexes, estimators) can stay consistent.

use crate::object::GeoTextObject;
use crate::time::{Duration, Timestamp};
use std::collections::VecDeque;

/// A sliding time window over a geo-textual stream.
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    span: Duration,
    buf: VecDeque<GeoTextObject>,
    /// Most recent clock value observed, used to validate monotonicity.
    now: Timestamp,
    /// Content-change counter: bumped whenever the live set changes
    /// (insert, eviction sweep, clear). Selectivity caches key answers
    /// on `(QuerySignature, generation)`, so any content change makes
    /// every prior cached answer unreachable.
    generation: u64,
}

impl SlidingWindow {
    /// Creates a window spanning the last `span` time units.
    pub fn new(span: Duration) -> Self {
        SlidingWindow {
            span,
            buf: VecDeque::new(),
            now: Timestamp::ZERO,
            generation: 0,
        }
    }

    /// The content-change generation: increases (by at least one) every
    /// time the live object set changes. Two calls returning the same
    /// value guarantee the window contents were identical in between.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The configured window span `T`.
    pub fn span(&self) -> Duration {
        self.span
    }

    /// The latest time the window has been advanced to.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Number of live objects in the window.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the window holds no objects.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Inserts an arriving object, advances the clock to its timestamp, and
    /// appends any objects that fell out of the window to `evicted`.
    ///
    /// # Panics
    /// Panics if `obj.timestamp` is older than the newest object already in
    /// the window — streams must deliver in non-decreasing time order.
    pub fn insert(&mut self, obj: GeoTextObject, evicted: &mut Vec<GeoTextObject>) {
        if let Some(last) = self.buf.back() {
            assert!(
                obj.timestamp >= last.timestamp,
                "out-of-order arrival: {} after {}",
                obj.timestamp,
                last.timestamp
            );
        }
        self.now = self.now.max(obj.timestamp);
        self.buf.push_back(obj);
        self.generation += 1;
        self.evict_expired(evicted);
    }

    /// Inserts a batch of arriving objects (non-decreasing timestamps),
    /// advancing the clock as they land and running the eviction sweep
    /// **once** at the end — the final window contents and the evicted
    /// set (in FIFO order) are identical to inserting one at a time, but
    /// the front-of-queue scan is paid once per batch.
    ///
    /// # Panics
    /// Panics if any object is older than its predecessor (in the batch or
    /// already in the window).
    pub fn insert_batch(
        &mut self,
        objs: impl IntoIterator<Item = GeoTextObject>,
        evicted: &mut Vec<GeoTextObject>,
    ) {
        for obj in objs {
            if let Some(last) = self.buf.back() {
                assert!(
                    obj.timestamp >= last.timestamp,
                    "out-of-order arrival: {} after {}",
                    obj.timestamp,
                    last.timestamp
                );
            }
            self.now = self.now.max(obj.timestamp);
            self.buf.push_back(obj);
            self.generation += 1;
        }
        self.evict_expired(evicted);
    }

    /// Advances the clock without inserting (e.g. when only queries arrive),
    /// evicting anything that expired.
    pub fn advance_to(&mut self, t: Timestamp, evicted: &mut Vec<GeoTextObject>) {
        self.now = self.now.max(t);
        self.evict_expired(evicted);
    }

    /// The inclusive lower bound of live timestamps: `NOW - T`.
    pub fn horizon(&self) -> Timestamp {
        self.now.before(self.span)
    }

    fn evict_expired(&mut self, evicted: &mut Vec<GeoTextObject>) {
        let horizon = self.horizon();
        let mut swept = 0u64;
        while let Some(front) = self.buf.front() {
            if front.timestamp < horizon {
                // LINT-ALLOW(no-panic): the loop condition checked the front element before this pop
                evicted.push(self.buf.pop_front().expect("front checked"));
                swept += 1;
            } else {
                break;
            }
        }
        self.generation += swept;
    }

    /// Iterates over the live objects, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &GeoTextObject> {
        self.buf.iter()
    }

    /// The live objects as (up to) two contiguous slices, oldest first —
    /// the ring buffer's halves, for batch APIs that want `&[_]` input.
    pub fn as_slices(&self) -> (&[GeoTextObject], &[GeoTextObject]) {
        self.buf.as_slices()
    }

    /// Removes every object and resets the clock to zero. The generation
    /// still advances — cached answers against the old contents must not
    /// resurface against the emptied window.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.now = Timestamp::ZERO;
        self.generation += 1;
    }
}

#[cfg(feature = "debug-invariants")]
impl SlidingWindow {
    /// Full O(n) invariant walk (the `debug-invariants` auditor):
    ///
    /// * **fifo-order** — buffered timestamps are non-decreasing front to
    ///   back (streams arrive in time order and eviction pops the front).
    /// * **eviction** — no buffered object is older than the horizon
    ///   `now - T`; [`Self::insert`] and [`Self::advance_to`] must have
    ///   swept them out.
    /// * **clock** — `now` is at least the newest buffered timestamp (the
    ///   clock only moves forward).
    pub fn audit(&self) -> Result<(), crate::audit::AuditError> {
        use crate::audit::ensure;
        const S: &str = "SlidingWindow";
        let mut prev: Option<Timestamp> = None;
        for (i, obj) in self.buf.iter().enumerate() {
            if let Some(p) = prev {
                ensure(obj.timestamp >= p, S, "fifo-order", || {
                    format!("object {i} at {} after {}", obj.timestamp, p)
                })?;
            }
            prev = Some(obj.timestamp);
        }
        let horizon = self.horizon();
        if let Some(front) = self.buf.front() {
            ensure(front.timestamp >= horizon, S, "eviction", || {
                format!("front at {} precedes horizon {horizon}", front.timestamp)
            })?;
        }
        if let Some(back) = self.buf.back() {
            ensure(self.now >= back.timestamp, S, "clock", || {
                format!("now {} behind newest object {}", self.now, back.timestamp)
            })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;
    use crate::object::ObjectId;

    fn obj(id: u64, t: u64) -> GeoTextObject {
        GeoTextObject::new(ObjectId(id), Point::new(0.0, 0.0), vec![], Timestamp(t))
    }

    #[test]
    fn keeps_objects_within_span() {
        let mut w = SlidingWindow::new(Duration(100));
        let mut ev = Vec::new();
        w.insert(obj(1, 0), &mut ev);
        w.insert(obj(2, 50), &mut ev);
        w.insert(obj(3, 100), &mut ev);
        assert!(ev.is_empty());
        assert_eq!(w.len(), 3);
        // t=150 ⇒ horizon=50 ⇒ object at t=0 evicted, t=50 retained.
        w.insert(obj(4, 150), &mut ev);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].oid, ObjectId(1));
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn advance_without_insert_evicts() {
        let mut w = SlidingWindow::new(Duration(10));
        let mut ev = Vec::new();
        w.insert(obj(1, 0), &mut ev);
        w.insert(obj(2, 5), &mut ev);
        w.advance_to(Timestamp(20), &mut ev);
        assert_eq!(ev.len(), 2);
        assert!(w.is_empty());
        assert_eq!(w.now(), Timestamp(20));
    }

    #[test]
    fn advance_never_rewinds() {
        let mut w = SlidingWindow::new(Duration(10));
        let mut ev = Vec::new();
        w.advance_to(Timestamp(100), &mut ev);
        w.advance_to(Timestamp(50), &mut ev);
        assert_eq!(w.now(), Timestamp(100));
    }

    #[test]
    #[should_panic(expected = "out-of-order")]
    fn rejects_out_of_order() {
        let mut w = SlidingWindow::new(Duration(10));
        let mut ev = Vec::new();
        w.insert(obj(1, 100), &mut ev);
        w.insert(obj(2, 50), &mut ev);
    }

    #[test]
    fn iter_is_oldest_first() {
        let mut w = SlidingWindow::new(Duration(1_000));
        let mut ev = Vec::new();
        for i in 0..5 {
            w.insert(obj(i, i * 10), &mut ev);
        }
        let ids: Vec<u64> = w.iter().map(|o| o.oid.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn clear_resets() {
        let mut w = SlidingWindow::new(Duration(1_000));
        let mut ev = Vec::new();
        w.insert(obj(1, 10), &mut ev);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.now(), Timestamp::ZERO);
    }

    #[test]
    fn insert_batch_matches_one_at_a_time() {
        let mut single = SlidingWindow::new(Duration(100));
        let mut batched = SlidingWindow::new(Duration(100));
        let objs: Vec<GeoTextObject> = (0..50).map(|i| obj(i, i * 7)).collect();
        let (mut ev_s, mut ev_b) = (Vec::new(), Vec::new());
        for o in objs.clone() {
            single.insert(o, &mut ev_s);
        }
        batched.insert_batch(objs, &mut ev_b);
        assert_eq!(single.len(), batched.len());
        assert_eq!(single.now(), batched.now());
        let ids_s: Vec<u64> = ev_s.iter().map(|o| o.oid.0).collect();
        let ids_b: Vec<u64> = ev_b.iter().map(|o| o.oid.0).collect();
        assert_eq!(ids_s, ids_b);
        let live_s: Vec<u64> = single.iter().map(|o| o.oid.0).collect();
        let live_b: Vec<u64> = batched.iter().map(|o| o.oid.0).collect();
        assert_eq!(live_s, live_b);
    }

    #[test]
    #[should_panic(expected = "out-of-order")]
    fn insert_batch_rejects_out_of_order() {
        let mut w = SlidingWindow::new(Duration(10));
        let mut ev = Vec::new();
        w.insert_batch(vec![obj(1, 100), obj(2, 50)], &mut ev);
    }

    #[test]
    fn as_slices_covers_live_objects() {
        let mut w = SlidingWindow::new(Duration(1_000));
        let mut ev = Vec::new();
        for i in 0..5 {
            w.insert(obj(i, i * 10), &mut ev);
        }
        let (a, b) = w.as_slices();
        assert_eq!(a.len() + b.len(), w.len());
    }

    #[test]
    fn generation_advances_on_every_content_change() {
        let mut w = SlidingWindow::new(Duration(100));
        let mut ev = Vec::new();
        let g0 = w.generation();
        // Advancing the clock without evicting anything changes nothing.
        w.advance_to(Timestamp(50), &mut ev);
        assert_eq!(w.generation(), g0);
        // Inserts change the contents.
        w.insert(obj(1, 60), &mut ev);
        let g1 = w.generation();
        assert!(g1 > g0);
        // Eviction sweeps change the contents even without an insert.
        w.advance_to(Timestamp(300), &mut ev);
        assert_eq!(ev.len(), 1);
        let g2 = w.generation();
        assert!(g2 > g1);
        // clear() always advances, even when already empty of interest.
        w.clear();
        assert!(w.generation() > g2);
    }

    #[test]
    fn horizon_tracks_now() {
        let mut w = SlidingWindow::new(Duration(100));
        let mut ev = Vec::new();
        assert_eq!(w.horizon(), Timestamp::ZERO);
        w.insert(obj(1, 250), &mut ev);
        assert_eq!(w.horizon(), Timestamp(150));
    }
}
