//! Keyword (textual) models.

use crate::time::{Duration, Timestamp};
use crate::vocab::KeywordId;
use rand::Rng;

/// A generator of per-object keyword sets. Implementations may depend on
/// virtual time to model topical drift ("churn" in the tweet vocabulary, as
/// the paper's reference \[40\] quantifies).
pub trait KeywordModel {
    /// Draws `count` (not necessarily distinct) keywords for one object at
    /// virtual time `t`.
    fn sample_keywords(
        &self,
        rng: &mut dyn rand::RngCore,
        t: Timestamp,
        count: usize,
    ) -> Vec<KeywordId>;

    /// Number of distinct terms the model can produce.
    fn vocab_size(&self) -> usize;
}

/// Zipf-distributed keywords over a dense vocabulary `0..n`.
///
/// Term `rank` (0-based) has probability proportional to
/// `1 / (rank + 1)^s`. Sampling walks a precomputed CDF with binary search,
/// so a draw is `O(log n)`.
#[derive(Debug, Clone)]
pub struct ZipfKeywords {
    cdf: Vec<f64>,
}

impl ZipfKeywords {
    /// Builds the sampler for `n` terms with exponent `s` (`s = 0` is
    /// uniform; tweets are well modeled around `s ≈ 1`).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "vocabulary must be non-empty");
        assert!(s >= 0.0, "exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 0..n {
            acc += 1.0 / ((rank + 1) as f64).powf(s);
            cdf.push(acc);
        }
        // LINT-ALLOW(no-panic): the CDF has one entry per vocabulary word and the vocabulary is non-empty
        let total = *cdf.last().expect("non-empty");
        for v in &mut cdf {
            *v /= total;
        }
        ZipfKeywords { cdf }
    }

    /// Draws a single rank (0-based, rank 0 most frequent).
    pub fn sample_rank(&self, rng: &mut dyn rand::RngCore) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the first index with cdf > u.
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }
}

impl KeywordModel for ZipfKeywords {
    fn sample_keywords(
        &self,
        rng: &mut dyn rand::RngCore,
        _t: Timestamp,
        count: usize,
    ) -> Vec<KeywordId> {
        (0..count)
            .map(|_| KeywordId(self.sample_rank(rng) as u32))
            .collect()
    }

    fn vocab_size(&self) -> usize {
        self.cdf.len()
    }
}

/// Wraps a base Zipf model and rotates which terms are "hot" over time:
/// every `period`, the identity of the rank-`r` term shifts by `step`, so
/// the head of the distribution moves through the vocabulary. This models
/// hashtag churn without changing the frequency *shape* the estimators see.
#[derive(Debug, Clone)]
pub struct TopicDrift {
    base: ZipfKeywords,
    period: Duration,
    step: usize,
}

impl TopicDrift {
    pub fn new(base: ZipfKeywords, period: Duration, step: usize) -> Self {
        assert!(period.millis() > 0, "drift period must be positive");
        TopicDrift { base, period, step }
    }

    fn offset(&self, t: Timestamp) -> usize {
        let epochs = (t.millis() / self.period.millis()) as usize;
        (epochs * self.step) % self.base.vocab_size()
    }
}

impl KeywordModel for TopicDrift {
    fn sample_keywords(
        &self,
        rng: &mut dyn rand::RngCore,
        t: Timestamp,
        count: usize,
    ) -> Vec<KeywordId> {
        let off = self.offset(t);
        let n = self.base.vocab_size();
        (0..count)
            .map(|_| KeywordId(((self.base.sample_rank(rng) + off) % n) as u32))
            .collect()
    }

    fn vocab_size(&self) -> usize {
        self.base.vocab_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_head_is_heavier_than_tail() {
        let z = ZipfKeywords::new(1_000, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut head = 0usize;
        let mut tail = 0usize;
        for _ in 0..10_000 {
            let r = z.sample_rank(&mut rng);
            if r < 10 {
                head += 1;
            } else if r >= 500 {
                tail += 1;
            }
        }
        assert!(head > tail * 2, "head={head} tail={tail}");
    }

    #[test]
    fn zipf_zero_exponent_is_roughly_uniform() {
        let z = ZipfKeywords::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            counts[z.sample_rank(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((1_500..2_500).contains(&c), "non-uniform bucket: {c}");
        }
    }

    #[test]
    fn zipf_ranks_in_range() {
        let z = ZipfKeywords::new(5, 1.2);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            assert!(z.sample_rank(&mut rng) < 5);
        }
    }

    #[test]
    fn keyword_model_emits_requested_count() {
        let z = ZipfKeywords::new(50, 1.0);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(z.sample_keywords(&mut rng, Timestamp::ZERO, 3).len(), 3);
        assert!(z.sample_keywords(&mut rng, Timestamp::ZERO, 0).is_empty());
    }

    #[test]
    fn drift_rotates_hot_terms() {
        let z = ZipfKeywords::new(100, 1.5);
        let d = TopicDrift::new(z, Duration(1_000), 37);
        let mut rng = StdRng::seed_from_u64(5);
        let top_at = |t: u64, rng: &mut StdRng| {
            let mut counts = vec![0usize; 100];
            for _ in 0..5_000 {
                for kw in d.sample_keywords(rng, Timestamp(t), 1) {
                    counts[kw.index()] += 1;
                }
            }
            counts
                .iter()
                .enumerate()
                .max_by_key(|(_, &c)| c)
                .map(|(i, _)| i)
                .unwrap()
        };
        let t0 = top_at(0, &mut rng);
        let t1 = top_at(1_500, &mut rng);
        assert_eq!(t0, 0, "epoch 0 hot term should be rank 0");
        assert_eq!(t1, 37, "epoch 1 hot term should be shifted by step");
    }

    #[test]
    fn drift_preserves_vocab_range() {
        let d = TopicDrift::new(ZipfKeywords::new(10, 1.0), Duration(10), 3);
        let mut rng = StdRng::seed_from_u64(6);
        for t in [0u64, 10, 25, 10_000] {
            for kw in d.sample_keywords(&mut rng, Timestamp(t), 20) {
                assert!(kw.index() < 10);
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_vocab() {
        let _ = ZipfKeywords::new(0, 1.0);
    }
}
