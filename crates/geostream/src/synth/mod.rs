//! Synthetic geo-textual stream generation.
//!
//! The paper evaluates on three real datasets (75 M geotagged tweets, 41 M
//! eBird records, 973 K Foursquare check-ins). Those corpora are not
//! redistributable, so this module generates synthetic streams with the same
//! statistical structure the estimators are sensitive to:
//!
//! * **spatial skew** — locations are drawn from a mixture of Gaussian
//!   hotspots over a bounding box (cities / birding sites / venues), with an
//!   optional uniform background component;
//! * **textual skew** — keywords follow a Zipf distribution over an interned
//!   vocabulary (hashtags / species / tags are famously heavy-tailed), with
//!   optional topical drift so the hot terms change over the stream
//!   lifetime;
//! * **temporal structure** — objects arrive in timestamp order at a
//!   configurable rate.
//!
//! Dataset *presets* ([`DatasetSpec::twitter`], [`DatasetSpec::ebird`],
//! [`DatasetSpec::checkin`]) configure the mixture to echo each paper
//! dataset's character. See DESIGN.md for the substitution rationale.

mod dataset;
mod spatial;
mod text;

pub use dataset::{DatasetKind, DatasetSpec, ObjectGenerator};
pub use spatial::{GaussianMixture, Hotspot, SpatialModel, UniformSpatial};
pub use text::{KeywordModel, TopicDrift, ZipfKeywords};
