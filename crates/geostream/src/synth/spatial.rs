//! Spatial location models.

use crate::geometry::{Point, Rect};
use crate::time::Timestamp;
use rand::Rng;

/// A generator of object locations. Implementations may depend on virtual
/// time to model drifting distributions.
pub trait SpatialModel {
    /// Draws a location at virtual time `t`.
    fn sample(&self, rng: &mut dyn rand::RngCore, t: Timestamp) -> Point;

    /// The spatial domain all samples fall into.
    fn domain(&self) -> Rect;
}

/// Uniform locations over a rectangle.
#[derive(Debug, Clone)]
pub struct UniformSpatial {
    domain: Rect,
}

impl UniformSpatial {
    pub fn new(domain: Rect) -> Self {
        UniformSpatial { domain }
    }
}

impl SpatialModel for UniformSpatial {
    fn sample(&self, rng: &mut dyn rand::RngCore, _t: Timestamp) -> Point {
        Point::new(
            rng.gen_range(self.domain.min_x..=self.domain.max_x),
            rng.gen_range(self.domain.min_y..=self.domain.max_y),
        )
    }

    fn domain(&self) -> Rect {
        self.domain
    }
}

/// One Gaussian hotspot of a mixture.
#[derive(Debug, Clone)]
pub struct Hotspot {
    pub center: Point,
    /// Standard deviation along x (degrees).
    pub sigma_x: f64,
    /// Standard deviation along y (degrees).
    pub sigma_y: f64,
    /// Unnormalized mixture weight.
    pub weight: f64,
}

/// A mixture of Gaussian hotspots with a uniform background component,
/// clamped to the domain rectangle. This is the workhorse spatial model:
/// geotagged social data is strongly multi-modal around population centers.
///
/// When `drift_period` is set, the hotspot weights rotate over time: at any
/// instant one hotspot is "in season" and receives `seasonal_boost` times
/// its base weight, moving the spatial mass around the domain — the paper's
/// streams exhibit exactly this kind of distribution change, which is what
/// the adaptive estimators must track.
#[derive(Debug, Clone)]
pub struct GaussianMixture {
    domain: Rect,
    hotspots: Vec<Hotspot>,
    /// Probability of drawing from the uniform background instead of a
    /// hotspot.
    background: f64,
    drift_period: Option<crate::time::Duration>,
    seasonal_boost: f64,
}

impl GaussianMixture {
    /// Builds a mixture from explicit hotspots.
    ///
    /// `background` is the probability mass of the uniform component and
    /// must be in `[0, 1]`.
    pub fn new(domain: Rect, hotspots: Vec<Hotspot>, background: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&background),
            "background must be a probability"
        );
        assert!(
            !hotspots.is_empty() || background > 0.0,
            "mixture needs at least one component"
        );
        GaussianMixture {
            domain,
            hotspots,
            background,
            drift_period: None,
            seasonal_boost: 1.0,
        }
    }

    /// Places `n` hotspots deterministically (from `seed`) inside `domain`,
    /// with standard deviations of `sigma_frac` of the domain extent.
    pub fn scattered(domain: Rect, n: usize, sigma_frac: f64, background: f64, seed: u64) -> Self {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let hotspots = (0..n)
            .map(|_| {
                // Keep centers off the very edge so most mass stays in-domain.
                let fx = rng.gen_range(0.1..0.9);
                let fy = rng.gen_range(0.1..0.9);
                Hotspot {
                    center: Point::new(
                        domain.min_x + fx * domain.width(),
                        domain.min_y + fy * domain.height(),
                    ),
                    sigma_x: sigma_frac * domain.width(),
                    sigma_y: sigma_frac * domain.height(),
                    weight: rng.gen_range(0.5..1.5),
                }
            })
            .collect();
        GaussianMixture::new(domain, hotspots, background)
    }

    /// Enables seasonal drift: every `period`, the "in season" hotspot
    /// advances by one, and the seasonal hotspot's weight is multiplied by
    /// `boost`.
    pub fn with_drift(mut self, period: crate::time::Duration, boost: f64) -> Self {
        assert!(period.millis() > 0, "drift period must be positive");
        assert!(boost >= 1.0, "boost must be >= 1");
        self.drift_period = Some(period);
        self.seasonal_boost = boost;
        self
    }

    /// The hotspots of the mixture.
    pub fn hotspots(&self) -> &[Hotspot] {
        &self.hotspots
    }

    fn seasonal_index(&self, t: Timestamp) -> Option<usize> {
        let period = self.drift_period?;
        if self.hotspots.is_empty() {
            return None;
        }
        Some(((t.millis() / period.millis()) as usize) % self.hotspots.len())
    }

    fn pick_hotspot(&self, rng: &mut dyn rand::RngCore, t: Timestamp) -> &Hotspot {
        let season = self.seasonal_index(t);
        let total: f64 = self
            .hotspots
            .iter()
            .enumerate()
            .map(|(i, h)| {
                if Some(i) == season {
                    h.weight * self.seasonal_boost
                } else {
                    h.weight
                }
            })
            .sum();
        let mut u = rng.gen_range(0.0..total);
        for (i, h) in self.hotspots.iter().enumerate() {
            let w = if Some(i) == season {
                h.weight * self.seasonal_boost
            } else {
                h.weight
            };
            if u < w {
                return h;
            }
            u -= w;
        }
        // LINT-ALLOW(no-panic): the hotspot list is verified non-empty at construction
        self.hotspots.last().expect("non-empty checked")
    }
}

/// Draws a standard normal variate via the Box–Muller transform. Implemented
/// here because the sanctioned `rand` crate does not ship distributions.
fn standard_normal(rng: &mut dyn rand::RngCore) -> f64 {
    // Guard against ln(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

impl SpatialModel for GaussianMixture {
    fn sample(&self, rng: &mut dyn rand::RngCore, t: Timestamp) -> Point {
        if self.hotspots.is_empty() || rng.gen_bool(self.background) {
            return UniformSpatial::new(self.domain).sample(rng, t);
        }
        let h = self.pick_hotspot(rng, t);
        let x = h.center.x + standard_normal(rng) * h.sigma_x;
        let y = h.center.y + standard_normal(rng) * h.sigma_y;
        Point::new(
            x.clamp(self.domain.min_x, self.domain.max_x),
            y.clamp(self.domain.min_y, self.domain.max_y),
        )
    }

    fn domain(&self) -> Rect {
        self.domain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const DOMAIN: Rect = Rect {
        min_x: -10.0,
        min_y: -10.0,
        max_x: 10.0,
        max_y: 10.0,
    };

    #[test]
    fn uniform_stays_in_domain() {
        let m = UniformSpatial::new(DOMAIN);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let p = m.sample(&mut rng, Timestamp::ZERO);
            assert!(DOMAIN.contains(&p));
        }
    }

    #[test]
    fn mixture_stays_in_domain() {
        let m = GaussianMixture::scattered(DOMAIN, 4, 0.05, 0.1, 7);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1_000 {
            let p = m.sample(&mut rng, Timestamp::ZERO);
            assert!(DOMAIN.contains(&p));
        }
    }

    #[test]
    fn mixture_is_skewed_toward_hotspots() {
        let h = Hotspot {
            center: Point::new(5.0, 5.0),
            sigma_x: 0.5,
            sigma_y: 0.5,
            weight: 1.0,
        };
        let m = GaussianMixture::new(DOMAIN, vec![h], 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let near = Rect::new(3.0, 3.0, 7.0, 7.0);
        let hits = (0..2_000)
            .filter(|_| near.contains(&m.sample(&mut rng, Timestamp::ZERO)))
            .count();
        // Essentially everything should land within 4 sigma of the center.
        assert!(hits > 1_900, "only {hits}/2000 near hotspot");
    }

    #[test]
    fn background_component_spreads_mass() {
        let h = Hotspot {
            center: Point::new(5.0, 5.0),
            sigma_x: 0.1,
            sigma_y: 0.1,
            weight: 1.0,
        };
        let m = GaussianMixture::new(DOMAIN, vec![h], 0.5);
        let mut rng = StdRng::seed_from_u64(4);
        let far = Rect::new(-10.0, -10.0, 0.0, 0.0); // quarter of the domain
        let hits = (0..4_000)
            .filter(|_| far.contains(&m.sample(&mut rng, Timestamp::ZERO)))
            .count();
        // Background alone should put ~ 0.5 * 0.25 = 12.5% of mass there.
        assert!(hits > 300, "background not spreading mass: {hits}");
    }

    #[test]
    fn drift_moves_mass_between_hotspots() {
        let a = Hotspot {
            center: Point::new(-5.0, -5.0),
            sigma_x: 0.2,
            sigma_y: 0.2,
            weight: 1.0,
        };
        let b = Hotspot {
            center: Point::new(5.0, 5.0),
            sigma_x: 0.2,
            sigma_y: 0.2,
            weight: 1.0,
        };
        let m = GaussianMixture::new(DOMAIN, vec![a, b], 0.0).with_drift(Duration(1_000), 50.0);
        let mut rng = StdRng::seed_from_u64(5);
        let near_a = Rect::new(-7.0, -7.0, -3.0, -3.0);
        let at = |t: u64, rng: &mut StdRng| {
            (0..1_000)
                .filter(|_| near_a.contains(&m.sample(rng, Timestamp(t))))
                .count()
        };
        let season_a = at(0, &mut rng); // hotspot 0 in season
        let season_b = at(1_500, &mut rng); // hotspot 1 in season
        assert!(
            season_a > season_b + 200,
            "drift had no effect: {season_a} vs {season_b}"
        );
    }

    #[test]
    fn scattered_is_deterministic_per_seed() {
        let m1 = GaussianMixture::scattered(DOMAIN, 3, 0.05, 0.0, 42);
        let m2 = GaussianMixture::scattered(DOMAIN, 3, 0.05, 0.0, 42);
        for (a, b) in m1.hotspots().iter().zip(m2.hotspots()) {
            assert_eq!(a.center, b.center);
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_bad_background() {
        let _ = GaussianMixture::new(DOMAIN, vec![], 1.5);
    }
}
