//! Dataset presets and the object generator.
//!
//! Each preset mirrors one of the paper's evaluation datasets (§VI-A) in
//! *shape* — spatial modality, vocabulary size, keywords per object, stream
//! rate — at a laptop-friendly scale. Scale factors are configurable, so the
//! harness can dial object counts up or down without changing distribution
//! shape.

use crate::geometry::Rect;
use crate::object::{GeoTextObject, ObjectId};
use crate::synth::spatial::{GaussianMixture, SpatialModel};
use crate::synth::text::{KeywordModel, TopicDrift, ZipfKeywords};
use crate::time::{Duration, Timestamp};
use crate::vocab::Vocabulary;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which paper dataset a preset mimics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// 75 M geotagged tweets over 10 h: many urban hotspots, large hashtag
    /// vocabulary with churn, 1–3 keywords per object.
    Twitter,
    /// 41 M eBird records over 6 h: fewer, tighter observation sites, modest
    /// species vocabulary, 2–5 keywords per record, no churn.
    EBird,
    /// 973 K Foursquare check-ins: venue-shaped point clusters, small tag
    /// vocabulary, 1–2 tags per check-in.
    CheckIn,
}

impl DatasetKind {
    /// Short name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Twitter => "Twitter",
            DatasetKind::EBird => "eBird",
            DatasetKind::CheckIn => "CheckIn",
        }
    }
}

/// Full description of a synthetic dataset/stream.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    pub kind: DatasetKind,
    pub domain: Rect,
    /// Number of Gaussian hotspots.
    pub hotspots: usize,
    /// Hotspot std-dev as a fraction of domain extent.
    pub sigma_frac: f64,
    /// Probability mass of the uniform background.
    pub background: f64,
    /// Seasonal drift of the spatial mixture, if any.
    pub spatial_drift: Option<(Duration, f64)>,
    /// Distinct keyword count.
    pub vocab_size: usize,
    /// Zipf exponent of keyword frequencies.
    pub zipf_s: f64,
    /// Topical drift `(period, step)` of the keyword model, if any.
    pub keyword_drift: Option<(Duration, usize)>,
    /// Inclusive range of keywords per object.
    pub kw_per_object: (usize, usize),
    /// Mean inter-arrival gap between objects.
    pub mean_gap: Duration,
    /// Base RNG seed; all randomness in the generator derives from it.
    pub seed: u64,
}

impl DatasetSpec {
    /// Twitter-like preset (the paper's primary dataset).
    pub fn twitter() -> Self {
        DatasetSpec {
            kind: DatasetKind::Twitter,
            // Continental-US-like bounding box.
            domain: Rect::new(-125.0, 25.0, -66.0, 49.0),
            hotspots: 24,
            sigma_frac: 0.015,
            background: 0.08,
            spatial_drift: Some((Duration::from_secs(90), 6.0)),
            vocab_size: 20_000,
            zipf_s: 1.05,
            keyword_drift: Some((Duration::from_secs(75), 4_831)),
            kw_per_object: (1, 3),
            mean_gap: Duration::from_millis(4),
            seed: 0x7717_7e12,
        }
    }

    /// eBird-like preset: tight observation clusters, stable vocabulary.
    pub fn ebird() -> Self {
        DatasetSpec {
            kind: DatasetKind::EBird,
            domain: Rect::new(-125.0, 25.0, -66.0, 49.0),
            hotspots: 60,
            sigma_frac: 0.006,
            background: 0.03,
            spatial_drift: None,
            vocab_size: 2_500,
            zipf_s: 0.9,
            keyword_drift: None,
            kw_per_object: (2, 5),
            mean_gap: Duration::from_millis(5),
            seed: 0xeb1d_0001,
        }
    }

    /// Foursquare-CheckIn-like preset: venue clusters, tiny tag vocabulary.
    pub fn checkin() -> Self {
        DatasetSpec {
            kind: DatasetKind::CheckIn,
            domain: Rect::new(-125.0, 25.0, -66.0, 49.0),
            hotspots: 12,
            sigma_frac: 0.01,
            background: 0.05,
            spatial_drift: None,
            vocab_size: 800,
            zipf_s: 1.1,
            keyword_drift: None,
            kw_per_object: (1, 2),
            mean_gap: Duration::from_millis(8),
            seed: 0xc4ec_0001,
        }
    }

    /// Returns the preset for `kind`.
    pub fn preset(kind: DatasetKind) -> Self {
        match kind {
            DatasetKind::Twitter => Self::twitter(),
            DatasetKind::EBird => Self::ebird(),
            DatasetKind::CheckIn => Self::checkin(),
        }
    }

    /// Overrides the RNG seed (handy for repeated trials).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the interned vocabulary for this dataset.
    pub fn vocabulary(&self) -> Vocabulary {
        Vocabulary::synthetic(self.vocab_size)
    }

    /// Builds the spatial model for this dataset.
    pub fn spatial_model(&self) -> GaussianMixture {
        let mut m = GaussianMixture::scattered(
            self.domain,
            self.hotspots,
            self.sigma_frac,
            self.background,
            self.seed ^ 0x5a5a,
        );
        if let Some((period, boost)) = self.spatial_drift {
            m = m.with_drift(period, boost);
        }
        m
    }

    /// Builds the keyword model for this dataset.
    pub fn keyword_model(&self) -> Box<dyn KeywordModel + Send + Sync> {
        let z = ZipfKeywords::new(self.vocab_size, self.zipf_s);
        match self.keyword_drift {
            Some((period, step)) => Box::new(TopicDrift::new(z, period, step)),
            None => Box::new(z),
        }
    }

    /// Builds a deterministic object generator for this spec.
    pub fn generator(&self) -> ObjectGenerator {
        ObjectGenerator::new(self.clone())
    }
}

/// An infinite, deterministic iterator of [`GeoTextObject`]s in
/// non-decreasing timestamp order.
pub struct ObjectGenerator {
    spec: DatasetSpec,
    spatial: GaussianMixture,
    keywords: Box<dyn KeywordModel + Send + Sync>,
    rng: StdRng,
    next_oid: u64,
    clock: Timestamp,
}

impl ObjectGenerator {
    fn new(spec: DatasetSpec) -> Self {
        let spatial = spec.spatial_model();
        let keywords = spec.keyword_model();
        let rng = StdRng::seed_from_u64(spec.seed);
        ObjectGenerator {
            spec,
            spatial,
            keywords,
            rng,
            next_oid: 0,
            clock: Timestamp::ZERO,
        }
    }

    /// The dataset spec this generator was built from.
    pub fn spec(&self) -> &DatasetSpec {
        &self.spec
    }

    /// Current virtual time of the generator (timestamp of the last object).
    pub fn clock(&self) -> Timestamp {
        self.clock
    }

    /// Produces the next object.
    pub fn next_object(&mut self) -> GeoTextObject {
        // Exponential-ish inter-arrival: uniform gap in [0, 2 * mean].
        let gap = self.rng.gen_range(0..=self.spec.mean_gap.millis() * 2);
        self.clock = self.clock + Duration::from_millis(gap);
        let loc = self.spatial.sample(&mut self.rng, self.clock);
        let (lo, hi) = self.spec.kw_per_object;
        let count = self.rng.gen_range(lo..=hi);
        let kws = self
            .keywords
            .sample_keywords(&mut self.rng, self.clock, count);
        let oid = ObjectId(self.next_oid);
        self.next_oid += 1;
        GeoTextObject::new(oid, loc, kws, self.clock)
    }

    /// Generates objects until the virtual clock passes `until`.
    pub fn take_until(&mut self, until: Timestamp) -> Vec<GeoTextObject> {
        let mut out = Vec::new();
        while self.clock < until {
            out.push(self.next_object());
        }
        out
    }
}

impl Iterator for ObjectGenerator {
    type Item = GeoTextObject;

    fn next(&mut self) -> Option<GeoTextObject> {
        Some(self.next_object())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objects_are_time_ordered_and_in_domain() {
        let spec = DatasetSpec::twitter();
        let mut g = spec.generator();
        let mut last = Timestamp::ZERO;
        for _ in 0..2_000 {
            let o = g.next_object();
            assert!(o.timestamp >= last, "timestamps must be non-decreasing");
            assert!(spec.domain.contains(&o.loc));
            last = o.timestamp;
        }
    }

    #[test]
    fn keyword_counts_respect_spec() {
        let spec = DatasetSpec::ebird();
        let (lo, hi) = spec.kw_per_object;
        let mut g = spec.generator();
        for _ in 0..500 {
            let o = g.next_object();
            // Dedup can shrink below lo, but never above hi.
            assert!(o.keywords.len() <= hi);
            assert!(!o.keywords.is_empty() || lo == 0);
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let a: Vec<_> = DatasetSpec::checkin().generator().take(100).collect();
        let b: Vec<_> = DatasetSpec::checkin().generator().take(100).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<_> = DatasetSpec::twitter().generator().take(50).collect();
        let b: Vec<_> = DatasetSpec::twitter()
            .with_seed(99)
            .generator()
            .take(50)
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn oids_are_unique_and_dense() {
        let g = DatasetSpec::twitter().generator();
        let oids: Vec<u64> = g.take(100).map(|o| o.oid.0).collect();
        assert_eq!(oids, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn take_until_advances_clock() {
        let mut g = DatasetSpec::twitter().generator();
        let objs = g.take_until(Timestamp(10_000));
        assert!(!objs.is_empty());
        assert!(g.clock() >= Timestamp(10_000));
        assert!(objs.iter().all(|o| o.timestamp <= g.clock()));
    }

    #[test]
    fn presets_have_distinct_character() {
        let tw = DatasetSpec::twitter();
        let eb = DatasetSpec::ebird();
        let ci = DatasetSpec::checkin();
        assert!(tw.vocab_size > eb.vocab_size);
        assert!(eb.vocab_size > ci.vocab_size);
        assert_eq!(DatasetSpec::preset(DatasetKind::Twitter).kind, tw.kind);
        assert_eq!(DatasetKind::EBird.name(), "eBird");
    }
}
