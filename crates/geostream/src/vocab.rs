//! Interned keyword vocabulary.
//!
//! Objects and queries refer to keywords through compact [`KeywordId`]s.
//! Interning removes string hashing and cloning from every hot path (the
//! estimators process hundreds of thousands of keyword memberships per
//! experiment) and keeps object payloads small.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A compact identifier for an interned keyword.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct KeywordId(pub u32);

impl KeywordId {
    /// The raw index of this keyword in its vocabulary.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// A bidirectional map between keyword strings and [`KeywordId`]s.
///
/// Vocabularies are append-only: ids are stable for the lifetime of the
/// vocabulary, which lets estimators cache per-keyword statistics by index.
#[derive(Debug, Default, Clone)]
pub struct Vocabulary {
    words: Vec<String>,
    by_word: HashMap<String, KeywordId>,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a vocabulary of `n` synthetic terms `kw0000`, `kw0001`, …
    /// Useful for generators that only need term identities, not real text.
    pub fn synthetic(n: usize) -> Self {
        let mut v = Self::new();
        for i in 0..n {
            v.intern(&format!("kw{i:04}"));
        }
        v
    }

    /// Interns `word`, returning its id. Repeated calls with the same word
    /// return the same id.
    pub fn intern(&mut self, word: &str) -> KeywordId {
        if let Some(&id) = self.by_word.get(word) {
            return id;
        }
        let id = KeywordId(
            // LINT-ALLOW(no-panic): a vocabulary beyond u32::MAX keyword ids is unsupported by design; fail loudly
            u32::try_from(self.words.len()).expect("vocabulary exceeded u32::MAX entries"),
        );
        self.words.push(word.to_owned());
        self.by_word.insert(word.to_owned(), id);
        id
    }

    /// Looks up an already-interned word.
    pub fn get(&self, word: &str) -> Option<KeywordId> {
        self.by_word.get(word).copied()
    }

    /// Resolves an id back to its string. Returns `None` for ids from a
    /// different vocabulary.
    pub fn resolve(&self, id: KeywordId) -> Option<&str> {
        self.words.get(id.index()).map(String::as_str)
    }

    /// Number of distinct interned keywords.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Iterates over `(id, word)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (KeywordId, &str)> {
        self.words
            .iter()
            .enumerate()
            .map(|(i, w)| (KeywordId(i as u32), w.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("fire");
        let b = v.intern("rescue");
        let a2 = v.intern("fire");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut v = Vocabulary::new();
        let id = v.intern("downtown");
        assert_eq!(v.resolve(id), Some("downtown"));
        assert_eq!(v.get("downtown"), Some(id));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.resolve(KeywordId(99)), None);
    }

    #[test]
    fn synthetic_vocab() {
        let v = Vocabulary::synthetic(100);
        assert_eq!(v.len(), 100);
        assert_eq!(v.resolve(KeywordId(7)), Some("kw0007"));
        assert!(!v.is_empty());
        assert_eq!(v.iter().count(), 100);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let v = Vocabulary::synthetic(10);
        for (i, (id, _)) in v.iter().enumerate() {
            assert_eq!(id.index(), i);
        }
    }
}
