//! Property tests of the stream substrate: generators, distributions,
//! vocabulary, and event merging.

use geostream::stream::{merge_by_time, Clocked, Merged};
use geostream::synth::{DatasetSpec, KeywordModel, ZipfKeywords};
use geostream::{Timestamp, Vocabulary};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn generator_timestamps_never_decrease(seed in 0u64..500, n in 10usize..400) {
        let mut gen = DatasetSpec::twitter().with_seed(seed).generator();
        let mut last = Timestamp::ZERO;
        for _ in 0..n {
            let o = gen.next_object();
            prop_assert!(o.timestamp >= last);
            last = o.timestamp;
        }
    }

    #[test]
    fn generator_objects_stay_in_domain(seed in 0u64..500) {
        let spec = DatasetSpec::checkin().with_seed(seed);
        let domain = spec.domain;
        let mut gen = spec.generator();
        for _ in 0..200 {
            let o = gen.next_object();
            prop_assert!(domain.contains(&o.loc));
            for kw in o.keywords.iter() {
                prop_assert!(kw.index() < spec.vocab_size);
            }
        }
    }

    #[test]
    fn zipf_ranks_stay_in_range(n in 2usize..500, s in 0.0..2.0f64, seed in 0u64..100) {
        let z = ZipfKeywords::new(n, s);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..100 {
            prop_assert!(z.sample_rank(&mut rng) < n);
        }
        prop_assert_eq!(z.vocab_size(), n);
    }

    #[test]
    fn keyword_model_count_contract(count in 0usize..8, seed in 0u64..100) {
        let z = ZipfKeywords::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let kws = z.sample_keywords(&mut rng, Timestamp::ZERO, count);
        prop_assert_eq!(kws.len(), count);
    }

    #[test]
    fn vocabulary_intern_resolve_roundtrip(words in proptest::collection::vec("[a-z]{1,10}", 1..50)) {
        let mut v = Vocabulary::new();
        let ids: Vec<_> = words.iter().map(|w| v.intern(w)).collect();
        for (w, id) in words.iter().zip(&ids) {
            prop_assert_eq!(v.resolve(*id), Some(w.as_str()));
            prop_assert_eq!(v.get(w), Some(*id));
        }
        let distinct: std::collections::HashSet<_> = words.iter().collect();
        prop_assert_eq!(v.len(), distinct.len());
    }

    #[test]
    fn merge_by_time_is_sorted_and_complete(
        a in proptest::collection::vec(0u64..1_000, 0..50),
        b in proptest::collection::vec(0u64..1_000, 0..50),
    ) {
        let mut a = a; a.sort_unstable();
        let mut b = b; b.sort_unstable();
        let left: Vec<Clocked<u64>> =
            a.iter().map(|&t| Clocked::new(Timestamp(t), t)).collect();
        let right: Vec<Clocked<u64>> =
            b.iter().map(|&t| Clocked::new(Timestamp(t), t)).collect();
        let merged: Vec<_> = merge_by_time(left.into_iter(), right.into_iter()).collect();
        prop_assert_eq!(merged.len(), a.len() + b.len());
        // Non-decreasing output times.
        for w in merged.windows(2) {
            prop_assert!(w[0].at <= w[1].at);
        }
        // Every input appears exactly once per side.
        let lefts = merged.iter().filter(|c| matches!(c.item, Merged::Left(_))).count();
        prop_assert_eq!(lefts, a.len());
    }

    #[test]
    fn same_seed_same_stream(seed in 0u64..200) {
        let mut g1 = DatasetSpec::ebird().with_seed(seed).generator();
        let mut g2 = DatasetSpec::ebird().with_seed(seed).generator();
        for _ in 0..50 {
            prop_assert_eq!(g1.next_object(), g2.next_object());
        }
    }
}
