//! Property-based churn tests for the slot-based exact executor: an
//! arbitrary interleaving of inserts, removals, and window slides must
//! leave every spatial backend — and the cost-based planner routing on
//! top of them — in exact agreement with a brute-force scan of the live
//! population.

use exactdb::{AccessPath, ExactExecutor, SpatialIndexKind};
use geostream::{GeoTextObject, KeywordId, ObjectId, Point, RcDvq, Rect, Timestamp};
use proptest::prelude::*;
use std::collections::BTreeMap;

const DOMAIN: Rect = Rect {
    min_x: 0.0,
    min_y: 0.0,
    max_x: 100.0,
    max_y: 100.0,
};

/// One step of window churn.
#[derive(Debug, Clone)]
enum Op {
    /// A fresh arrival at the given location with the given keywords.
    Insert { loc: Point, kws: Vec<u32> },
    /// Evict the i-th oldest live object (modulo the live population).
    RemoveOldest(usize),
    /// Slide: evict the oldest `n` live objects at once (a window
    /// advance evicting a batch).
    Advance(usize),
}

fn arb_point() -> impl Strategy<Value = Point> {
    (0.0..100.0f64, 0.0..100.0f64).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_op() -> impl Strategy<Value = Op> {
    // Inserts repeated to skew the op mix toward arrivals (the plain
    // union samples arms uniformly).
    let insert = || {
        (arb_point(), proptest::collection::vec(0u32..20, 0..4))
            .prop_map(|(loc, kws)| Op::Insert { loc, kws })
    };
    prop_oneof![
        insert(),
        insert(),
        insert(),
        insert(),
        (0usize..64).prop_map(Op::RemoveOldest),
        (0usize..64).prop_map(Op::RemoveOldest),
        (1usize..24).prop_map(Op::Advance),
    ]
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (0.0..90.0f64, 0.0..90.0f64, 0.5..50.0f64, 0.5..50.0f64)
        .prop_map(|(x, y, w, h)| Rect::new(x, y, (x + w).min(100.0), (y + h).min(100.0)))
}

fn arb_query() -> impl Strategy<Value = RcDvq> {
    prop_oneof![
        arb_rect().prop_map(RcDvq::spatial),
        proptest::collection::vec(0u32..20, 1..4)
            .prop_map(|k| RcDvq::keyword(k.into_iter().map(KeywordId).collect())),
        (arb_rect(), proptest::collection::vec(0u32..20, 1..4))
            .prop_map(|(r, k)| RcDvq::hybrid(r, k.into_iter().map(KeywordId).collect())),
    ]
}

/// Replays the op sequence on all three backends and a brute-force
/// oracle, checking exactness after the churn settles.
fn run_churn(ops: &[Op], queries: &[RcDvq]) {
    let mut executors = [
        ExactExecutor::new(DOMAIN, SpatialIndexKind::Grid),
        ExactExecutor::new(DOMAIN, SpatialIndexKind::Quadtree),
        ExactExecutor::new(DOMAIN, SpatialIndexKind::RTree),
    ];
    // Brute-force oracle: oid → object, in insertion (= age) order.
    let mut oracle: BTreeMap<u64, GeoTextObject> = BTreeMap::new();
    let mut next_id = 0u64;
    for op in ops {
        match op {
            Op::Insert { loc, kws } => {
                let o = GeoTextObject::new(
                    ObjectId(next_id),
                    *loc,
                    kws.iter().copied().map(KeywordId).collect(),
                    Timestamp(next_id),
                );
                next_id += 1;
                for e in &mut executors {
                    e.insert(&o);
                }
                oracle.insert(o.oid.0, o);
            }
            Op::RemoveOldest(i) => {
                if oracle.is_empty() {
                    continue;
                }
                let idx = i % oracle.len();
                let oid = *oracle.keys().nth(idx).expect("index in range");
                let o = oracle.remove(&oid).expect("key exists");
                for e in &mut executors {
                    e.remove(&o);
                }
            }
            Op::Advance(n) => {
                let batch: Vec<GeoTextObject> = oracle
                    .keys()
                    .take(*n)
                    .copied()
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|oid| oracle.remove(&oid).expect("key exists"))
                    .collect();
                for e in &mut executors {
                    e.remove_batch(&batch);
                }
            }
        }
    }
    for e in &executors {
        assert_eq!(e.len(), oracle.len(), "{} length drifted", e.kind().name());
    }
    for q in queries {
        let brute = oracle.values().filter(|o| q.matches(o)).count() as u64;
        for e in &executors {
            assert_eq!(
                e.execute(q),
                brute,
                "{} (via {:?} path) wrong on {:?}",
                e.kind().name(),
                e.plan(q),
                q
            );
            // Both access paths must agree regardless of what the
            // planner picked for this query.
            if matches!(e.plan(q), AccessPath::Inverted) {
                assert_eq!(e.execute_spatial_path(q), brute);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn churn_keeps_every_backend_exact(
        ops in proptest::collection::vec(arb_op(), 1..250),
        queries in proptest::collection::vec(arb_query(), 1..6),
    ) {
        run_churn(&ops, &queries);
    }

    #[test]
    fn heavy_eviction_churn_is_exact(
        inserts in proptest::collection::vec(
            (arb_point(), proptest::collection::vec(0u32..20, 0..4)), 50..150),
        queries in proptest::collection::vec(arb_query(), 1..6),
    ) {
        // Sliding-window shape: every insert past a capacity of 30 evicts
        // the oldest object, so most slots recycle at least once.
        let mut ops = Vec::new();
        for (i, (loc, kws)) in inserts.into_iter().enumerate() {
            ops.push(Op::Insert { loc, kws });
            if i >= 30 {
                ops.push(Op::Advance(1));
            }
        }
        run_churn(&ops, &queries);
    }
}
