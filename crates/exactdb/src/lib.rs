//! # exactdb — exact spatio-textual query execution over the window
//!
//! LATEST never trusts an estimator blindly: after the query plan runs,
//! the *actual* selectivity appears in the system logs and is used to (a)
//! score the estimate and (b) extend the Hoeffding tree's training data
//! (paper §V-D). This crate is that ground-truth substrate: full indexes
//! over the sliding window that answer RC-DVQ queries **exactly**.
//!
//! All live window objects are owned once, by the slot-based
//! [`store::ObjectStore`]; the spatial backends ([`grid::GridIndex`],
//! [`quad::QuadtreeIndex`], [`rtree::RTreeIndex`]) and the keyword-side
//! [`inverted::InvertedIndex`] hold bare `u32` slot ids into it.
//! [`ExactExecutor`] threads the store through every update and routes
//! each query with a cost-based access-path planner (posting mass vs.
//! spatial candidate count). These are also the "Grid" and "QuadTree"
//! index columns of the paper's Table I: exact indexes touch real
//! objects, which is why they cost 15–16× an estimator.

use std::fmt;

pub mod executor;
pub mod grid;
pub mod inverted;
pub mod quad;
pub mod rtree;
pub mod store;

pub use executor::{AccessPath, ExactExecutor, PathMix, SpatialIndexKind};
pub use store::{ObjectStore, SlotId};

/// Error returned when the inverted index is asked to count a query with
/// no keyword predicate — posting lists are its only access path, so a
/// pure spatial query has nothing to run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoKeywordPredicate;

impl fmt::Display for NoKeywordPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "query has no keyword predicate: the inverted index cannot serve it"
        )
    }
}

impl std::error::Error for NoKeywordPredicate {}
