//! # exactdb — exact spatio-textual query execution over the window
//!
//! LATEST never trusts an estimator blindly: after the query plan runs,
//! the *actual* selectivity appears in the system logs and is used to (a)
//! score the estimate and (b) extend the Hoeffding tree's training data
//! (paper §V-D). This crate is that ground-truth substrate: full indexes
//! over the sliding window that answer RC-DVQ queries **exactly**.
//!
//! Two spatial backends are provided — a [`grid::GridIndex`] and a
//! [`quad::QuadtreeIndex`] — plus an [`inverted::InvertedIndex`] over
//! keywords. [`ExactExecutor`] combines a spatial backend with the inverted
//! index and picks the cheaper access path per query. These are also the
//! "Grid" and "QuadTree" index columns of the paper's Table I: exact
//! indexes touch real objects, which is why they cost 15–16× an estimator.

pub mod executor;
pub mod grid;
pub mod inverted;
pub mod quad;
pub mod rtree;

pub use executor::{ExactExecutor, SpatialIndexKind};
