//! Inverted keyword index: `keyword → postings of objects carrying it`.

use geostream::{GeoTextObject, KeywordId, ObjectId, RcDvq};
use std::collections::{HashMap, HashSet};

/// An inverted index over object keywords, backed by an object store so
/// hybrid queries can finish predicate evaluation on the posting lists.
#[derive(Debug, Clone, Default)]
pub struct InvertedIndex {
    postings: HashMap<KeywordId, HashSet<ObjectId>>,
    objects: HashMap<ObjectId, GeoTextObject>,
}

impl InvertedIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Number of distinct keywords with non-empty postings.
    pub fn distinct_keywords(&self) -> usize {
        self.postings.len()
    }

    /// Indexes an object under each of its keywords.
    pub fn insert(&mut self, obj: &GeoTextObject) {
        if self.objects.contains_key(&obj.oid) {
            self.remove(obj.oid);
        }
        for &kw in obj.keywords.iter() {
            self.postings.entry(kw).or_default().insert(obj.oid);
        }
        self.objects.insert(obj.oid, obj.clone());
    }

    /// Removes an object from all posting lists.
    pub fn remove(&mut self, oid: ObjectId) -> bool {
        let Some(obj) = self.objects.remove(&oid) else {
            return false;
        };
        for &kw in obj.keywords.iter() {
            if let Some(set) = self.postings.get_mut(&kw) {
                set.remove(&oid);
                if set.is_empty() {
                    self.postings.remove(&kw);
                }
            }
        }
        true
    }

    /// Posting-list size for one keyword.
    pub fn postings_len(&self, kw: KeywordId) -> usize {
        self.postings.get(&kw).map_or(0, HashSet::len)
    }

    /// Exact count of objects matching `query`, using the union of the
    /// query keywords' posting lists as the access path (the spatial
    /// predicate, if any, is verified on the stored objects).
    ///
    /// # Panics
    /// Panics if the query has no keyword predicate — the inverted index
    /// has no access path for pure spatial queries.
    pub fn count(&self, query: &RcDvq) -> u64 {
        let kws = query.keywords();
        assert!(!kws.is_empty(), "inverted index needs a keyword predicate");
        let mut seen: HashSet<ObjectId> = HashSet::new();
        let mut count = 0u64;
        for &kw in kws {
            if let Some(posting) = self.postings.get(&kw) {
                for &oid in posting {
                    if seen.insert(oid) {
                        let obj = &self.objects[&oid];
                        if query.range().is_none_or(|r| r.contains(&obj.loc)) {
                            count += 1;
                        }
                    }
                }
            }
        }
        count
    }

    /// Clears the index.
    pub fn clear(&mut self) {
        self.postings.clear();
        self.objects.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geostream::{Point, Rect, Timestamp};

    fn obj(id: u64, x: f64, kws: &[u32]) -> GeoTextObject {
        GeoTextObject::new(
            ObjectId(id),
            Point::new(x, 0.0),
            kws.iter().copied().map(KeywordId).collect(),
            Timestamp::ZERO,
        )
    }

    #[test]
    fn counts_union_of_postings() {
        let mut idx = InvertedIndex::new();
        idx.insert(&obj(1, 0.0, &[1, 2]));
        idx.insert(&obj(2, 0.0, &[2]));
        idx.insert(&obj(3, 0.0, &[3]));
        let q = RcDvq::keyword(vec![KeywordId(1), KeywordId(2)]);
        // Object 1 matches both keywords but counts once.
        assert_eq!(idx.count(&q), 2);
        assert_eq!(idx.postings_len(KeywordId(2)), 2);
        assert_eq!(idx.distinct_keywords(), 3);
    }

    #[test]
    fn hybrid_checks_spatial_predicate() {
        let mut idx = InvertedIndex::new();
        idx.insert(&obj(1, 1.0, &[7]));
        idx.insert(&obj(2, 50.0, &[7]));
        let q = RcDvq::hybrid(Rect::new(0.0, -1.0, 10.0, 1.0), vec![KeywordId(7)]);
        assert_eq!(idx.count(&q), 1);
    }

    #[test]
    fn remove_cleans_postings() {
        let mut idx = InvertedIndex::new();
        idx.insert(&obj(1, 0.0, &[1]));
        assert!(idx.remove(ObjectId(1)));
        assert!(!idx.remove(ObjectId(1)));
        assert_eq!(idx.distinct_keywords(), 0);
        assert!(idx.is_empty());
    }

    #[test]
    fn reinsert_replaces() {
        let mut idx = InvertedIndex::new();
        idx.insert(&obj(1, 0.0, &[1]));
        idx.insert(&obj(1, 0.0, &[2]));
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.postings_len(KeywordId(1)), 0);
        assert_eq!(idx.postings_len(KeywordId(2)), 1);
    }

    #[test]
    #[should_panic(expected = "keyword predicate")]
    fn pure_spatial_rejected() {
        let idx = InvertedIndex::new();
        let _ = idx.count(&RcDvq::spatial(Rect::new(0.0, 0.0, 1.0, 1.0)));
    }

    #[test]
    fn missing_keyword_counts_zero() {
        let mut idx = InvertedIndex::new();
        idx.insert(&obj(1, 0.0, &[1]));
        assert_eq!(idx.count(&RcDvq::keyword(vec![KeywordId(99)])), 0);
    }

    #[test]
    fn clear_resets() {
        let mut idx = InvertedIndex::new();
        idx.insert(&obj(1, 0.0, &[1]));
        idx.clear();
        assert!(idx.is_empty());
        assert_eq!(idx.distinct_keywords(), 0);
    }
}
