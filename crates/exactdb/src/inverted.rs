//! Inverted keyword index over store slots: `keyword → sorted posting
//! list of slot ids`.
//!
//! Postings are plain sorted `Vec<SlotId>`s into the shared
//! [`ObjectStore`] — no per-object clones, no hash sets. Removal is
//! **lazy**: it only bumps a per-posting dead counter (the store's live
//! bitmap is the truth), and a posting is compacted — dead entries
//! filtered out, their slot references released back to the store — once
//! a quarter of it is tombstones. Each compaction drops at least a
//! quarter of the list, so the amortized cost per removal is O(1) and a
//! posting never carries more than ~33% garbage.
//!
//! Multi-keyword counting runs a k-way merge over the sorted postings:
//! duplicates collapse by slot order instead of through a per-query
//! `HashSet`, and hybrid queries verify the spatial predicate by reading
//! the shared store directly.

use crate::store::{ObjectStore, SlotId};
use crate::NoKeywordPredicate;
use geostream::{KeywordId, RcDvq};
use std::collections::HashMap;

/// One keyword's posting list: ascending slot ids, `dead` of which are
/// tombstones (slots no longer live in the store).
#[derive(Debug, Clone, Default)]
struct PostingList {
    slots: Vec<SlotId>,
    dead: u32,
}

impl PostingList {
    #[inline]
    fn live_len(&self) -> usize {
        self.slots.len() - self.dead as usize
    }

    /// Tombstone threshold: compact once ≥ 25% of the list is dead.
    #[inline]
    fn needs_compaction(&self) -> bool {
        self.dead as usize * 4 >= self.slots.len()
    }
}

/// An inverted index over object keywords, addressing the shared store.
#[derive(Debug, Clone, Default)]
pub struct InvertedIndex {
    postings: HashMap<KeywordId, PostingList>,
    /// Posting compactions performed (diagnostics / bench reporting).
    compactions: u64,
}

impl InvertedIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct keywords with live postings.
    pub fn distinct_keywords(&self) -> usize {
        self.postings.values().filter(|p| p.live_len() > 0).count()
    }

    /// Posting compactions performed so far.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Live posting-list size for one keyword.
    pub fn postings_len(&self, kw: KeywordId) -> usize {
        self.postings.get(&kw).map_or(0, PostingList::live_len)
    }

    /// Indexes a live slot under each of the object's keywords. The slot
    /// must not already be present (the executor removes first on oid
    /// replacement, and the store never re-issues a referenced slot).
    pub fn insert(&mut self, slot: SlotId, store: &ObjectStore) {
        for &kw in store.get(slot).keywords.iter() {
            let posting = self.postings.entry(kw).or_default();
            match posting.slots.binary_search(&slot) {
                Ok(_) => debug_assert!(false, "slot already posted under {kw:?}"),
                Err(pos) => posting.slots.insert(pos, slot),
            }
        }
    }

    /// Lazily removes a slot: each of the object's postings gains a
    /// tombstone, and postings crossing the garbage threshold are
    /// compacted (releasing their parked slot references to the store).
    ///
    /// Call **after** `store.remove` — the liveness bitmap drives both
    /// tombstone filtering and compaction.
    pub fn remove(&mut self, keywords: &[KeywordId], store: &mut ObjectStore) {
        for &kw in keywords {
            let Some(posting) = self.postings.get_mut(&kw) else {
                debug_assert!(false, "removing a slot that was never posted");
                continue;
            };
            posting.dead += 1;
            if posting.needs_compaction() {
                posting.slots.retain(|&s| {
                    let keep = store.is_live(s);
                    if !keep {
                        store.release_ref(s);
                    }
                    keep
                });
                posting.dead = 0;
                self.compactions += 1;
                if posting.slots.is_empty() {
                    self.postings.remove(&kw);
                }
            }
        }
    }

    /// Candidate cost of the inverted access path for these keywords: the
    /// number of posting entries a count would have to merge.
    pub fn candidate_cost(&self, keywords: &[KeywordId]) -> u64 {
        keywords
            .iter()
            .map(|kw| self.postings.get(kw).map_or(0, |p| p.live_len() as u64))
            .sum()
    }

    /// Exact count of objects matching `query`, using the union of the
    /// query keywords' posting lists as the access path (the spatial
    /// predicate, if any, is verified against the shared store).
    ///
    /// Returns [`NoKeywordPredicate`] for queries without keywords — the
    /// inverted index has no access path for pure spatial queries.
    pub fn count(&self, query: &RcDvq, store: &ObjectStore) -> Result<u64, NoKeywordPredicate> {
        let kws = query.keywords();
        if kws.is_empty() {
            return Err(NoKeywordPredicate);
        }
        let range = query.range();
        if let [kw] = kws {
            // Single-keyword fast path: no merge needed, and without a
            // spatial predicate the live length *is* the answer.
            let Some(posting) = self.postings.get(kw) else {
                return Ok(0);
            };
            return Ok(match range {
                None => posting.live_len() as u64,
                Some(r) => posting
                    .slots
                    .iter()
                    .filter(|&&s| store.is_live(s) && r.contains(&store.get(s).loc))
                    .count() as u64,
            });
        }
        // K-way merge over the sorted postings: duplicates collapse by
        // advancing every cursor sitting on the minimum slot.
        let lists: Vec<&[SlotId]> = kws
            .iter()
            .filter_map(|kw| self.postings.get(kw))
            .map(|p| p.slots.as_slice())
            .filter(|s| !s.is_empty())
            .collect();
        let mut cursors = vec![0usize; lists.len()];
        let mut count = 0u64;
        loop {
            let mut min: Option<SlotId> = None;
            for (list, &cursor) in lists.iter().zip(&cursors) {
                if let Some(&slot) = list.get(cursor) {
                    min = Some(min.map_or(slot, |m: SlotId| m.min(slot)));
                }
            }
            let Some(slot) = min else { break };
            for (list, cursor) in lists.iter().zip(&mut cursors) {
                if list.get(*cursor) == Some(&slot) {
                    *cursor += 1;
                }
            }
            if store.is_live(slot) && range.is_none_or(|r| r.contains(&store.get(slot).loc)) {
                count += 1;
            }
        }
        Ok(count)
    }

    /// Clears the index.
    pub fn clear(&mut self) {
        self.postings.clear();
    }
}

#[cfg(feature = "debug-invariants")]
impl InvertedIndex {
    /// Full O(postings) invariant walk against the shared store (the
    /// `debug-invariants` auditor):
    ///
    /// * **posting-sorted** — every posting list is strictly ascending in
    ///   slot id (binary-search insertion and k-way merging depend on it).
    /// * **dead-counter** — each list's maintained tombstone count equals
    ///   the number of its slots no longer live in the store.
    /// * **posting-coverage** — every live object's keywords post its
    ///   slot.
    /// * **pending-refs** — each dead slot's outstanding reference count
    ///   in the store equals the posting entries still mentioning it (the
    ///   contract that keeps recycled slots from aliasing stale entries).
    pub fn audit(&self, store: &ObjectStore) -> Result<(), geostream::AuditError> {
        use geostream::audit::ensure;
        const S: &str = "InvertedIndex";
        let mut refs: HashMap<SlotId, u32> = HashMap::new();
        for (kw, posting) in &self.postings {
            let mut dead = 0u32;
            for (i, &slot) in posting.slots.iter().enumerate() {
                if i > 0 {
                    ensure(posting.slots[i - 1] < slot, S, "posting-sorted", || {
                        format!("{kw:?} slots out of order at {i}")
                    })?;
                }
                if !store.is_live(slot) {
                    dead += 1;
                    *refs.entry(slot).or_insert(0) += 1;
                }
            }
            ensure(posting.dead == dead, S, "dead-counter", || {
                format!(
                    "{kw:?} maintains dead {} but {dead} slots are dead",
                    posting.dead
                )
            })?;
        }
        let mut coverage_gap: Option<(SlotId, KeywordId)> = None;
        for (slot, obj) in store.iter_live() {
            for &kw in obj.keywords.iter() {
                let posted = self
                    .postings
                    .get(&kw)
                    .is_some_and(|p| p.slots.binary_search(&slot).is_ok());
                if coverage_gap.is_none() && !posted {
                    coverage_gap = Some((slot, kw));
                }
            }
        }
        ensure(coverage_gap.is_none(), S, "posting-coverage", || {
            let (slot, kw) = coverage_gap.unwrap_or((0, KeywordId(0)));
            format!("live slot {slot} not posted under {kw:?}")
        })?;
        for slot in 0..store.slot_capacity() as SlotId {
            if store.is_live(slot) {
                continue;
            }
            let expected = refs.get(&slot).copied().unwrap_or(0);
            let parked = store.pending_refs_of(slot);
            ensure(parked == expected, S, "pending-refs", || {
                format!("dead slot {slot} parks {parked} refs, {expected} entries remain")
            })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geostream::{GeoTextObject, ObjectId, Point, Rect, Timestamp};

    fn obj(id: u64, x: f64, kws: &[u32]) -> GeoTextObject {
        GeoTextObject::new(
            ObjectId(id),
            Point::new(x, 0.0),
            kws.iter().copied().map(KeywordId).collect(),
            Timestamp::ZERO,
        )
    }

    fn insert(idx: &mut InvertedIndex, store: &mut ObjectStore, o: GeoTextObject) -> SlotId {
        let slot = store.insert(o);
        idx.insert(slot, store);
        slot
    }

    fn remove(idx: &mut InvertedIndex, store: &mut ObjectStore, id: u64) {
        let (_, o) = store.remove(ObjectId(id)).expect("present");
        idx.remove(&o.keywords, store);
    }

    #[test]
    fn counts_union_of_postings() {
        let mut store = ObjectStore::new();
        let mut idx = InvertedIndex::new();
        insert(&mut idx, &mut store, obj(1, 0.0, &[1, 2]));
        insert(&mut idx, &mut store, obj(2, 0.0, &[2]));
        insert(&mut idx, &mut store, obj(3, 0.0, &[3]));
        let q = RcDvq::keyword(vec![KeywordId(1), KeywordId(2)]);
        // Object 1 matches both keywords but counts once.
        assert_eq!(idx.count(&q, &store).unwrap(), 2);
        assert_eq!(idx.postings_len(KeywordId(2)), 2);
        assert_eq!(idx.distinct_keywords(), 3);
        assert_eq!(idx.candidate_cost(q.keywords()), 3);
    }

    #[test]
    fn hybrid_checks_spatial_predicate() {
        let mut store = ObjectStore::new();
        let mut idx = InvertedIndex::new();
        insert(&mut idx, &mut store, obj(1, 1.0, &[7]));
        insert(&mut idx, &mut store, obj(2, 50.0, &[7]));
        let q = RcDvq::hybrid(Rect::new(0.0, -1.0, 10.0, 1.0), vec![KeywordId(7)]);
        assert_eq!(idx.count(&q, &store).unwrap(), 1);
        let q2 = RcDvq::hybrid(
            Rect::new(0.0, -1.0, 10.0, 1.0),
            vec![KeywordId(7), KeywordId(9)],
        );
        assert_eq!(idx.count(&q2, &store).unwrap(), 1);
    }

    #[test]
    fn tombstones_hide_removed_objects() {
        let mut store = ObjectStore::new();
        let mut idx = InvertedIndex::new();
        for i in 0..10 {
            insert(&mut idx, &mut store, obj(i, 0.0, &[1]));
        }
        remove(&mut idx, &mut store, 0);
        remove(&mut idx, &mut store, 1);
        // Lazy: tombstones only, but counts must not see the dead.
        assert_eq!(idx.postings_len(KeywordId(1)), 8);
        let q = RcDvq::keyword(vec![KeywordId(1)]);
        assert_eq!(idx.count(&q, &store).unwrap(), 8);
        let multi = RcDvq::keyword(vec![KeywordId(1), KeywordId(2)]);
        assert_eq!(idx.count(&multi, &store).unwrap(), 8);
    }

    #[test]
    fn compaction_releases_slots_for_reuse() {
        let mut store = ObjectStore::new();
        let mut idx = InvertedIndex::new();
        for i in 0..8 {
            insert(&mut idx, &mut store, obj(i, 0.0, &[1]));
        }
        // Remove enough to cross the 25% threshold.
        remove(&mut idx, &mut store, 0);
        remove(&mut idx, &mut store, 1);
        assert!(idx.compactions() >= 1, "threshold crossed, no compaction");
        // Compaction released the refs: the freed slots recycle.
        let reused = store.insert(obj(100, 0.0, &[]));
        assert!(reused < 8, "slot {reused} should come from the free list");
        let q = RcDvq::keyword(vec![KeywordId(1)]);
        assert_eq!(idx.count(&q, &store).unwrap(), 6);
    }

    #[test]
    fn singleton_posting_compacts_away() {
        let mut store = ObjectStore::new();
        let mut idx = InvertedIndex::new();
        insert(&mut idx, &mut store, obj(1, 0.0, &[42]));
        remove(&mut idx, &mut store, 1);
        assert_eq!(idx.distinct_keywords(), 0);
        assert_eq!(idx.postings_len(KeywordId(42)), 0);
        // The slot fully recycles — no leak from rare keywords.
        let reused = store.insert(obj(2, 0.0, &[]));
        assert_eq!(reused, 0);
    }

    #[test]
    fn pure_spatial_is_a_typed_error() {
        let store = ObjectStore::new();
        let idx = InvertedIndex::new();
        let q = RcDvq::spatial(Rect::new(0.0, 0.0, 1.0, 1.0));
        assert_eq!(idx.count(&q, &store), Err(NoKeywordPredicate));
    }

    #[test]
    fn missing_keyword_counts_zero() {
        let mut store = ObjectStore::new();
        let mut idx = InvertedIndex::new();
        insert(&mut idx, &mut store, obj(1, 0.0, &[1]));
        let q = RcDvq::keyword(vec![KeywordId(99)]);
        assert_eq!(idx.count(&q, &store).unwrap(), 0);
    }

    #[test]
    fn clear_resets() {
        let mut store = ObjectStore::new();
        let mut idx = InvertedIndex::new();
        insert(&mut idx, &mut store, obj(1, 0.0, &[1]));
        idx.clear();
        assert_eq!(idx.distinct_keywords(), 0);
        let q = RcDvq::keyword(vec![KeywordId(1)]);
        assert_eq!(idx.count(&q, &store).unwrap(), 0);
    }
}
