//! Full grid index: a regular spatial grid whose cells hold the actual
//! window objects.

use geostream::{GeoTextObject, ObjectId, Point, RcDvq, Rect};
use std::collections::HashMap;

/// A regular `side × side` grid over the domain, each cell holding the
/// objects located inside it. Exact and update-cheap, but queries must
/// touch every candidate object — the index overhead of Table I.
#[derive(Debug, Clone)]
pub struct GridIndex {
    domain: Rect,
    side: usize,
    cells: Vec<Vec<GeoTextObject>>,
    /// `oid → (cell, position within cell)` for O(1) removal.
    locator: HashMap<ObjectId, (usize, usize)>,
}

impl GridIndex {
    /// Builds an empty index with `side` cells per axis.
    pub fn new(domain: Rect, side: usize) -> Self {
        assert!(side >= 1, "grid needs at least one cell per axis");
        GridIndex {
            domain,
            side,
            cells: vec![Vec::new(); side * side],
            locator: HashMap::new(),
        }
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.locator.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.locator.is_empty()
    }

    fn cell_of(&self, p: &Point) -> usize {
        let fx = (p.x - self.domain.min_x) / self.domain.width();
        let fy = (p.y - self.domain.min_y) / self.domain.height();
        let cx = ((fx * self.side as f64) as isize).clamp(0, self.side as isize - 1) as usize;
        let cy = ((fy * self.side as f64) as isize).clamp(0, self.side as isize - 1) as usize;
        cy * self.side + cx
    }

    /// Inserts an object. Re-inserting an oid replaces the previous entry.
    pub fn insert(&mut self, obj: &GeoTextObject) {
        if self.locator.contains_key(&obj.oid) {
            self.remove(obj.oid);
        }
        let cell = self.cell_of(&obj.loc);
        self.locator.insert(obj.oid, (cell, self.cells[cell].len()));
        self.cells[cell].push(obj.clone());
    }

    /// Removes by object id. Returns whether anything was removed.
    pub fn remove(&mut self, oid: ObjectId) -> bool {
        let Some((cell, pos)) = self.locator.remove(&oid) else {
            return false;
        };
        let bucket = &mut self.cells[cell];
        bucket.swap_remove(pos);
        if pos < bucket.len() {
            self.locator.insert(bucket[pos].oid, (cell, pos));
        }
        true
    }

    /// Exact count of indexed objects matching `query` (predicate checks
    /// against every object in candidate cells).
    pub fn count(&self, query: &RcDvq) -> u64 {
        match query.range() {
            Some(r) => self
                .candidate_cells(r)
                .map(|cell| self.cells[cell].iter().filter(|o| query.matches(o)).count() as u64)
                .sum(),
            None => self
                .cells
                .iter()
                .flatten()
                .filter(|o| query.matches(o))
                .count() as u64,
        }
    }

    /// Collects matching objects (used by tests and the executor's scan
    /// fallback).
    pub fn collect<'a>(&'a self, query: &'a RcDvq) -> Vec<&'a GeoTextObject> {
        let mut out = Vec::new();
        match query.range() {
            Some(r) => {
                for cell in self.candidate_cells(r) {
                    out.extend(self.cells[cell].iter().filter(|o| query.matches(o)));
                }
            }
            None => out.extend(self.cells.iter().flatten().filter(|o| query.matches(o))),
        }
        out
    }

    fn candidate_cells(&self, r: &Rect) -> impl Iterator<Item = usize> + '_ {
        let clipped = r.intersection(&self.domain);
        let side = self.side;
        let (x0, x1, y0, y1) = match clipped {
            None => (1, 0, 1, 0), // empty iteration
            Some(c) => {
                let w = self.domain.width() / side as f64;
                let h = self.domain.height() / side as f64;
                (
                    (((c.min_x - self.domain.min_x) / w) as isize).clamp(0, side as isize - 1)
                        as usize,
                    (((c.max_x - self.domain.min_x) / w) as isize).clamp(0, side as isize - 1)
                        as usize,
                    (((c.min_y - self.domain.min_y) / h) as isize).clamp(0, side as isize - 1)
                        as usize,
                    (((c.max_y - self.domain.min_y) / h) as isize).clamp(0, side as isize - 1)
                        as usize,
                )
            }
        };
        (y0..=y1.max(y0))
            .flat_map(move |cy| (x0..=x1.max(x0)).map(move |cx| cy * side + cx))
            .filter(move |_| x1 >= x0 && y1 >= y0)
    }

    /// Clears the index.
    pub fn clear(&mut self) {
        self.cells.iter_mut().for_each(Vec::clear);
        self.locator.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geostream::{KeywordId, Timestamp};

    const DOMAIN: Rect = Rect {
        min_x: 0.0,
        min_y: 0.0,
        max_x: 10.0,
        max_y: 10.0,
    };

    fn obj(id: u64, x: f64, y: f64, kws: &[u32]) -> GeoTextObject {
        GeoTextObject::new(
            ObjectId(id),
            Point::new(x, y),
            kws.iter().copied().map(KeywordId).collect(),
            Timestamp::ZERO,
        )
    }

    #[test]
    fn exact_spatial_count() {
        let mut g = GridIndex::new(DOMAIN, 8);
        for i in 0..20 {
            g.insert(&obj(i, (i % 10) as f64 + 0.5, 0.5, &[]));
        }
        let q = RcDvq::spatial(Rect::new(0.0, 0.0, 4.9, 1.0));
        assert_eq!(g.count(&q), 10); // x in {0.5..4.5} twice each
        assert_eq!(g.len(), 20);
    }

    #[test]
    fn exact_keyword_count() {
        let mut g = GridIndex::new(DOMAIN, 4);
        for i in 0..30 {
            g.insert(&obj(i, 1.0, 1.0, &[(i % 3) as u32]));
        }
        let q = RcDvq::keyword(vec![KeywordId(1)]);
        assert_eq!(g.count(&q), 10);
    }

    #[test]
    fn hybrid_count_checks_both() {
        let mut g = GridIndex::new(DOMAIN, 4);
        g.insert(&obj(1, 1.0, 1.0, &[7]));
        g.insert(&obj(2, 1.0, 1.0, &[8]));
        g.insert(&obj(3, 9.0, 9.0, &[7]));
        let q = RcDvq::hybrid(Rect::new(0.0, 0.0, 2.0, 2.0), vec![KeywordId(7)]);
        assert_eq!(g.count(&q), 1);
        assert_eq!(g.collect(&q).len(), 1);
    }

    #[test]
    fn remove_works() {
        let mut g = GridIndex::new(DOMAIN, 4);
        let o = obj(1, 5.0, 5.0, &[]);
        g.insert(&o);
        g.insert(&obj(2, 5.0, 5.0, &[]));
        assert!(g.remove(o.oid));
        assert!(!g.remove(o.oid));
        assert_eq!(g.len(), 1);
        let q = RcDvq::spatial(Rect::new(4.0, 4.0, 6.0, 6.0));
        assert_eq!(g.count(&q), 1);
    }

    #[test]
    fn reinsert_replaces() {
        let mut g = GridIndex::new(DOMAIN, 4);
        g.insert(&obj(1, 1.0, 1.0, &[]));
        g.insert(&obj(1, 9.0, 9.0, &[])); // same id, moved
        assert_eq!(g.len(), 1);
        assert_eq!(g.count(&RcDvq::spatial(Rect::new(0.0, 0.0, 2.0, 2.0))), 0);
        assert_eq!(g.count(&RcDvq::spatial(Rect::new(8.0, 8.0, 10.0, 10.0))), 1);
    }

    #[test]
    fn locator_consistent_under_churn() {
        let mut g = GridIndex::new(DOMAIN, 8);
        for i in 0..500u64 {
            g.insert(&obj(i, (i % 10) as f64, ((i / 10) % 10) as f64, &[]));
            if i >= 100 {
                g.remove(ObjectId(i - 100));
            }
        }
        assert_eq!(g.len(), 100);
        for (oid, &(cell, pos)) in &g.locator {
            assert_eq!(g.cells[cell][pos].oid, *oid);
        }
    }

    #[test]
    fn out_of_domain_query() {
        let mut g = GridIndex::new(DOMAIN, 4);
        g.insert(&obj(1, 5.0, 5.0, &[]));
        let q = RcDvq::spatial(Rect::new(50.0, 50.0, 60.0, 60.0));
        assert_eq!(g.count(&q), 0);
    }

    #[test]
    fn clear_empties() {
        let mut g = GridIndex::new(DOMAIN, 4);
        g.insert(&obj(1, 5.0, 5.0, &[]));
        g.clear();
        assert!(g.is_empty());
    }
}
