//! Full grid index: a regular spatial grid whose cells hold slot ids into
//! the shared [`ObjectStore`].

use crate::store::{ObjectStore, SlotId};
use geostream::{Point, RcDvq, Rect};

/// Locator sentinel: slot not present in the grid.
const NOWHERE: (u32, u32) = (u32::MAX, u32::MAX);

/// A regular `side × side` grid over the domain, each cell holding the
/// slots of the objects located inside it. Exact and update-cheap, but
/// queries must touch every candidate object — the index overhead of
/// Table I.
#[derive(Debug, Clone)]
pub struct GridIndex {
    domain: Rect,
    side: usize,
    cells: Vec<Vec<SlotId>>,
    /// `slot → (cell, position within cell)` for O(1) removal, indexed
    /// densely by slot id.
    locator: Vec<(u32, u32)>,
    len: usize,
}

impl GridIndex {
    /// Builds an empty index with `side` cells per axis.
    pub fn new(domain: Rect, side: usize) -> Self {
        assert!(side >= 1, "grid needs at least one cell per axis");
        GridIndex {
            domain,
            side,
            cells: vec![Vec::new(); side * side],
            locator: Vec::new(),
            len: 0,
        }
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn cell_of(&self, p: &Point) -> usize {
        let fx = (p.x - self.domain.min_x) / self.domain.width();
        let fy = (p.y - self.domain.min_y) / self.domain.height();
        let cx = ((fx * self.side as f64) as isize).clamp(0, self.side as isize - 1) as usize;
        let cy = ((fy * self.side as f64) as isize).clamp(0, self.side as isize - 1) as usize;
        cy * self.side + cx
    }

    #[inline]
    fn locator_mut(&mut self, slot: SlotId) -> &mut (u32, u32) {
        if slot as usize >= self.locator.len() {
            self.locator.resize(slot as usize + 1, NOWHERE);
        }
        &mut self.locator[slot as usize]
    }

    /// Indexes a live store slot. The slot must not already be present
    /// (the executor removes first on oid replacement).
    pub fn insert(&mut self, slot: SlotId, store: &ObjectStore) {
        let cell = self.cell_of(&store.get(slot).loc);
        let pos = self.cells[cell].len() as u32;
        self.cells[cell].push(slot);
        *self.locator_mut(slot) = (cell as u32, pos);
        self.len += 1;
    }

    /// Removes a slot. Returns whether anything was removed.
    pub fn remove(&mut self, slot: SlotId) -> bool {
        let Some(&(cell, pos)) = self.locator.get(slot as usize) else {
            return false;
        };
        if (cell, pos) == NOWHERE {
            return false;
        }
        self.locator[slot as usize] = NOWHERE;
        let bucket = &mut self.cells[cell as usize];
        bucket.swap_remove(pos as usize);
        if (pos as usize) < bucket.len() {
            self.locator[bucket[pos as usize] as usize] = (cell, pos);
        }
        self.len -= 1;
        true
    }

    /// Exact count of indexed objects matching `query` (predicate checks
    /// against every object in candidate cells, read from the store).
    pub fn count(&self, query: &RcDvq, store: &ObjectStore) -> u64 {
        match query.range() {
            Some(r) => self
                .candidate_cells(r)
                .map(|cell| {
                    self.cells[cell]
                        .iter()
                        .filter(|&&s| query.matches(store.get(s)))
                        .count() as u64
                })
                .sum(),
            None => self
                .cells
                .iter()
                .flatten()
                .filter(|&&s| query.matches(store.get(s)))
                .count() as u64,
        }
    }

    /// Candidate-set size of the spatial access path for `r`: the number
    /// of objects in the cells the range touches (the planner's cost for
    /// this backend; O(cells), no object reads).
    pub fn candidate_count(&self, r: &Rect) -> u64 {
        self.candidate_cells(r)
            .map(|cell| self.cells[cell].len() as u64)
            .sum()
    }

    fn candidate_cells(&self, r: &Rect) -> impl Iterator<Item = usize> + '_ {
        let clipped = r.intersection(&self.domain);
        let side = self.side;
        let (x0, x1, y0, y1) = match clipped {
            None => (1, 0, 1, 0), // empty iteration
            Some(c) => {
                let w = self.domain.width() / side as f64;
                let h = self.domain.height() / side as f64;
                (
                    (((c.min_x - self.domain.min_x) / w) as isize).clamp(0, side as isize - 1)
                        as usize,
                    (((c.max_x - self.domain.min_x) / w) as isize).clamp(0, side as isize - 1)
                        as usize,
                    (((c.min_y - self.domain.min_y) / h) as isize).clamp(0, side as isize - 1)
                        as usize,
                    (((c.max_y - self.domain.min_y) / h) as isize).clamp(0, side as isize - 1)
                        as usize,
                )
            }
        };
        (y0..=y1.max(y0))
            .flat_map(move |cy| (x0..=x1.max(x0)).map(move |cx| cy * side + cx))
            .filter(move |_| x1 >= x0 && y1 >= y0)
    }

    /// Clears the index.
    pub fn clear(&mut self) {
        self.cells.iter_mut().for_each(Vec::clear);
        self.locator.clear();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geostream::{GeoTextObject, KeywordId, ObjectId, Timestamp};

    const DOMAIN: Rect = Rect {
        min_x: 0.0,
        min_y: 0.0,
        max_x: 10.0,
        max_y: 10.0,
    };

    fn obj(id: u64, x: f64, y: f64, kws: &[u32]) -> GeoTextObject {
        GeoTextObject::new(
            ObjectId(id),
            Point::new(x, y),
            kws.iter().copied().map(KeywordId).collect(),
            Timestamp::ZERO,
        )
    }

    fn insert(g: &mut GridIndex, store: &mut ObjectStore, o: GeoTextObject) -> SlotId {
        let slot = store.insert(o);
        g.insert(slot, store);
        slot
    }

    #[test]
    fn exact_spatial_count() {
        let mut store = ObjectStore::new();
        let mut g = GridIndex::new(DOMAIN, 8);
        for i in 0..20 {
            insert(&mut g, &mut store, obj(i, (i % 10) as f64 + 0.5, 0.5, &[]));
        }
        let q = RcDvq::spatial(Rect::new(0.0, 0.0, 4.9, 1.0));
        assert_eq!(g.count(&q, &store), 10); // x in {0.5..4.5} twice each
        assert_eq!(g.len(), 20);
    }

    #[test]
    fn exact_keyword_count() {
        let mut store = ObjectStore::new();
        let mut g = GridIndex::new(DOMAIN, 4);
        for i in 0..30 {
            insert(&mut g, &mut store, obj(i, 1.0, 1.0, &[(i % 3) as u32]));
        }
        let q = RcDvq::keyword(vec![KeywordId(1)]);
        assert_eq!(g.count(&q, &store), 10);
    }

    #[test]
    fn hybrid_count_checks_both() {
        let mut store = ObjectStore::new();
        let mut g = GridIndex::new(DOMAIN, 4);
        insert(&mut g, &mut store, obj(1, 1.0, 1.0, &[7]));
        insert(&mut g, &mut store, obj(2, 1.0, 1.0, &[8]));
        insert(&mut g, &mut store, obj(3, 9.0, 9.0, &[7]));
        let q = RcDvq::hybrid(Rect::new(0.0, 0.0, 2.0, 2.0), vec![KeywordId(7)]);
        assert_eq!(g.count(&q, &store), 1);
        // The candidate cost covers everything in the touched cells.
        assert_eq!(g.candidate_count(q.range().unwrap()), 2);
    }

    #[test]
    fn remove_works() {
        let mut store = ObjectStore::new();
        let mut g = GridIndex::new(DOMAIN, 4);
        let a = insert(&mut g, &mut store, obj(1, 5.0, 5.0, &[]));
        insert(&mut g, &mut store, obj(2, 5.0, 5.0, &[]));
        assert!(g.remove(a));
        assert!(!g.remove(a));
        assert_eq!(g.len(), 1);
        store.remove(ObjectId(1));
        let q = RcDvq::spatial(Rect::new(4.0, 4.0, 6.0, 6.0));
        assert_eq!(g.count(&q, &store), 1);
    }

    #[test]
    fn locator_consistent_under_churn() {
        let mut store = ObjectStore::new();
        let mut g = GridIndex::new(DOMAIN, 8);
        let mut slots = std::collections::HashMap::new();
        for i in 0..500u64 {
            let s = insert(
                &mut g,
                &mut store,
                obj(i, (i % 10) as f64, ((i / 10) % 10) as f64, &[]),
            );
            slots.insert(i, s);
            if i >= 100 {
                let old = slots[&(i - 100)];
                assert!(g.remove(old));
                store.remove(ObjectId(i - 100));
            }
        }
        assert_eq!(g.len(), 100);
        for (cell, bucket) in g.cells.iter().enumerate() {
            for (pos, &slot) in bucket.iter().enumerate() {
                assert_eq!(g.locator[slot as usize], (cell as u32, pos as u32));
            }
        }
    }

    #[test]
    fn out_of_domain_query() {
        let mut store = ObjectStore::new();
        let mut g = GridIndex::new(DOMAIN, 4);
        insert(&mut g, &mut store, obj(1, 5.0, 5.0, &[]));
        let q = RcDvq::spatial(Rect::new(50.0, 50.0, 60.0, 60.0));
        assert_eq!(g.count(&q, &store), 0);
        assert_eq!(g.candidate_count(q.range().unwrap()), 0);
    }

    #[test]
    fn clear_empties() {
        let mut store = ObjectStore::new();
        let mut g = GridIndex::new(DOMAIN, 4);
        insert(&mut g, &mut store, obj(1, 5.0, 5.0, &[]));
        g.clear();
        assert!(g.is_empty());
    }
}
