//! Slot-based shared object store: the single owner of live window
//! objects.
//!
//! Every backend used to keep its own clone of the `GeoTextObject`s (the
//! spatial index's cells *and* the inverted index's object map), so each
//! window insert paid two clones and queries chased pointers through
//! `HashMap`s. The store replaces all of that with one dense `Vec` of
//! objects addressed by `u32` slot ids; indexes hold bare slots and read
//! the shared storage contiguously at query time.
//!
//! ## Slot lifecycle and deferred reuse
//!
//! Slots are recycled through a free list, but the inverted index keeps
//! **lazy tombstones**: removing an object does not touch its posting
//! lists, it only bumps per-posting dead counters (compaction is
//! amortized, see [`crate::inverted`]). A dead slot must therefore not be
//! handed out again while stale posting entries still reference it —
//! otherwise an old entry would alias the new object. The store enforces
//! this with a per-slot reference count: [`ObjectStore::remove`] parks the
//! slot with one reference per posting list that mentions it (= the
//! object's keyword count), and each posting compaction that drops a dead
//! entry calls [`ObjectStore::release_ref`]; the slot only rejoins the
//! free list at zero. Keyword-less objects recycle immediately.

use geostream::{GeoTextObject, ObjectId};
use std::collections::HashMap;

/// Dense index of an object in the store (and in every backend).
pub type SlotId = u32;

/// Single owner of the live window objects, shared by all exact indexes.
#[derive(Debug, Clone, Default)]
pub struct ObjectStore {
    /// Dense object storage; `None` for free or parked slots.
    slots: Vec<Option<GeoTextObject>>,
    /// Liveness per slot — posting lists check this to skip tombstones.
    live: Vec<bool>,
    /// Outstanding posting-list references to a dead slot; the slot is
    /// recycled only when this drains to zero.
    pending_refs: Vec<u32>,
    /// Recycled slots ready for reuse.
    free: Vec<SlotId>,
    /// External identity → slot.
    by_oid: HashMap<ObjectId, SlotId>,
}

impl ObjectStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.by_oid.len()
    }

    /// Whether the store holds no live objects.
    pub fn is_empty(&self) -> bool {
        self.by_oid.is_empty()
    }

    /// Total slots ever allocated (live + parked + free) — the capacity
    /// indexes may be asked to address.
    pub fn slot_capacity(&self) -> usize {
        self.slots.len()
    }

    /// Whether an object with this id is live.
    pub fn contains(&self, oid: ObjectId) -> bool {
        self.by_oid.contains_key(&oid)
    }

    /// The slot of a live object, if present.
    pub fn slot_of(&self, oid: ObjectId) -> Option<SlotId> {
        self.by_oid.get(&oid).copied()
    }

    /// Whether `slot` holds a live object. Out-of-range slots are dead.
    #[inline]
    pub fn is_live(&self, slot: SlotId) -> bool {
        self.live.get(slot as usize).copied().unwrap_or(false)
    }

    /// The live object at `slot`.
    ///
    /// # Panics
    /// Panics if the slot is free or parked — indexes only hold live
    /// slots (posting tombstones are filtered through [`Self::is_live`]).
    #[inline]
    pub fn get(&self, slot: SlotId) -> &GeoTextObject {
        self.slots[slot as usize]
            .as_ref()
            // LINT-ALLOW(no-panic): the free list only ever holds indices of dead slots
            .expect("index holds a dead slot")
    }

    /// Iterates `(slot, object)` over the live population (store order,
    /// not insertion order).
    pub fn iter_live(&self) -> impl Iterator<Item = (SlotId, &GeoTextObject)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|o| (i as SlotId, o)))
    }

    /// Stores an object and returns its slot.
    ///
    /// The caller (the executor) is responsible for removing any previous
    /// object with the same id first; debug builds assert it.
    pub fn insert(&mut self, obj: GeoTextObject) -> SlotId {
        debug_assert!(
            !self.by_oid.contains_key(&obj.oid),
            "oid re-inserted without removal"
        );
        let oid = obj.oid;
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = Some(obj);
                self.live[slot as usize] = true;
                slot
            }
            None => {
                let slot = self.slots.len() as SlotId;
                self.slots.push(Some(obj));
                self.live.push(true);
                self.pending_refs.push(0);
                slot
            }
        };
        self.by_oid.insert(oid, slot);
        slot
    }

    /// Removes a live object, returning its slot and the object (the
    /// caller still needs its location and keywords to update indexes).
    ///
    /// The slot is parked with one pending reference per keyword — each
    /// posting list that mentions it — and recycles via
    /// [`Self::release_ref`]; with no keywords it is immediately free.
    pub fn remove(&mut self, oid: ObjectId) -> Option<(SlotId, GeoTextObject)> {
        let slot = self.by_oid.remove(&oid)?;
        let obj = self.slots[slot as usize]
            .take()
            // LINT-ALLOW(no-panic): by_oid entries are removed before their slot is freed, so the slot is occupied
            .expect("by_oid points at an occupied slot");
        self.live[slot as usize] = false;
        // LINT-ALLOW(as-truncation): per-object keyword counts are tiny (tens at most)
        let refs = obj.keywords.len() as u32;
        self.pending_refs[slot as usize] = refs;
        if refs == 0 {
            self.free.push(slot);
        }
        Some((slot, obj))
    }

    /// Drops one posting-list reference to a parked slot; the last
    /// reference returns the slot to the free list.
    pub fn release_ref(&mut self, slot: SlotId) {
        let refs = &mut self.pending_refs[slot as usize];
        debug_assert!(*refs > 0, "released more refs than were parked");
        *refs -= 1;
        if *refs == 0 {
            self.free.push(slot);
        }
    }

    /// Outstanding posting-list references parked on a slot (zero for
    /// live or out-of-range slots). Auditor-only cross-check against the
    /// inverted index's actual tombstone entries.
    #[cfg(feature = "debug-invariants")]
    pub(crate) fn pending_refs_of(&self, slot: SlotId) -> u32 {
        self.pending_refs.get(slot as usize).copied().unwrap_or(0)
    }

    /// Full O(slots) invariant walk (the `debug-invariants` auditor):
    ///
    /// * **parallel-arrays** — `slots`, `live`, and `pending_refs` have
    ///   the same length.
    /// * **identity** — `by_oid` maps exactly the live population: every
    ///   entry points at a live slot holding that oid, and every live slot
    ///   is pointed at.
    /// * **liveness** — a live slot is occupied with zero pending
    ///   references; a dead slot is vacant.
    /// * **free-list** — the free list holds exactly the dead slots with
    ///   no outstanding posting references, each once (parked slots —
    ///   dead with references — are excluded until fully released).
    #[cfg(feature = "debug-invariants")]
    pub fn audit(&self) -> Result<(), geostream::AuditError> {
        use geostream::audit::ensure;
        const S: &str = "ObjectStore";
        let n = self.slots.len();
        ensure(
            self.live.len() == n && self.pending_refs.len() == n,
            S,
            "parallel-arrays",
            || {
                format!(
                    "slots {n} live {} pending_refs {}",
                    self.live.len(),
                    self.pending_refs.len()
                )
            },
        )?;
        let mut live_count = 0usize;
        for s in 0..n {
            match (&self.slots[s], self.live[s]) {
                (Some(obj), true) => {
                    live_count += 1;
                    ensure(self.pending_refs[s] == 0, S, "liveness", || {
                        format!(
                            "live slot {s} carries {} pending refs",
                            self.pending_refs[s]
                        )
                    })?;
                    ensure(
                        self.by_oid.get(&obj.oid) == Some(&(s as SlotId)),
                        S,
                        "identity",
                        || format!("slot {s} holds {:?} but by_oid disagrees", obj.oid),
                    )?;
                }
                (None, false) => {}
                (occupied, live) => {
                    ensure(false, S, "liveness", || {
                        format!("slot {s}: occupied={} live={live}", occupied.is_some())
                    })?;
                }
            }
        }
        ensure(self.by_oid.len() == live_count, S, "identity", || {
            format!(
                "by_oid maps {} oids, {live_count} slots live",
                self.by_oid.len()
            )
        })?;
        let mut in_free = vec![false; n];
        for &slot in &self.free {
            let s = slot as usize;
            ensure(s < n && !in_free[s], S, "free-list", || {
                format!("slot {slot} out of range or listed twice")
            })?;
            in_free[s] = true;
        }
        for s in 0..n {
            let should_be_free = !self.live[s] && self.pending_refs[s] == 0;
            ensure(in_free[s] == should_be_free, S, "free-list", || {
                format!(
                    "slot {s}: live={} refs={} but free-listed={}",
                    self.live[s], self.pending_refs[s], in_free[s]
                )
            })?;
        }
        Ok(())
    }

    /// Clears the store (all slots recycled, capacity kept).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.live.clear();
        self.pending_refs.clear();
        self.free.clear();
        self.by_oid.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geostream::{KeywordId, Point, Timestamp};

    fn obj(id: u64, kws: &[u32]) -> GeoTextObject {
        GeoTextObject::new(
            ObjectId(id),
            Point::new(id as f64, 0.0),
            kws.iter().copied().map(KeywordId).collect(),
            Timestamp::ZERO,
        )
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s = ObjectStore::new();
        let a = s.insert(obj(1, &[7]));
        let b = s.insert(obj(2, &[]));
        assert_ne!(a, b);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(a).oid, ObjectId(1));
        assert_eq!(s.slot_of(ObjectId(2)), Some(b));
        let (slot, o) = s.remove(ObjectId(1)).unwrap();
        assert_eq!(slot, a);
        assert_eq!(o.oid, ObjectId(1));
        assert!(!s.is_live(a));
        assert!(s.remove(ObjectId(1)).is_none());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn keywordless_slot_recycles_immediately() {
        let mut s = ObjectStore::new();
        let a = s.insert(obj(1, &[]));
        s.remove(ObjectId(1));
        let b = s.insert(obj(2, &[]));
        assert_eq!(a, b, "free slot must be reused");
        assert_eq!(s.slot_capacity(), 1);
    }

    #[test]
    fn keyword_slot_parks_until_refs_release() {
        let mut s = ObjectStore::new();
        let a = s.insert(obj(1, &[3, 5]));
        s.remove(ObjectId(1));
        // Two posting lists still reference the slot: not reusable yet.
        let b = s.insert(obj(2, &[]));
        assert_ne!(a, b);
        s.release_ref(a);
        let c = s.insert(obj(3, &[]));
        assert_ne!(a, c, "one ref still parked");
        s.release_ref(a);
        let d = s.insert(obj(4, &[]));
        assert_eq!(a, d, "fully released slot recycles");
    }

    #[test]
    fn iter_live_sees_exactly_the_population() {
        let mut s = ObjectStore::new();
        for i in 0..10 {
            s.insert(obj(i, &[]));
        }
        for i in 0..5 {
            s.remove(ObjectId(i));
        }
        let live: Vec<u64> = s.iter_live().map(|(_, o)| o.oid.0).collect();
        assert_eq!(live.len(), 5);
        assert!(live.iter().all(|&id| id >= 5));
    }

    #[test]
    fn clear_resets() {
        let mut s = ObjectStore::new();
        s.insert(obj(1, &[2]));
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.slot_capacity(), 0);
    }
}
