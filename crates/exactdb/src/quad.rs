//! Full PR-quadtree index storing the actual window objects.

use geostream::{GeoTextObject, ObjectId, Point, RcDvq, Rect};
use std::collections::HashMap;

type NodeId = u32;

#[derive(Debug, Clone)]
struct QuadNode {
    rect: Rect,
    bucket: Vec<GeoTextObject>,
    children: Option<[NodeId; 4]>,
    depth: u16,
}

/// A point-region quadtree over the domain: leaves hold up to
/// `bucket_capacity` objects and split on overflow. Exact query answering
/// with spatial pruning; the QuadTree index column of Table I.
#[derive(Debug, Clone)]
pub struct QuadtreeIndex {
    nodes: Vec<QuadNode>,
    bucket_capacity: usize,
    max_depth: u16,
    /// `oid → leaf` hint for removals (positions shift, so the bucket is
    /// searched within the leaf).
    locator: HashMap<ObjectId, NodeId>,
}

impl QuadtreeIndex {
    /// Builds an empty index over `domain`.
    pub fn new(domain: Rect, bucket_capacity: usize, max_depth: u16) -> Self {
        assert!(bucket_capacity >= 1, "bucket capacity must be positive");
        QuadtreeIndex {
            nodes: vec![QuadNode {
                rect: domain,
                bucket: Vec::new(),
                children: None,
                depth: 0,
            }],
            bucket_capacity,
            max_depth,
            locator: HashMap::new(),
        }
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.locator.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.locator.is_empty()
    }

    /// Number of tree nodes (diagnostics).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn leaf_for(&self, p: &Point) -> NodeId {
        let mut id: NodeId = 0;
        while let Some(children) = self.nodes[id as usize].children {
            let q = self.nodes[id as usize].rect.quadrant_of(p);
            id = children[q];
        }
        id
    }

    /// Inserts an object. Re-inserting an oid replaces the previous entry.
    pub fn insert(&mut self, obj: &GeoTextObject) {
        if self.locator.contains_key(&obj.oid) {
            self.remove(obj.oid, &obj.loc);
        }
        let leaf = self.leaf_for(&obj.loc);
        self.nodes[leaf as usize].bucket.push(obj.clone());
        self.locator.insert(obj.oid, leaf);
        if self.nodes[leaf as usize].bucket.len() > self.bucket_capacity
            && self.nodes[leaf as usize].depth < self.max_depth
        {
            self.split(leaf);
        }
    }

    fn split(&mut self, id: NodeId) {
        let quadrants = self.nodes[id as usize].rect.quadrants();
        let depth = self.nodes[id as usize].depth + 1;
        let base = self.nodes.len() as NodeId;
        for rect in quadrants {
            self.nodes.push(QuadNode {
                rect,
                bucket: Vec::new(),
                children: None,
                depth,
            });
        }
        let children = [base, base + 1, base + 2, base + 3];
        let bucket = std::mem::take(&mut self.nodes[id as usize].bucket);
        let rect = self.nodes[id as usize].rect;
        for obj in bucket {
            let q = rect.quadrant_of(&obj.loc);
            self.locator.insert(obj.oid, children[q]);
            self.nodes[children[q] as usize].bucket.push(obj);
        }
        self.nodes[id as usize].children = Some(children);
    }

    /// Removes by object id (`loc` is unused but kept for symmetry with
    /// grid removal APIs). Returns whether anything was removed.
    pub fn remove(&mut self, oid: ObjectId, _loc: &Point) -> bool {
        let Some(leaf) = self.locator.remove(&oid) else {
            return false;
        };
        let bucket = &mut self.nodes[leaf as usize].bucket;
        if let Some(pos) = bucket.iter().position(|o| o.oid == oid) {
            bucket.swap_remove(pos);
            true
        } else {
            false
        }
    }

    /// Exact count of indexed objects matching `query`.
    pub fn count(&self, query: &RcDvq) -> u64 {
        let mut total = 0u64;
        let mut stack: Vec<NodeId> = vec![0];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id as usize];
            if let Some(r) = query.range() {
                if !node.rect.intersects(r) {
                    continue;
                }
            }
            total += node.bucket.iter().filter(|o| query.matches(o)).count() as u64;
            if let Some(children) = node.children {
                stack.extend_from_slice(&children);
            }
        }
        total
    }

    /// Clears the index.
    pub fn clear(&mut self) {
        let domain = self.nodes[0].rect;
        self.nodes.clear();
        self.nodes.push(QuadNode {
            rect: domain,
            bucket: Vec::new(),
            children: None,
            depth: 0,
        });
        self.locator.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geostream::{KeywordId, Timestamp};

    const DOMAIN: Rect = Rect {
        min_x: 0.0,
        min_y: 0.0,
        max_x: 16.0,
        max_y: 16.0,
    };

    fn obj(id: u64, x: f64, y: f64, kws: &[u32]) -> GeoTextObject {
        GeoTextObject::new(
            ObjectId(id),
            Point::new(x, y),
            kws.iter().copied().map(KeywordId).collect(),
            Timestamp::ZERO,
        )
    }

    #[test]
    fn exact_counts_after_splits() {
        let mut q = QuadtreeIndex::new(DOMAIN, 4, 10);
        for i in 0..100u64 {
            q.insert(&obj(
                i,
                (i % 16) as f64 + 0.1,
                ((i / 16) % 16) as f64 + 0.1,
                &[],
            ));
        }
        assert!(q.node_count() > 1, "never split");
        assert_eq!(q.count(&RcDvq::spatial(DOMAIN)), 100);
        let west = RcDvq::spatial(Rect::new(0.0, 0.0, 7.9, 16.0));
        let expected = (0..100u64).filter(|i| (i % 16) as f64 + 0.1 <= 7.9).count() as u64;
        assert_eq!(q.count(&west), expected);
    }

    #[test]
    fn keyword_and_hybrid() {
        let mut q = QuadtreeIndex::new(DOMAIN, 2, 10);
        q.insert(&obj(1, 1.0, 1.0, &[5]));
        q.insert(&obj(2, 1.0, 1.0, &[6]));
        q.insert(&obj(3, 14.0, 14.0, &[5]));
        assert_eq!(q.count(&RcDvq::keyword(vec![KeywordId(5)])), 2);
        let h = RcDvq::hybrid(Rect::new(0.0, 0.0, 2.0, 2.0), vec![KeywordId(5)]);
        assert_eq!(q.count(&h), 1);
    }

    #[test]
    fn remove_and_len() {
        let mut q = QuadtreeIndex::new(DOMAIN, 2, 10);
        let objects: Vec<_> = (0..20)
            .map(|i| obj(i, 1.0 + (i as f64) * 0.1, 1.0, &[]))
            .collect();
        for o in &objects {
            q.insert(o);
        }
        assert_eq!(q.len(), 20);
        for o in objects.iter().take(10) {
            assert!(q.remove(o.oid, &o.loc));
        }
        assert_eq!(q.len(), 10);
        assert_eq!(q.count(&RcDvq::spatial(DOMAIN)), 10);
        assert!(!q.remove(objects[0].oid, &objects[0].loc));
    }

    #[test]
    fn locator_survives_splits() {
        let mut q = QuadtreeIndex::new(DOMAIN, 3, 10);
        let objects: Vec<_> = (0..50)
            .map(|i| obj(i, (i % 16) as f64, ((i * 7) % 16) as f64, &[]))
            .collect();
        for o in &objects {
            q.insert(o);
        }
        // Every locator entry must point at a leaf containing the object.
        for o in &objects {
            let leaf = q.locator[&o.oid];
            assert!(
                q.nodes[leaf as usize].bucket.iter().any(|b| b.oid == o.oid),
                "object {:?} not in its located leaf",
                o.oid
            );
        }
    }

    #[test]
    fn reinsert_replaces() {
        let mut q = QuadtreeIndex::new(DOMAIN, 2, 10);
        q.insert(&obj(1, 1.0, 1.0, &[]));
        q.insert(&obj(1, 15.0, 15.0, &[]));
        assert_eq!(q.len(), 1);
        assert_eq!(q.count(&RcDvq::spatial(Rect::new(0.0, 0.0, 2.0, 2.0))), 0);
    }

    #[test]
    fn clear_resets() {
        let mut q = QuadtreeIndex::new(DOMAIN, 2, 10);
        for i in 0..20 {
            q.insert(&obj(i, 1.0, 1.0, &[]));
        }
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.node_count(), 1);
    }
}
