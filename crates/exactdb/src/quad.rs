//! Full PR-quadtree index whose leaf buckets hold slot ids into the
//! shared [`ObjectStore`].

use crate::store::{ObjectStore, SlotId};
use geostream::{Point, RcDvq, Rect};

type NodeId = u32;

/// Locator sentinel: slot not present in the tree.
const NOWHERE: NodeId = NodeId::MAX;

#[derive(Debug, Clone)]
struct QuadNode {
    rect: Rect,
    bucket: Vec<SlotId>,
    children: Option<[NodeId; 4]>,
    depth: u16,
}

/// A point-region quadtree over the domain: leaves hold up to
/// `bucket_capacity` slots and split on overflow. Exact query answering
/// with spatial pruning; the QuadTree index column of Table I.
#[derive(Debug, Clone)]
pub struct QuadtreeIndex {
    nodes: Vec<QuadNode>,
    bucket_capacity: usize,
    max_depth: u16,
    /// `slot → leaf` hint for removals (positions shift, so the bucket is
    /// searched within the leaf), indexed densely by slot id.
    locator: Vec<NodeId>,
    len: usize,
}

impl QuadtreeIndex {
    /// Builds an empty index over `domain`.
    pub fn new(domain: Rect, bucket_capacity: usize, max_depth: u16) -> Self {
        assert!(bucket_capacity >= 1, "bucket capacity must be positive");
        QuadtreeIndex {
            nodes: vec![QuadNode {
                rect: domain,
                bucket: Vec::new(),
                children: None,
                depth: 0,
            }],
            bucket_capacity,
            max_depth,
            locator: Vec::new(),
            len: 0,
        }
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of tree nodes (diagnostics).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn leaf_for(&self, p: &Point) -> NodeId {
        let mut id: NodeId = 0;
        while let Some(children) = self.nodes[id as usize].children {
            let q = self.nodes[id as usize].rect.quadrant_of(p);
            id = children[q];
        }
        id
    }

    fn set_locator(&mut self, slot: SlotId, node: NodeId) {
        if slot as usize >= self.locator.len() {
            self.locator.resize(slot as usize + 1, NOWHERE);
        }
        self.locator[slot as usize] = node;
    }

    /// Indexes a live store slot. The slot must not already be present
    /// (the executor removes first on oid replacement).
    pub fn insert(&mut self, slot: SlotId, store: &ObjectStore) {
        let leaf = self.leaf_for(&store.get(slot).loc);
        self.nodes[leaf as usize].bucket.push(slot);
        self.set_locator(slot, leaf);
        self.len += 1;
        if self.nodes[leaf as usize].bucket.len() > self.bucket_capacity
            && self.nodes[leaf as usize].depth < self.max_depth
        {
            self.split(leaf, store);
        }
    }

    fn split(&mut self, id: NodeId, store: &ObjectStore) {
        let quadrants = self.nodes[id as usize].rect.quadrants();
        let depth = self.nodes[id as usize].depth + 1;
        let base = self.nodes.len() as NodeId;
        for rect in quadrants {
            self.nodes.push(QuadNode {
                rect,
                bucket: Vec::new(),
                children: None,
                depth,
            });
        }
        let children = [base, base + 1, base + 2, base + 3];
        let bucket = std::mem::take(&mut self.nodes[id as usize].bucket);
        let rect = self.nodes[id as usize].rect;
        for slot in bucket {
            let q = rect.quadrant_of(&store.get(slot).loc);
            self.locator[slot as usize] = children[q];
            self.nodes[children[q] as usize].bucket.push(slot);
        }
        self.nodes[id as usize].children = Some(children);
    }

    /// Removes a slot. Returns whether anything was removed.
    pub fn remove(&mut self, slot: SlotId) -> bool {
        let Some(&leaf) = self.locator.get(slot as usize) else {
            return false;
        };
        if leaf == NOWHERE {
            return false;
        }
        self.locator[slot as usize] = NOWHERE;
        let bucket = &mut self.nodes[leaf as usize].bucket;
        if let Some(pos) = bucket.iter().position(|&s| s == slot) {
            bucket.swap_remove(pos);
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Exact count of indexed objects matching `query`.
    pub fn count(&self, query: &RcDvq, store: &ObjectStore) -> u64 {
        let mut total = 0u64;
        let mut stack: Vec<NodeId> = vec![0];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id as usize];
            if let Some(r) = query.range() {
                if !node.rect.intersects(r) {
                    continue;
                }
            }
            total += node
                .bucket
                .iter()
                .filter(|&&s| query.matches(store.get(s)))
                .count() as u64;
            if let Some(children) = node.children {
                stack.extend_from_slice(&children);
            }
        }
        total
    }

    /// Candidate-set size of the spatial access path for `r`: the bucket
    /// population of every node the range intersects (the planner's cost
    /// for this backend; traversal only, no object reads).
    pub fn candidate_count(&self, r: &Rect) -> u64 {
        let mut total = 0u64;
        let mut stack: Vec<NodeId> = vec![0];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id as usize];
            if !node.rect.intersects(r) {
                continue;
            }
            total += node.bucket.len() as u64;
            if let Some(children) = node.children {
                stack.extend_from_slice(&children);
            }
        }
        total
    }

    /// Clears the index.
    pub fn clear(&mut self) {
        let domain = self.nodes[0].rect;
        self.nodes.clear();
        self.nodes.push(QuadNode {
            rect: domain,
            bucket: Vec::new(),
            children: None,
            depth: 0,
        });
        self.locator.clear();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geostream::{GeoTextObject, KeywordId, ObjectId, Timestamp};

    const DOMAIN: Rect = Rect {
        min_x: 0.0,
        min_y: 0.0,
        max_x: 16.0,
        max_y: 16.0,
    };

    fn obj(id: u64, x: f64, y: f64, kws: &[u32]) -> GeoTextObject {
        GeoTextObject::new(
            ObjectId(id),
            Point::new(x, y),
            kws.iter().copied().map(KeywordId).collect(),
            Timestamp::ZERO,
        )
    }

    fn insert(q: &mut QuadtreeIndex, store: &mut ObjectStore, o: GeoTextObject) -> SlotId {
        let slot = store.insert(o);
        q.insert(slot, store);
        slot
    }

    #[test]
    fn exact_counts_after_splits() {
        let mut store = ObjectStore::new();
        let mut q = QuadtreeIndex::new(DOMAIN, 4, 10);
        for i in 0..100u64 {
            insert(
                &mut q,
                &mut store,
                obj(i, (i % 16) as f64 + 0.1, ((i / 16) % 16) as f64 + 0.1, &[]),
            );
        }
        assert!(q.node_count() > 1, "never split");
        assert_eq!(q.count(&RcDvq::spatial(DOMAIN), &store), 100);
        let west = RcDvq::spatial(Rect::new(0.0, 0.0, 7.9, 16.0));
        let expected = (0..100u64).filter(|i| (i % 16) as f64 + 0.1 <= 7.9).count() as u64;
        assert_eq!(q.count(&west, &store), expected);
        // Candidate cost bounds the true count from above.
        assert!(q.candidate_count(west.range().unwrap()) >= expected);
    }

    #[test]
    fn keyword_and_hybrid() {
        let mut store = ObjectStore::new();
        let mut q = QuadtreeIndex::new(DOMAIN, 2, 10);
        insert(&mut q, &mut store, obj(1, 1.0, 1.0, &[5]));
        insert(&mut q, &mut store, obj(2, 1.0, 1.0, &[6]));
        insert(&mut q, &mut store, obj(3, 14.0, 14.0, &[5]));
        assert_eq!(q.count(&RcDvq::keyword(vec![KeywordId(5)]), &store), 2);
        let h = RcDvq::hybrid(Rect::new(0.0, 0.0, 2.0, 2.0), vec![KeywordId(5)]);
        assert_eq!(q.count(&h, &store), 1);
    }

    #[test]
    fn remove_and_len() {
        let mut store = ObjectStore::new();
        let mut q = QuadtreeIndex::new(DOMAIN, 2, 10);
        let slots: Vec<_> = (0..20)
            .map(|i| insert(&mut q, &mut store, obj(i, 1.0 + (i as f64) * 0.1, 1.0, &[])))
            .collect();
        assert_eq!(q.len(), 20);
        for &s in slots.iter().take(10) {
            assert!(q.remove(s));
        }
        for i in 0..10u64 {
            store.remove(ObjectId(i));
        }
        assert_eq!(q.len(), 10);
        assert_eq!(q.count(&RcDvq::spatial(DOMAIN), &store), 10);
        assert!(!q.remove(slots[0]));
    }

    #[test]
    fn locator_survives_splits() {
        let mut store = ObjectStore::new();
        let mut q = QuadtreeIndex::new(DOMAIN, 3, 10);
        let slots: Vec<_> = (0..50)
            .map(|i| {
                insert(
                    &mut q,
                    &mut store,
                    obj(i, (i % 16) as f64, ((i * 7) % 16) as f64, &[]),
                )
            })
            .collect();
        // Every locator entry must point at a leaf containing the slot.
        for &slot in &slots {
            let leaf = q.locator[slot as usize];
            assert!(
                q.nodes[leaf as usize].bucket.contains(&slot),
                "slot {slot} not in its located leaf"
            );
        }
    }

    #[test]
    fn clear_resets() {
        let mut store = ObjectStore::new();
        let mut q = QuadtreeIndex::new(DOMAIN, 2, 10);
        for i in 0..20 {
            insert(&mut q, &mut store, obj(i, 1.0, 1.0, &[]));
        }
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.node_count(), 1);
    }
}
