//! R-tree spatial index (quadratic-split R-tree) — the third index family
//! §IV alludes to ("modified R-tree and its variations").
//!
//! A classic dynamic R-tree over the window: leaf entries are slot ids
//! into the shared [`ObjectStore`], internal entries are child bounding
//! rectangles. Inserts follow the least-enlargement path and split
//! overflowing nodes with Guttman's quadratic seeds; deletes locate the
//! slot via a dense `slot → leaf` locator and condense upward. Exact
//! query answering with MBR pruning.

use crate::store::{ObjectStore, SlotId};
use geostream::{Point, RcDvq, Rect};

type NodeId = u32;

/// Locator sentinel: slot not present in the tree.
const NOWHERE: NodeId = NodeId::MAX;

/// Maximum entries per node before splitting.
const MAX_ENTRIES: usize = 16;
/// Minimum entries after a split (Guttman's `m`).
const MIN_ENTRIES: usize = 6;

#[derive(Debug, Clone)]
struct Node {
    mbr: Rect,
    parent: Option<NodeId>,
    kind: NodeKind,
}

#[derive(Debug, Clone)]
enum NodeKind {
    Leaf(Vec<SlotId>),
    Internal(Vec<NodeId>),
}

/// A dynamic R-tree over window objects.
#[derive(Debug, Clone)]
pub struct RTreeIndex {
    nodes: Vec<Node>,
    root: NodeId,
    locator: Vec<NodeId>,
    len: usize,
}

/// The degenerate rectangle of a point.
fn point_rect(p: &Point) -> Rect {
    Rect::new(p.x, p.y, p.x, p.y)
}

/// The smallest rectangle containing both.
fn join(a: &Rect, b: &Rect) -> Rect {
    Rect::new(
        a.min_x.min(b.min_x),
        a.min_y.min(b.min_y),
        a.max_x.max(b.max_x),
        a.max_y.max(b.max_y),
    )
}

/// Area growth of `mbr` if it had to absorb `add`.
fn enlargement(mbr: &Rect, add: &Rect) -> f64 {
    join(mbr, add).area() - mbr.area()
}

impl Default for RTreeIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl RTreeIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        RTreeIndex {
            nodes: vec![Node {
                mbr: Rect::new(0.0, 0.0, 0.0, 0.0),
                parent: None,
                kind: NodeKind::Leaf(Vec::new()),
            }],
            root: 0,
            locator: Vec::new(),
            len: 0,
        }
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (leaf = 1).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut id = self.root;
        loop {
            match &self.nodes[id as usize].kind {
                NodeKind::Leaf(_) => return h,
                NodeKind::Internal(children) => {
                    id = children[0];
                    h += 1;
                }
            }
        }
    }

    /// Chooses the leaf for `rect` by least enlargement (ties by area).
    fn choose_leaf(&self, rect: &Rect) -> NodeId {
        let mut id = self.root;
        loop {
            match &self.nodes[id as usize].kind {
                NodeKind::Leaf(_) => return id,
                NodeKind::Internal(children) => {
                    id = *children
                        .iter()
                        .min_by(|&&a, &&b| {
                            let na = &self.nodes[a as usize];
                            let nb = &self.nodes[b as usize];
                            enlargement(&na.mbr, rect)
                                .partial_cmp(&enlargement(&nb.mbr, rect))
                                // LINT-ALLOW(no-panic): MBR areas are products of finite extents, so partial_cmp succeeds
                                .expect("finite areas")
                                .then(
                                    na.mbr
                                        .area()
                                        .partial_cmp(&nb.mbr.area())
                                        // LINT-ALLOW(no-panic): MBR areas are products of finite extents, so partial_cmp succeeds
                                        .expect("finite areas"),
                                )
                        })
                        // LINT-ALLOW(no-panic): internal nodes always hold at least one child entry
                        .expect("internal nodes are non-empty");
                }
            }
        }
    }

    fn set_locator(&mut self, slot: SlotId, node: NodeId) {
        if slot as usize >= self.locator.len() {
            self.locator.resize(slot as usize + 1, NOWHERE);
        }
        self.locator[slot as usize] = node;
    }

    /// Indexes a live store slot. The slot must not already be present
    /// (the executor removes first on oid replacement).
    pub fn insert(&mut self, slot: SlotId, store: &ObjectStore) {
        let rect = point_rect(&store.get(slot).loc);
        let leaf = self.choose_leaf(&rect);
        if let NodeKind::Leaf(entries) = &mut self.nodes[leaf as usize].kind {
            entries.push(slot);
        } else {
            unreachable!("choose_leaf returns a leaf");
        }
        self.set_locator(slot, leaf);
        self.len += 1;
        if self.entry_count(leaf) == 1 {
            self.nodes[leaf as usize].mbr = rect;
        }
        self.adjust_mbr_upward(leaf, store);
        if self.entry_count(leaf) > MAX_ENTRIES {
            self.split(leaf, store);
        }
    }

    fn entry_count(&self, id: NodeId) -> usize {
        match &self.nodes[id as usize].kind {
            NodeKind::Leaf(entries) => entries.len(),
            NodeKind::Internal(children) => children.len(),
        }
    }

    fn recompute_mbr(&mut self, id: NodeId, store: &ObjectStore) {
        let mbr = match &self.nodes[id as usize].kind {
            NodeKind::Leaf(entries) => entries
                .iter()
                .map(|&s| point_rect(&store.get(s).loc))
                .reduce(|a, b| join(&a, &b)),
            NodeKind::Internal(children) => children
                .iter()
                .map(|&c| self.nodes[c as usize].mbr)
                .reduce(|a, b| join(&a, &b)),
        };
        if let Some(mbr) = mbr {
            self.nodes[id as usize].mbr = mbr;
        }
    }

    fn adjust_mbr_upward(&mut self, mut id: NodeId, store: &ObjectStore) {
        loop {
            self.recompute_mbr(id, store);
            match self.nodes[id as usize].parent {
                Some(p) => id = p,
                None => break,
            }
        }
    }

    /// Quadratic split of an overflowing node.
    fn split(&mut self, id: NodeId, store: &ObjectStore) {
        // Collect the entry MBRs for seed picking.
        let rects: Vec<Rect> = match &self.nodes[id as usize].kind {
            NodeKind::Leaf(entries) => entries
                .iter()
                .map(|&s| point_rect(&store.get(s).loc))
                .collect(),
            NodeKind::Internal(children) => children
                .iter()
                .map(|&c| self.nodes[c as usize].mbr)
                .collect(),
        };
        // Guttman quadratic seeds: the pair wasting the most area.
        let (mut s1, mut s2, mut worst) = (0usize, 1usize, f64::NEG_INFINITY);
        for (i, ri) in rects.iter().enumerate() {
            for (j, rj) in rects.iter().enumerate().skip(i + 1) {
                let waste = join(ri, rj).area() - ri.area() - rj.area();
                if waste > worst {
                    worst = waste;
                    s1 = i;
                    s2 = j;
                }
            }
        }
        // Partition indices between the two groups by least enlargement,
        // honoring the minimum fill.
        let n = rects.len();
        let mut group1 = vec![s1];
        let mut group2 = vec![s2];
        let mut mbr1 = rects[s1];
        let mut mbr2 = rects[s2];
        for (i, rect) in rects.iter().enumerate() {
            if i == s1 || i == s2 {
                continue;
            }
            let remaining = n - i - 1;
            if group1.len() + remaining < MIN_ENTRIES {
                group1.push(i);
                mbr1 = join(&mbr1, rect);
                continue;
            }
            if group2.len() + remaining < MIN_ENTRIES {
                group2.push(i);
                mbr2 = join(&mbr2, rect);
                continue;
            }
            if enlargement(&mbr1, rect) <= enlargement(&mbr2, rect) {
                group1.push(i);
                mbr1 = join(&mbr1, rect);
            } else {
                group2.push(i);
                mbr2 = join(&mbr2, rect);
            }
        }
        // Build the sibling node holding group2.
        let sibling = self.nodes.len() as NodeId;
        let parent = self.nodes[id as usize].parent;
        let sibling_kind = match &mut self.nodes[id as usize].kind {
            NodeKind::Leaf(entries) => {
                let mut kept = Vec::with_capacity(group1.len());
                let mut moved = Vec::with_capacity(group2.len());
                let old = std::mem::take(entries);
                for (i, slot) in old.into_iter().enumerate() {
                    if group2.contains(&i) {
                        moved.push(slot);
                    } else {
                        kept.push(slot);
                    }
                }
                *entries = kept;
                NodeKind::Leaf(moved)
            }
            NodeKind::Internal(children) => {
                let mut kept = Vec::with_capacity(group1.len());
                let mut moved = Vec::with_capacity(group2.len());
                let old = std::mem::take(children);
                for (i, child) in old.into_iter().enumerate() {
                    if group2.contains(&i) {
                        moved.push(child);
                    } else {
                        kept.push(child);
                    }
                }
                *children = kept;
                NodeKind::Internal(moved)
            }
        };
        self.nodes.push(Node {
            mbr: mbr2,
            parent,
            kind: sibling_kind,
        });
        self.nodes[id as usize].mbr = mbr1;
        // Fix locators / child parents for moved entries.
        match &self.nodes[sibling as usize].kind {
            NodeKind::Leaf(entries) => {
                let moved = entries.clone();
                for slot in moved {
                    self.locator[slot as usize] = sibling;
                }
            }
            NodeKind::Internal(children) => {
                let kids = children.clone();
                for c in kids {
                    self.nodes[c as usize].parent = Some(sibling);
                }
            }
        }
        match parent {
            Some(p) => {
                if let NodeKind::Internal(children) = &mut self.nodes[p as usize].kind {
                    children.push(sibling);
                } else {
                    unreachable!("parents are internal");
                }
                self.adjust_mbr_upward(p, store);
                if self.entry_count(p) > MAX_ENTRIES {
                    self.split(p, store);
                }
            }
            None => {
                // Split the root: grow the tree by one level.
                let new_root = self.nodes.len() as NodeId;
                self.nodes.push(Node {
                    mbr: join(&mbr1, &mbr2),
                    parent: None,
                    kind: NodeKind::Internal(vec![id, sibling]),
                });
                self.nodes[id as usize].parent = Some(new_root);
                self.nodes[sibling as usize].parent = Some(new_root);
                self.root = new_root;
            }
        }
    }

    /// Removes a slot. Returns whether anything was removed.
    ///
    /// Underfull leaves are tolerated (no re-insertion pass): for a
    /// windowed stream the constant churn keeps occupancy healthy, and
    /// query exactness never depends on fill factors.
    pub fn remove(&mut self, slot: SlotId, store: &ObjectStore) -> bool {
        let Some(&leaf) = self.locator.get(slot as usize) else {
            return false;
        };
        if leaf == NOWHERE {
            return false;
        }
        self.locator[slot as usize] = NOWHERE;
        if let NodeKind::Leaf(entries) = &mut self.nodes[leaf as usize].kind {
            if let Some(pos) = entries.iter().position(|&s| s == slot) {
                entries.swap_remove(pos);
                self.len -= 1;
                self.adjust_mbr_upward(leaf, store);
                return true;
            }
        }
        false
    }

    /// Exact count of indexed objects matching `query`.
    pub fn count(&self, query: &RcDvq, store: &ObjectStore) -> u64 {
        let mut total = 0u64;
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id as usize];
            if let Some(r) = query.range() {
                if !node.mbr.intersects(r) {
                    continue;
                }
            }
            match &node.kind {
                NodeKind::Leaf(entries) => {
                    total += entries
                        .iter()
                        .filter(|&&s| query.matches(store.get(s)))
                        .count() as u64;
                }
                NodeKind::Internal(children) => stack.extend_from_slice(children),
            }
        }
        total
    }

    /// Candidate-set size of the spatial access path for `r`: the leaf
    /// population of every node whose MBR intersects the range (the
    /// planner's cost for this backend; traversal only, no object reads).
    pub fn candidate_count(&self, r: &Rect) -> u64 {
        let mut total = 0u64;
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id as usize];
            if !node.mbr.intersects(r) {
                continue;
            }
            match &node.kind {
                NodeKind::Leaf(entries) => total += entries.len() as u64,
                NodeKind::Internal(children) => stack.extend_from_slice(children),
            }
        }
        total
    }

    /// Clears the index.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.nodes.push(Node {
            mbr: Rect::new(0.0, 0.0, 0.0, 0.0),
            parent: None,
            kind: NodeKind::Leaf(Vec::new()),
        });
        self.root = 0;
        self.locator.clear();
        self.len = 0;
    }

    /// Structural invariant check (used by tests): every child's MBR is
    /// contained in its parent's, every leaf slot is inside its leaf MBR,
    /// and the locator is exact.
    #[doc(hidden)]
    pub fn check_invariants(&self, store: &ObjectStore) {
        let mut seen = 0usize;
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id as usize];
            match &node.kind {
                NodeKind::Leaf(entries) => {
                    for &s in entries {
                        assert!(
                            node.mbr.contains(&store.get(s).loc),
                            "object outside its leaf MBR"
                        );
                        assert_eq!(self.locator[s as usize], id, "stale locator");
                        seen += 1;
                    }
                }
                NodeKind::Internal(children) => {
                    assert!(!children.is_empty(), "empty internal node");
                    for &c in children {
                        let child = &self.nodes[c as usize];
                        assert!(
                            node.mbr.contains_rect(&child.mbr),
                            "child MBR escapes parent"
                        );
                        assert_eq!(child.parent, Some(id), "broken parent link");
                        stack.push(c);
                    }
                }
            }
        }
        assert_eq!(seen, self.len, "length drifted from contents");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geostream::{GeoTextObject, KeywordId, ObjectId, Timestamp};

    fn obj(id: u64, x: f64, y: f64, kws: &[u32]) -> GeoTextObject {
        GeoTextObject::new(
            ObjectId(id),
            Point::new(x, y),
            kws.iter().copied().map(KeywordId).collect(),
            Timestamp::ZERO,
        )
    }

    fn scattered(n: u64) -> Vec<GeoTextObject> {
        let mut s = 99u64;
        (0..n)
            .map(|i| {
                s = s.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                let x = (s >> 11) as f64 / (1u64 << 53) as f64 * 100.0;
                s = s.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                let y = (s >> 11) as f64 / (1u64 << 53) as f64 * 100.0;
                obj(i, x, y, &[(i % 13) as u32])
            })
            .collect()
    }

    fn build(objects: &[GeoTextObject]) -> (ObjectStore, RTreeIndex, Vec<SlotId>) {
        let mut store = ObjectStore::new();
        let mut t = RTreeIndex::new();
        let slots = objects
            .iter()
            .map(|o| {
                let slot = store.insert(o.clone());
                t.insert(slot, &store);
                slot
            })
            .collect();
        (store, t, slots)
    }

    /// Store-side removal matching the executor's order: mark dead in the
    /// store first, then drop from the tree.
    fn remove(t: &mut RTreeIndex, store: &mut ObjectStore, id: u64) -> bool {
        let Some((slot, _)) = store.remove(ObjectId(id)) else {
            return false;
        };
        t.remove(slot, store)
    }

    #[test]
    fn exact_counts_match_brute_force() {
        let objects = scattered(800);
        let (store, t, _) = build(&objects);
        t.check_invariants(&store);
        assert!(t.height() > 1, "tree never grew");
        for q in [
            RcDvq::spatial(Rect::new(10.0, 10.0, 60.0, 40.0)),
            RcDvq::keyword(vec![KeywordId(5)]),
            RcDvq::hybrid(Rect::new(0.0, 0.0, 50.0, 100.0), vec![KeywordId(2)]),
        ] {
            let brute = objects.iter().filter(|o| q.matches(o)).count() as u64;
            assert_eq!(t.count(&q, &store), brute, "mismatch on {q:?}");
            if let Some(r) = q.range() {
                assert!(t.candidate_count(r) >= t.count(&RcDvq::spatial(*r), &store));
            }
        }
    }

    #[test]
    fn removal_keeps_exactness_and_invariants() {
        let objects = scattered(500);
        let (mut store, mut t, _) = build(&objects);
        for o in objects.iter().take(300) {
            assert!(remove(&mut t, &mut store, o.oid.0));
        }
        t.check_invariants(&store);
        assert_eq!(t.len(), 200);
        let q = RcDvq::spatial(Rect::new(0.0, 0.0, 100.0, 100.0));
        assert_eq!(t.count(&q, &store), 200);
        assert!(
            !remove(&mut t, &mut store, objects[0].oid.0),
            "double remove must fail"
        );
    }

    #[test]
    fn churn_preserves_invariants() {
        let objects = scattered(1_500);
        let mut store = ObjectStore::new();
        let mut t = RTreeIndex::new();
        for (i, o) in objects.iter().enumerate() {
            let slot = store.insert(o.clone());
            t.insert(slot, &store);
            if i >= 400 {
                assert!(remove(&mut t, &mut store, objects[i - 400].oid.0));
            }
        }
        t.check_invariants(&store);
        assert_eq!(t.len(), 400);
    }

    #[test]
    fn disjoint_query_is_zero() {
        let (store, t, _) = build(&scattered(100));
        assert_eq!(
            t.count(
                &RcDvq::spatial(Rect::new(500.0, 500.0, 600.0, 600.0)),
                &store
            ),
            0
        );
        assert_eq!(t.candidate_count(&Rect::new(500.0, 500.0, 600.0, 600.0)), 0);
    }

    #[test]
    fn clear_resets() {
        let (store, mut t, _) = build(&scattered(100));
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        t.check_invariants(&store);
    }

    #[test]
    fn clustered_data_builds_tight_mbrs() {
        // Two far-apart clusters: the root's children should separate them
        // (small total child area vs. the root MBR).
        let mut store = ObjectStore::new();
        let mut t = RTreeIndex::new();
        let mut id = 0u64;
        for i in 0..60 {
            for (x, y) in [
                (1.0 + (i % 8) as f64 * 0.1, 1.0),
                (90.0 + (i % 8) as f64 * 0.1, 90.0),
            ] {
                let slot = store.insert(obj(id, x, y, &[]));
                t.insert(slot, &store);
                id += 1;
            }
        }
        t.check_invariants(&store);
        // Query between the clusters touches nothing.
        assert_eq!(
            t.count(&RcDvq::spatial(Rect::new(30.0, 30.0, 60.0, 60.0)), &store),
            0
        );
    }
}
