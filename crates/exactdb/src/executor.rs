//! The exact executor — LATEST's "system logs" source and Table I's
//! full-index comparison point.

use crate::grid::GridIndex;
use crate::inverted::InvertedIndex;
use crate::quad::QuadtreeIndex;
use crate::rtree::RTreeIndex;
use geostream::{GeoTextObject, QueryType, RcDvq, Rect};

/// Which spatial backend the executor runs on (the two index families
/// compared in Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpatialIndexKind {
    Grid,
    Quadtree,
    RTree,
}

impl SpatialIndexKind {
    /// Display name used in Table I output.
    pub fn name(self) -> &'static str {
        match self {
            SpatialIndexKind::Grid => "Grid",
            SpatialIndexKind::Quadtree => "QuadTree",
            SpatialIndexKind::RTree => "RTree",
        }
    }
}

enum Backend {
    Grid(GridIndex),
    Quad(QuadtreeIndex),
    RTree(RTreeIndex),
}

/// Exact RC-DVQ execution over the live window.
///
/// Maintains one spatial index (grid or quadtree) plus an inverted keyword
/// index, and routes each query to the best access path:
///
/// * pure spatial → spatial index;
/// * pure keyword → inverted index;
/// * hybrid → inverted index when the keyword predicate is available
///   (posting lists are usually the sharper filter), spatial otherwise.
pub struct ExactExecutor {
    backend: Backend,
    inverted: InvertedIndex,
    len: usize,
}

/// Grid cells per axis for the grid backend (matches the estimator-side
/// default of a 64×64 grid).
const GRID_SIDE: usize = 64;
/// Quadtree leaf bucket capacity.
const QUAD_BUCKET: usize = 64;
/// Quadtree depth cap.
const QUAD_DEPTH: u16 = 14;

impl ExactExecutor {
    /// Builds an empty executor over `domain` with the chosen backend.
    pub fn new(domain: Rect, kind: SpatialIndexKind) -> Self {
        let backend = match kind {
            SpatialIndexKind::Grid => Backend::Grid(GridIndex::new(domain, GRID_SIDE)),
            SpatialIndexKind::Quadtree => {
                Backend::Quad(QuadtreeIndex::new(domain, QUAD_BUCKET, QUAD_DEPTH))
            }
            SpatialIndexKind::RTree => Backend::RTree(RTreeIndex::new()),
        };
        ExactExecutor {
            backend,
            inverted: InvertedIndex::new(),
            len: 0,
        }
    }

    /// The backend in use.
    pub fn kind(&self) -> SpatialIndexKind {
        match self.backend {
            Backend::Grid(_) => SpatialIndexKind::Grid,
            Backend::Quad(_) => SpatialIndexKind::Quadtree,
            Backend::RTree(_) => SpatialIndexKind::RTree,
        }
    }

    /// Number of indexed window objects.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the executor holds no objects.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Indexes an arriving window object.
    pub fn insert(&mut self, obj: &GeoTextObject) {
        match &mut self.backend {
            Backend::Grid(g) => g.insert(obj),
            Backend::Quad(q) => q.insert(obj),
            Backend::RTree(r) => r.insert(obj),
        }
        self.inverted.insert(obj);
        self.len += 1;
    }

    /// Drops an evicted window object.
    pub fn remove(&mut self, obj: &GeoTextObject) {
        let removed = match &mut self.backend {
            Backend::Grid(g) => g.remove(obj.oid),
            Backend::Quad(q) => q.remove(obj.oid, &obj.loc),
            Backend::RTree(r) => r.remove(obj.oid),
        };
        self.inverted.remove(obj.oid);
        if removed {
            self.len -= 1;
        }
    }

    /// Executes `query` exactly, returning the true selectivity — the
    /// number the paper reads out of the system logs.
    pub fn execute(&self, query: &RcDvq) -> u64 {
        match query.query_type() {
            QueryType::Spatial => match &self.backend {
                Backend::Grid(g) => g.count(query),
                Backend::Quad(q) => q.count(query),
                Backend::RTree(r) => r.count(query),
            },
            QueryType::Keyword | QueryType::Hybrid => self.inverted.count(query),
        }
    }

    /// Executes strictly through the spatial backend (even for hybrid
    /// queries) — used by the Table I harness to price the spatial index's
    /// own access path.
    pub fn execute_spatial_path(&self, query: &RcDvq) -> u64 {
        match &self.backend {
            Backend::Grid(g) => g.count(query),
            Backend::Quad(q) => q.count(query),
            Backend::RTree(r) => r.count(query),
        }
    }

    /// Clears all indexes.
    pub fn clear(&mut self) {
        match &mut self.backend {
            Backend::Grid(g) => g.clear(),
            Backend::Quad(q) => q.clear(),
            Backend::RTree(r) => r.clear(),
        }
        self.inverted.clear();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geostream::{KeywordId, ObjectId, Point, Timestamp};

    const DOMAIN: Rect = Rect {
        min_x: 0.0,
        min_y: 0.0,
        max_x: 100.0,
        max_y: 100.0,
    };

    fn obj(id: u64, x: f64, y: f64, kws: &[u32]) -> GeoTextObject {
        GeoTextObject::new(
            ObjectId(id),
            Point::new(x, y),
            kws.iter().copied().map(KeywordId).collect(),
            Timestamp::ZERO,
        )
    }

    fn populate(e: &mut ExactExecutor) {
        for i in 0..200u64 {
            let x = (i % 100) as f64;
            let kws = [(i % 10) as u32];
            e.insert(&obj(i, x, x / 2.0, &kws));
        }
    }

    #[test]
    fn backends_agree_on_all_query_types() {
        let mut grid = ExactExecutor::new(DOMAIN, SpatialIndexKind::Grid);
        let mut quad = ExactExecutor::new(DOMAIN, SpatialIndexKind::Quadtree);
        let mut rtree = ExactExecutor::new(DOMAIN, SpatialIndexKind::RTree);
        populate(&mut grid);
        populate(&mut quad);
        populate(&mut rtree);
        let queries = [
            RcDvq::spatial(Rect::new(10.0, 0.0, 42.0, 30.0)),
            RcDvq::keyword(vec![KeywordId(3), KeywordId(7)]),
            RcDvq::hybrid(Rect::new(0.0, 0.0, 50.0, 50.0), vec![KeywordId(1)]),
        ];
        for q in &queries {
            assert_eq!(
                grid.execute(q),
                quad.execute(q),
                "backends disagree on {q:?}"
            );
            assert_eq!(
                grid.execute(q),
                rtree.execute(q),
                "rtree disagrees on {q:?}"
            );
        }
        assert_eq!(grid.kind(), SpatialIndexKind::Grid);
        assert_eq!(quad.kind(), SpatialIndexKind::Quadtree);
        assert_eq!(rtree.kind(), SpatialIndexKind::RTree);
    }

    #[test]
    fn executor_matches_brute_force() {
        let mut e = ExactExecutor::new(DOMAIN, SpatialIndexKind::Grid);
        let mut all = Vec::new();
        let mut s = 17u64;
        for i in 0..500u64 {
            s = s.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let x = (s >> 11) as f64 / (1u64 << 53) as f64 * 100.0;
            s = s.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let y = (s >> 11) as f64 / (1u64 << 53) as f64 * 100.0;
            let o = obj(i, x, y, &[(i % 23) as u32, (i % 7) as u32]);
            e.insert(&o);
            all.push(o);
        }
        let queries = [
            RcDvq::spatial(Rect::new(20.0, 20.0, 70.0, 55.0)),
            RcDvq::keyword(vec![KeywordId(5)]),
            RcDvq::hybrid(
                Rect::new(0.0, 0.0, 60.0, 60.0),
                vec![KeywordId(2), KeywordId(11)],
            ),
        ];
        for q in &queries {
            let brute = all.iter().filter(|o| q.matches(o)).count() as u64;
            assert_eq!(e.execute(q), brute, "mismatch on {q:?}");
            // The pure spatial path must agree too (slower, same answer).
            assert_eq!(e.execute_spatial_path(q), brute);
        }
    }

    #[test]
    fn window_eviction_keeps_exactness() {
        let mut e = ExactExecutor::new(DOMAIN, SpatialIndexKind::Quadtree);
        let objects: Vec<_> = (0..100).map(|i| obj(i, 50.0, 50.0, &[1])).collect();
        for o in &objects {
            e.insert(o);
        }
        for o in objects.iter().take(60) {
            e.remove(o);
        }
        assert_eq!(e.len(), 40);
        assert_eq!(e.execute(&RcDvq::keyword(vec![KeywordId(1)])), 40);
        assert_eq!(
            e.execute(&RcDvq::spatial(Rect::new(0.0, 0.0, 100.0, 100.0))),
            40
        );
    }

    #[test]
    fn clear_resets() {
        let mut e = ExactExecutor::new(DOMAIN, SpatialIndexKind::Grid);
        populate(&mut e);
        e.clear();
        assert!(e.is_empty());
        assert_eq!(e.execute(&RcDvq::keyword(vec![KeywordId(1)])), 0);
    }
}
