//! The exact executor — LATEST's "system logs" source and Table I's
//! full-index comparison point.
//!
//! The executor owns the shared [`ObjectStore`] and threads it through
//! every index update and query. Hybrid queries are routed by a
//! cost-based planner: the inverted path is priced at its live posting
//! mass, the spatial path at the candidate population of the cells or
//! subtrees the range touches, and the cheaper one runs. Per-path hit
//! counters expose the resulting path mix for the bench harness.

use crate::grid::GridIndex;
use crate::inverted::InvertedIndex;
use crate::quad::QuadtreeIndex;
use crate::rtree::RTreeIndex;
use crate::store::{ObjectStore, SlotId};
use geostream::obsv::Counter;
use geostream::{GeoTextObject, ObjectId, QueryType, RcDvq, Rect};

/// Which spatial backend the executor runs on (the two index families
/// compared in Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpatialIndexKind {
    Grid,
    Quadtree,
    RTree,
}

impl SpatialIndexKind {
    /// Display name used in Table I output.
    pub fn name(self) -> &'static str {
        match self {
            SpatialIndexKind::Grid => "Grid",
            SpatialIndexKind::Quadtree => "QuadTree",
            SpatialIndexKind::RTree => "RTree",
        }
    }
}

/// The access path the planner picked for a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPath {
    /// Walk the spatial index and verify predicates per candidate.
    Spatial,
    /// Merge the keywords' posting lists and verify the range per slot.
    Inverted,
}

/// Snapshot of the per-path hit counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PathMix {
    /// Queries answered through the spatial backend.
    pub spatial: u64,
    /// Queries answered through the inverted index.
    pub inverted: u64,
}

impl PathMix {
    /// Total queries executed.
    pub fn total(&self) -> u64 {
        self.spatial + self.inverted
    }
}

enum Backend {
    Grid(GridIndex),
    Quad(QuadtreeIndex),
    RTree(RTreeIndex),
}

impl Backend {
    fn insert(&mut self, slot: SlotId, store: &ObjectStore) {
        match self {
            Backend::Grid(g) => g.insert(slot, store),
            Backend::Quad(q) => q.insert(slot, store),
            Backend::RTree(r) => r.insert(slot, store),
        }
    }

    fn remove(&mut self, slot: SlotId, store: &ObjectStore) -> bool {
        match self {
            Backend::Grid(g) => g.remove(slot),
            Backend::Quad(q) => q.remove(slot),
            Backend::RTree(r) => r.remove(slot, store),
        }
    }

    fn count(&self, query: &RcDvq, store: &ObjectStore) -> u64 {
        match self {
            Backend::Grid(g) => g.count(query, store),
            Backend::Quad(q) => q.count(query, store),
            Backend::RTree(r) => r.count(query, store),
        }
    }

    fn candidate_count(&self, r: &Rect) -> u64 {
        match self {
            Backend::Grid(g) => g.candidate_count(r),
            Backend::Quad(q) => q.candidate_count(r),
            Backend::RTree(r_) => r_.candidate_count(r),
        }
    }

    fn clear(&mut self) {
        match self {
            Backend::Grid(g) => g.clear(),
            Backend::Quad(q) => q.clear(),
            Backend::RTree(r) => r.clear(),
        }
    }
}

/// Exact RC-DVQ execution over the live window.
///
/// Owns the shared [`ObjectStore`] plus one spatial index and the
/// inverted keyword index (both slot-based), and routes each query to
/// the cheaper access path:
///
/// * pure spatial → spatial index;
/// * pure keyword → inverted index;
/// * hybrid → whichever path the cost model prices lower (live posting
///   mass vs. spatial candidate population).
pub struct ExactExecutor {
    store: ObjectStore,
    backend: Backend,
    inverted: InvertedIndex,
    /// Per-access-path query counters: pure statistics, stored in the
    /// observability layer's relaxed [`Counter`] cells. No other memory is
    /// published through them, no control flow synchronizes on them, and
    /// each counter only needs its own eventual sum — exactly the
    /// per-variable atomicity a relaxed counter guarantees. `&self` query
    /// paths stay shareable across threads without a mutex, and the
    /// metrics registry folds these into its snapshots directly.
    spatial_hits: Counter,
    inverted_hits: Counter,
}

/// Grid cells per axis for the grid backend (matches the estimator-side
/// default of a 64×64 grid).
const GRID_SIDE: usize = 64;
/// Quadtree leaf bucket capacity.
const QUAD_BUCKET: usize = 64;
/// Quadtree depth cap.
const QUAD_DEPTH: u16 = 14;

impl ExactExecutor {
    /// Builds an empty executor over `domain` with the chosen backend.
    pub fn new(domain: Rect, kind: SpatialIndexKind) -> Self {
        let backend = match kind {
            SpatialIndexKind::Grid => Backend::Grid(GridIndex::new(domain, GRID_SIDE)),
            SpatialIndexKind::Quadtree => {
                Backend::Quad(QuadtreeIndex::new(domain, QUAD_BUCKET, QUAD_DEPTH))
            }
            SpatialIndexKind::RTree => Backend::RTree(RTreeIndex::new()),
        };
        ExactExecutor {
            store: ObjectStore::new(),
            backend,
            inverted: InvertedIndex::new(),
            spatial_hits: Counter::new(),
            inverted_hits: Counter::new(),
        }
    }

    /// The backend in use.
    pub fn kind(&self) -> SpatialIndexKind {
        match self.backend {
            Backend::Grid(_) => SpatialIndexKind::Grid,
            Backend::Quad(_) => SpatialIndexKind::Quadtree,
            Backend::RTree(_) => SpatialIndexKind::RTree,
        }
    }

    /// Number of indexed window objects (the store's live population —
    /// the single source of truth; indexes cannot drift from it).
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the executor holds no objects.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Read access to the shared store (tests, estimator training taps).
    pub fn store(&self) -> &ObjectStore {
        &self.store
    }

    /// Posting-list compactions performed so far (bench diagnostics).
    pub fn compactions(&self) -> u64 {
        self.inverted.compactions()
    }

    /// Deep cross-structure invariant walk (the `debug-invariants`
    /// auditor): the store's slot/identity/free-list invariants, then the
    /// inverted index's posting order, tombstone counters, live-object
    /// coverage, and parked-reference accounting against that store.
    #[cfg(feature = "debug-invariants")]
    pub fn audit(&self) -> Result<(), geostream::AuditError> {
        self.store.audit()?;
        self.inverted.audit(&self.store)
    }

    /// Indexes an arriving window object. A live object with the same id
    /// is replaced.
    pub fn insert(&mut self, obj: &GeoTextObject) {
        if self.store.contains(obj.oid) {
            self.remove_by_oid(obj.oid);
        }
        let slot = self.store.insert(obj.clone());
        self.backend.insert(slot, &self.store);
        self.inverted.insert(slot, &self.store);
    }

    /// Indexes a batch of arriving objects (one pass, amortizing the
    /// per-call dispatch for ingest-heavy upkeep).
    pub fn insert_batch(&mut self, objs: &[GeoTextObject]) {
        for obj in objs {
            self.insert(obj);
        }
    }

    /// Drops an evicted window object.
    pub fn remove(&mut self, obj: &GeoTextObject) {
        self.remove_by_oid(obj.oid);
    }

    /// Drops a batch of evicted objects.
    pub fn remove_batch(&mut self, objs: &[GeoTextObject]) {
        for obj in objs {
            self.remove_by_oid(obj.oid);
        }
    }

    /// Drops an evicted object by id. Returns whether it was present.
    ///
    /// Removal goes through the store first (it owns liveness), then the
    /// spatial backend, then the inverted index's lazy tombstones — so
    /// either every structure drops the object or none does, and the
    /// spatial and inverted sides can no longer drift apart.
    pub fn remove_by_oid(&mut self, oid: ObjectId) -> bool {
        let Some((slot, obj)) = self.store.remove(oid) else {
            return false;
        };
        let spatial_removed = self.backend.remove(slot, &self.store);
        debug_assert!(
            spatial_removed,
            "slot {slot} was live in the store but missing from the spatial index"
        );
        self.inverted.remove(&obj.keywords, &mut self.store);
        true
    }

    /// The access path the planner would pick for `query`, by comparing
    /// the live posting mass of its keywords against the candidate
    /// population of the cells/subtrees its range touches.
    pub fn plan(&self, query: &RcDvq) -> AccessPath {
        match query.query_type() {
            QueryType::Spatial => AccessPath::Spatial,
            QueryType::Keyword => AccessPath::Inverted,
            QueryType::Hybrid => {
                let inverted_cost = self.inverted.candidate_cost(query.keywords());
                let spatial_cost = query
                    .range()
                    .map_or(u64::MAX, |r| self.backend.candidate_count(r));
                if inverted_cost <= spatial_cost {
                    AccessPath::Inverted
                } else {
                    AccessPath::Spatial
                }
            }
        }
    }

    /// Executes `query` exactly, returning the true selectivity — the
    /// number the paper reads out of the system logs.
    pub fn execute(&self, query: &RcDvq) -> u64 {
        match self.plan(query) {
            AccessPath::Spatial => {
                self.spatial_hits.inc();
                self.backend.count(query, &self.store)
            }
            AccessPath::Inverted => {
                self.inverted_hits.inc();
                self.inverted_count(query)
            }
        }
    }

    /// The inverted-path count behind its planner precondition: the
    /// cost-based planner only routes keyword-bearing queries here.
    fn inverted_count(&self, query: &RcDvq) -> u64 {
        self.inverted
            .count(query, &self.store)
            // LINT-ALLOW(no-panic): the planner returns Inverted only for keyword-bearing queries
            .expect("planner only routes keyword-bearing queries here")
    }

    /// Executes a batch of queries, returning each exact selectivity in
    /// input order.
    ///
    /// Answer- and counter-equivalent to calling
    /// [`ExactExecutor::execute`] once per query — identical counts, and
    /// one per-path counter increment per *input* query — but amortized:
    /// the cost-based planner runs once per distinct query (duplicates
    /// inherit the plan and share a single index count, since the
    /// planner and counts are pure reads of unchanging state), and the
    /// distinct queries run grouped by access path so each index's
    /// working set stays hot across its group.
    pub fn execute_batch(&self, queries: &[RcDvq]) -> Vec<u64> {
        use std::collections::HashMap;
        let mut results = vec![0u64; queries.len()];
        // signature → distinct first occurrences with that signature
        // (nearly always one; equality-checked so a 64-bit hash
        // collision can never alias two different queries).
        let mut first_of: HashMap<u64, Vec<usize>> = HashMap::with_capacity(queries.len());
        let mut dup_of: Vec<usize> = (0..queries.len()).collect();
        let mut plan_of: Vec<AccessPath> = Vec::with_capacity(queries.len());
        let mut spatial_group: Vec<usize> = Vec::new();
        let mut inverted_group: Vec<usize> = Vec::new();
        for (i, q) in queries.iter().enumerate() {
            let firsts = first_of.entry(q.signature().0).or_default();
            if let Some(&fi) = firsts.iter().find(|&&fi| queries[fi] == *q) {
                dup_of[i] = fi;
                plan_of.push(plan_of[fi]);
            } else {
                firsts.push(i);
                let plan = self.plan(q);
                plan_of.push(plan);
                match plan {
                    AccessPath::Spatial => spatial_group.push(i),
                    AccessPath::Inverted => inverted_group.push(i),
                }
            }
        }
        for plan in &plan_of {
            match plan {
                AccessPath::Spatial => self.spatial_hits.inc(),
                AccessPath::Inverted => self.inverted_hits.inc(),
            }
        }
        for &i in &spatial_group {
            results[i] = self.backend.count(&queries[i], &self.store);
        }
        for &i in &inverted_group {
            results[i] = self.inverted_count(&queries[i]);
        }
        for i in 0..queries.len() {
            if dup_of[i] != i {
                results[i] = results[dup_of[i]];
            }
        }
        results
    }

    /// Executes strictly through the spatial backend (even for hybrid
    /// queries) — used by the Table I harness to price the spatial index's
    /// own access path.
    pub fn execute_spatial_path(&self, query: &RcDvq) -> u64 {
        self.backend.count(query, &self.store)
    }

    /// Snapshot of how many queries each access path has served.
    pub fn path_mix(&self) -> PathMix {
        // A snapshot taken while queries run may split a concurrent
        // increment between the two relaxed cells, which is inherent to
        // any non-locking pair of counters and fine for statistics.
        PathMix {
            spatial: self.spatial_hits.get(),
            inverted: self.inverted_hits.get(),
        }
    }

    /// Resets the path-mix counters (bench warmup isolation). Callers
    /// quiesce queries around a reset (bench warmup boundaries).
    pub fn reset_path_mix(&self) {
        self.spatial_hits.reset();
        self.inverted_hits.reset();
    }

    /// Clears all indexes and the store.
    pub fn clear(&mut self) {
        self.backend.clear();
        self.inverted.clear();
        self.store.clear();
        self.reset_path_mix();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geostream::{KeywordId, Point, Timestamp};

    const DOMAIN: Rect = Rect {
        min_x: 0.0,
        min_y: 0.0,
        max_x: 100.0,
        max_y: 100.0,
    };

    fn obj(id: u64, x: f64, y: f64, kws: &[u32]) -> GeoTextObject {
        GeoTextObject::new(
            ObjectId(id),
            Point::new(x, y),
            kws.iter().copied().map(KeywordId).collect(),
            Timestamp::ZERO,
        )
    }

    fn populate(e: &mut ExactExecutor) {
        for i in 0..200u64 {
            let x = (i % 100) as f64;
            let kws = [(i % 10) as u32];
            e.insert(&obj(i, x, x / 2.0, &kws));
        }
    }

    /// Every backend's executor stays audit-clean through insert/remove
    /// churn dense enough to force slot recycling, posting tombstones,
    /// and mid-stream compactions.
    #[cfg(feature = "debug-invariants")]
    #[test]
    fn audit_passes_under_churn_on_every_backend() {
        for kind in [
            SpatialIndexKind::Grid,
            SpatialIndexKind::Quadtree,
            SpatialIndexKind::RTree,
        ] {
            let mut e = ExactExecutor::new(DOMAIN, kind);
            let mut state = 0x5eedu64;
            let mut live: Vec<u64> = Vec::new();
            for i in 0..1_500u64 {
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1);
                let r = state >> 11;
                if live.len() > 50 && r % 3 == 0 {
                    let id = live.swap_remove((r % live.len() as u64) as usize);
                    e.remove_by_oid(ObjectId(id));
                } else {
                    // Few distinct keywords → long shared postings → the
                    // 25% tombstone threshold trips repeatedly.
                    let kws = [(r % 6) as u32];
                    e.insert(&obj(i, (r % 100) as f64, (r % 97) as f64, &kws));
                    live.push(i);
                }
                if i % 200 == 0 {
                    e.audit()
                        .unwrap_or_else(|err| panic!("{kind:?} step {i}: {err}"));
                }
            }
            assert!(e.compactions() > 0, "{kind:?} churn never compacted");
            e.audit()
                .unwrap_or_else(|err| panic!("{kind:?} final: {err}"));
        }
    }

    /// The Relaxed path-mix counters lose no increments under concurrent
    /// queries: per-counter atomicity is all their exactness relies on
    /// (no cross-counter ordering is claimed — see the field docs).
    #[test]
    fn path_mix_counters_are_exact_under_concurrent_queries() {
        let mut e = ExactExecutor::new(DOMAIN, SpatialIndexKind::Grid);
        populate(&mut e);
        const THREADS: usize = 8;
        const PER_THREAD: usize = 250;
        let e = &e;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        // Alternate access paths so both counters race.
                        let q = if (t + i) % 2 == 0 {
                            RcDvq::spatial(Rect::new(0.0, 0.0, 50.0, 50.0))
                        } else {
                            RcDvq::keyword(vec![KeywordId(((t + i) % 10) as u32)])
                        };
                        let _ = e.execute(&q);
                    }
                });
            }
        });
        let mix = e.path_mix();
        assert_eq!(mix.total(), (THREADS * PER_THREAD) as u64);
        assert_eq!(mix.spatial, (THREADS * PER_THREAD / 2) as u64);
        assert_eq!(mix.inverted, (THREADS * PER_THREAD / 2) as u64);
    }

    #[test]
    fn backends_agree_on_all_query_types() {
        let mut grid = ExactExecutor::new(DOMAIN, SpatialIndexKind::Grid);
        let mut quad = ExactExecutor::new(DOMAIN, SpatialIndexKind::Quadtree);
        let mut rtree = ExactExecutor::new(DOMAIN, SpatialIndexKind::RTree);
        populate(&mut grid);
        populate(&mut quad);
        populate(&mut rtree);
        let queries = [
            RcDvq::spatial(Rect::new(10.0, 0.0, 42.0, 30.0)),
            RcDvq::keyword(vec![KeywordId(3), KeywordId(7)]),
            RcDvq::hybrid(Rect::new(0.0, 0.0, 50.0, 50.0), vec![KeywordId(1)]),
        ];
        for q in &queries {
            assert_eq!(
                grid.execute(q),
                quad.execute(q),
                "backends disagree on {q:?}"
            );
            assert_eq!(
                grid.execute(q),
                rtree.execute(q),
                "rtree disagrees on {q:?}"
            );
        }
        assert_eq!(grid.kind(), SpatialIndexKind::Grid);
        assert_eq!(quad.kind(), SpatialIndexKind::Quadtree);
        assert_eq!(rtree.kind(), SpatialIndexKind::RTree);
    }

    #[test]
    fn executor_matches_brute_force() {
        let mut e = ExactExecutor::new(DOMAIN, SpatialIndexKind::Grid);
        let mut all = Vec::new();
        let mut s = 17u64;
        for i in 0..500u64 {
            s = s.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let x = (s >> 11) as f64 / (1u64 << 53) as f64 * 100.0;
            s = s.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let y = (s >> 11) as f64 / (1u64 << 53) as f64 * 100.0;
            let o = obj(i, x, y, &[(i % 23) as u32, (i % 7) as u32]);
            e.insert(&o);
            all.push(o);
        }
        let queries = [
            RcDvq::spatial(Rect::new(20.0, 20.0, 70.0, 55.0)),
            RcDvq::keyword(vec![KeywordId(5)]),
            RcDvq::hybrid(
                Rect::new(0.0, 0.0, 60.0, 60.0),
                vec![KeywordId(2), KeywordId(11)],
            ),
        ];
        for q in &queries {
            let brute = all.iter().filter(|o| q.matches(o)).count() as u64;
            assert_eq!(e.execute(q), brute, "mismatch on {q:?}");
            // The pure spatial path must agree too (slower, same answer).
            assert_eq!(e.execute_spatial_path(q), brute);
        }
    }

    #[test]
    fn window_eviction_keeps_exactness() {
        let mut e = ExactExecutor::new(DOMAIN, SpatialIndexKind::Quadtree);
        let objects: Vec<_> = (0..100).map(|i| obj(i, 50.0, 50.0, &[1])).collect();
        for o in &objects {
            e.insert(o);
        }
        for o in objects.iter().take(60) {
            e.remove(o);
        }
        assert_eq!(e.len(), 40);
        assert_eq!(e.execute(&RcDvq::keyword(vec![KeywordId(1)])), 40);
        assert_eq!(
            e.execute(&RcDvq::spatial(Rect::new(0.0, 0.0, 100.0, 100.0))),
            40
        );
    }

    #[test]
    fn batch_ops_match_singles() {
        let mut single = ExactExecutor::new(DOMAIN, SpatialIndexKind::RTree);
        let mut batched = ExactExecutor::new(DOMAIN, SpatialIndexKind::RTree);
        let objects: Vec<_> = (0..300u64)
            .map(|i| obj(i, (i % 100) as f64, (i % 37) as f64, &[(i % 5) as u32]))
            .collect();
        for o in &objects {
            single.insert(o);
        }
        batched.insert_batch(&objects);
        for o in objects.iter().take(120) {
            single.remove(o);
        }
        batched.remove_batch(&objects[..120]);
        assert_eq!(single.len(), batched.len());
        for q in [
            RcDvq::spatial(Rect::new(0.0, 0.0, 50.0, 50.0)),
            RcDvq::keyword(vec![KeywordId(2)]),
            RcDvq::hybrid(Rect::new(10.0, 0.0, 80.0, 30.0), vec![KeywordId(1)]),
        ] {
            assert_eq!(single.execute(&q), batched.execute(&q));
        }
    }

    /// `execute_batch` returns the same answers and drives the same
    /// per-path counters as one-at-a-time execution, on every backend,
    /// including duplicate queries inside the batch.
    #[test]
    fn execute_batch_matches_singles_and_counters() {
        for kind in [
            SpatialIndexKind::Grid,
            SpatialIndexKind::Quadtree,
            SpatialIndexKind::RTree,
        ] {
            let mut e = ExactExecutor::new(DOMAIN, kind);
            populate(&mut e);
            let batch = vec![
                RcDvq::spatial(Rect::new(10.0, 0.0, 42.0, 30.0)),
                RcDvq::keyword(vec![KeywordId(3), KeywordId(7)]),
                RcDvq::hybrid(Rect::new(0.0, 0.0, 50.0, 50.0), vec![KeywordId(1)]),
                // Duplicates: shared count, separate counter increments.
                RcDvq::spatial(Rect::new(10.0, 0.0, 42.0, 30.0)),
                RcDvq::keyword(vec![KeywordId(3), KeywordId(7)]),
                RcDvq::hybrid(Rect::new(0.0, 0.0, 100.0, 100.0), vec![KeywordId(9)]),
            ];
            e.reset_path_mix();
            let singles: Vec<u64> = batch.iter().map(|q| e.execute(q)).collect();
            let singles_mix = e.path_mix();
            e.reset_path_mix();
            let batched = e.execute_batch(&batch);
            assert_eq!(batched, singles, "{kind:?} answers diverged");
            assert_eq!(e.path_mix(), singles_mix, "{kind:?} counters diverged");
            assert_eq!(e.path_mix().total(), batch.len() as u64);
        }
    }

    #[test]
    fn duplicate_oid_insert_replaces() {
        let mut e = ExactExecutor::new(DOMAIN, SpatialIndexKind::Grid);
        e.insert(&obj(7, 10.0, 10.0, &[1]));
        e.insert(&obj(7, 90.0, 90.0, &[2]));
        assert_eq!(e.len(), 1);
        assert_eq!(
            e.execute(&RcDvq::spatial(Rect::new(0.0, 0.0, 20.0, 20.0))),
            0
        );
        assert_eq!(
            e.execute(&RcDvq::spatial(Rect::new(80.0, 80.0, 100.0, 100.0))),
            1
        );
        assert_eq!(e.execute(&RcDvq::keyword(vec![KeywordId(1)])), 0);
        assert_eq!(e.execute(&RcDvq::keyword(vec![KeywordId(2)])), 1);
    }

    #[test]
    fn removal_accounting_stays_consistent() {
        // Regression: the pre-store executor decremented `len` only when
        // the spatial side removed, while the inverted side removed
        // unconditionally — the two could drift. Length now comes from
        // the store, and a missing object is a clean no-op everywhere.
        let mut e = ExactExecutor::new(DOMAIN, SpatialIndexKind::Grid);
        let o = obj(1, 5.0, 5.0, &[3]);
        e.insert(&o);
        assert!(e.remove_by_oid(o.oid));
        assert!(!e.remove_by_oid(o.oid), "second removal must be a no-op");
        assert_eq!(e.len(), 0);
        assert_eq!(e.execute(&RcDvq::keyword(vec![KeywordId(3)])), 0);
        // Removing something never inserted is also a clean no-op.
        assert!(!e.remove_by_oid(ObjectId(999)));
        assert_eq!(e.len(), 0);
    }

    #[test]
    fn planner_routes_by_cost() {
        let mut e = ExactExecutor::new(DOMAIN, SpatialIndexKind::Grid);
        // 500 objects with a hot keyword crammed into one corner cell,
        // 5 objects with a rare keyword spread wide.
        for i in 0..500u64 {
            e.insert(&obj(i, 1.0, 1.0, &[0]));
        }
        for i in 500..505u64 {
            e.insert(&obj(i, (i % 100) as f64, 50.0, &[9]));
        }
        // Rare keyword over a huge range: posting list (5) beats the
        // spatial candidates (~505).
        let rare = RcDvq::hybrid(Rect::new(0.0, 0.0, 100.0, 100.0), vec![KeywordId(9)]);
        assert_eq!(e.plan(&rare), AccessPath::Inverted);
        // Hot keyword over a tiny range away from the cluster: the range
        // touches almost nothing, the posting list holds 500.
        let hot = RcDvq::hybrid(Rect::new(60.0, 60.0, 61.0, 61.0), vec![KeywordId(0)]);
        assert_eq!(e.plan(&hot), AccessPath::Spatial);
        // Both paths agree on the answer regardless of routing.
        assert_eq!(e.execute(&rare), 5);
        assert_eq!(e.execute(&hot), 0);
        let mix = e.path_mix();
        assert_eq!(
            mix,
            PathMix {
                spatial: 1,
                inverted: 1
            }
        );
        assert_eq!(mix.total(), 2);
        e.reset_path_mix();
        assert_eq!(e.path_mix().total(), 0);
    }

    #[test]
    fn clear_resets() {
        let mut e = ExactExecutor::new(DOMAIN, SpatialIndexKind::Grid);
        populate(&mut e);
        e.clear();
        assert!(e.is_empty());
        assert_eq!(e.execute(&RcDvq::keyword(vec![KeywordId(1)])), 0);
    }
}
