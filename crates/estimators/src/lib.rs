//! # estimators — selectivity estimators for spatio-textual streams
//!
//! The six estimators LATEST switches among (paper §IV and §VI-A), all
//! implemented from scratch behind one trait:
//!
//! | name  | structure | paper role |
//! |-------|-----------|------------|
//! | `H4096` | [`histogram2d::Histogram2D`] — 2D equi-width grid of counts | fastest; spatial-only statistics |
//! | `RSL`  | [`reservoir::ReservoirList`] — Algorithm-R reservoir sample | accurate, scan-heavy |
//! | `RSH`  | [`reservoir_hash::ReservoirHash`] — reservoir indexed by a 2D grid | default estimator; accurate with moderate latency |
//! | `AASP` | [`aasp::AaspTree`] — adaptive space-partition tree + KMV keyword synopses | hierarchical; highest latency |
//! | `FFN`  | [`ffn::FfnEstimator`] — workload-driven feed-forward network | learned baseline |
//! | `SPN`  | [`spn::SpnEstimator`] — data-driven sum-product network | learned baseline, costly to keep current |
//!
//! All estimators implement [`SelectivityEstimator`]: they ingest window
//! insertions/evictions, answer [`RcDvq`](geostream::RcDvq) estimates, and
//! report their memory footprint. [`EstimatorKind`] is the label space of
//! LATEST's Hoeffding tree; [`build_estimator`] is the factory the
//! estimator adaptor uses when pre-filling a replacement.

pub mod aasp;
pub mod asp_tree;
pub mod equidepth;
pub mod error;
pub mod ffn;
pub mod histogram2d;
pub mod kmv;
pub mod nn;
pub mod reservoir;
pub mod reservoir_hash;
pub mod spn;
pub mod store;
mod traits;
pub mod windowed;

pub use error::EstimateError;
pub use traits::{
    build_estimator, try_build_estimator, BoxedEstimator, EstimatorConfig, EstimatorKind,
    SelectivityEstimator,
};
