//! Time-biased windowed sampler — the "windowed lists … changes to
//! replacement policies" variation of the sampling family (§IV).
//!
//! Where algorithm R keeps a *uniform* sample of the window, this sampler
//! biases retention toward recency: each arriving object receives a
//! priority `u^(1/w)` with `u ~ U(0,1)` and weight `w` growing
//! exponentially in arrival order (the classic A-ES / Efraimidis–Spirakis
//! weighted reservoir), so newer objects win slots more often. The window
//! population estimate still comes from exact insert/remove accounting,
//! but the matching fraction is measured on a recency-tilted sample —
//! useful when the workload cares more about the most recent sub-window
//! than the whole `S_T`.
//!
//! Objects live in a shared [`SampleStore`] (priority keys stay in a
//! parallel column maintained in lockstep with the store's swap-removes),
//! so estimates run on the store's vectorized/posting kernels.
//!
//! Ships as a library extension (the paper's pool is pluggable, §IV); the
//! pool itself keeps the six canonical estimators.

use crate::store::SampleStore;
use crate::traits::{EstimatorConfig, EstimatorKind, SelectivityEstimator};
use geostream::{GeoTextObject, RcDvq};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Recency half-life, measured in arrivals: an object this many arrivals
/// old is half as likely to be retained as a fresh one.
const HALF_LIFE_ARRIVALS: f64 = 20_000.0;

/// An exponentially recency-biased reservoir sampler.
pub struct WindowedSampler {
    capacity: usize,
    store: SampleStore,
    /// Priority key per slot, parallel to the store's columns — a soft
    /// heap would do; at estimator-scale capacities a linear min search on
    /// replacement is cheap and simple.
    keys: Vec<f64>,
    arrivals: u64,
    population: u64,
    rng: StdRng,
}

impl WindowedSampler {
    /// Builds an empty sampler per `config` (capacity scales with the
    /// memory budget).
    pub fn new(config: &EstimatorConfig) -> Self {
        let capacity = config.scaled_reservoir();
        WindowedSampler {
            capacity,
            store: SampleStore::with_capacity(capacity.min(1 << 20), true),
            keys: Vec::with_capacity(capacity.min(1 << 20)),
            arrivals: 0,
            population: 0,
            rng: StdRng::seed_from_u64(config.seed ^ 0x71de),
        }
    }

    /// Current number of sampled objects.
    pub fn sample_len(&self) -> usize {
        self.store.len()
    }

    /// The backing sample store (read access for diagnostics and tests).
    pub fn store(&self) -> &SampleStore {
        &self.store
    }

    /// Priority key for the `i`-th arrival: `u^(1/w)` with
    /// `w = 2^(i / half_life)`. Larger keys win. Computed in log space to
    /// dodge overflow: `key = ln(u) / w` (negative; closer to 0 wins), so
    /// we store `ln(u) / w` and keep the *largest*.
    fn key(&mut self) -> f64 {
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let w = (self.arrivals as f64 / HALF_LIFE_ARRIVALS * std::f64::consts::LN_2).exp();
        u.ln() / w
    }
}

impl SelectivityEstimator for WindowedSampler {
    // Reported under the RSL family: it is a sampling-list variant, and
    // the canonical pool never constructs this type.
    fn kind(&self) -> EstimatorKind {
        EstimatorKind::Rsl
    }

    fn insert(&mut self, obj: &GeoTextObject) {
        self.population += 1;
        self.arrivals += 1;
        let key = self.key();
        if self.store.len() < self.capacity {
            self.store.push(obj);
            self.keys.push(key);
            return;
        }
        // Replace the minimum-key entry if ours beats it.
        let (min_slot, &min_key) = self
            .keys
            .iter()
            .enumerate()
            // LINT-ALLOW(no-panic): priority keys are finite by construction, so partial_cmp succeeds
            .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite keys"))
            // LINT-ALLOW(no-panic): the sample is non-empty whenever it has reached capacity
            .expect("sample non-empty at capacity");
        if key > min_key {
            self.store.replace(min_slot as u32, obj);
            self.keys[min_slot] = key;
        }
    }

    fn remove(&mut self, obj: &GeoTextObject) {
        self.population = self.population.saturating_sub(1);
        if let Some(slot) = self.store.remove(obj.oid) {
            // Mirror the store's swap-remove in the key column.
            self.keys.swap_remove(slot as usize);
        }
    }

    fn estimate(&self, query: &RcDvq) -> f64 {
        if self.store.is_empty() {
            return 0.0;
        }
        let matches = self.store.count(query);
        matches as f64 / self.store.len() as f64 * self.population as f64
    }

    fn memory_bytes(&self) -> usize {
        self.store.memory_bytes()
            + self.keys.len() * std::mem::size_of::<f64>()
            + std::mem::size_of::<Self>()
    }

    fn clear(&mut self) {
        self.store.clear();
        self.keys.clear();
        self.arrivals = 0;
        self.population = 0;
    }

    fn population(&self) -> u64 {
        self.population
    }

    /// Audits the backing store, plus the key column: one finite priority
    /// key per sampled slot, sample within capacity.
    #[cfg(feature = "debug-invariants")]
    fn audit(&self) -> Result<(), geostream::AuditError> {
        use geostream::audit::ensure;
        self.store.audit()?;
        ensure(
            self.keys.len() == self.store.len() && self.store.len() <= self.capacity,
            "WindowedSampler",
            "key-column",
            || {
                format!(
                    "{} keys for {} slots (capacity {})",
                    self.keys.len(),
                    self.store.len(),
                    self.capacity
                )
            },
        )?;
        ensure(
            self.keys.iter().all(|k| k.is_finite()),
            "WindowedSampler",
            "key-column",
            || "non-finite priority key".into(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geostream::{KeywordId, ObjectId, Point, Rect, Timestamp};

    fn config(cap: usize) -> EstimatorConfig {
        EstimatorConfig {
            domain: Rect::new(0.0, 0.0, 100.0, 100.0),
            reservoir_capacity: cap,
            ..EstimatorConfig::default()
        }
    }

    fn obj(id: u64, x: f64, kws: &[u32]) -> GeoTextObject {
        GeoTextObject::new(
            ObjectId(id),
            Point::new(x, 1.0),
            kws.iter().copied().map(KeywordId).collect(),
            Timestamp(id),
        )
    }

    #[test]
    fn exhaustive_sample_is_exact() {
        let mut w = WindowedSampler::new(&config(1_000));
        for i in 0..200 {
            let x = if i < 80 { 10.0 } else { 60.0 };
            w.insert(&obj(i, x, &[i as u32 % 4]));
        }
        let q = RcDvq::spatial(Rect::new(0.0, 0.0, 30.0, 30.0));
        assert!((w.estimate(&q) - 80.0).abs() < 1e-9);
        let qk = RcDvq::keyword(vec![KeywordId(1)]);
        assert!((w.estimate(&qk) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn capacity_is_respected() {
        let mut w = WindowedSampler::new(&config(64));
        for i in 0..5_000 {
            w.insert(&obj(i, 1.0, &[]));
        }
        assert_eq!(w.sample_len(), 64);
        assert_eq!(w.population(), 5_000);
    }

    #[test]
    fn sample_is_recency_biased() {
        // Stream far beyond capacity: the retained ids should skew to the
        // high (recent) end much harder than a uniform sample would.
        let mut w = WindowedSampler::new(&config(200));
        let n = 100_000u64;
        for i in 0..n {
            w.insert(&obj(i, 1.0, &[]));
        }
        let mean_id: f64 =
            w.store.oids().iter().map(|o| o.0 as f64).sum::<f64>() / w.sample_len() as f64;
        // Uniform sampling would center at 50k; recency bias pushes it
        // well past.
        assert!(
            mean_id > 65_000.0,
            "sample not recency biased: mean id {mean_id}"
        );
    }

    #[test]
    fn estimates_track_recent_distribution_shift() {
        // First 50k objects at x=10, next 50k at x=60: a recency-biased
        // sampler over-represents the new regime relative to uniform.
        let mut w = WindowedSampler::new(&config(400));
        let n = 100_000u64;
        for i in 0..n {
            let x = if i < n / 2 { 10.0 } else { 60.0 };
            w.insert(&obj(i, x, &[]));
        }
        let recent = RcDvq::spatial(Rect::new(50.0, 0.0, 70.0, 10.0));
        let est = w.estimate(&recent);
        // True count is 50k; the biased sampler should estimate above it.
        assert!(
            est > 55_000.0,
            "recency tilt missing: estimated {est} of 50000 actual"
        );
    }

    #[test]
    fn removal_and_clear() {
        let mut w = WindowedSampler::new(&config(100));
        let objects: Vec<_> = (0..50).map(|i| obj(i, 1.0, &[])).collect();
        for o in &objects {
            w.insert(o);
        }
        for o in objects.iter().take(20) {
            w.remove(o);
        }
        assert_eq!(w.population(), 30);
        assert_eq!(w.sample_len(), 30);
        assert_eq!(w.keys.len(), 30);
        // Slot map stays exact under swap-removes.
        for (slot, oid) in w.store.oids().iter().enumerate() {
            assert_eq!(w.store.slot_of(*oid), Some(slot as u32));
        }
        w.clear();
        assert_eq!(w.population(), 0);
        assert_eq!(w.sample_len(), 0);
        assert_eq!(
            w.estimate(&RcDvq::spatial(Rect::new(0.0, 0.0, 9.0, 9.0))),
            0.0
        );
    }
}
