//! Reservoir sampling list (the paper's `RSL`), Vitter's *algorithm R*.
//!
//! A fixed-capacity uniform sample of the stream: the first `N` arrivals
//! fill the list; afterwards the `i`-th arrival replaces a random slot with
//! probability `N/i`. Window eviction retracts expired samples, so the
//! reservoir stays an (approximately) uniform sample of the *live window*.
//!
//! An estimate counts matching samples and scales the fraction by the
//! window population. The sample lives in a shared [`SampleStore`]:
//! spatial predicates stream the coordinate columns through the chunked
//! kernel, keyword predicates answer from the sample-local posting index,
//! and hybrid predicates take the cost-fused path — the scan the paper
//! charges RSL for is gone from the query path.

use crate::store::SampleStore;
use crate::traits::{EstimatorConfig, EstimatorKind, SelectivityEstimator};
use geostream::{GeoTextObject, RcDvq};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Algorithm-R reservoir sample of the window.
pub struct ReservoirList {
    capacity: usize,
    store: SampleStore,
    /// Arrivals seen since the reservoir was last (re)started; drives the
    /// algorithm-R replacement probability.
    seen: u64,
    /// Live window population (inserts − removes).
    population: u64,
    rng: StdRng,
}

impl ReservoirList {
    /// Builds an empty reservoir per `config` (capacity scales with the
    /// memory budget).
    pub fn new(config: &EstimatorConfig) -> Self {
        let capacity = config.scaled_reservoir();
        ReservoirList {
            capacity,
            store: SampleStore::with_capacity(capacity.min(1 << 20), true),
            seen: 0,
            population: 0,
            rng: StdRng::seed_from_u64(config.seed ^ 0x5151),
        }
    }

    /// The configured sample capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of sampled objects.
    pub fn sample_len(&self) -> usize {
        self.store.len()
    }

    /// The backing sample store (read access for diagnostics and tests).
    pub fn store(&self) -> &SampleStore {
        &self.store
    }

    /// Counts sample objects matching `query` and scales to the window
    /// population.
    fn scaled_matches(&self, query: &RcDvq) -> f64 {
        if self.store.is_empty() {
            return 0.0;
        }
        let matches = self.store.count(query);
        matches as f64 / self.store.len() as f64 * self.population as f64
    }

    fn place(&mut self, obj: &GeoTextObject, slot: usize) {
        if slot == self.store.len() {
            self.store.push(obj);
        } else {
            self.store.replace(slot as u32, obj);
        }
    }
}

impl SelectivityEstimator for ReservoirList {
    fn kind(&self) -> EstimatorKind {
        EstimatorKind::Rsl
    }

    fn insert(&mut self, obj: &GeoTextObject) {
        self.population += 1;
        self.seen += 1;
        if self.store.len() < self.capacity {
            self.place(obj, self.store.len());
        } else {
            // Algorithm R: replace a random slot with probability N/seen.
            let j = self.rng.gen_range(0..self.seen);
            if (j as usize) < self.capacity {
                self.place(obj, j as usize);
            }
        }
    }

    fn remove(&mut self, obj: &GeoTextObject) {
        self.population = self.population.saturating_sub(1);
        self.store.remove(obj.oid);
    }

    fn insert_batch(&mut self, objs: &[GeoTextObject]) {
        self.population += objs.len() as u64;
        let mut rest = objs;
        // Fill phase: below capacity, algorithm R places directly and draws
        // no random numbers — hoist that branch out of the hot loop.
        if self.store.len() < self.capacity {
            let take = (self.capacity - self.store.len()).min(rest.len());
            for obj in &rest[..take] {
                self.seen += 1;
                self.store.push(obj);
            }
            rest = &rest[take..];
        }
        // Steady state: same draw per arrival, in the same order, as
        // one-at-a-time insertion.
        for obj in rest {
            self.seen += 1;
            let j = self.rng.gen_range(0..self.seen);
            if (j as usize) < self.capacity {
                self.place(obj, j as usize);
            }
        }
    }

    fn remove_batch(&mut self, objs: &[GeoTextObject]) {
        self.population = self.population.saturating_sub(objs.len() as u64);
        for obj in objs {
            self.store.remove(obj.oid);
        }
    }

    fn estimate(&self, query: &RcDvq) -> f64 {
        self.scaled_matches(query)
    }

    /// Batch variant: one [`SampleStore::count_many`] call shares the
    /// column passes and posting merges across the batch. Every kernel is
    /// an exact count and the scaling expression is identical, so each
    /// result is bit-equal to [`ReservoirList::estimate`] on that query.
    fn estimate_batch(&self, queries: &[RcDvq]) -> Vec<f64> {
        if self.store.is_empty() {
            return vec![0.0; queries.len()];
        }
        let n = self.store.len() as f64;
        self.store
            .count_many(queries)
            .into_iter()
            .map(|matches| matches as f64 / n * self.population as f64)
            .collect()
    }

    fn memory_bytes(&self) -> usize {
        self.store.memory_bytes() + std::mem::size_of::<Self>()
    }

    fn clear(&mut self) {
        self.store.clear();
        self.seen = 0;
        self.population = 0;
    }

    fn population(&self) -> u64 {
        self.population
    }

    /// Audits the backing store, plus the reservoir bounds: the sample
    /// never exceeds its capacity, the live window population, or the
    /// arrivals seen.
    #[cfg(feature = "debug-invariants")]
    fn audit(&self) -> Result<(), geostream::AuditError> {
        use geostream::audit::ensure;
        self.store.audit()?;
        ensure(
            self.store.len() <= self.capacity
                && self.store.len() as u64 <= self.population
                && self.store.len() as u64 <= self.seen,
            "ReservoirList",
            "sample-bounds",
            || {
                format!(
                    "sample {} vs capacity {} population {} seen {}",
                    self.store.len(),
                    self.capacity,
                    self.population,
                    self.seen
                )
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geostream::{KeywordId, ObjectId, Point, Rect, Timestamp};

    fn config(cap: usize) -> EstimatorConfig {
        EstimatorConfig {
            reservoir_capacity: cap,
            ..EstimatorConfig::default()
        }
    }

    fn obj(id: u64, x: f64, y: f64, kws: &[u32]) -> GeoTextObject {
        GeoTextObject::new(
            ObjectId(id),
            Point::new(x, y),
            kws.iter().copied().map(KeywordId).collect(),
            Timestamp::ZERO,
        )
    }

    #[test]
    fn fills_to_capacity_then_samples() {
        let mut r = ReservoirList::new(&config(50));
        for i in 0..200 {
            r.insert(&obj(i, 0.0, 0.0, &[]));
        }
        assert_eq!(r.sample_len(), 50);
        assert_eq!(r.population(), 200);
    }

    #[test]
    fn exact_when_sample_holds_everything() {
        let mut r = ReservoirList::new(&config(1_000));
        for i in 0..100 {
            let x = if i < 30 { 1.0 } else { 50.0 };
            r.insert(&obj(i, x, 1.0, &[i as u32 % 5]));
        }
        let q = RcDvq::spatial(Rect::new(0.0, 0.0, 10.0, 10.0));
        assert!((r.estimate(&q) - 30.0).abs() < 1e-9);
        let qk = RcDvq::keyword(vec![KeywordId(0)]);
        assert!((r.estimate(&qk) - 20.0).abs() < 1e-9);
        let qh = RcDvq::hybrid(Rect::new(0.0, 0.0, 10.0, 10.0), vec![KeywordId(0)]);
        assert!((r.estimate(&qh) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn estimate_scales_to_population() {
        let mut r = ReservoirList::new(&config(100));
        // 10_000 objects, 50% in the query range.
        for i in 0..10_000 {
            let x = if i % 2 == 0 { 1.0 } else { 50.0 };
            r.insert(&obj(i, x, 1.0, &[]));
        }
        let q = RcDvq::spatial(Rect::new(0.0, 0.0, 10.0, 10.0));
        let est = r.estimate(&q);
        assert!(
            (est - 5_000.0).abs() < 1_500.0,
            "estimate too far from truth: {est}"
        );
    }

    #[test]
    fn sample_is_unbiased_ish() {
        // Insert 0..10_000; the sample mean of ids should be near 5_000.
        let mut r = ReservoirList::new(&config(500));
        for i in 0..10_000 {
            r.insert(&obj(i, 0.0, 0.0, &[]));
        }
        let mean: f64 =
            r.store.oids().iter().map(|o| o.0 as f64).sum::<f64>() / r.sample_len() as f64;
        assert!((mean - 5_000.0).abs() < 600.0, "biased sample mean: {mean}");
    }

    #[test]
    fn remove_retracts_sampled_objects() {
        let mut r = ReservoirList::new(&config(100));
        let kept = obj(1, 1.0, 1.0, &[]);
        let evicted = obj(2, 1.0, 1.0, &[]);
        r.insert(&kept);
        r.insert(&evicted);
        r.remove(&evicted);
        assert_eq!(r.sample_len(), 1);
        assert_eq!(r.population(), 1);
        let q = RcDvq::spatial(Rect::new(0.0, 0.0, 2.0, 2.0));
        assert!((r.estimate(&q) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn remove_of_unsampled_object_only_drops_population() {
        let mut r = ReservoirList::new(&config(10));
        for i in 0..1_000 {
            r.insert(&obj(i, 0.0, 0.0, &[]));
        }
        let pop_before = r.population();
        let len_before = r.sample_len();
        // Find an id not in the sample.
        let sampled: std::collections::HashSet<u64> = r.store.oids().iter().map(|o| o.0).collect();
        let missing = (0..1_000).find(|i| !sampled.contains(i)).unwrap();
        r.remove(&obj(missing, 0.0, 0.0, &[]));
        assert_eq!(r.population(), pop_before - 1);
        assert_eq!(r.sample_len(), len_before);
    }

    #[test]
    fn empty_reservoir_estimates_zero() {
        let r = ReservoirList::new(&config(10));
        let q = RcDvq::spatial(Rect::new(0.0, 0.0, 1.0, 1.0));
        assert_eq!(r.estimate(&q), 0.0);
    }

    #[test]
    fn clear_resets_everything() {
        let mut r = ReservoirList::new(&config(10));
        for i in 0..100 {
            r.insert(&obj(i, 0.0, 0.0, &[]));
        }
        r.clear();
        assert_eq!(r.sample_len(), 0);
        assert_eq!(r.population(), 0);
        assert!(r.memory_bytes() > 0); // struct overhead remains
    }

    #[test]
    fn estimate_batch_is_bit_equal_to_singles() {
        let mut r = ReservoirList::new(&config(64));
        for i in 0..2_000 {
            r.insert(&obj(i, (i % 97) as f64, (i % 89) as f64, &[i as u32 % 6]));
        }
        let batch = vec![
            RcDvq::spatial(Rect::new(0.0, 0.0, 40.0, 40.0)),
            RcDvq::spatial(Rect::new(10.0, 10.0, 90.0, 20.0)),
            RcDvq::keyword(vec![KeywordId(2)]),
            RcDvq::keyword(vec![KeywordId(1), KeywordId(5)]),
            RcDvq::hybrid(
                Rect::new(0.0, 0.0, 50.0, 80.0),
                vec![KeywordId(1), KeywordId(5)],
            ),
        ];
        let many = r.estimate_batch(&batch);
        for (q, b) in batch.iter().zip(many) {
            assert_eq!(b.to_bits(), r.estimate(q).to_bits(), "diverged on {q:?}");
        }
    }

    #[test]
    fn slots_stay_consistent_under_churn() {
        let mut r = ReservoirList::new(&config(50));
        let mut live: Vec<GeoTextObject> = Vec::new();
        for i in 0..2_000u64 {
            let o = obj(i, 0.0, 0.0, &[]);
            r.insert(&o);
            live.push(o);
            if live.len() > 300 {
                let victim = live.remove(0);
                r.remove(&victim);
            }
        }
        // Every slot-map entry must point at the object that claims it.
        for (slot, oid) in r.store.oids().iter().enumerate() {
            assert_eq!(r.store.slot_of(*oid), Some(slot as u32));
        }
    }
}
