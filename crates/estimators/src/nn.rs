//! Minimal dense neural-network substrate for the FFN baseline.
//!
//! Implemented from scratch (the sanctioned crate list has no ML library):
//! dense layers with unipolar sigmoid activations, mean-squared-error loss,
//! and SGD with momentum — the exact hyperparameter family the paper's
//! WEKA FFN uses (learning rate 0.3, momentum 0.2, unipolar sigmoid).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Unipolar (logistic) sigmoid.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// One fully connected layer with sigmoid activation.
#[derive(Debug, Clone)]
struct DenseLayer {
    /// `out × in` weight matrix, row-major.
    weights: Vec<f64>,
    biases: Vec<f64>,
    /// Momentum buffers mirroring `weights` / `biases`.
    w_vel: Vec<f64>,
    b_vel: Vec<f64>,
    inputs: usize,
    outputs: usize,
    /// Output layer is linear (no sigmoid) for regression targets.
    linear: bool,
}

impl DenseLayer {
    fn new(inputs: usize, outputs: usize, linear: bool, rng: &mut StdRng) -> Self {
        // Xavier-ish init keeps sigmoids out of saturation at start.
        let scale = (1.0 / inputs as f64).sqrt();
        DenseLayer {
            weights: (0..inputs * outputs)
                .map(|_| rng.gen_range(-scale..scale))
                .collect(),
            biases: vec![0.0; outputs],
            w_vel: vec![0.0; inputs * outputs],
            b_vel: vec![0.0; outputs],
            inputs,
            outputs,
            linear,
        }
    }

    fn forward(&self, input: &[f64], output: &mut Vec<f64>) {
        debug_assert_eq!(input.len(), self.inputs);
        output.clear();
        for o in 0..self.outputs {
            let row = &self.weights[o * self.inputs..(o + 1) * self.inputs];
            let z: f64 = row.iter().zip(input).map(|(w, x)| w * x).sum::<f64>() + self.biases[o];
            output.push(if self.linear { z } else { sigmoid(z) });
        }
    }

    /// Backpropagates `delta_out` (∂L/∂activation of this layer), applying
    /// an SGD-with-momentum update, and writes ∂L/∂activation of the
    /// previous layer into `din` (a reused scratch buffer — no per-step
    /// allocation).
    fn backward(
        &mut self,
        input: &[f64],
        output: &[f64],
        delta_out: &[f64],
        din: &mut Vec<f64>,
        lr: f64,
        momentum: f64,
    ) {
        din.clear();
        din.resize(self.inputs, 0.0);
        for o in 0..self.outputs {
            // ∂L/∂z: for sigmoid layers scale by σ'(z) = y(1−y).
            let (d, y) = (delta_out[o], output[o]);
            let dz_o = if self.linear { d } else { d * y * (1.0 - y) };
            for i in 0..self.inputs {
                let idx = o * self.inputs + i;
                din[i] += self.weights[idx] * dz_o;
                let grad = dz_o * input[i];
                self.w_vel[idx] = momentum * self.w_vel[idx] - lr * grad;
                self.weights[idx] += self.w_vel[idx];
            }
            self.b_vel[o] = momentum * self.b_vel[o] - lr * dz_o;
            self.biases[o] += self.b_vel[o];
        }
    }
}

/// Reused activation buffers for read-only (`&self`) inference.
#[derive(Debug, Clone, Default)]
struct InferScratch {
    cur: Vec<f64>,
    next: Vec<f64>,
}

/// A small multilayer perceptron: sigmoid hidden layers, linear output,
/// trained online with SGD + momentum on squared error.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<DenseLayer>,
    lr: f64,
    momentum: f64,
    /// Reused activation buffers, one per layer boundary.
    activations: Vec<Vec<f64>>,
    /// Reused backprop delta buffers (current layer / previous layer).
    delta: Vec<f64>,
    delta_prev: Vec<f64>,
    /// Inference buffers behind a `RefCell` so `&self` estimate paths run
    /// without heap allocation.
    scratch: std::cell::RefCell<InferScratch>,
}

impl Mlp {
    /// Builds an MLP with the given layer widths, e.g. `[8, 16, 1]`.
    ///
    /// # Panics
    /// Panics if fewer than two widths are given.
    pub fn new(widths: &[usize], lr: f64, momentum: f64, seed: u64) -> Self {
        assert!(widths.len() >= 2, "need at least input and output widths");
        let mut rng = StdRng::seed_from_u64(seed);
        let layers: Vec<DenseLayer> = widths
            .windows(2)
            .enumerate()
            .map(|(i, w)| DenseLayer::new(w[0], w[1], i == widths.len() - 2, &mut rng))
            .collect();
        let activations = widths.iter().map(|&w| Vec::with_capacity(w)).collect();
        // LINT-ALLOW(no-panic): the width list always includes the input and output layers, so it is non-empty
        let max_width = widths.iter().copied().max().expect("non-empty widths");
        Mlp {
            layers,
            lr,
            momentum,
            activations,
            delta: Vec::with_capacity(max_width),
            delta_prev: Vec::with_capacity(max_width),
            scratch: std::cell::RefCell::new(InferScratch {
                cur: Vec::with_capacity(max_width),
                next: Vec::with_capacity(max_width),
            }),
        }
    }

    /// Input width of the network.
    pub fn input_width(&self) -> usize {
        self.layers[0].inputs
    }

    /// Runs a forward pass, returning the output vector.
    pub fn forward(&mut self, input: &[f64]) -> &[f64] {
        self.activations[0].clear();
        self.activations[0].extend_from_slice(input);
        for (i, layer) in self.layers.iter().enumerate() {
            // Split borrow: activations[i] is input, activations[i+1] output.
            let (before, after) = self.activations.split_at_mut(i + 1);
            layer.forward(&before[i], &mut after[0]);
        }
        // LINT-ALLOW(no-panic): the network is constructed with at least one layer, so activations is non-empty
        self.activations.last().expect("has layers")
    }

    /// Fills `scratch.cur` with the network output for `input` — shared
    /// engine of the `&self` inference paths; allocation-free after the
    /// buffers warm up.
    fn run_inference(&self, input: &[f64], scratch: &mut InferScratch) {
        scratch.cur.clear();
        scratch.cur.extend_from_slice(input);
        for layer in &self.layers {
            layer.forward(&scratch.cur, &mut scratch.next);
            std::mem::swap(&mut scratch.cur, &mut scratch.next);
        }
    }

    /// Immutable forward pass — for read-only callers (e.g. `estimate`
    /// paths that only hold `&self`). Allocates the returned vector; use
    /// [`Mlp::infer_one`] on hot paths.
    pub fn infer(&self, input: &[f64]) -> Vec<f64> {
        let mut scratch = self.scratch.borrow_mut();
        self.run_inference(input, &mut scratch);
        scratch.cur.clone()
    }

    /// Immutable forward pass returning the first output — zero heap
    /// allocation (reuses the internal scratch buffers), bit-identical to
    /// [`Mlp::forward`] / [`Mlp::infer`].
    pub fn infer_one(&self, input: &[f64]) -> f64 {
        let mut scratch = self.scratch.borrow_mut();
        self.run_inference(input, &mut scratch);
        scratch.cur[0]
    }

    /// One online SGD step on `(input, target)`. Returns the squared error
    /// before the update.
    pub fn train(&mut self, input: &[f64], target: &[f64]) -> f64 {
        self.forward(input);
        // LINT-ALLOW(no-panic): the network is constructed with at least one layer, so activations is non-empty
        let output = self.activations.last().expect("has layers");
        debug_assert_eq!(output.len(), target.len());
        // Reused delta buffers: no clones of the activation vectors (the
        // layer borrow is disjoint from the activation borrow) and no
        // per-step allocation.
        let mut delta = std::mem::take(&mut self.delta);
        let mut delta_prev = std::mem::take(&mut self.delta_prev);
        delta.clear();
        delta.extend(output.iter().zip(target).map(|(y, t)| y - t));
        let loss: f64 = delta.iter().map(|d| d * d).sum();
        for (i, layer) in self.layers.iter_mut().enumerate().rev() {
            layer.backward(
                &self.activations[i],
                &self.activations[i + 1],
                &delta,
                &mut delta_prev,
                self.lr,
                self.momentum,
            );
            std::mem::swap(&mut delta, &mut delta_prev);
        }
        self.delta = delta;
        self.delta_prev = delta_prev;
        loss
    }

    /// Approximate heap bytes of parameters and buffers.
    pub fn memory_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(|l| (l.weights.len() * 2 + l.biases.len() * 2) * std::mem::size_of::<f64>())
            .sum::<usize>()
            + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_range_and_midpoint() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(10.0) > 0.99);
        assert!(sigmoid(-10.0) < 0.01);
    }

    #[test]
    fn forward_has_output_width() {
        let mut mlp = Mlp::new(&[3, 5, 2], 0.3, 0.2, 1);
        let out = mlp.forward(&[0.1, 0.2, 0.3]);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn learns_linear_function() {
        // y = 2a − b, learnable by the linear output layer alone.
        let mut mlp = Mlp::new(&[2, 4, 1], 0.1, 0.2, 7);
        let mut s = 13u64;
        for _ in 0..8_000 {
            s = s.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let a = ((s >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0;
            s = s.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let b = ((s >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0;
            mlp.train(&[a, b], &[2.0 * a - b]);
        }
        for &(a, b) in &[(0.5, 0.25), (-0.3, 0.6), (0.0, 0.0)] {
            let y = mlp.forward(&[a, b])[0];
            assert!(
                (y - (2.0 * a - b)).abs() < 0.15,
                "bad fit at ({a},{b}): {y}"
            );
        }
    }

    #[test]
    fn learns_xor() {
        // Requires the hidden layer; classic sanity check for backprop.
        let mut mlp = Mlp::new(&[2, 8, 1], 0.3, 0.2, 42);
        let cases = [
            ([0.0, 0.0], 0.0),
            ([0.0, 1.0], 1.0),
            ([1.0, 0.0], 1.0),
            ([1.0, 1.0], 0.0),
        ];
        for _ in 0..6_000 {
            for (x, t) in &cases {
                mlp.train(x, &[*t]);
            }
        }
        for (x, t) in &cases {
            let y = mlp.forward(x)[0];
            assert!((y - t).abs() < 0.3, "xor({x:?}) = {y}, want {t}");
        }
    }

    #[test]
    fn training_reduces_loss() {
        let mut mlp = Mlp::new(&[1, 6, 1], 0.3, 0.2, 3);
        let first = mlp.train(&[0.7], &[0.9]);
        let mut last = first;
        for _ in 0..200 {
            last = mlp.train(&[0.7], &[0.9]);
        }
        assert!(last < first * 0.1, "loss did not shrink: {first} → {last}");
    }

    #[test]
    fn infer_paths_bit_identical_to_forward() {
        // Train a bit so weights are non-trivial, then every inference
        // path must agree to the last bit on a fixed seed.
        let mut mlp = Mlp::new(&[3, 7, 2], 0.3, 0.2, 11);
        for step in 0..50 {
            let t = step as f64 / 50.0;
            mlp.train(&[t, 1.0 - t, 0.5], &[t, t * t]);
        }
        let input = [0.21, -0.4, 0.87];
        let by_forward = mlp.forward(&input).to_vec();
        let by_infer = mlp.infer(&input);
        let one = mlp.infer_one(&input);
        assert_eq!(by_forward, by_infer);
        assert_eq!(by_forward[0].to_bits(), one.to_bits());
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = Mlp::new(&[2, 3, 1], 0.3, 0.2, 5);
        let mut b = Mlp::new(&[2, 3, 1], 0.3, 0.2, 5);
        assert_eq!(a.forward(&[0.1, 0.9]), b.forward(&[0.1, 0.9]));
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn rejects_single_width() {
        let _ = Mlp::new(&[3], 0.3, 0.2, 1);
    }
}
