//! Augmented adaptive space-partition tree (the paper's `AASP`, after Wang
//! et al., VLDB 2014).
//!
//! An [`AspTree`] whose nodes are *augmented*
//! with local keyword statistics, plus a global KMV synopsis of distinct
//! keywords:
//!
//! * each node keeps a **hashed keyword-bucket table** — `B` counters of
//!   how many local objects carry at least one keyword hashing into each
//!   bucket. This is the bounded-size synopsis that captures "local
//!   correlations" between a region and its vocabulary; hash collisions
//!   between unrelated terms are its intrinsic estimation error (the
//!   reason AASP's accuracy trails the samplers in the paper);
//! * a global [`KmvSynopsis`] estimates the
//!   distinct-keyword cardinality for diagnostics and collision pricing.
//!
//! A keyword predicate `W` is evaluated per leaf as the bucket-count sum
//! over `W`'s distinct buckets, capped by the leaf's object count, then
//! scaled by spatial coverage. Because all statistics live at the leaves
//! ("tightly couples spatial and keyword predicates", §II), **every**
//! query — including pure spatial ones — pays a per-leaf walk with no
//! aggregate shortcuts, and the split threshold is small: AASP is by
//! construction the highest-latency estimator of the pool, exactly its
//! profile in the paper's experiments.

use crate::asp_tree::{AspNode, AspTree};
use crate::kmv::KmvSynopsis;
use crate::traits::{EstimatorConfig, EstimatorKind, SelectivityEstimator};
use geostream::{GeoTextObject, KeywordId, QueryType, RcDvq};

/// Keyword hash buckets per node.
const BUCKETS: usize = 64;
/// KMV synopsis size.
const KMV_K: usize = 512;
/// Depth cap of the spatial tree.
const MAX_DEPTH: u16 = 14;

/// Maps a keyword onto its bucket (SplitMix-style avalanche, folded).
fn bucket_of(kw: KeywordId) -> usize {
    let mut z = (kw.0 as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    (z ^ (z >> 27)) as usize % BUCKETS
}

/// Per-node keyword-bucket counters: `counts[b]` = objects at this node
/// carrying at least one keyword in bucket `b`.
#[derive(Debug, Clone)]
pub struct BucketCounts {
    counts: Box<[f64; BUCKETS]>,
}

impl Default for BucketCounts {
    fn default() -> Self {
        BucketCounts {
            counts: Box::new([0.0; BUCKETS]),
        }
    }
}

impl BucketCounts {
    /// Registers one object's keyword set (each distinct bucket counts the
    /// object once).
    pub fn add_object(&mut self, keywords: &[KeywordId]) {
        let mut hit = [false; BUCKETS];
        for &kw in keywords {
            hit[bucket_of(kw)] = true;
        }
        for (b, &h) in hit.iter().enumerate() {
            if h {
                self.counts[b] += 1.0;
            }
        }
    }

    /// Retracts one object's keyword set.
    pub fn retract_object(&mut self, keywords: &[KeywordId]) {
        let mut hit = [false; BUCKETS];
        for &kw in keywords {
            hit[bucket_of(kw)] = true;
        }
        for (b, &h) in hit.iter().enumerate() {
            if h {
                self.counts[b] = (self.counts[b] - 1.0).max(0.0);
            }
        }
    }

    /// Estimated local objects matching any keyword of `kws`: union-bound
    /// sum over the query's distinct buckets. Collisions with unrelated
    /// terms make this an overestimate — the synopsis' intrinsic error.
    pub fn matches(&self, kws: &[KeywordId]) -> f64 {
        let mut hit = [false; BUCKETS];
        for &kw in kws {
            hit[bucket_of(kw)] = true;
        }
        hit.iter()
            .enumerate()
            .filter(|(_, &h)| h)
            .map(|(b, _)| self.counts[b])
            .sum()
    }

    fn memory_bytes(&self) -> usize {
        BUCKETS * std::mem::size_of::<f64>()
    }
}

/// The AASP selectivity estimator.
pub struct AaspTree {
    tree: AspTree<BucketCounts>,
    kmv: KmvSynopsis,
}

impl AaspTree {
    /// Builds an empty AASP estimator per `config`.
    ///
    /// The split threshold follows the paper's `split value` knob: a node
    /// splits after `split_value × 16 / memory_budget` points. Small leaves
    /// mean many nodes, and — because keyword statistics live per node, so
    /// every query must consult each intersecting leaf — many nodes mean
    /// the highest per-query latency of the estimator pool. Larger memory
    /// budgets split even finer, so latency grows with budget (Fig. 13).
    pub fn new(config: &EstimatorConfig) -> Self {
        let threshold =
            ((config.aasp_split_value * 16.0 / config.memory_budget.max(1e-6)) as usize).max(2);
        AaspTree {
            tree: AspTree::new(config.domain, threshold, MAX_DEPTH),
            kmv: KmvSynopsis::new(KMV_K),
        }
    }

    /// Number of tree nodes (diagnostics).
    pub fn node_count(&self) -> usize {
        self.tree.node_count()
    }

    /// Estimated distinct keywords in the stream (from the KMV synopsis).
    pub fn distinct_keywords(&self) -> f64 {
        self.kmv.estimate_distinct()
    }

    fn node_keyword_matches(node: &AspNode<BucketCounts>, kws: &[KeywordId]) -> f64 {
        node.payload.matches(kws).min(node.own)
    }

    /// Full invariant walk (the `debug-invariants` auditor): the spatial
    /// tree's partition/subtree/population invariants
    /// ([`AspTree::audit`]), plus keyword-bucket sanity — every bucket
    /// counter is finite and non-negative, and no bucket anywhere exceeds
    /// the tree population (a bucket counts a subset of all inserted
    /// objects; per-node bounds are deliberately *not* asserted because
    /// retraction pairs counts and keywords only approximately across
    /// splits, see [`SelectivityEstimator::remove`]).
    #[cfg(feature = "debug-invariants")]
    pub fn audit(&self) -> Result<(), geostream::AuditError> {
        use geostream::audit::ensure;
        self.tree.audit()?;
        let population = self.tree.population() as f64;
        let mut violation: Option<(usize, usize, f64)> = None;
        let mut id = 0usize;
        self.tree.for_each_node(|node| {
            for (b, &count) in node.payload.counts.iter().enumerate() {
                let ok = count.is_finite() && count >= 0.0 && count <= population + 1e-6;
                if violation.is_none() && !ok {
                    violation = Some((id, b, count));
                }
            }
            id += 1;
        });
        ensure(violation.is_none(), "AaspTree", "bucket-bounds", || {
            let (node, bucket, count) = violation.unwrap_or((0, 0, 0.0));
            format!("node {node} bucket {bucket} counts {count} of {population} objects")
        })
    }
}

impl SelectivityEstimator for AaspTree {
    fn kind(&self) -> EstimatorKind {
        EstimatorKind::Aasp
    }

    fn insert(&mut self, obj: &GeoTextObject) {
        let counted_at = self.tree.insert(&obj.loc);
        self.tree.payload_mut(counted_at).add_object(&obj.keywords);
        for &kw in obj.keywords.iter() {
            self.kmv.insert(kw);
        }
    }

    fn remove(&mut self, obj: &GeoTextObject) {
        // The retired count and the retired keywords may live at different
        // nodes when the tree split since this object arrived; the pairing
        // is approximate, a bounded synopsis error that washes out as the
        // window slides.
        if let Some(node) = self.tree.remove(&obj.loc) {
            self.tree.payload_mut(node).retract_object(&obj.keywords);
        }
        // KMV is insert-only (distinct counts cannot be retracted); the
        // slight overcount decays in relevance as the stream moves on.
    }

    fn insert_batch(&mut self, objs: &[GeoTextObject]) {
        // Tree inserts must stay in arrival order (splits depend on it),
        // but the KMV synopsis is an order-independent set of minimum
        // hashes, so its updates can run as a second cache-friendly sweep.
        for obj in objs {
            let counted_at = self.tree.insert(&obj.loc);
            self.tree.payload_mut(counted_at).add_object(&obj.keywords);
        }
        for obj in objs {
            for &kw in obj.keywords.iter() {
                self.kmv.insert(kw);
            }
        }
    }

    fn remove_batch(&mut self, objs: &[GeoTextObject]) {
        for obj in objs {
            if let Some(node) = self.tree.remove(&obj.loc) {
                self.tree.payload_mut(node).retract_object(&obj.keywords);
            }
        }
    }

    fn estimate(&self, query: &RcDvq) -> f64 {
        match query.query_type() {
            // Even pure spatial queries pay the per-leaf walk: statistics
            // live at the leaves, so no aggregate shortcut exists.
            QueryType::Spatial => self.tree.estimate_nodes_with(
                // LINT-ALLOW(no-panic): QueryType::Spatial carries a range by construction
                Some(query.range().expect("spatial query has range")),
                &|node| node.own,
            ),
            QueryType::Keyword => self.tree.estimate_nodes_with(None, &|node| {
                Self::node_keyword_matches(node, query.keywords())
            }),
            QueryType::Hybrid => self
                .tree
                // LINT-ALLOW(no-panic): QueryType::Hybrid carries a range by construction
                .estimate_nodes_with(Some(query.range().expect("hybrid")), &|node| {
                    Self::node_keyword_matches(node, query.keywords())
                }),
        }
    }

    fn memory_bytes(&self) -> usize {
        self.tree.memory_bytes(BucketCounts::memory_bytes) + self.kmv.memory_bytes()
    }

    fn clear(&mut self) {
        self.tree.clear();
        self.kmv.clear();
    }

    fn population(&self) -> u64 {
        self.tree.population()
    }

    #[cfg(feature = "debug-invariants")]
    fn audit(&self) -> Result<(), geostream::AuditError> {
        AaspTree::audit(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geostream::{ObjectId, Point, Rect, Timestamp};

    fn config() -> EstimatorConfig {
        EstimatorConfig {
            domain: Rect::new(0.0, 0.0, 64.0, 64.0),
            ..EstimatorConfig::default()
        }
    }

    fn obj(id: u64, x: f64, y: f64, kws: &[u32]) -> GeoTextObject {
        GeoTextObject::new(
            ObjectId(id),
            Point::new(x, y),
            kws.iter().copied().map(KeywordId).collect(),
            Timestamp::ZERO,
        )
    }

    #[test]
    fn spatial_estimates_track_density() {
        let mut a = AaspTree::new(&config());
        for i in 0..400 {
            a.insert(&obj(i, 1.0 + (i % 8) as f64 * 0.1, 1.0, &[]));
        }
        for i in 0..40 {
            a.insert(&obj(1_000 + i, 50.0, 50.0, &[]));
        }
        let dense = a.estimate(&RcDvq::spatial(Rect::new(0.0, 0.0, 4.0, 4.0)));
        let sparse = a.estimate(&RcDvq::spatial(Rect::new(48.0, 48.0, 52.0, 52.0)));
        assert!(dense > 300.0, "dense estimate too low: {dense}");
        assert!(sparse < 80.0, "sparse estimate too high: {sparse}");
    }

    #[test]
    fn keyword_estimates_reflect_local_buckets() {
        let mut a = AaspTree::new(&config());
        // 100 objects with keyword 1, 20 with keyword 2, far apart.
        for i in 0..100 {
            a.insert(&obj(i, 10.0, 10.0, &[1]));
        }
        for i in 0..20 {
            a.insert(&obj(500 + i, 40.0, 40.0, &[2]));
        }
        let e1 = a.estimate(&RcDvq::keyword(vec![KeywordId(1)]));
        let e2 = a.estimate(&RcDvq::keyword(vec![KeywordId(2)]));
        // Only two terms exist, so collisions are unlikely; estimates land
        // near truth unless both hash to one bucket (then the cap holds).
        assert!((90.0..=121.0).contains(&e1), "kw1 estimate off: {e1}");
        assert!((15.0..=121.0).contains(&e2), "kw2 estimate off: {e2}");
    }

    #[test]
    fn bucket_collisions_overestimate() {
        // Many distinct tail keywords share buckets with the queried one:
        // the synopsis must overestimate (its documented failure mode).
        let mut a = AaspTree::new(&config());
        for i in 0..BUCKETS as u64 * 8 {
            a.insert(&obj(i, 5.0, 5.0, &[i as u32 + 100]));
        }
        // Query a keyword that was never inserted but hashes into some
        // bucket: the collision mass shows up.
        let est = a.estimate(&RcDvq::keyword(vec![KeywordId(7)]));
        assert!(est > 0.0, "collision overestimate expected, got {est}");
        // But it is still bounded by the population.
        assert!(est <= a.population() as f64 + 1e-9);
    }

    #[test]
    fn hybrid_combines_region_and_keywords() {
        let mut a = AaspTree::new(&config());
        // Keyword 5 lives only in the SW corner.
        for i in 0..300 {
            a.insert(&obj(i, 2.0 + (i % 5) as f64 * 0.1, 2.0, &[5]));
        }
        for i in 0..300 {
            a.insert(&obj(1_000 + i, 60.0 + (i % 5) as f64 * 0.1, 60.0, &[6]));
        }
        let q = RcDvq::hybrid(Rect::new(0.0, 0.0, 8.0, 8.0), vec![KeywordId(5)]);
        let est = a.estimate(&q);
        assert!((est - 300.0).abs() < 90.0, "hybrid estimate off: {est}");
        // Keyword 6 in the SW corner: near zero unless 5 and 6 collide.
        if bucket_of(KeywordId(5)) != bucket_of(KeywordId(6)) {
            let q2 = RcDvq::hybrid(Rect::new(0.0, 0.0, 8.0, 8.0), vec![KeywordId(6)]);
            assert!(a.estimate(&q2) < 30.0);
        }
    }

    #[test]
    fn union_bound_caps_at_node_count() {
        let mut a = AaspTree::new(&config());
        // Every object has both keywords: union must not double count.
        for i in 0..60 {
            a.insert(&obj(i, 5.0, 5.0, &[1, 2]));
        }
        let q = RcDvq::keyword(vec![KeywordId(1), KeywordId(2)]);
        let est = a.estimate(&q);
        assert!(est <= 60.0 + 1e-9, "union bound exceeded population: {est}");
        assert!(est > 40.0);
    }

    #[test]
    fn removal_retracts_counts_and_buckets() {
        let mut a = AaspTree::new(&config());
        let objects: Vec<_> = (0..30).map(|i| obj(i, 3.0, 3.0, &[9])).collect();
        for o in &objects {
            a.insert(o);
        }
        for o in &objects {
            a.remove(o);
        }
        assert_eq!(a.population(), 0);
        let est = a.estimate(&RcDvq::keyword(vec![KeywordId(9)]));
        assert!(est.abs() < 1e-6, "stale keyword mass: {est}");
    }

    #[test]
    fn distinct_keywords_estimated() {
        let mut a = AaspTree::new(&config());
        for i in 0..200 {
            a.insert(&obj(i, 1.0, 1.0, &[i as u32 % 50]));
        }
        let d = a.distinct_keywords();
        assert!((d - 50.0).abs() < 10.0, "distinct estimate off: {d}");
    }

    #[test]
    fn bucket_counts_add_retract_symmetry() {
        let mut b = BucketCounts::default();
        let kws: Vec<KeywordId> = vec![KeywordId(1), KeywordId(900), KeywordId(77)];
        b.add_object(&kws);
        b.add_object(&kws);
        assert!(b.matches(&kws) >= 2.0);
        b.retract_object(&kws);
        b.retract_object(&kws);
        assert_eq!(b.matches(&kws), 0.0);
        // Extra retraction clamps at zero.
        b.retract_object(&kws);
        assert_eq!(b.matches(&kws), 0.0);
    }

    #[test]
    fn multi_keyword_object_counts_once_per_bucket() {
        let mut b = BucketCounts::default();
        // Two keywords in (very likely distinct) buckets, one object.
        b.add_object(&[KeywordId(1), KeywordId(2)]);
        // Query for either keyword individually sees exactly one object.
        assert_eq!(b.matches(&[KeywordId(1)]), 1.0);
        assert_eq!(b.matches(&[KeywordId(2)]), 1.0);
    }

    #[test]
    fn clear_resets() {
        let mut a = AaspTree::new(&config());
        for i in 0..100 {
            a.insert(&obj(i, 1.0, 1.0, &[3]));
        }
        a.clear();
        assert_eq!(a.population(), 0);
        assert_eq!(a.node_count(), 1);
        assert_eq!(a.distinct_keywords(), 0.0);
    }

    #[test]
    fn memory_budget_deepens_tree() {
        let small = EstimatorConfig {
            memory_budget: 0.5,
            ..config()
        };
        let big = EstimatorConfig {
            memory_budget: 4.0,
            ..config()
        };
        let mut a_small = AaspTree::new(&small);
        let mut a_big = AaspTree::new(&big);
        for i in 0..3_000 {
            let o = obj(i, (i % 64) as f64, ((i / 64) % 64) as f64, &[]);
            a_small.insert(&o);
            a_big.insert(&o);
        }
        assert!(
            a_big.node_count() >= a_small.node_count(),
            "bigger budget should split at least as much: {} vs {}",
            a_big.node_count(),
            a_small.node_count()
        );
    }
}
