//! KMV (k-minimum-values) distinct-value synopsis.
//!
//! The AASP estimator (paper §IV, after Bar-Yossef et al.) augments its
//! space-partition tree with KMV synopses of the keyword stream. A KMV
//! synopsis hashes every element onto `[0, 1)` and keeps only the `k`
//! smallest hash values; the number of distinct elements is estimated as
//! `(k − 1) / h_(k)` where `h_(k)` is the k-th smallest normalized hash.
//!
//! Duplicates hash identically, so they never inflate the synopsis — that
//! is what makes it a *distinct*-value estimator.

use geostream::KeywordId;
use std::collections::BTreeSet;

/// A k-minimum-values synopsis over keyword ids.
#[derive(Debug, Clone)]
pub struct KmvSynopsis {
    k: usize,
    /// The k smallest hashes observed (u64 hash space, normalized on read).
    mins: BTreeSet<u64>,
    /// Total insertions (with duplicates), for diagnostics.
    observed: u64,
}

impl KmvSynopsis {
    /// Creates a synopsis retaining the `k` smallest hash values.
    ///
    /// # Panics
    /// Panics if `k < 2` — the estimator formula needs at least two values.
    pub fn new(k: usize) -> Self {
        assert!(k >= 2, "KMV needs k >= 2");
        KmvSynopsis {
            k,
            mins: BTreeSet::new(),
            observed: 0,
        }
    }

    /// The configured `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of hash values currently retained (`<= k`).
    pub fn len(&self) -> usize {
        self.mins.len()
    }

    /// Whether nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.mins.is_empty()
    }

    /// Total insertions seen (duplicates included).
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Observes one keyword occurrence.
    pub fn insert(&mut self, kw: KeywordId) {
        self.observed += 1;
        let h = hash_keyword(kw);
        if self.mins.len() < self.k {
            self.mins.insert(h);
        } else if let Some(&max) = self.mins.iter().next_back() {
            if h < max && self.mins.insert(h) {
                self.mins.remove(&max);
            }
        }
    }

    /// Estimated number of distinct keywords observed.
    pub fn estimate_distinct(&self) -> f64 {
        let n = self.mins.len();
        if n == 0 {
            return 0.0;
        }
        if n < self.k {
            // Synopsis not yet full: it holds every distinct element.
            return n as f64;
        }
        // LINT-ALLOW(no-panic): callers reach this only after a non-empty check on the sketch
        let kth = *self.mins.iter().next_back().expect("non-empty");
        let normalized = (kth as f64 + 1.0) / (u64::MAX as f64 + 1.0);
        (self.k as f64 - 1.0) / normalized
    }

    /// Forgets everything.
    pub fn clear(&mut self) {
        self.mins.clear();
        self.observed = 0;
    }

    /// Approximate heap bytes.
    pub fn memory_bytes(&self) -> usize {
        self.mins.len() * std::mem::size_of::<u64>() + std::mem::size_of::<Self>()
    }
}

/// SplitMix64-style avalanche hash of a keyword id — cheap, stateless, and
/// well distributed, which is all KMV requires.
fn hash_keyword(kw: KeywordId) -> u64 {
    let mut z = (kw.0 as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_k() {
        let mut s = KmvSynopsis::new(64);
        for i in 0..10 {
            s.insert(KeywordId(i));
        }
        assert_eq!(s.estimate_distinct(), 10.0);
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut s = KmvSynopsis::new(64);
        for _ in 0..1_000 {
            s.insert(KeywordId(7));
        }
        assert_eq!(s.estimate_distinct(), 1.0);
        assert_eq!(s.observed(), 1_000);
    }

    #[test]
    fn estimates_large_cardinalities() {
        let mut s = KmvSynopsis::new(256);
        let true_distinct = 50_000u32;
        for i in 0..true_distinct {
            s.insert(KeywordId(i));
        }
        let est = s.estimate_distinct();
        let rel_err = (est - true_distinct as f64).abs() / true_distinct as f64;
        assert!(
            rel_err < 0.2,
            "relative error too high: {rel_err} (est={est})"
        );
    }

    #[test]
    fn empty_synopsis() {
        let s = KmvSynopsis::new(16);
        assert!(s.is_empty());
        assert_eq!(s.estimate_distinct(), 0.0);
    }

    #[test]
    fn clear_resets() {
        let mut s = KmvSynopsis::new(16);
        s.insert(KeywordId(1));
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.observed(), 0);
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn rejects_tiny_k() {
        let _ = KmvSynopsis::new(1);
    }

    #[test]
    fn retains_only_k_values() {
        let mut s = KmvSynopsis::new(8);
        for i in 0..1_000 {
            s.insert(KeywordId(i));
        }
        assert_eq!(s.len(), 8);
    }

    #[test]
    fn hash_is_deterministic_and_spread() {
        let a = hash_keyword(KeywordId(1));
        let b = hash_keyword(KeywordId(2));
        assert_eq!(a, hash_keyword(KeywordId(1)));
        assert_ne!(a, b);
    }
}
