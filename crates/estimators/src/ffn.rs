//! Workload-driven feed-forward network estimator (the paper's `FFN`).
//!
//! The FFN never looks at raw stream objects: it trains on `(query
//! features, actual selectivity)` pairs harvested from the system logs —
//! the classic workload-driven learned estimator the paper uses as a
//! baseline. Query features are geometry and keyword-shape only; targets
//! are log-compressed selectivities.
//!
//! Matching the paper's setup (§VI-A), the network uses unipolar sigmoid
//! hidden units, learning rate 0.3, and momentum 0.2, trained online with
//! a small replay buffer. Its weakness — which the paper's experiments
//! surface and LATEST exploits — is that a fixed feature→selectivity
//! mapping goes stale the moment the stream distribution or the workload
//! mix shifts.

use crate::nn::Mlp;
use crate::traits::{EstimatorConfig, EstimatorKind, SelectivityEstimator};
use geostream::{GeoTextObject, RcDvq, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Input feature width.
const FEATURES: usize = 8;
/// Hidden layer width (two hidden layers; the paper's WEKA network
/// explores "multiple variations of hidden layers", so inference is far
/// from free — this keeps its latency in realistic proportion to the
/// structure estimators).
const HIDDEN: usize = 64;
/// Replay buffer capacity.
const REPLAY_CAPACITY: usize = 512;
/// Replay samples drawn per observed query.
const REPLAY_STEPS: usize = 4;
/// Log compression scale: selectivities are mapped through
/// `ln(1+s) / LOG_SCALE`, comfortably covering millions of matches.
const LOG_SCALE: f64 = 16.0;

/// A feed-forward selectivity regressor over query features.
pub struct FfnEstimator {
    net: Mlp,
    domain: Rect,
    population: u64,
    replay: Vec<([f64; FEATURES], f64)>,
    replay_next: usize,
    trained: u64,
    /// Feedback records consumed before the network freezes: the paper's
    /// FFN is batch-trained ("until the generalization gap stops
    /// shrinking") and then serves as-is — it cannot keep adapting to the
    /// stream, which is precisely the weakness LATEST exploits (§V-B).
    train_budget: u64,
    rng: StdRng,
}

impl FfnEstimator {
    /// Builds an untrained FFN per `config`.
    pub fn new(config: &EstimatorConfig) -> Self {
        FfnEstimator {
            net: Mlp::new(
                &[FEATURES, HIDDEN, HIDDEN, 1],
                0.3,
                0.2,
                config.seed ^ 0xff17,
            ),
            domain: config.domain,
            population: 0,
            replay: Vec::with_capacity(REPLAY_CAPACITY),
            replay_next: 0,
            trained: 0,
            train_budget: config.ffn_train_budget,
            rng: StdRng::seed_from_u64(config.seed ^ 0xf0f0),
        }
    }

    /// Number of training records consumed so far.
    pub fn trained_records(&self) -> u64 {
        self.trained
    }

    /// Extracts the normalized feature vector of `query`.
    fn features(&self, query: &RcDvq) -> [f64; FEATURES] {
        let mut f = [0.0; FEATURES];
        if let Some(r) = query.range() {
            let c = r.center();
            f[0] = 1.0; // has spatial predicate
            f[1] = ((c.x - self.domain.min_x) / self.domain.width()).clamp(0.0, 1.0);
            f[2] = ((c.y - self.domain.min_y) / self.domain.height()).clamp(0.0, 1.0);
            // Area fraction, log-compressed so small ranges stay resolvable.
            let frac = (r.area() / self.domain.area()).clamp(1e-12, 1.0);
            f[3] = (frac.ln() / -28.0).clamp(0.0, 1.0); // ln(1e-12) ≈ −27.6
        }
        let kws = query.keywords();
        if !kws.is_empty() {
            f[4] = 1.0; // has keyword predicate
            f[5] = (kws.len() as f64 / 5.0).min(1.0);
            // Keyword identity proxies: Zipf vocabularies are rank-ordered,
            // so low ids ≈ frequent terms. Log-compress ranks.
            let min_id = kws[0].0 as f64;
            let mean_id = kws.iter().map(|k| k.0 as f64).sum::<f64>() / kws.len() as f64;
            f[6] = ((min_id + 1.0).ln() / 12.0).min(1.0); // ln(160k) ≈ 12
            f[7] = ((mean_id + 1.0).ln() / 12.0).min(1.0);
        }
        f
    }

    fn compress(selectivity: f64) -> f64 {
        (1.0 + selectivity.max(0.0)).ln() / LOG_SCALE
    }

    fn expand(y: f64) -> f64 {
        ((y * LOG_SCALE).exp() - 1.0).max(0.0)
    }
}

impl SelectivityEstimator for FfnEstimator {
    fn kind(&self) -> EstimatorKind {
        EstimatorKind::Ffn
    }

    // Workload-driven: stream objects only matter for the population cap.
    fn insert(&mut self, _obj: &GeoTextObject) {
        self.population += 1;
    }

    fn remove(&mut self, _obj: &GeoTextObject) {
        self.population = self.population.saturating_sub(1);
    }

    fn estimate(&self, query: &RcDvq) -> f64 {
        if self.trained == 0 {
            return 0.0;
        }
        let features = self.features(query);
        // Zero-allocation inference: `estimate` sits on the query hot path.
        let y = self.net.infer_one(&features);
        Self::expand(y).min(self.population as f64)
    }

    fn observe_query(&mut self, query: &RcDvq, actual: u64) {
        if self.trained >= self.train_budget {
            // Batch-trained model: serves frozen weights from here on.
            return;
        }
        let features = self.features(query);
        let target = Self::compress(actual as f64);
        self.net.train(&features, &[target]);
        self.trained += 1;
        // Stash in the replay ring and rehearse a few past records so the
        // network does not catastrophically forget rarer query shapes.
        if self.replay.len() < REPLAY_CAPACITY {
            self.replay.push((features, target));
        } else {
            self.replay[self.replay_next] = (features, target);
            self.replay_next = (self.replay_next + 1) % REPLAY_CAPACITY;
        }
        for _ in 0..REPLAY_STEPS.min(self.replay.len()) {
            let idx = self.rng.gen_range(0..self.replay.len());
            let (f, t) = self.replay[idx];
            self.net.train(&f, &[t]);
        }
    }

    fn memory_bytes(&self) -> usize {
        self.net.memory_bytes()
            + self.replay.capacity() * std::mem::size_of::<([f64; FEATURES], f64)>()
            + std::mem::size_of::<Self>()
    }

    fn clear(&mut self) {
        self.net = Mlp::new(&[FEATURES, HIDDEN, HIDDEN, 1], 0.3, 0.2, 0xff17);
        self.replay.clear();
        self.replay_next = 0;
        self.trained = 0;
        self.population = 0;
    }

    fn population(&self) -> u64 {
        self.population
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geostream::KeywordId;

    fn config() -> EstimatorConfig {
        EstimatorConfig {
            domain: Rect::new(0.0, 0.0, 100.0, 100.0),
            ffn_train_budget: u64::MAX, // capability tests train freely
            ..EstimatorConfig::default()
        }
    }

    fn range_query(cx: f64, cy: f64, half: f64) -> RcDvq {
        RcDvq::spatial(Rect::new(cx - half, cy - half, cx + half, cy + half))
    }

    #[test]
    fn untrained_estimates_zero() {
        let f = FfnEstimator::new(&config());
        assert_eq!(f.estimate(&range_query(50.0, 50.0, 5.0)), 0.0);
    }

    #[test]
    fn learns_area_proportional_selectivity() {
        let mut f = FfnEstimator::new(&config());
        // Population of 100k; selectivity proportional to area fraction.
        for _ in 0..100_000 {
            f.insert(&GeoTextObject::new(
                geostream::ObjectId(0),
                geostream::Point::new(0.0, 0.0),
                vec![],
                geostream::Timestamp::ZERO,
            ));
        }
        let mut s = 5u64;
        for _ in 0..10_000 {
            s = s.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let half = 1.0 + ((s >> 11) as f64 / (1u64 << 53) as f64) * 24.0;
            let q = range_query(50.0, 50.0, half);
            let actual = (q.range().unwrap().area() / 10_000.0 * 100_000.0) as u64;
            f.observe_query(&q, actual);
        }
        // Large ranges should now predict much higher than small ranges.
        let small = f.estimate(&range_query(50.0, 50.0, 2.0));
        let large = f.estimate(&range_query(50.0, 50.0, 20.0));
        // The two-hidden-layer sigmoid net is a coarse regressor; demand
        // clear monotone size sensitivity rather than a calibrated fit.
        assert!(
            large > small * 1.8,
            "no size sensitivity: small={small} large={large}"
        );
        // And the large estimate should be in the right order of magnitude.
        let truth = (40.0 * 40.0) / 10_000.0 * 100_000.0;
        assert!(
            large > truth * 0.2 && large < truth * 5.0,
            "large estimate off: {large} vs {truth}"
        );
    }

    #[test]
    fn keyword_count_feature_matters() {
        let mut f = FfnEstimator::new(&config());
        for _ in 0..10_000 {
            f.insert(&GeoTextObject::new(
                geostream::ObjectId(0),
                geostream::Point::new(0.0, 0.0),
                vec![],
                geostream::Timestamp::ZERO,
            ));
        }
        // 1 keyword → 100 matches; 3 keywords → 3000 matches.
        for i in 0..3_000u32 {
            let one = RcDvq::keyword(vec![KeywordId(i % 50)]);
            f.observe_query(&one, 100);
            let three = RcDvq::keyword(vec![
                KeywordId(i % 50),
                KeywordId(50 + i % 50),
                KeywordId(100 + i % 50),
            ]);
            f.observe_query(&three, 3_000);
        }
        let e1 = f.estimate(&RcDvq::keyword(vec![KeywordId(10)]));
        let e3 = f.estimate(&RcDvq::keyword(vec![
            KeywordId(10),
            KeywordId(60),
            KeywordId(110),
        ]));
        assert!(e3 > e1 * 2.0, "keyword count ignored: e1={e1} e3={e3}");
    }

    #[test]
    fn estimate_capped_by_population() {
        let mut f = FfnEstimator::new(&config());
        f.insert(&GeoTextObject::new(
            geostream::ObjectId(0),
            geostream::Point::new(0.0, 0.0),
            vec![],
            geostream::Timestamp::ZERO,
        ));
        // Train with absurdly high targets; cap still applies.
        let q = range_query(50.0, 50.0, 40.0);
        for _ in 0..200 {
            f.observe_query(&q, 1_000_000);
        }
        assert!(f.estimate(&q) <= 1.0);
    }

    #[test]
    fn clear_forgets_training() {
        let mut f = FfnEstimator::new(&config());
        let q = range_query(50.0, 50.0, 10.0);
        for _ in 0..100 {
            f.observe_query(&q, 500);
        }
        assert!(f.trained_records() > 0);
        f.clear();
        assert_eq!(f.trained_records(), 0);
        assert_eq!(f.estimate(&q), 0.0);
    }

    #[test]
    fn freezes_after_training_budget() {
        let mut f = FfnEstimator::new(&EstimatorConfig {
            domain: Rect::new(0.0, 0.0, 100.0, 100.0),
            ffn_train_budget: 10,
            ..EstimatorConfig::default()
        });
        let q = range_query(50.0, 50.0, 10.0);
        for _ in 0..50 {
            f.observe_query(&q, 500);
        }
        assert_eq!(f.trained_records(), 10, "budget must cap training");
    }

    #[test]
    fn population_tracking() {
        let mut f = FfnEstimator::new(&config());
        let o = GeoTextObject::new(
            geostream::ObjectId(1),
            geostream::Point::new(0.0, 0.0),
            vec![],
            geostream::Timestamp::ZERO,
        );
        f.insert(&o);
        f.insert(&o);
        f.remove(&o);
        assert_eq!(f.population(), 1);
    }
}
