//! Typed errors for the fallible estimator APIs.

/// What went wrong constructing or validating an estimator.
#[derive(Debug, Clone, PartialEq)]
pub enum EstimateError {
    /// A sizing/domain parameter in [`EstimatorConfig`] is unusable.
    ///
    /// [`EstimatorConfig`]: crate::EstimatorConfig
    InvalidConfig {
        /// The offending `EstimatorConfig` field.
        field: &'static str,
        /// Why the value is rejected.
        reason: String,
    },
}

impl std::fmt::Display for EstimateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EstimateError::InvalidConfig { field, reason } => {
                write!(f, "invalid estimator config: `{field}` {reason}")
            }
        }
    }
}

impl std::error::Error for EstimateError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_field() {
        let e = EstimateError::InvalidConfig {
            field: "memory_budget",
            reason: "must be positive and finite (got 0)".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("memory_budget"), "{msg}");
        assert!(msg.contains("positive"), "{msg}");
    }
}
