//! Two-dimensional equi-width histogram (the paper's `H4096`).
//!
//! The spatial domain is divided into a regular `side × side` grid; each
//! cell stores only the count of window objects inside it. Range-counting
//! estimates sum fully covered cells exactly and scale partially covered
//! boundary cells by area fraction (the uniformity assumption inside a
//! cell).
//!
//! The histogram keeps **purely spatial statistics** (paper §VI-E):
//! keyword predicates cannot be evaluated, so hybrid queries are answered
//! from the spatial predicate alone and pure keyword queries fall back to
//! the full window count. That bias is intentional — it is exactly why
//! LATEST steers away from `H4096` when keyword predicates dominate.

use crate::traits::{EstimatorConfig, EstimatorKind, SelectivityEstimator};
use geostream::{GeoTextObject, Point, QueryType, RcDvq, Rect};

/// 2D equi-width count histogram.
#[derive(Debug, Clone)]
pub struct Histogram2D {
    domain: Rect,
    side: usize,
    /// Row-major `side × side` counts. `f64` so partial retractions never
    /// underflow.
    cells: Vec<f64>,
    population: u64,
}

impl Histogram2D {
    /// Builds an empty histogram per `config` (cell count scales with the
    /// memory budget).
    pub fn new(config: &EstimatorConfig) -> Self {
        let side = config.scaled_grid_side();
        Histogram2D {
            domain: config.domain,
            side,
            cells: vec![0.0; side * side],
            population: 0,
        }
    }

    /// Number of cells per axis.
    pub fn side(&self) -> usize {
        self.side
    }

    /// Grid index of the cell containing `p` (clamped into the domain).
    fn cell_of(&self, p: &Point) -> (usize, usize) {
        let fx = (p.x - self.domain.min_x) / self.domain.width();
        let fy = (p.y - self.domain.min_y) / self.domain.height();
        let cx = ((fx * self.side as f64) as isize).clamp(0, self.side as isize - 1) as usize;
        let cy = ((fy * self.side as f64) as isize).clamp(0, self.side as isize - 1) as usize;
        (cx, cy)
    }

    /// The spatial extent of cell `(cx, cy)`.
    fn cell_rect(&self, cx: usize, cy: usize) -> Rect {
        let w = self.domain.width() / self.side as f64;
        let h = self.domain.height() / self.side as f64;
        let min_x = self.domain.min_x + cx as f64 * w;
        let min_y = self.domain.min_y + cy as f64 * h;
        Rect::new(min_x, min_y, min_x + w, min_y + h)
    }

    /// Full O(cells) invariant walk (the `debug-invariants` auditor):
    ///
    /// * **cell-bounds** — every cell count is finite and non-negative
    ///   (retraction clamps at zero, never below).
    /// * **mass-conservation** — the cell counts sum to the population
    ///   counter: each insert adds exactly one unit of cell mass and each
    ///   retraction of a previously inserted object removes exactly one
    ///   (whole counts are exact in f64 far beyond window scale).
    #[cfg(feature = "debug-invariants")]
    pub fn audit(&self) -> Result<(), geostream::AuditError> {
        use geostream::audit::ensure;
        const S: &str = "Histogram2D";
        let mut sum = 0.0;
        for (i, &c) in self.cells.iter().enumerate() {
            ensure(c.is_finite() && c >= 0.0, S, "cell-bounds", || {
                format!("cell {i} holds {c}")
            })?;
            sum += c;
        }
        ensure(
            (sum - self.population as f64).abs() < 1e-6,
            S,
            "mass-conservation",
            || format!("cells sum to {sum}, population is {}", self.population),
        )
    }

    /// Estimated count of objects inside `r` (spatial predicate only).
    fn estimate_range(&self, r: &Rect) -> f64 {
        let Some(clipped) = r.intersection(&self.domain) else {
            return 0.0;
        };
        // Indices of the cell range the query touches.
        let w = self.domain.width() / self.side as f64;
        let h = self.domain.height() / self.side as f64;
        let x0 = (((clipped.min_x - self.domain.min_x) / w) as isize)
            .clamp(0, self.side as isize - 1) as usize;
        let x1 = (((clipped.max_x - self.domain.min_x) / w) as isize)
            .clamp(0, self.side as isize - 1) as usize;
        let y0 = (((clipped.min_y - self.domain.min_y) / h) as isize)
            .clamp(0, self.side as isize - 1) as usize;
        let y1 = (((clipped.max_y - self.domain.min_y) / h) as isize)
            .clamp(0, self.side as isize - 1) as usize;
        let mut total = 0.0;
        for cy in y0..=y1 {
            for cx in x0..=x1 {
                let count = self.cells[cy * self.side + cx];
                if count <= 0.0 {
                    continue;
                }
                let cell = self.cell_rect(cx, cy);
                total += count * cell.coverage_by(&clipped);
            }
        }
        total
    }
}

impl SelectivityEstimator for Histogram2D {
    fn kind(&self) -> EstimatorKind {
        EstimatorKind::H4096
    }

    fn insert(&mut self, obj: &GeoTextObject) {
        let (cx, cy) = self.cell_of(&obj.loc);
        self.cells[cy * self.side + cx] += 1.0;
        self.population += 1;
    }

    fn remove(&mut self, obj: &GeoTextObject) {
        let (cx, cy) = self.cell_of(&obj.loc);
        let cell = &mut self.cells[cy * self.side + cx];
        *cell = (*cell - 1.0).max(0.0);
        self.population = self.population.saturating_sub(1);
    }

    fn insert_batch(&mut self, objs: &[GeoTextObject]) {
        // Cell increments commute (whole counts, exact in f64), so one
        // population update covers the batch.
        for obj in objs {
            let (cx, cy) = self.cell_of(&obj.loc);
            self.cells[cy * self.side + cx] += 1.0;
        }
        self.population += objs.len() as u64;
    }

    fn remove_batch(&mut self, objs: &[GeoTextObject]) {
        // Per-cell clamped decrements are monotone, so applying them in
        // one sweep lands on the same `max(count - k, 0)` as one-at-a-time.
        for obj in objs {
            let (cx, cy) = self.cell_of(&obj.loc);
            let cell = &mut self.cells[cy * self.side + cx];
            *cell = (*cell - 1.0).max(0.0);
        }
        self.population = self.population.saturating_sub(objs.len() as u64);
    }

    fn estimate(&self, query: &RcDvq) -> f64 {
        match query.query_type() {
            QueryType::Spatial | QueryType::Hybrid => {
                // Hybrid: the keyword predicate is invisible to a purely
                // spatial summary; answer from the range alone.
                // LINT-ALLOW(no-panic): Spatial/Hybrid queries carry a range by construction
                self.estimate_range(query.range().expect("spatial/hybrid has range"))
            }
            // No spatial statistics apply: the least-wrong purely spatial
            // answer is the whole window.
            QueryType::Keyword => self.population as f64,
        }
    }

    fn memory_bytes(&self) -> usize {
        self.cells.len() * std::mem::size_of::<f64>() + std::mem::size_of::<Self>()
    }

    fn clear(&mut self) {
        self.cells.iter_mut().for_each(|c| *c = 0.0);
        self.population = 0;
    }

    fn population(&self) -> u64 {
        self.population
    }

    #[cfg(feature = "debug-invariants")]
    fn audit(&self) -> Result<(), geostream::AuditError> {
        Histogram2D::audit(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geostream::{ObjectId, Timestamp};

    fn config() -> EstimatorConfig {
        EstimatorConfig {
            domain: Rect::new(0.0, 0.0, 64.0, 64.0),
            grid_cells: 4_096, // 64×64 ⇒ cell size 1×1
            ..EstimatorConfig::default()
        }
    }

    fn obj(id: u64, x: f64, y: f64) -> GeoTextObject {
        GeoTextObject::new(ObjectId(id), Point::new(x, y), vec![], Timestamp::ZERO)
    }

    #[test]
    fn exact_for_cell_aligned_ranges() {
        let mut h = Histogram2D::new(&config());
        for i in 0..10 {
            h.insert(&obj(i, 5.5, 5.5)); // all in cell (5,5)
        }
        for i in 0..4 {
            h.insert(&obj(100 + i, 20.5, 20.5));
        }
        let q = RcDvq::spatial(Rect::new(5.0, 5.0, 6.0, 6.0));
        assert!((h.estimate(&q) - 10.0).abs() < 1e-9);
        let q_all = RcDvq::spatial(Rect::new(0.0, 0.0, 64.0, 64.0));
        assert!((h.estimate(&q_all) - 14.0).abs() < 1e-9);
    }

    #[test]
    fn partial_cells_scaled_by_coverage() {
        let mut h = Histogram2D::new(&config());
        for i in 0..8 {
            h.insert(&obj(i, 10.5, 10.5));
        }
        // Query covers the left half of cell (10,10).
        let q = RcDvq::spatial(Rect::new(10.0, 10.0, 10.5, 11.0));
        assert!((h.estimate(&q) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn remove_retracts_counts() {
        let mut h = Histogram2D::new(&config());
        let o = obj(1, 3.5, 3.5);
        h.insert(&o);
        h.insert(&obj(2, 3.5, 3.5));
        h.remove(&o);
        let q = RcDvq::spatial(Rect::new(3.0, 3.0, 4.0, 4.0));
        assert!((h.estimate(&q) - 1.0).abs() < 1e-9);
        assert_eq!(h.population(), 1);
    }

    #[test]
    fn keyword_query_falls_back_to_population() {
        let mut h = Histogram2D::new(&config());
        for i in 0..6 {
            h.insert(&obj(i, 1.0, 1.0));
        }
        let q = RcDvq::keyword(vec![geostream::KeywordId(7)]);
        assert_eq!(h.estimate(&q), 6.0);
    }

    #[test]
    fn hybrid_uses_spatial_only() {
        let mut h = Histogram2D::new(&config());
        for i in 0..5 {
            h.insert(&obj(i, 2.5, 2.5));
        }
        let q = RcDvq::hybrid(Rect::new(2.0, 2.0, 3.0, 3.0), vec![geostream::KeywordId(1)]);
        // Ignores the keyword predicate: returns the spatial count.
        assert!((h.estimate(&q) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn out_of_domain_query_is_zero() {
        let mut h = Histogram2D::new(&config());
        h.insert(&obj(1, 5.0, 5.0));
        let q = RcDvq::spatial(Rect::new(100.0, 100.0, 110.0, 110.0));
        assert_eq!(h.estimate(&q), 0.0);
    }

    #[test]
    fn domain_boundary_points_are_counted() {
        let mut h = Histogram2D::new(&config());
        h.insert(&obj(1, 64.0, 64.0)); // top-right corner clamps to last cell
        let q = RcDvq::spatial(Rect::new(63.0, 63.0, 64.0, 64.0));
        assert!((h.estimate(&q) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn clear_resets() {
        let mut h = Histogram2D::new(&config());
        h.insert(&obj(1, 5.0, 5.0));
        h.clear();
        assert_eq!(h.population(), 0);
        let q = RcDvq::spatial(Rect::new(0.0, 0.0, 64.0, 64.0));
        assert_eq!(h.estimate(&q), 0.0);
    }

    #[test]
    fn memory_scales_with_budget() {
        let small = Histogram2D::new(&config());
        let big = Histogram2D::new(&EstimatorConfig {
            memory_budget: 4.0,
            ..config()
        });
        assert!(big.memory_bytes() > small.memory_bytes() * 3);
    }

    #[test]
    fn remove_never_goes_negative() {
        let mut h = Histogram2D::new(&config());
        let o = obj(1, 5.0, 5.0);
        h.remove(&o); // retract before insert: clamps at zero
        let q = RcDvq::spatial(Rect::new(0.0, 0.0, 64.0, 64.0));
        assert_eq!(h.estimate(&q), 0.0);
        assert_eq!(h.population(), 0);
    }
}
