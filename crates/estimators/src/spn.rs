//! Data-driven sum-product network estimator (the paper's `SPN`).
//!
//! A sum-product network factorizes the window's joint distribution over
//! `(x, y, keywords)`:
//!
//! * the **root sum node** mixes `C` cluster components (weights = cluster
//!   sizes), found by k-means over object locations on a buffered sample;
//! * each **product node** assumes independence *within* its cluster and
//!   multiplies three leaf distributions: an x-histogram, a y-histogram,
//!   and a hashed keyword-bucket Bernoulli vector.
//!
//! The model is **data-driven**: it trains on raw window objects and must
//! be rebuilt as the window slides. Rebuild cost is linear in the sample
//! and model size — the "very high computational intensity to constantly
//! update" the paper cites as the SPN's weakness in streams, and the reason
//! its latency grows linearly with the memory budget (Figure 13).
//!
//! The training buffer lives in a shared [`SampleStore`]: rebuilds stream
//! the coordinate columns, and the pre-model estimate path (before the
//! first rebuild) answers from the store's kernels instead of a scan.

use crate::store::SampleStore;
use crate::traits::{EstimatorConfig, EstimatorKind, SelectivityEstimator};
use geostream::{GeoTextObject, KeywordId, Point, RcDvq, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Keyword-bucket count (hashed vocabulary dimension).
const KW_BUCKETS: usize = 64;
/// k-means iterations per rebuild.
const KMEANS_ITERS: usize = 4;

fn kw_bucket(kw: KeywordId) -> usize {
    // SplitMix-style mix, folded to the bucket range.
    let mut z = (kw.0 as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    (z ^ (z >> 27)) as usize % KW_BUCKETS
}

/// One leaf histogram over a single axis.
#[derive(Debug, Clone)]
struct AxisHistogram {
    lo: f64,
    hi: f64,
    bins: Vec<f64>,
    total: f64,
}

impl AxisHistogram {
    fn build(lo: f64, hi: f64, bins: usize, values: impl Iterator<Item = f64>) -> Self {
        let mut h = AxisHistogram {
            lo,
            hi,
            bins: vec![0.0; bins.max(1)],
            total: 0.0,
        };
        for v in values {
            let idx = (((v - lo) / (hi - lo) * h.bins.len() as f64) as isize)
                .clamp(0, h.bins.len() as isize - 1) as usize;
            h.bins[idx] += 1.0;
            h.total += 1.0;
        }
        h
    }

    /// Probability mass on the interval `[a, b]`, with partial bins scaled
    /// linearly.
    fn mass(&self, a: f64, b: f64) -> f64 {
        if self.total <= 0.0 || b < self.lo || a > self.hi {
            return 0.0;
        }
        let a = a.max(self.lo);
        let b = b.min(self.hi);
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        let mut mass = 0.0;
        for (i, &count) in self.bins.iter().enumerate() {
            if count <= 0.0 {
                continue;
            }
            let bin_lo = self.lo + i as f64 * width;
            let bin_hi = bin_lo + width;
            let overlap = (b.min(bin_hi) - a.max(bin_lo)).max(0.0);
            if overlap > 0.0 {
                mass += count * (overlap / width).min(1.0);
            }
        }
        mass / self.total
    }
}

/// One product-node component of the mixture.
#[derive(Debug, Clone)]
struct Component {
    weight: f64,
    x: AxisHistogram,
    y: AxisHistogram,
    /// `P(object carries ≥1 keyword hashing to bucket b)` per bucket.
    kw_probs: Vec<f64>,
}

impl Component {
    /// `P(object matches query)` under the within-cluster independence
    /// assumption.
    fn match_prob(&self, query: &RcDvq) -> f64 {
        let mut p = 1.0;
        if let Some(r) = query.range() {
            p *= self.x.mass(r.min_x, r.max_x);
            p *= self.y.mass(r.min_y, r.max_y);
        }
        let kws = query.keywords();
        if !kws.is_empty() {
            // P(any keyword matches) = 1 − Π (1 − p_bucket) over the
            // distinct buckets the query keywords hash to.
            let mut buckets: Vec<usize> = kws.iter().map(|&k| kw_bucket(k)).collect();
            buckets.sort_unstable();
            buckets.dedup();
            let miss: f64 = buckets.iter().map(|&b| 1.0 - self.kw_probs[b]).product();
            p *= 1.0 - miss;
        }
        p
    }
}

/// The sum-product network estimator.
pub struct SpnEstimator {
    domain: Rect,
    /// Buffered sample of the live window the model is (re)built from.
    buffer: SampleStore,
    buffer_capacity: usize,
    /// Built mixture model, if a rebuild has happened.
    components: Vec<Component>,
    clusters: usize,
    bins: usize,
    rebuild_every: u64,
    inserts_since_rebuild: u64,
    /// Total rebuilds performed (diagnostics; the paper's "update cost").
    rebuilds: u64,
    seen: u64,
    population: u64,
    rng: StdRng,
}

impl SpnEstimator {
    /// Builds an empty SPN per `config`. Cluster count and histogram
    /// resolution scale with the memory budget.
    pub fn new(config: &EstimatorConfig) -> Self {
        let buffer_capacity = (config.scaled_reservoir() / 4).max(64);
        // The mixture is deliberately wide: real SPN inference sums over a
        // large node set, and the paper's Fig. 13 shows SPN latency growing
        // linearly with the memory budget — scaling the cluster count (with
        // fixed-resolution leaves) reproduces both.
        let clusters = ((48.0 * config.memory_budget) as usize).clamp(2, 256);
        let bins = 32;
        SpnEstimator {
            domain: config.domain,
            buffer: SampleStore::new(true),
            buffer_capacity,
            components: Vec::new(),
            clusters,
            bins,
            // Rebuilding is the SPN's Achilles heel in streams ("very high
            // computational intensity to update the model constantly",
            // §V-B): a real deployment amortizes it, so the model is
            // rebuilt only after a multiple of the buffer has streamed by
            // and serves stale densities in between.
            rebuild_every: (buffer_capacity as u64 * 4).max(1_024),
            inserts_since_rebuild: 0,
            rebuilds: 0,
            seen: 0,
            population: 0,
            rng: StdRng::seed_from_u64(config.seed ^ 0x59a9),
        }
    }

    /// Number of model rebuilds performed.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Whether a mixture model has been built yet.
    pub fn has_model(&self) -> bool {
        !self.components.is_empty()
    }

    /// The backing sample buffer (read access for diagnostics and tests).
    pub fn store(&self) -> &SampleStore {
        &self.buffer
    }

    fn buffer_insert(&mut self, obj: &GeoTextObject) {
        self.seen += 1;
        if self.buffer.len() < self.buffer_capacity {
            self.buffer.push(obj);
        } else {
            let j = self.rng.gen_range(0..self.seen);
            if (j as usize) < self.buffer_capacity {
                self.buffer.replace(j as u32, obj);
            }
        }
    }

    /// Rebuilds the mixture from the current buffer: k-means over
    /// locations, then per-cluster leaf distributions.
    fn rebuild(&mut self) {
        self.rebuilds += 1;
        self.inserts_since_rebuild = 0;
        self.components.clear();
        if self.buffer.is_empty() {
            return;
        }
        let (xs, ys) = (self.buffer.xs(), self.buffer.ys());
        let n = xs.len();
        let k = self.clusters.min(n);
        // Init centroids from distinct-ish sample positions.
        let mut centroids: Vec<Point> = (0..k)
            .map(|_| {
                let idx = self.rng.gen_range(0..n);
                Point::new(xs[idx], ys[idx])
            })
            .collect();
        let mut assignment = vec![0usize; n];
        for _ in 0..KMEANS_ITERS {
            // Assign.
            for i in 0..n {
                let loc = Point::new(xs[i], ys[i]);
                let mut best = 0;
                let mut best_d = f64::INFINITY;
                for (c, centroid) in centroids.iter().enumerate() {
                    let d = loc.dist_sq(centroid);
                    if d < best_d {
                        best_d = d;
                        best = c;
                    }
                }
                assignment[i] = best;
            }
            // Update.
            let mut sums = vec![(0.0f64, 0.0f64, 0usize); k];
            for i in 0..n {
                let s = &mut sums[assignment[i]];
                s.0 += xs[i];
                s.1 += ys[i];
                s.2 += 1;
            }
            for (c, s) in sums.iter().enumerate() {
                if s.2 > 0 {
                    centroids[c] = Point::new(s.0 / s.2 as f64, s.1 / s.2 as f64);
                }
            }
        }
        // Build components.
        for c in 0..k {
            let members: Vec<u32> = (0..n as u32)
                .filter(|&i| assignment[i as usize] == c)
                .collect();
            if members.is_empty() {
                continue;
            }
            let x = AxisHistogram::build(
                self.domain.min_x,
                self.domain.max_x,
                self.bins,
                members.iter().map(|&i| xs[i as usize]),
            );
            let y = AxisHistogram::build(
                self.domain.min_y,
                self.domain.max_y,
                self.bins,
                members.iter().map(|&i| ys[i as usize]),
            );
            let mut kw_probs = vec![0.0; KW_BUCKETS];
            for &i in &members {
                let mut hit = [false; KW_BUCKETS];
                for &kw in self.buffer.keywords(i) {
                    hit[kw_bucket(kw)] = true;
                }
                for (b, &h) in hit.iter().enumerate() {
                    if h {
                        kw_probs[b] += 1.0;
                    }
                }
            }
            let m = members.len() as f64;
            for p in &mut kw_probs {
                *p /= m;
            }
            self.components.push(Component {
                weight: m,
                x,
                y,
                kw_probs,
            });
        }
    }
}

impl SelectivityEstimator for SpnEstimator {
    fn kind(&self) -> EstimatorKind {
        EstimatorKind::Spn
    }

    fn insert(&mut self, obj: &GeoTextObject) {
        self.population += 1;
        self.buffer_insert(obj);
        self.inserts_since_rebuild += 1;
        if self.inserts_since_rebuild >= self.rebuild_every {
            self.rebuild();
        }
    }

    fn remove(&mut self, obj: &GeoTextObject) {
        self.population = self.population.saturating_sub(1);
        self.buffer.remove(obj.oid);
    }

    fn estimate(&self, query: &RcDvq) -> f64 {
        if self.components.is_empty() {
            // No model yet: answer directly from the buffered sample.
            if self.buffer.is_empty() {
                return 0.0;
            }
            let matches = self.buffer.count(query);
            return matches as f64 / self.buffer.len() as f64 * self.population as f64;
        }
        let total_weight: f64 = self.components.iter().map(|c| c.weight).sum();
        if total_weight <= 0.0 {
            return 0.0;
        }
        let p: f64 = self
            .components
            .iter()
            .map(|c| c.weight / total_weight * c.match_prob(query))
            .sum();
        p.clamp(0.0, 1.0) * self.population as f64
    }

    fn memory_bytes(&self) -> usize {
        self.buffer.memory_bytes()
            + self
                .components
                .iter()
                .map(|c| {
                    (c.x.bins.len() + c.y.bins.len() + c.kw_probs.len())
                        * std::mem::size_of::<f64>()
                })
                .sum::<usize>()
            + std::mem::size_of::<Self>()
    }

    fn clear(&mut self) {
        self.buffer.clear();
        self.components.clear();
        self.inserts_since_rebuild = 0;
        self.seen = 0;
        self.population = 0;
    }

    fn population(&self) -> u64 {
        self.population
    }

    /// Audits the training buffer, plus its capacity bound.
    #[cfg(feature = "debug-invariants")]
    fn audit(&self) -> Result<(), geostream::AuditError> {
        use geostream::audit::ensure;
        self.buffer.audit()?;
        ensure(
            self.buffer.len() <= self.buffer_capacity,
            "SpnEstimator",
            "buffer-capacity",
            || format!("buffer {} over {}", self.buffer.len(), self.buffer_capacity),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geostream::{ObjectId, Timestamp};

    fn config() -> EstimatorConfig {
        EstimatorConfig {
            domain: Rect::new(0.0, 0.0, 100.0, 100.0),
            // Buffer 500; rebuilds fire every max(2000, 1024) inserts.
            reservoir_capacity: 2_000,
            ..EstimatorConfig::default()
        }
    }

    fn obj(id: u64, x: f64, y: f64, kws: &[u32]) -> GeoTextObject {
        GeoTextObject::new(
            ObjectId(id),
            Point::new(x, y),
            kws.iter().copied().map(KeywordId).collect(),
            Timestamp::ZERO,
        )
    }

    #[test]
    fn rebuild_happens_periodically() {
        let mut s = SpnEstimator::new(&config());
        for i in 0..5_000 {
            s.insert(&obj(i, (i % 100) as f64, (i % 97) as f64, &[]));
        }
        assert!(s.rebuilds() >= 2, "no periodic rebuilds: {}", s.rebuilds());
        assert!(s.has_model());
    }

    #[test]
    fn spatial_estimates_follow_clusters() {
        let mut s = SpnEstimator::new(&config());
        // Two clusters: 80% near (20,20), 20% near (80,80).
        for i in 0..6_000u64 {
            let (x, y) = if i % 5 < 4 {
                (20.0 + (i % 7) as f64 * 0.3, 20.0 + (i % 5) as f64 * 0.3)
            } else {
                (80.0 + (i % 7) as f64 * 0.3, 80.0 + (i % 5) as f64 * 0.3)
            };
            s.insert(&obj(i, x, y, &[]));
        }
        assert!(s.has_model(), "model should have been rebuilt");
        let dense = s.estimate(&RcDvq::spatial(Rect::new(15.0, 15.0, 25.0, 25.0)));
        let sparse = s.estimate(&RcDvq::spatial(Rect::new(75.0, 75.0, 90.0, 90.0)));
        let empty = s.estimate(&RcDvq::spatial(Rect::new(45.0, 45.0, 55.0, 55.0)));
        assert!(
            dense > 3_600.0 && dense < 6_000.0,
            "dense estimate off: {dense}"
        );
        assert!(
            sparse > 600.0 && sparse < 2_400.0,
            "sparse estimate off: {sparse}"
        );
        assert!(empty < 600.0, "empty region overestimated: {empty}");
    }

    #[test]
    fn keyword_estimates_reflect_frequency() {
        let mut s = SpnEstimator::new(&config());
        // Keyword 3 on 50% of objects, keyword 40 on 5%.
        for i in 0..6_000u64 {
            let mut kws = vec![(i % 997) as u32 + 100];
            if i % 2 == 0 {
                kws.push(3);
            }
            if i % 20 == 0 {
                kws.push(40);
            }
            s.insert(&obj(i, 50.0, 50.0, &kws));
        }
        let common = s.estimate(&RcDvq::keyword(vec![KeywordId(3)]));
        let rare = s.estimate(&RcDvq::keyword(vec![KeywordId(40)]));
        assert!(common > rare, "frequency ordering lost: {common} vs {rare}");
        assert!(common > 1_800.0, "common keyword underestimated: {common}");
    }

    #[test]
    fn before_first_rebuild_uses_buffer_scan() {
        let mut s = SpnEstimator::new(&config());
        for i in 0..50 {
            let x = if i < 20 { 10.0 } else { 90.0 };
            s.insert(&obj(i, x, 10.0, &[]));
        }
        assert!(!s.has_model());
        let est = s.estimate(&RcDvq::spatial(Rect::new(0.0, 0.0, 20.0, 20.0)));
        assert!((est - 20.0).abs() < 1e-9);
    }

    #[test]
    fn empty_spn_estimates_zero() {
        let s = SpnEstimator::new(&config());
        assert_eq!(
            s.estimate(&RcDvq::spatial(Rect::new(0.0, 0.0, 1.0, 1.0))),
            0.0
        );
    }

    #[test]
    fn estimate_bounded_by_population() {
        let mut s = SpnEstimator::new(&config());
        for i in 0..2_000 {
            s.insert(&obj(i, 50.0, 50.0, &[1, 2, 3]));
        }
        let q = RcDvq::hybrid(
            Rect::new(0.0, 0.0, 100.0, 100.0),
            vec![KeywordId(1), KeywordId(2)],
        );
        assert!(s.estimate(&q) <= s.population() as f64 + 1e-9);
    }

    #[test]
    fn clear_resets() {
        let mut s = SpnEstimator::new(&config());
        for i in 0..2_000 {
            s.insert(&obj(i, 10.0, 10.0, &[]));
        }
        s.clear();
        assert_eq!(s.population(), 0);
        assert!(!s.has_model());
        assert_eq!(
            s.estimate(&RcDvq::spatial(Rect::new(0.0, 0.0, 100.0, 100.0))),
            0.0
        );
    }

    #[test]
    fn axis_histogram_mass() {
        let h = AxisHistogram::build(0.0, 10.0, 10, vec![0.5, 1.5, 2.5, 3.5].into_iter());
        assert!((h.mass(0.0, 10.0) - 1.0).abs() < 1e-9);
        assert!((h.mass(0.0, 2.0) - 0.5).abs() < 1e-9);
        assert_eq!(h.mass(20.0, 30.0), 0.0);
        // Partial bin: half of bin [0,1) ⇒ half of its 0.25 mass.
        assert!((h.mass(0.0, 0.5) - 0.125).abs() < 1e-9);
    }

    #[test]
    fn buffer_eviction_consistency() {
        let mut s = SpnEstimator::new(&EstimatorConfig {
            reservoir_capacity: 400, // buffer 100
            ..config()
        });
        let mut live = Vec::new();
        for i in 0..2_000u64 {
            let o = obj(i, (i % 100) as f64, 5.0, &[]);
            s.insert(&o);
            live.push(o);
            if live.len() > 150 {
                s.remove(&live.remove(0));
            }
        }
        for (slot, oid) in s.buffer.oids().iter().enumerate() {
            assert_eq!(s.buffer.slot_of(*oid), Some(slot as u32));
        }
        assert_eq!(s.population(), 150);
    }
}
