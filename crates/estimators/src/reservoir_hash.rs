//! Hybrid reservoir sampling hashmap (the paper's `RSH`).
//!
//! The same algorithm-R reservoir as [`crate::reservoir::ReservoirList`],
//! but every sampled object is additionally indexed by the 2D grid cell its
//! location falls into (Figure 1(b) of the paper). Queries with a spatial
//! predicate only scan the sample objects in cells the range touches, which
//! removes the full-sample iteration overhead — the reason RSH gives RSL's
//! accuracy at lower latency and is LATEST's default estimator.
//!
//! The sample lives in a shared [`SampleStore`]; the grid holds bare `u32`
//! slot lists over it. Keyword-only queries answer from the store's
//! posting index, and hybrid queries pick posting-first vs grid-gather by
//! the store's cost cutover.

use crate::store::{intersects_sorted, SampleStore};
use crate::traits::{EstimatorConfig, EstimatorKind, SelectivityEstimator};
use geostream::{GeoTextObject, Point, RcDvq, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Reservoir sample indexed by a 2D grid over the domain.
pub struct ReservoirHash {
    capacity: usize,
    domain: Rect,
    side: usize,
    store: SampleStore,
    /// `cell → slots of sampled objects in the cell`.
    grid: HashMap<u32, Vec<u32>>,
    seen: u64,
    population: u64,
    rng: StdRng,
}

impl ReservoirHash {
    /// Builds an empty RSH per `config` (reservoir capacity and grid size
    /// both scale with the memory budget).
    pub fn new(config: &EstimatorConfig) -> Self {
        let capacity = config.scaled_reservoir();
        ReservoirHash {
            capacity,
            domain: config.domain,
            side: config.scaled_grid_side(),
            store: SampleStore::with_capacity(capacity.min(1 << 20), true),
            grid: HashMap::new(),
            seen: 0,
            population: 0,
            rng: StdRng::seed_from_u64(config.seed ^ 0x2525),
        }
    }

    /// Current number of sampled objects.
    pub fn sample_len(&self) -> usize {
        self.store.len()
    }

    /// The backing sample store (read access for diagnostics and tests).
    pub fn store(&self) -> &SampleStore {
        &self.store
    }

    fn cell_id(&self, p: &Point) -> u32 {
        self.cell_id_xy(p.x, p.y)
    }

    fn cell_id_xy(&self, x: f64, y: f64) -> u32 {
        let fx = (x - self.domain.min_x) / self.domain.width();
        let fy = (y - self.domain.min_y) / self.domain.height();
        let cx = ((fx * self.side as f64) as isize).clamp(0, self.side as isize - 1) as u32;
        let cy = ((fy * self.side as f64) as isize).clamp(0, self.side as isize - 1) as u32;
        cy * self.side as u32 + cx
    }

    /// Cell of the object currently stored at `slot`.
    fn cell_of_slot(&self, slot: u32) -> u32 {
        let s = slot as usize;
        self.cell_id_xy(self.store.xs()[s], self.store.ys()[s])
    }

    fn unlink(&mut self, cell: u32, slot: u32) {
        if let Some(v) = self.grid.get_mut(&cell) {
            if let Some(pos) = v.iter().position(|&s| s == slot) {
                v.swap_remove(pos);
            }
            if v.is_empty() {
                self.grid.remove(&cell);
            }
        }
    }

    fn link(&mut self, cell: u32, slot: u32) {
        self.grid.entry(cell).or_default().push(slot);
    }

    fn place(&mut self, obj: &GeoTextObject, slot: usize) {
        if slot < self.store.len() {
            let cell = self.cell_of_slot(slot as u32);
            self.unlink(cell, slot as u32);
            self.store.replace(slot as u32, obj);
        } else {
            self.store.push(obj);
        }
        self.link(self.cell_id(&obj.loc), slot as u32);
    }

    /// Cell ids the (clipped) rectangle touches.
    fn cells_for(&self, r: &Rect) -> Vec<u32> {
        let Some(clipped) = r.intersection(&self.domain) else {
            return Vec::new();
        };
        let w = self.domain.width() / self.side as f64;
        let h = self.domain.height() / self.side as f64;
        let x0 = (((clipped.min_x - self.domain.min_x) / w) as isize)
            .clamp(0, self.side as isize - 1) as u32;
        let x1 = (((clipped.max_x - self.domain.min_x) / w) as isize)
            .clamp(0, self.side as isize - 1) as u32;
        let y0 = (((clipped.min_y - self.domain.min_y) / h) as isize)
            .clamp(0, self.side as isize - 1) as u32;
        let y1 = (((clipped.max_y - self.domain.min_y) / h) as isize)
            .clamp(0, self.side as isize - 1) as u32;
        let mut cells = Vec::with_capacity(((x1 - x0 + 1) * (y1 - y0 + 1)) as usize);
        for cy in y0..=y1 {
            for cx in x0..=x1 {
                cells.push(cy * self.side as u32 + cx);
            }
        }
        cells
    }

    /// Count of sample objects matching `query` via the grid: gather the
    /// touched cells' slot lists and test each candidate.
    fn grid_count(&self, query: &RcDvq, r: &Rect) -> usize {
        let kws = query.keywords();
        let mut matches = 0usize;
        for cell in self.cells_for(r) {
            let Some(slots) = self.grid.get(&cell) else {
                continue;
            };
            if kws.is_empty() {
                matches += self.store.count_slots_in_rect(slots, r);
            } else {
                for &s in slots {
                    if self.store.slot_in_rect(s, r)
                        && intersects_sorted(self.store.keywords(s), kws)
                    {
                        matches += 1;
                    }
                }
            }
        }
        matches
    }
}

impl SelectivityEstimator for ReservoirHash {
    fn kind(&self) -> EstimatorKind {
        EstimatorKind::Rsh
    }

    fn insert(&mut self, obj: &GeoTextObject) {
        self.population += 1;
        self.seen += 1;
        if self.store.len() < self.capacity {
            self.place(obj, self.store.len());
        } else {
            let j = self.rng.gen_range(0..self.seen);
            if (j as usize) < self.capacity {
                self.place(obj, j as usize);
            }
        }
    }

    fn remove(&mut self, obj: &GeoTextObject) {
        self.population = self.population.saturating_sub(1);
        let Some(slot) = self.store.slot_of(obj.oid) else {
            return;
        };
        // Grid bookkeeping needs cell ids *before* the store swap-removes:
        // unlink the victim and (if a move happens) the former last slot,
        // then relink the moved object under its new slot id.
        let victim_cell = self.cell_of_slot(slot);
        let last = (self.store.len() - 1) as u32;
        self.unlink(victim_cell, slot);
        if slot != last {
            let moved_cell = self.cell_of_slot(last);
            self.unlink(moved_cell, last);
            self.store.remove(obj.oid);
            self.link(moved_cell, slot);
        } else {
            self.store.remove(obj.oid);
        }
    }

    fn estimate(&self, query: &RcDvq) -> f64 {
        if self.store.is_empty() {
            return 0.0;
        }
        let n = self.store.len();
        let matches = match query.range() {
            Some(r) => {
                let kws = query.keywords();
                // Hybrid cost cutover: a rare keyword's posting union is
                // cheaper than gathering the touched cells.
                let posting_first = !kws.is_empty()
                    && self
                        .store
                        .posting_mass(kws)
                        .is_some_and(|mass| mass * 4 < n);
                if posting_first {
                    self.store.count(query)
                } else {
                    self.grid_count(query, r)
                }
            }
            // Pure keyword query: no spatial pruning; the posting index
            // answers without touching the grid.
            None => self.store.count(query),
        };
        matches as f64 / n as f64 * self.population as f64
    }

    /// Batch variant preserving [`ReservoirHash::estimate`]'s per-query
    /// routing exactly: queries the single path would answer from the
    /// posting index (pure keyword, and posting-first hybrids under the
    /// cost cutover) share one [`SampleStore::count_many`] call — one
    /// union merge per common keyword set — while grid-routed queries
    /// take the same grid gather the single path takes. Identical
    /// routing + exact kernels ⇒ bit-equal results.
    fn estimate_batch(&self, queries: &[RcDvq]) -> Vec<f64> {
        if self.store.is_empty() {
            return vec![0.0; queries.len()];
        }
        let n = self.store.len();
        let mut store_routed: Vec<usize> = Vec::new();
        let mut store_queries: Vec<RcDvq> = Vec::new();
        let mut matches = vec![0usize; queries.len()];
        for (i, q) in queries.iter().enumerate() {
            match q.range() {
                Some(r) => {
                    let kws = q.keywords();
                    let posting_first = !kws.is_empty()
                        && self
                            .store
                            .posting_mass(kws)
                            .is_some_and(|mass| mass * 4 < n);
                    if posting_first {
                        store_routed.push(i);
                        store_queries.push(q.clone());
                    } else {
                        matches[i] = self.grid_count(q, r);
                    }
                }
                None => {
                    store_routed.push(i);
                    store_queries.push(q.clone());
                }
            }
        }
        for (&i, c) in store_routed
            .iter()
            .zip(self.store.count_many(&store_queries))
        {
            matches[i] = c;
        }
        matches
            .into_iter()
            .map(|m| m as f64 / n as f64 * self.population as f64)
            .collect()
    }

    fn memory_bytes(&self) -> usize {
        // Every grid entry holds exactly one live slot, so the slot total
        // equals the sample length — no walk needed.
        self.store.memory_bytes()
            + self.store.len() * std::mem::size_of::<u32>()
            + self.grid.len() * (std::mem::size_of::<u32>() + std::mem::size_of::<Vec<u32>>())
            + std::mem::size_of::<Self>()
    }

    fn clear(&mut self) {
        self.store.clear();
        self.grid.clear();
        self.seen = 0;
        self.population = 0;
    }

    fn population(&self) -> u64 {
        self.population
    }

    /// Audits the backing store, plus the spatial grid over it: every
    /// sampled slot is linked under exactly the cell its coordinates hash
    /// to, and the grid holds nothing else.
    #[cfg(feature = "debug-invariants")]
    fn audit(&self) -> Result<(), geostream::AuditError> {
        use geostream::audit::ensure;
        const S: &str = "ReservoirHash";
        self.store.audit()?;
        ensure(
            self.store.len() <= self.capacity,
            S,
            "sample-bounds",
            || {
                format!(
                    "sample {} over capacity {}",
                    self.store.len(),
                    self.capacity
                )
            },
        )?;
        let linked: usize = self.grid.values().map(Vec::len).sum();
        ensure(linked == self.store.len(), S, "grid-coverage", || {
            format!("{linked} grid links for {} slots", self.store.len())
        })?;
        for (&cell, slots) in &self.grid {
            ensure(!slots.is_empty(), S, "grid-coverage", || {
                format!("cell {cell} kept with an empty slot list")
            })?;
            for &slot in slots {
                ensure(
                    (slot as usize) < self.store.len() && self.cell_of_slot(slot) == cell,
                    S,
                    "grid-placement",
                    || format!("slot {slot} linked under cell {cell}"),
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geostream::{KeywordId, ObjectId, Timestamp};

    fn config(cap: usize) -> EstimatorConfig {
        EstimatorConfig {
            reservoir_capacity: cap,
            domain: Rect::new(0.0, 0.0, 64.0, 64.0),
            ..EstimatorConfig::default()
        }
    }

    fn obj(id: u64, x: f64, y: f64, kws: &[u32]) -> GeoTextObject {
        GeoTextObject::new(
            ObjectId(id),
            Point::new(x, y),
            kws.iter().copied().map(KeywordId).collect(),
            Timestamp::ZERO,
        )
    }

    #[test]
    fn exact_when_sample_holds_everything() {
        let mut r = ReservoirHash::new(&config(1_000));
        for i in 0..100 {
            let x = if i < 40 { 1.0 } else { 50.0 };
            r.insert(&obj(i, x, 1.0, &[i as u32 % 4]));
        }
        let q = RcDvq::spatial(Rect::new(0.0, 0.0, 10.0, 10.0));
        assert!((r.estimate(&q) - 40.0).abs() < 1e-9);
        let qk = RcDvq::keyword(vec![KeywordId(1)]);
        assert!((r.estimate(&qk) - 25.0).abs() < 1e-9);
        let qh = RcDvq::hybrid(Rect::new(40.0, 0.0, 60.0, 10.0), vec![KeywordId(2)]);
        assert!((r.estimate(&qh) - 15.0).abs() < 1e-9);
    }

    #[test]
    fn grid_scan_agrees_with_full_scan() {
        let mut r = ReservoirHash::new(&config(5_000));
        let mut seed = 9u64;
        for i in 0..3_000 {
            seed = seed.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let x = (seed >> 11) as f64 / (1u64 << 53) as f64 * 64.0;
            seed = seed.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let y = (seed >> 11) as f64 / (1u64 << 53) as f64 * 64.0;
            r.insert(&obj(i, x, y, &[(i % 7) as u32]));
        }
        for rect in [
            Rect::new(0.0, 0.0, 64.0, 64.0),
            Rect::new(10.3, 20.7, 35.2, 33.3),
            Rect::new(0.0, 0.0, 0.5, 0.5),
        ] {
            let q = RcDvq::hybrid(rect, vec![KeywordId(3)]);
            let grid_est = r.estimate(&q);
            let full = (0..r.store.len() as u32)
                .filter(|&s| r.store.slot_matches(s, &q))
                .count() as f64
                / r.store.len() as f64
                * r.population() as f64;
            assert!(
                (grid_est - full).abs() < 1e-9,
                "grid scan diverged: {grid_est} vs {full} for {rect:?}"
            );
        }
    }

    #[test]
    fn churn_keeps_grid_consistent() {
        let mut r = ReservoirHash::new(&config(64));
        let mut live: Vec<GeoTextObject> = Vec::new();
        let mut seed = 77u64;
        for i in 0..3_000u64 {
            seed = seed.wrapping_mul(2_862_933_555_777_941_757).wrapping_add(3);
            let x = (seed >> 11) as f64 / (1u64 << 53) as f64 * 64.0;
            let o = obj(i, x, x / 2.0, &[]);
            r.insert(&o);
            live.push(o);
            if live.len() > 200 {
                let victim = live.remove(0);
                r.remove(&victim);
            }
        }
        // Invariants: every slot map entry points at its object, and grid
        // entries cover exactly the sample.
        for (slot, oid) in r.store.oids().iter().enumerate() {
            assert_eq!(r.store.slot_of(*oid), Some(slot as u32));
        }
        let grid_slots: usize = r.grid.values().map(Vec::len).sum();
        assert_eq!(grid_slots, r.store.len());
        for (cell, slots) in &r.grid {
            for &s in slots {
                assert_eq!(r.cell_of_slot(s), *cell, "slot in wrong cell");
            }
        }
    }

    #[test]
    fn estimate_batch_is_bit_equal_to_singles() {
        let mut r = ReservoirHash::new(&config(256));
        let mut seed = 13u64;
        for i in 0..4_000 {
            seed = seed.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let x = (seed >> 11) as f64 / (1u64 << 53) as f64 * 64.0;
            seed = seed.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let y = (seed >> 11) as f64 / (1u64 << 53) as f64 * 64.0;
            // Keyword 9 is rare (posting-first hybrids), 0 is common
            // (grid-routed hybrids under the cutover).
            let kws: &[u32] = if i % 64 == 0 { &[0, 9] } else { &[0, i % 5] };
            r.insert(&obj(i as u64, x, y, kws));
        }
        let batch = vec![
            RcDvq::spatial(Rect::new(0.0, 0.0, 30.0, 30.0)),
            RcDvq::spatial(Rect::new(12.5, 3.25, 60.0, 48.0)),
            RcDvq::keyword(vec![KeywordId(3)]),
            RcDvq::keyword(vec![KeywordId(9)]),
            RcDvq::hybrid(Rect::new(0.0, 0.0, 40.0, 64.0), vec![KeywordId(9)]),
            RcDvq::hybrid(Rect::new(0.0, 0.0, 40.0, 64.0), vec![KeywordId(0)]),
        ];
        let many = r.estimate_batch(&batch);
        for (q, b) in batch.iter().zip(many) {
            assert_eq!(b.to_bits(), r.estimate(q).to_bits(), "diverged on {q:?}");
        }
    }

    #[test]
    fn estimate_scales_to_population() {
        let mut r = ReservoirHash::new(&config(200));
        for i in 0..20_000 {
            let x = if i % 4 == 0 { 1.0 } else { 50.0 };
            r.insert(&obj(i, x, 1.0, &[]));
        }
        let q = RcDvq::spatial(Rect::new(0.0, 0.0, 10.0, 10.0));
        let est = r.estimate(&q);
        assert!(
            (est - 5_000.0).abs() < 2_000.0,
            "estimate too far from truth: {est}"
        );
    }

    #[test]
    fn out_of_domain_query_is_zero() {
        let mut r = ReservoirHash::new(&config(10));
        r.insert(&obj(1, 5.0, 5.0, &[]));
        let q = RcDvq::spatial(Rect::new(100.0, 100.0, 110.0, 110.0));
        assert_eq!(r.estimate(&q), 0.0);
    }

    #[test]
    fn clear_resets() {
        let mut r = ReservoirHash::new(&config(10));
        for i in 0..50 {
            r.insert(&obj(i, 5.0, 5.0, &[]));
        }
        r.clear();
        assert_eq!(r.sample_len(), 0);
        assert_eq!(r.population(), 0);
        assert!(r.grid.is_empty());
    }
}
