//! Equi-depth (non-uniform binning) grid histogram — one of the "hybrid
//! structure" variations §IV points at ("different strategies to build
//! two-dimensional counting cells, such as … non-uniform binning").
//!
//! Instead of equal-width cells, the axis boundaries are placed at
//! marginal quantiles of a sample of the window, so every column (and
//! every row) holds roughly the same number of objects. Skewed streams get
//! fine cells exactly where the data is dense — the classic equi-depth
//! advantage over equi-width binning — at the cost of periodic boundary
//! rebuilds as the window slides.
//!
//! The boundary sample lives in a shared [`SampleStore`] with the posting
//! index disabled: this estimator never answers keyword predicates from
//! the sample, so it skips that upkeep and rebuilds read the coordinate
//! columns directly.
//!
//! This estimator is **not** part of the paper's six-estimator pool (the
//! pool is pluggable, §IV: "system administrators can select a different
//! set of estimators"); it ships as a library extension with the same
//! [`SelectivityEstimator`] interface so downstream users can swap it in.

use crate::store::SampleStore;
use crate::traits::{EstimatorConfig, EstimatorKind, SelectivityEstimator};
use geostream::{GeoTextObject, Point, QueryType, RcDvq, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Boundary rebuilds happen after this fraction of the (sampled) window
/// has churned.
const REBUILD_CHURN: f64 = 0.5;

/// An equi-depth 2D histogram with quantile-placed cell boundaries.
pub struct EquiDepthGrid {
    domain: Rect,
    side: usize,
    /// Interior x-boundaries (length `side − 1`, ascending).
    x_bounds: Vec<f64>,
    /// Interior y-boundaries (length `side − 1`, ascending).
    y_bounds: Vec<f64>,
    /// Row-major cell counts under the current boundaries.
    cells: Vec<f64>,
    /// Location sample the boundaries are computed from (reservoir over
    /// the live window).
    store: SampleStore,
    sample_capacity: usize,
    seen: u64,
    churn_since_rebuild: u64,
    population: u64,
    rng: StdRng,
}

impl EquiDepthGrid {
    /// Builds an empty estimator per `config` (cell count and sample size
    /// scale with the memory budget).
    pub fn new(config: &EstimatorConfig) -> Self {
        let side = config.scaled_grid_side();
        EquiDepthGrid {
            domain: config.domain,
            side,
            x_bounds: Vec::new(),
            y_bounds: Vec::new(),
            cells: vec![0.0; side * side],
            store: SampleStore::new(false),
            sample_capacity: (config.scaled_reservoir() / 8).max(256),
            seen: 0,
            churn_since_rebuild: 0,
            population: 0,
            rng: StdRng::seed_from_u64(config.seed ^ 0xe9d1u64),
        }
    }

    /// Cells per axis.
    pub fn side(&self) -> usize {
        self.side
    }

    /// Whether quantile boundaries have been computed yet.
    pub fn has_boundaries(&self) -> bool {
        !self.x_bounds.is_empty()
    }

    /// The backing sample store (read access for diagnostics and tests).
    pub fn store(&self) -> &SampleStore {
        &self.store
    }

    /// Column index of `x` under the current boundaries.
    fn col(&self, x: f64) -> usize {
        self.x_bounds.partition_point(|&b| b <= x)
    }

    /// Row index of `y` under the current boundaries.
    fn row(&self, y: f64) -> usize {
        self.y_bounds.partition_point(|&b| b <= y)
    }

    fn cell_of(&self, p: &Point) -> usize {
        self.row(p.y) * self.side + self.col(p.x)
    }

    /// The x-extent of column `c`.
    fn col_extent(&self, c: usize) -> (f64, f64) {
        let lo = if c == 0 {
            self.domain.min_x
        } else {
            self.x_bounds[c - 1]
        };
        let hi = if c == self.side - 1 {
            self.domain.max_x
        } else {
            self.x_bounds[c]
        };
        (lo, hi)
    }

    /// The y-extent of row `r`.
    fn row_extent(&self, r: usize) -> (f64, f64) {
        let lo = if r == 0 {
            self.domain.min_y
        } else {
            self.y_bounds[r - 1]
        };
        let hi = if r == self.side - 1 {
            self.domain.max_y
        } else {
            self.y_bounds[r]
        };
        (lo, hi)
    }

    /// Recomputes quantile boundaries from the sample and re-bins every
    /// sampled object; counts are scaled so the total still matches the
    /// population.
    fn rebuild(&mut self) {
        self.churn_since_rebuild = 0;
        if self.store.is_empty() {
            return;
        }
        let mut xs: Vec<f64> = self.store.xs().to_vec();
        let mut ys: Vec<f64> = self.store.ys().to_vec();
        // LINT-ALLOW(no-panic): coordinates are finite on ingest (synthetic domain is bounded), so partial_cmp succeeds
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite coordinates"));
        // LINT-ALLOW(no-panic): same as above: finite coordinates always compare
        ys.sort_by(|a, b| a.partial_cmp(b).expect("finite coordinates"));
        let quantile = |sorted: &[f64], q: f64| {
            let idx = ((sorted.len() as f64 * q) as usize).min(sorted.len() - 1);
            sorted[idx]
        };
        self.x_bounds = (1..self.side)
            .map(|i| quantile(&xs, i as f64 / self.side as f64))
            .collect();
        self.y_bounds = (1..self.side)
            .map(|i| quantile(&ys, i as f64 / self.side as f64))
            .collect();
        // Re-bin the sample and scale to the live population.
        let scale = self.population as f64 / self.store.len() as f64;
        let mut counts = vec![0.0f64; self.side * self.side];
        for (&x, &y) in self.store.xs().iter().zip(self.store.ys()) {
            let idx = self.row(y) * self.side + self.col(x);
            counts[idx] += scale;
        }
        self.cells = counts;
    }

    /// Estimated count inside `r` under the current (non-uniform) cells.
    fn estimate_range(&self, r: &Rect) -> f64 {
        if !self.has_boundaries() {
            // No boundaries yet: uniformity over the domain.
            return self.population as f64 * self.domain.coverage_by(r);
        }
        let Some(clipped) = r.intersection(&self.domain) else {
            return 0.0;
        };
        let c0 = self.col(clipped.min_x);
        let c1 = self.col(clipped.max_x).min(self.side - 1);
        let r0 = self.row(clipped.min_y);
        let r1 = self.row(clipped.max_y).min(self.side - 1);
        let mut total = 0.0;
        for row in r0..=r1 {
            let (ylo, yhi) = self.row_extent(row);
            for col in c0..=c1 {
                let count = self.cells[row * self.side + col];
                if count <= 0.0 {
                    continue;
                }
                let (xlo, xhi) = self.col_extent(col);
                let cell = Rect::new(xlo, ylo, xhi.max(xlo), yhi.max(ylo));
                total += count * cell.coverage_by(&clipped);
            }
        }
        total
    }
}

impl SelectivityEstimator for EquiDepthGrid {
    // Reported as the histogram family; the pool never constructs this
    // type, so the kind only matters for display.
    fn kind(&self) -> EstimatorKind {
        EstimatorKind::H4096
    }

    fn insert(&mut self, obj: &GeoTextObject) {
        self.population += 1;
        self.seen += 1;
        self.churn_since_rebuild += 1;
        // Maintain the boundary sample (algorithm R).
        if self.store.len() < self.sample_capacity {
            self.store.push(obj);
        } else {
            let j = self.rng.gen_range(0..self.seen);
            if (j as usize) < self.sample_capacity {
                self.store.replace(j as u32, obj);
            }
        }
        if self.has_boundaries() {
            let idx = self.cell_of(&obj.loc);
            self.cells[idx] += 1.0;
        }
        if self.churn_since_rebuild as f64
            >= (self.sample_capacity as f64 * REBUILD_CHURN).max(64.0)
        {
            self.rebuild();
        }
    }

    fn remove(&mut self, obj: &GeoTextObject) {
        self.population = self.population.saturating_sub(1);
        self.churn_since_rebuild += 1;
        self.store.remove(obj.oid);
        if self.has_boundaries() {
            let idx = self.cell_of(&obj.loc);
            self.cells[idx] = (self.cells[idx] - 1.0).max(0.0);
        }
    }

    fn estimate(&self, query: &RcDvq) -> f64 {
        if self.population == 0 {
            // Rebuilt cell counts are scaled estimates; with nothing live
            // there is nothing to estimate (avoids scaling residue).
            return 0.0;
        }
        match query.query_type() {
            QueryType::Spatial | QueryType::Hybrid => {
                // LINT-ALLOW(no-panic): Spatial/Hybrid queries carry a range by construction
                self.estimate_range(query.range().expect("spatial/hybrid has range"))
            }
            QueryType::Keyword => self.population as f64,
        }
    }

    fn memory_bytes(&self) -> usize {
        self.cells.len() * std::mem::size_of::<f64>()
            + (self.x_bounds.len() + self.y_bounds.len()) * std::mem::size_of::<f64>()
            + self.store.memory_bytes()
            + std::mem::size_of::<Self>()
    }

    fn clear(&mut self) {
        self.cells.iter_mut().for_each(|c| *c = 0.0);
        self.x_bounds.clear();
        self.y_bounds.clear();
        self.store.clear();
        self.seen = 0;
        self.churn_since_rebuild = 0;
        self.population = 0;
    }

    fn population(&self) -> u64 {
        self.population
    }

    /// Audits the backing location sample, plus the quantile grid: cells
    /// are non-negative and finite, the boundary vectors are sorted with
    /// `side − 1` entries each (or absent before the first rebuild), and
    /// the sample respects its capacity.
    #[cfg(feature = "debug-invariants")]
    fn audit(&self) -> Result<(), geostream::AuditError> {
        use geostream::audit::ensure;
        const S: &str = "EquiDepthGrid";
        self.store.audit()?;
        ensure(
            self.store.len() <= self.sample_capacity,
            S,
            "sample-bounds",
            || {
                format!(
                    "sample {} over capacity {}",
                    self.store.len(),
                    self.sample_capacity
                )
            },
        )?;
        ensure(
            self.cells.len() == self.side * self.side,
            S,
            "cell-grid",
            || format!("{} cells for side {}", self.cells.len(), self.side),
        )?;
        for (i, &c) in self.cells.iter().enumerate() {
            ensure(c.is_finite() && c >= 0.0, S, "cell-bounds", || {
                format!("cell {i} holds {c}")
            })?;
        }
        for (axis, bounds) in [("x", &self.x_bounds), ("y", &self.y_bounds)] {
            ensure(
                bounds.is_empty() || bounds.len() == self.side - 1,
                S,
                "boundaries",
                || format!("{axis}: {} boundaries for side {}", bounds.len(), self.side),
            )?;
            ensure(
                bounds.windows(2).all(|w| w[0] <= w[1]),
                S,
                "boundaries",
                || format!("{axis}-boundaries not ascending"),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geostream::{ObjectId, Timestamp};

    fn config(side_cells: usize) -> EstimatorConfig {
        EstimatorConfig {
            domain: Rect::new(0.0, 0.0, 100.0, 100.0),
            grid_cells: side_cells,
            reservoir_capacity: 8_192,
            ..EstimatorConfig::default()
        }
    }

    fn obj(id: u64, x: f64, y: f64) -> GeoTextObject {
        GeoTextObject::new(ObjectId(id), Point::new(x, y), vec![], Timestamp::ZERO)
    }

    #[test]
    fn boundaries_follow_skew() {
        // 90% of mass in x < 10: most column boundaries must sit below 10.
        let mut g = EquiDepthGrid::new(&config(64)); // 8×8
        for i in 0..4_000u64 {
            let x = if i % 10 < 9 {
                (i % 97) as f64 * 0.1
            } else {
                10.0 + (i % 900) as f64 * 0.1
            };
            g.insert(&obj(i, x, (i % 100) as f64));
        }
        assert!(g.has_boundaries());
        let below = g.x_bounds.iter().filter(|&&b| b < 10.0).count();
        assert!(
            below >= g.x_bounds.len() / 2,
            "boundaries ignore skew: {:?}",
            g.x_bounds
        );
    }

    #[test]
    fn total_mass_matches_population() {
        let mut g = EquiDepthGrid::new(&config(64));
        for i in 0..3_000u64 {
            g.insert(&obj(i, (i % 100) as f64, ((i * 7) % 100) as f64));
        }
        let whole = RcDvq::spatial(Rect::new(0.0, 0.0, 100.0, 100.0));
        let est = g.estimate(&whole);
        let pop = g.population() as f64;
        assert!(
            (est - pop).abs() / pop < 0.05,
            "whole-domain mass off: {est} vs {pop}"
        );
    }

    #[test]
    fn dense_regions_resolve_better_than_equiwidth() {
        // All mass inside [0,5)²: an equi-depth grid puts most cells
        // there, so a small sub-query resolves accurately.
        let mut g = EquiDepthGrid::new(&config(64));
        let mut truth_in_q = 0u64;
        let mut s = 42u64;
        for i in 0..5_000u64 {
            s = s.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let x = (s >> 11) as f64 / (1u64 << 53) as f64 * 5.0;
            s = s.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let y = (s >> 11) as f64 / (1u64 << 53) as f64 * 5.0;
            if x < 2.5 && y < 2.5 {
                truth_in_q += 1;
            }
            g.insert(&obj(i, x, y));
        }
        let q = RcDvq::spatial(Rect::new(0.0, 0.0, 2.5, 2.5));
        let est = g.estimate(&q);
        let rel = (est - truth_in_q as f64).abs() / truth_in_q as f64;
        assert!(
            rel < 0.25,
            "equi-depth failed on dense region: {est} vs {truth_in_q}"
        );
    }

    #[test]
    fn before_first_rebuild_assumes_uniform() {
        let mut g = EquiDepthGrid::new(&config(64));
        for i in 0..10 {
            g.insert(&obj(i, 50.0, 50.0));
        }
        assert!(!g.has_boundaries());
        let q = RcDvq::spatial(Rect::new(0.0, 0.0, 50.0, 50.0));
        assert!((g.estimate(&q) - 2.5).abs() < 1e-9); // 10 × quarter area
    }

    #[test]
    fn removal_retracts() {
        let mut g = EquiDepthGrid::new(&config(64));
        let objects: Vec<_> = (0..2_000).map(|i| obj(i, (i % 100) as f64, 5.0)).collect();
        for o in &objects {
            g.insert(o);
        }
        for o in &objects {
            g.remove(o);
        }
        assert_eq!(g.population(), 0);
        let whole = RcDvq::spatial(Rect::new(0.0, 0.0, 100.0, 100.0));
        assert!(g.estimate(&whole).abs() < 1e-6);
    }

    #[test]
    fn clear_resets() {
        let mut g = EquiDepthGrid::new(&config(64));
        for i in 0..2_000 {
            g.insert(&obj(i, (i % 100) as f64, 5.0));
        }
        g.clear();
        assert_eq!(g.population(), 0);
        assert!(!g.has_boundaries());
    }
}
