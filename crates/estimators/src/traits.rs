//! The estimator abstraction LATEST builds on.

use geostream::{GeoTextObject, RcDvq, Rect};
use serde::{Deserialize, Serialize};

/// Identity of an estimator implementation. This is the *class label* of
/// LATEST's Hoeffding tree: the learning model's job is to predict the best
/// `EstimatorKind` for the current workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EstimatorKind {
    /// 2D equi-width histogram (the paper's `H4096`).
    H4096,
    /// Reservoir sampling list.
    Rsl,
    /// Reservoir sampling hashmap (reservoir indexed by a grid).
    Rsh,
    /// Augmented adaptive space-partition tree.
    Aasp,
    /// Workload-driven feed-forward neural network.
    Ffn,
    /// Data-driven sum-product network.
    Spn,
}

impl EstimatorKind {
    /// Number of estimator kinds (length of [`EstimatorKind::ALL`]) —
    /// sizes per-kind metric arrays without a magic `6`.
    pub const COUNT: usize = 6;

    /// All kinds, in stable label order (index = Hoeffding class id).
    pub const ALL: [EstimatorKind; Self::COUNT] = [
        EstimatorKind::H4096,
        EstimatorKind::Rsl,
        EstimatorKind::Rsh,
        EstimatorKind::Aasp,
        EstimatorKind::Ffn,
        EstimatorKind::Spn,
    ];

    /// Stable dense index (also the ML class label).
    pub fn index(self) -> u32 {
        match self {
            EstimatorKind::H4096 => 0,
            EstimatorKind::Rsl => 1,
            EstimatorKind::Rsh => 2,
            EstimatorKind::Aasp => 3,
            EstimatorKind::Ffn => 4,
            EstimatorKind::Spn => 5,
        }
    }

    /// Inverse of [`EstimatorKind::index`].
    pub fn from_index(i: u32) -> Option<EstimatorKind> {
        Self::ALL.get(i as usize).copied()
    }

    /// The paper's display name.
    pub fn name(self) -> &'static str {
        match self {
            EstimatorKind::H4096 => "H4096",
            EstimatorKind::Rsl => "RSL",
            EstimatorKind::Rsh => "RSH",
            EstimatorKind::Aasp => "AASP",
            EstimatorKind::Ffn => "FFN",
            EstimatorKind::Spn => "SPN",
        }
    }
}

impl std::fmt::Display for EstimatorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Sizing and domain parameters shared by all estimators.
///
/// `memory_budget` scales every structure the way the paper's §VI-F sweep
/// does: `1.0` reproduces the §VI-A defaults scaled to laptop size
/// (reservoirs of `100K` objects, 4096 grid cells), `2.0` doubles them, and
/// so on.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EstimatorConfig {
    /// The spatial domain of the stream.
    pub domain: Rect,
    /// Relative memory budget multiplier (1.0 = defaults).
    pub memory_budget: f64,
    /// Base reservoir capacity before the budget multiplier.
    pub reservoir_capacity: usize,
    /// Base number of histogram grid cells (must be a perfect square for
    /// the equi-width grid) before the budget multiplier.
    pub grid_cells: usize,
    /// AASP split threshold: a leaf splits when its share of the window
    /// population exceeds `split_value × (capacity heuristic)`; the paper
    /// uses 0.5.
    pub aasp_split_value: f64,
    /// FFN training budget: feedback records consumed before the network
    /// freezes (the paper's FFN is batch-trained and cannot keep adapting;
    /// see `estimators::ffn`).
    pub ffn_train_budget: u64,
    /// RNG seed for the randomized structures (reservoirs, FFN init, SPN).
    pub seed: u64,
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        EstimatorConfig {
            domain: Rect::WORLD,
            memory_budget: 1.0,
            reservoir_capacity: 100_000,
            grid_cells: 4_096,
            aasp_split_value: 0.5,
            ffn_train_budget: 1_500,
            seed: 0x001a_7e57,
        }
    }
}

impl EstimatorConfig {
    /// Checks that every sizing/domain parameter is usable by all six
    /// estimator kinds. [`try_build_estimator`] runs this before
    /// constructing anything, and `LatestConfig::validate` (in
    /// `latest-core`) surfaces the same errors at system-assembly time.
    pub fn validate(&self) -> Result<(), crate::EstimateError> {
        let invalid = |field: &'static str, reason: String| {
            Err(crate::EstimateError::InvalidConfig { field, reason })
        };
        if !(self.domain.max_x > self.domain.min_x && self.domain.max_y > self.domain.min_y) {
            return invalid(
                "domain",
                format!(
                    "must have positive extent (got x {}..{}, y {}..{})",
                    self.domain.min_x, self.domain.max_x, self.domain.min_y, self.domain.max_y
                ),
            );
        }
        if !(self.memory_budget.is_finite() && self.memory_budget > 0.0) {
            return invalid(
                "memory_budget",
                format!("must be positive and finite (got {})", self.memory_budget),
            );
        }
        if self.reservoir_capacity == 0 {
            return invalid("reservoir_capacity", "must be nonzero".into());
        }
        if self.grid_cells == 0 {
            return invalid("grid_cells", "must be nonzero".into());
        }
        if !(self.aasp_split_value.is_finite() && self.aasp_split_value > 0.0) {
            return invalid(
                "aasp_split_value",
                format!(
                    "must be positive and finite (got {})",
                    self.aasp_split_value
                ),
            );
        }
        Ok(())
    }

    /// Effective reservoir capacity after the budget multiplier.
    pub fn scaled_reservoir(&self) -> usize {
        ((self.reservoir_capacity as f64 * self.memory_budget) as usize).max(16)
    }

    /// Effective grid side length (cells per axis) after the budget
    /// multiplier, keeping the cell count a perfect square.
    pub fn scaled_grid_side(&self) -> usize {
        let cells = (self.grid_cells as f64 * self.memory_budget).max(4.0);
        (cells.sqrt().round() as usize).max(2)
    }
}

/// A streaming selectivity estimator for RC-DVQ queries.
///
/// Estimators are kept consistent with the sliding window by the driver:
/// every arriving object is [`insert`]ed and every expired object is
/// [`remove`]d. Workload-driven estimators additionally receive
/// [`observe_query`] feedback (query + actual selectivity from the system
/// logs) — data-structure estimators ignore it.
///
/// [`insert`]: SelectivityEstimator::insert
/// [`remove`]: SelectivityEstimator::remove
/// [`observe_query`]: SelectivityEstimator::observe_query
pub trait SelectivityEstimator: Send {
    /// Which estimator this is.
    fn kind(&self) -> EstimatorKind;

    /// Ingests an arriving window object.
    fn insert(&mut self, obj: &GeoTextObject);

    /// Retracts an object evicted from the window.
    fn remove(&mut self, obj: &GeoTextObject);

    /// Ingests a batch of arriving objects, in order.
    ///
    /// Must be *state-equivalent* to calling [`insert`] once per object in
    /// the same order (including the order randomized structures consume
    /// their RNG) — overrides may only amortize per-call overhead, never
    /// change the resulting estimates.
    ///
    /// [`insert`]: SelectivityEstimator::insert
    fn insert_batch(&mut self, objs: &[GeoTextObject]) {
        for obj in objs {
            self.insert(obj);
        }
    }

    /// Retracts a batch of evicted objects, in order. Same equivalence
    /// contract as [`insert_batch`].
    ///
    /// [`insert_batch`]: SelectivityEstimator::insert_batch
    fn remove_batch(&mut self, objs: &[GeoTextObject]) {
        for obj in objs {
            self.remove(obj);
        }
    }

    /// Estimates the RC-DVQ selectivity (number of matching window
    /// objects). Never negative; may exceed the window size for rough
    /// estimators.
    #[must_use = "an estimate is a pure read; discarding it wastes the traversal"]
    fn estimate(&self, query: &RcDvq) -> f64;

    /// Estimates a batch of queries in one call.
    ///
    /// Must be *value-equivalent* to mapping [`estimate`] over `queries`
    /// in order — bit-identical `f64`s, since `estimate` is a pure read —
    /// so overrides may only amortize shared work across the batch (one
    /// column pass answering many rectangles, one posting-list merge
    /// shared by queries with common keywords), never change a result.
    ///
    /// [`estimate`]: SelectivityEstimator::estimate
    #[must_use = "estimates are pure reads; discarding them wastes the traversal"]
    fn estimate_batch(&self, queries: &[RcDvq]) -> Vec<f64> {
        queries.iter().map(|q| self.estimate(q)).collect()
    }

    /// Feedback after the query executed on actual data: the true
    /// selectivity from the system logs. Default: ignored.
    fn observe_query(&mut self, _query: &RcDvq, _actual: u64) {}

    /// Approximate heap footprint in bytes.
    fn memory_bytes(&self) -> usize;

    /// Drops all state (used when an estimator is wiped after the
    /// pre-training phase, §V-C).
    fn clear(&mut self);

    /// Number of window objects currently represented (the population the
    /// estimator scales to).
    fn population(&self) -> u64;

    /// Deep invariant audit (the `debug-invariants` feature): a full walk
    /// that re-derives the estimator's maintained counters and checks its
    /// internal structures for corruption. The default has nothing to
    /// audit.
    #[cfg(feature = "debug-invariants")]
    fn audit(&self) -> Result<(), geostream::AuditError> {
        Ok(())
    }
}

/// Convenience alias for a boxed estimator.
pub type BoxedEstimator = Box<dyn SelectivityEstimator>;

/// Builds a fresh (empty) estimator of `kind` under `config`, validating
/// the configuration first. This is the fallible entry point; systems that
/// assemble configs from user input should prefer it over
/// [`build_estimator`].
pub fn try_build_estimator(
    kind: EstimatorKind,
    config: &EstimatorConfig,
) -> Result<BoxedEstimator, crate::EstimateError> {
    config.validate()?;
    Ok(match kind {
        EstimatorKind::H4096 => Box::new(crate::histogram2d::Histogram2D::new(config)),
        EstimatorKind::Rsl => Box::new(crate::reservoir::ReservoirList::new(config)),
        EstimatorKind::Rsh => Box::new(crate::reservoir_hash::ReservoirHash::new(config)),
        EstimatorKind::Aasp => Box::new(crate::aasp::AaspTree::new(config)),
        EstimatorKind::Ffn => Box::new(crate::ffn::FfnEstimator::new(config)),
        EstimatorKind::Spn => Box::new(crate::spn::SpnEstimator::new(config)),
    })
}

/// Builds a fresh (empty) estimator of `kind` under `config`. This is the
/// factory the estimator adaptor uses when it starts pre-filling a
/// recommended replacement (§V-D).
///
/// # Panics
/// Panics if `config` fails [`EstimatorConfig::validate`]; use
/// [`try_build_estimator`] to handle invalid configs as a typed error.
pub fn build_estimator(kind: EstimatorKind, config: &EstimatorConfig) -> BoxedEstimator {
    // LINT-ALLOW(no-panic): documented panicking convenience wrapper; the
    // fallible path is try_build_estimator, and LatestConfig::validate
    // rejects invalid estimator configs before any system reaches here.
    try_build_estimator(kind, config).unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_indices_round_trip() {
        for kind in EstimatorKind::ALL {
            assert_eq!(EstimatorKind::from_index(kind.index()), Some(kind));
        }
        assert_eq!(EstimatorKind::from_index(6), None);
    }

    #[test]
    fn kind_names_match_paper() {
        let names: Vec<&str> = EstimatorKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names, vec!["H4096", "RSL", "RSH", "AASP", "FFN", "SPN"]);
        assert_eq!(format!("{}", EstimatorKind::Rsh), "RSH");
    }

    #[test]
    fn config_scaling() {
        let mut c = EstimatorConfig::default();
        assert_eq!(c.scaled_grid_side(), 64); // 4096 cells
        assert_eq!(c.scaled_reservoir(), 100_000);
        c.memory_budget = 4.0;
        assert_eq!(c.scaled_grid_side(), 128);
        assert_eq!(c.scaled_reservoir(), 400_000);
        c.memory_budget = 1e-9;
        assert!(c.scaled_reservoir() >= 16);
        assert!(c.scaled_grid_side() >= 2);
    }

    #[test]
    fn invalid_configs_surface_typed_errors() {
        use crate::EstimateError;
        let cases: [(&str, EstimatorConfig); 4] = [
            (
                "memory_budget",
                EstimatorConfig {
                    memory_budget: 0.0,
                    ..EstimatorConfig::default()
                },
            ),
            (
                "reservoir_capacity",
                EstimatorConfig {
                    reservoir_capacity: 0,
                    ..EstimatorConfig::default()
                },
            ),
            (
                "grid_cells",
                EstimatorConfig {
                    grid_cells: 0,
                    ..EstimatorConfig::default()
                },
            ),
            (
                "aasp_split_value",
                EstimatorConfig {
                    aasp_split_value: f64::NAN,
                    ..EstimatorConfig::default()
                },
            ),
        ];
        for (expect_field, config) in cases {
            let err = try_build_estimator(EstimatorKind::Rsl, &config)
                .err()
                .unwrap_or_else(|| panic!("{expect_field} should be rejected"));
            let EstimateError::InvalidConfig { field, .. } = err;
            assert_eq!(field, expect_field);
        }
        assert!(try_build_estimator(EstimatorKind::Rsl, &EstimatorConfig::default()).is_ok());
    }

    #[test]
    fn factory_builds_every_kind() {
        let config = EstimatorConfig {
            reservoir_capacity: 100,
            ..EstimatorConfig::default()
        };
        for kind in EstimatorKind::ALL {
            let e = build_estimator(kind, &config);
            assert_eq!(e.kind(), kind);
            assert_eq!(e.population(), 0);
        }
    }
}
