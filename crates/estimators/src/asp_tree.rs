//! Adaptive space-partition (ASP) tree — a compressed four-ary tree with
//! count summaries (paper §IV, after Hershberger et al.).
//!
//! This is a true *streaming synopsis*: the tree stores only per-node
//! counters, never the objects themselves, so memory is `O(nodes)`
//! regardless of the window size. Every arriving point is counted at the
//! **deepest node existing at arrival time** that contains it; when a
//! leaf's own count crosses the split threshold, four empty children are
//! created and only *future* arrivals descend — the historical count stays
//! at the parent, spread over its (coarser) rectangle by the uniformity
//! assumption. That residual coarseness is the structure's intrinsic
//! estimation error, exactly the bounded-error behaviour of adaptive
//! spatial partitioning in the literature.
//!
//! Window retraction pairs with FIFO eviction: the oldest points are the
//! ones counted at the shallowest nodes, so [`AspTree::remove`] decrements
//! the **shallowest** node on the containment path that still holds mass.
//!
//! The tree is generic over a per-node payload `P` so the augmented AASP
//! estimator can hang keyword synopses off every node.

use geostream::{Point, Rect};

/// Index of a node in the tree arena.
pub type NodeId = u32;

/// One node of the ASP tree.
#[derive(Debug, Clone)]
pub struct AspNode<P> {
    /// Spatial extent of the node.
    pub rect: Rect,
    /// Points counted *at this node* (arrived while it was the deepest
    /// containing node, minus retractions).
    pub own: f64,
    /// Points counted in this node's entire subtree (own + descendants).
    pub subtree: f64,
    /// Child node ids in `[SW, SE, NW, NE]` order, if split.
    pub children: Option<[NodeId; 4]>,
    /// Depth of the node (root = 0).
    pub depth: u16,
    /// Caller-managed payload (e.g. a keyword synopsis).
    pub payload: P,
}

impl<P> AspNode<P> {
    /// Whether this node is a leaf.
    pub fn is_leaf(&self) -> bool {
        self.children.is_none()
    }
}

/// A compressed adaptive quadtree of count summaries.
#[derive(Debug, Clone)]
pub struct AspTree<P = ()> {
    nodes: Vec<AspNode<P>>,
    split_threshold: f64,
    max_depth: u16,
    population: u64,
}

impl<P: Default> AspTree<P> {
    /// Creates a tree over `domain` whose nodes split past
    /// `split_threshold` own points, never deeper than `max_depth`.
    pub fn new(domain: Rect, split_threshold: usize, max_depth: u16) -> Self {
        assert!(split_threshold >= 1, "split threshold must be positive");
        AspTree {
            nodes: vec![AspNode {
                rect: domain,
                own: 0.0,
                subtree: 0.0,
                children: None,
                depth: 0,
                payload: P::default(),
            }],
            split_threshold: split_threshold as f64,
            max_depth,
            population: 0,
        }
    }

    /// The domain rectangle (root extent).
    pub fn domain(&self) -> Rect {
        self.nodes[0].rect
    }

    /// Total points currently represented.
    pub fn population(&self) -> u64 {
        self.population
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Immutable access to a node.
    pub fn node(&self, id: NodeId) -> &AspNode<P> {
        &self.nodes[id as usize]
    }

    /// Mutable access to a node's payload.
    pub fn payload_mut(&mut self, id: NodeId) -> &mut P {
        &mut self.nodes[id as usize].payload
    }

    /// Counts `p` at the deepest existing node containing it, splitting
    /// that node if it crossed the threshold (children start empty; the
    /// historical count stays put). Returns the node the point was counted
    /// at, so callers can update its payload.
    pub fn insert(&mut self, p: &Point) -> NodeId {
        self.population += 1;
        let mut id: NodeId = 0;
        loop {
            self.nodes[id as usize].subtree += 1.0;
            match self.nodes[id as usize].children {
                Some(children) => {
                    let q = self.nodes[id as usize].rect.quadrant_of(p);
                    id = children[q];
                }
                None => break,
            }
        }
        self.nodes[id as usize].own += 1.0;
        let node = &self.nodes[id as usize];
        if node.own > self.split_threshold && node.depth < self.max_depth {
            self.split(id);
        }
        id
    }

    /// Retracts a point at `p`: decrements the **shallowest** node on the
    /// containment path with remaining own mass (FIFO eviction retires the
    /// oldest counts, which live highest in the tree). Returns the node
    /// decremented, or `None` if the path held no mass.
    pub fn remove(&mut self, p: &Point) -> Option<NodeId> {
        let mut path = Vec::with_capacity(self.max_depth as usize + 1);
        let mut id: NodeId = 0;
        loop {
            path.push(id);
            match self.nodes[id as usize].children {
                Some(children) => {
                    let q = self.nodes[id as usize].rect.quadrant_of(p);
                    id = children[q];
                }
                None => break,
            }
        }
        let victim = path
            .iter()
            .copied()
            .find(|&n| self.nodes[n as usize].own > 0.0)?;
        self.population = self.population.saturating_sub(1);
        self.nodes[victim as usize].own -= 1.0;
        for &n in &path {
            self.nodes[n as usize].subtree = (self.nodes[n as usize].subtree - 1.0).max(0.0);
            if n == victim {
                break;
            }
        }
        Some(victim)
    }

    fn split(&mut self, id: NodeId) {
        debug_assert!(self.nodes[id as usize].children.is_none());
        let quadrants = self.nodes[id as usize].rect.quadrants();
        let depth = self.nodes[id as usize].depth + 1;
        let base = self.nodes.len() as NodeId;
        for rect in quadrants {
            self.nodes.push(AspNode {
                rect,
                own: 0.0,
                subtree: 0.0,
                children: None,
                depth,
                payload: P::default(),
            });
        }
        self.nodes[id as usize].children = Some([base, base + 1, base + 2, base + 3]);
    }

    /// Estimated number of points inside `range`, applying the per-node
    /// uniformity assumption to every counted node.
    pub fn estimate_range(&self, range: &Rect) -> f64 {
        self.estimate_nodes_with(Some(range), &|node: &AspNode<P>| node.own)
    }

    /// Generalized estimate over **all counted nodes**: `weight(node)`
    /// returns the share of the node's own mass matching the non-spatial
    /// predicates (clamped to `own`); spatial coverage scaling is applied
    /// here. `range = None` means no spatial predicate.
    ///
    /// There is deliberately no aggregate shortcut for fully covered
    /// subtrees: node statistics (keyword synopses) are per node, so every
    /// intersecting node is consulted — the source of AASP's latency
    /// profile.
    pub fn estimate_nodes_with(
        &self,
        range: Option<&Rect>,
        weight: &dyn Fn(&AspNode<P>) -> f64,
    ) -> f64 {
        let mut total = 0.0;
        let mut stack: Vec<NodeId> = vec![0];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id as usize];
            if node.subtree <= 0.0 {
                continue;
            }
            let coverage = match range {
                None => 1.0,
                Some(r) => {
                    if !node.rect.intersects(r) {
                        continue;
                    }
                    node.rect.coverage_by(r)
                }
            };
            if node.own > 0.0 && coverage > 0.0 {
                total += weight(node).clamp(0.0, node.own) * coverage;
            }
            if let Some(children) = node.children {
                stack.extend_from_slice(&children);
            }
        }
        total
    }

    /// Visits every node (arena order).
    pub fn for_each_node(&self, mut f: impl FnMut(&AspNode<P>)) {
        for node in &self.nodes {
            f(node);
        }
    }

    /// Drops all structure, keeping configuration.
    pub fn clear(&mut self) {
        let domain = self.domain();
        self.nodes.clear();
        self.nodes.push(AspNode {
            rect: domain,
            own: 0.0,
            subtree: 0.0,
            children: None,
            depth: 0,
            payload: P::default(),
        });
        self.population = 0;
    }

    /// Full O(nodes) invariant walk (the `debug-invariants` auditor):
    ///
    /// * **partition** — each split node's four children carry exactly its
    ///   rectangle's quadrants, in `[SW, SE, NW, NE]` order (disjoint and
    ///   covering by construction of [`Rect::quadrants`]), one level
    ///   deeper, within the depth cap.
    /// * **subtree-identity** — every node's `subtree` equals its `own`
    ///   plus its children's `subtree`s.
    /// * **non-negative** — no counter is negative or non-finite.
    /// * **population** — the scalar population equals the root's subtree
    ///   mass.
    /// * **reachability** — every arena node is reachable from the root
    ///   exactly once (no orphaned or shared children).
    #[cfg(feature = "debug-invariants")]
    pub fn audit(&self) -> Result<(), geostream::AuditError> {
        use geostream::audit::ensure;
        const S: &str = "AspTree";
        let mut seen = vec![false; self.nodes.len()];
        let mut stack: Vec<NodeId> = vec![0];
        while let Some(id) = stack.pop() {
            let i = id as usize;
            ensure(!seen[i], S, "reachability", || {
                format!("node {id} reachable twice")
            })?;
            seen[i] = true;
            let node = &self.nodes[i];
            ensure(
                node.own >= 0.0 && node.own.is_finite() && node.subtree.is_finite(),
                S,
                "non-negative",
                || format!("node {id} own {} subtree {}", node.own, node.subtree),
            )?;
            match node.children {
                None => {
                    ensure(
                        (node.subtree - node.own).abs() < 1e-6,
                        S,
                        "subtree-identity",
                        || format!("leaf {id} subtree {} != own {}", node.subtree, node.own),
                    )?;
                }
                Some(children) => {
                    let quadrants = node.rect.quadrants();
                    let mut child_sum = 0.0;
                    for (q, &c) in children.iter().enumerate() {
                        let child = &self.nodes[c as usize];
                        ensure(child.rect == quadrants[q], S, "partition", || {
                            format!(
                                "node {id} child {q} covers {:?}, quadrant is {:?}",
                                child.rect, quadrants[q]
                            )
                        })?;
                        ensure(
                            child.depth == node.depth + 1 && child.depth <= self.max_depth,
                            S,
                            "partition",
                            || format!("node {id} child {c} at depth {}", child.depth),
                        )?;
                        child_sum += child.subtree;
                    }
                    ensure(
                        (node.subtree - (node.own + child_sum)).abs() < 1e-6,
                        S,
                        "subtree-identity",
                        || {
                            format!(
                                "node {id} subtree {} != own {} + children {child_sum}",
                                node.subtree, node.own
                            )
                        },
                    )?;
                    stack.extend_from_slice(&children);
                }
            }
        }
        ensure(seen.iter().all(|&s| s), S, "reachability", || {
            let orphan = seen.iter().position(|&s| !s).unwrap_or(0);
            format!("node {orphan} unreachable from the root")
        })?;
        let root = self.nodes[0].subtree;
        ensure(
            (root - self.population as f64).abs() < 1e-6,
            S,
            "population",
            || format!("population {} != root subtree {root}", self.population),
        )?;
        Ok(())
    }

    /// Approximate heap bytes, with payload bytes supplied by the caller.
    pub fn memory_bytes(&self, payload_bytes: impl Fn(&P) -> usize) -> usize {
        self.nodes.len() * std::mem::size_of::<AspNode<P>>()
            + self
                .nodes
                .iter()
                .map(|n| payload_bytes(&n.payload))
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOMAIN: Rect = Rect {
        min_x: 0.0,
        min_y: 0.0,
        max_x: 64.0,
        max_y: 64.0,
    };

    #[test]
    fn counts_without_split() {
        let mut t: AspTree = AspTree::new(DOMAIN, 100, 16);
        for i in 0..10 {
            t.insert(&Point::new(i as f64, 1.0));
        }
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.population(), 10);
        assert!((t.estimate_range(&DOMAIN) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn splits_keep_total_mass() {
        let mut t: AspTree = AspTree::new(DOMAIN, 4, 16);
        for _ in 0..20 {
            t.insert(&Point::new(1.0, 1.0));
        }
        assert!(t.node_count() > 1, "tree never split");
        // All mass counted exactly once across nodes.
        assert!((t.estimate_range(&DOMAIN) - 20.0).abs() < 1e-9);
        let mut own_total = 0.0;
        t.for_each_node(|n| own_total += n.own);
        assert!((own_total - 20.0).abs() < 1e-9);
    }

    #[test]
    fn historical_counts_stay_at_coarse_nodes() {
        let mut t: AspTree = AspTree::new(DOMAIN, 4, 16);
        for _ in 0..6 {
            t.insert(&Point::new(1.0, 1.0));
        }
        // Threshold 4: the 5th insert split the root; root keeps its 5,
        // the 6th lands in the SW child.
        assert!(t.node(0).own >= 5.0);
        assert!(!t.node(0).is_leaf());
    }

    #[test]
    fn adapts_to_dense_regions_with_bounded_smear() {
        let mut t: AspTree = AspTree::new(DOMAIN, 8, 16);
        for i in 0..500 {
            t.insert(&Point::new(1.0 + (i % 10) as f64 * 0.01, 1.0));
        }
        for i in 0..10 {
            t.insert(&Point::new(50.0 + i as f64, 50.0));
        }
        // Dense corner: most mass is counted at deep nodes inside the
        // query; the per-level residue (≤ threshold per level) is the
        // documented smear.
        let dense = t.estimate_range(&Rect::new(0.0, 0.0, 2.0, 2.0));
        assert!(
            dense > 350.0 && dense <= 500.0,
            "dense estimate outside smear bounds: {dense}"
        );
        // Sparse quadrant: its own 10 points plus a quarter of the root
        // residue at most.
        let sparse = t.estimate_range(&Rect::new(32.0, 32.0, 64.0, 64.0));
        assert!(
            (10.0..16.0).contains(&sparse),
            "sparse estimate off: {sparse}"
        );
    }

    #[test]
    fn partial_coverage_scales() {
        let mut t: AspTree = AspTree::new(DOMAIN, 1_000, 16);
        for _ in 0..100 {
            t.insert(&Point::new(32.0, 32.0));
        }
        let q = Rect::new(0.0, 0.0, 32.0, 32.0);
        assert!((t.estimate_range(&q) - 25.0).abs() < 1e-9);
    }

    #[test]
    fn remove_retires_shallowest_mass_first() {
        let mut t: AspTree = AspTree::new(DOMAIN, 4, 16);
        let p = Point::new(1.0, 1.0);
        for _ in 0..10 {
            t.insert(&p);
        }
        let root_own_before = t.node(0).own;
        assert!(root_own_before > 0.0);
        let victim = t.remove(&p).expect("mass exists");
        assert_eq!(victim, 0, "oldest (root) mass must retire first");
        for _ in 0..9 {
            assert!(t.remove(&p).is_some());
        }
        assert_eq!(t.population(), 0);
        assert!(t.estimate_range(&DOMAIN).abs() < 1e-9);
        assert!(t.remove(&p).is_none(), "double remove must no-op");
    }

    #[test]
    fn subtree_counts_stay_consistent() {
        let mut t: AspTree = AspTree::new(DOMAIN, 3, 16);
        let pts: Vec<Point> = (0..200)
            .map(|i| Point::new((i * 13 % 64) as f64, (i * 29 % 64) as f64))
            .collect();
        for p in &pts {
            t.insert(p);
        }
        for p in pts.iter().take(100) {
            t.remove(p);
        }
        for id in 0..t.node_count() {
            let n = t.node(id as NodeId);
            if let Some(children) = n.children {
                let child_sum: f64 = children.iter().map(|&c| t.node(c).subtree).sum();
                assert!(
                    (n.subtree - (n.own + child_sum)).abs() < 1e-6,
                    "subtree invariant broken at node {id}"
                );
            } else {
                assert!((n.subtree - n.own).abs() < 1e-6);
            }
        }
        assert_eq!(t.population(), 100);
    }

    #[test]
    fn max_depth_caps_splitting() {
        let mut t: AspTree = AspTree::new(DOMAIN, 2, 2);
        for _ in 0..1_000 {
            t.insert(&Point::new(1.0, 1.0));
        }
        let mut max_depth = 0;
        t.for_each_node(|n| max_depth = max_depth.max(n.depth));
        assert!(max_depth <= 2);
        assert!((t.estimate_range(&DOMAIN) - 1_000.0).abs() < 1e-9);
    }

    #[test]
    fn clear_resets() {
        let mut t: AspTree = AspTree::new(DOMAIN, 2, 8);
        for _ in 0..100 {
            t.insert(&Point::new(1.0, 1.0));
        }
        t.clear();
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.population(), 0);
        assert_eq!(t.domain(), DOMAIN);
    }

    #[test]
    fn estimate_with_custom_weight() {
        let mut t: AspTree = AspTree::new(DOMAIN, 1_000, 8);
        for _ in 0..100 {
            t.insert(&Point::new(32.0, 32.0));
        }
        let est = t.estimate_nodes_with(None, &|n| n.own * 0.5);
        assert!((est - 50.0).abs() < 1e-9);
        // Weight above own is clamped.
        let est2 = t.estimate_nodes_with(None, &|n| n.own * 10.0);
        assert!((est2 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_query_is_zero() {
        let mut t: AspTree = AspTree::new(DOMAIN, 8, 8);
        t.insert(&Point::new(1.0, 1.0));
        assert_eq!(
            t.estimate_range(&Rect::new(100.0, 100.0, 101.0, 101.0)),
            0.0
        );
    }

    #[test]
    fn memory_is_node_bound_not_window_bound() {
        let mut t: AspTree = AspTree::new(DOMAIN, 8, 4);
        // Saturate the depth-capped path first.
        for _ in 0..1_000 {
            t.insert(&Point::new(1.0, 1.0));
        }
        let m1 = t.memory_bytes(|_| 0);
        for _ in 0..100_000 {
            t.insert(&Point::new(1.0, 1.0));
        }
        // Depth-capped: node count (and memory) stays put while the
        // population grows 10_000×.
        let m2 = t.memory_bytes(|_| 0);
        assert_eq!(m1, m2, "synopsis memory must not grow with points");
    }
}
